(** The Numerical 3-Dimensional Matching reduction (Appendix A,
    Lemma A.1, Figures 17–18).

    Given [A, B, C] of [n] positive integers each with
    [T = (ΣA + ΣB + ΣC) / n], the reduced DAG routes [n²] resource units
    from [s] through an [A]-stage, a {e bipartite matcher}, a [B]-stage,
    a second matcher, and a [C]-stage to [t]:

    - stage arcs [(s, a_i)], [(b_j, b'_j)], [(c_k, t)] have tuples
      [{(0, INF), (n, value)}] — they demand [n] units and then take
      exactly their element's value;
    - the matcher (Figure 17) maps its [n] inputs one-to-one onto its
      [n] outputs: input [x_i] spreads one unit to each [y^j_i]; exactly
      one of them diverts its unit to the collector [y_i], leaving its
      arc [(y^j_i, z'_j)] at duration [M] — which is how input [i]'s
      completion time (and only its) reaches output [z_j]; the collector
      arcs [(y_i, z_i)] and the gathering arcs [(z'_j, z_j)] (demanding
      [n-1] units) force the diversion pattern to be a bijection.

    Makespan [2M + T] is achievable with budget [n²] iff the instance
    has a perfect numerical 3-D matching. *)

open Rtt_core

type t

val a : t -> int array
val b : t -> int array
val c : t -> int array
val instance : t -> Aoa.instance
val budget : t -> int
(** [n²]. *)

val target : t -> int
(** [2M + T]. *)

val big : t -> int
(** The [M] of the construction. *)

val triple_sum : t -> int
(** [T]. *)

val n3dm_exists : a:int array -> b:int array -> c:int array -> (int array * int array) option
(** Brute-force oracle: permutations [(p, q)] with
    [a.(i) + b.(p.(i)) + c.(q.(p.(i))) = T] for all [i]; [None]
    otherwise. Factorial-time; for [n <= 6]. *)

val reduce : a:int array -> b:int array -> c:int array -> t
(** @raise Invalid_argument on ragged arrays, non-positive values, or a
    non-integral [T]. *)

val allocation_of_matching : t -> p:int array -> q:int array -> Schedule.allocation
(** Canonical allocation for matcher-1 mapping [i -> p.(i)] and
    matcher-2 mapping [j -> q.(j)] (both permutations). *)

val makespan_of_matching : t -> p:int array -> q:int array -> int

val decide_by_matchings : t -> (int array * int array) option
(** Searches all permutation pairs for one meeting the target within the
    budget (the executable content of Lemma A.1). *)
