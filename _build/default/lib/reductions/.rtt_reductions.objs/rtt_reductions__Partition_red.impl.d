lib/reductions/partition_red.ml: Array Dag Duration Hashtbl Printf Problem Rtt_core Rtt_dag Rtt_duration Schedule Treewidth
