lib/reductions/sat.ml: Array Format List Random
