lib/reductions/partition_red.mli: Dag Problem Rtt_core Rtt_dag Schedule Treewidth
