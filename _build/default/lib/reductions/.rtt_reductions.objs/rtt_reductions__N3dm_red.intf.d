lib/reductions/n3dm_red.mli: Aoa Rtt_core Schedule
