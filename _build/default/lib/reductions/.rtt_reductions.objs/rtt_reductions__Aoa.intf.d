lib/reductions/aoa.mli: Dag Duration Problem Rtt_core Rtt_dag Rtt_duration Schedule
