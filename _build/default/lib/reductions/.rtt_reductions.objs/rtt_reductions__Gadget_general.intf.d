lib/reductions/gadget_general.mli: Aoa Rtt_core Sat Schedule
