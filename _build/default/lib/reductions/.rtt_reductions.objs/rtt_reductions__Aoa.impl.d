lib/reductions/aoa.ml: Array Dag Duration Hashtbl List Problem Rtt_core Rtt_dag Rtt_duration Schedule
