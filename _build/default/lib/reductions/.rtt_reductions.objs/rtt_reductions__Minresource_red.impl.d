lib/reductions/minresource_red.ml: Aoa Array Duration List Printf Rtt_core Rtt_duration Sat Schedule
