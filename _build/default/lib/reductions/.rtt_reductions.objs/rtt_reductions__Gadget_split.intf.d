lib/reductions/gadget_split.mli: Dag Problem Rtt_core Rtt_dag Rtt_parsim Sat Schedule
