lib/reductions/gadget_split.ml: Array Dag Hashtbl List Printf Problem Reducer_sim Rtt_core Rtt_dag Rtt_parsim Sat Schedule Sim
