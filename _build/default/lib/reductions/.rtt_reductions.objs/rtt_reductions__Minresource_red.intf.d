lib/reductions/minresource_red.mli: Aoa Rtt_core Sat Schedule
