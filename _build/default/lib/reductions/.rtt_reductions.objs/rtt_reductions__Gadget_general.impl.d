lib/reductions/gadget_general.ml: Aoa Array Duration List Printf Rtt_core Rtt_duration Sat Schedule
