lib/reductions/sat.mli: Format Random
