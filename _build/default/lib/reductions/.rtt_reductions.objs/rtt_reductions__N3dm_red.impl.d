lib/reductions/n3dm_red.ml: Aoa Array Duration Fun List Printf Rtt_core Rtt_duration Schedule
