open Rtt_dag
open Rtt_core
open Rtt_parsim

type t = {
  sat : Sat.t;
  dag : Dag.t;
  problem : Problem.t;
  x : int;
  y : int;
  budget : int;
  target : int;
  paper_target : int;
  var_true_tail : Dag.vertex array;
  var_false_tail : Dag.vertex array;
  var_v4_tail : Dag.vertex array;
  var_v5 : Dag.vertex array;
  var_v6 : Dag.vertex array;
  var_v7 : Dag.vertex array;
  clause_c2_tail : Dag.vertex array;
  clause_c3_tail : Dag.vertex array;
  clause_lines : (Dag.vertex * Dag.vertex * Dag.vertex) array;
  clause_comp_tails : (Dag.vertex * Dag.vertex * Dag.vertex) array;
  clause_c11 : (Dag.vertex * Dag.vertex * Dag.vertex) array;
}

(* A composite node of the given order (Figure 12): head cell (one write
   per feeder), [order] middle cells, and a final cell taking [order]
   writes. Returns (head, final). *)
let composite g ~order ~feeders ~label =
  let head = Dag.add_vertex ~label:(label ^ ".v1") g in
  List.iter (fun f -> Dag.add_edge g f head) feeders;
  let final = Dag.add_vertex ~label:(label ^ ".final") g in
  for i = 1 to order do
    let mid = Dag.add_vertex ~label:(Printf.sprintf "%s.m%d" label i) g in
    Dag.add_edge g head mid;
    Dag.add_edge g mid final
  done;
  (head, final)

(* A chain of [len] cells starting from [from]; returns the last cell
   ([from] itself when [len = 0]). *)
let chain g ~from ~len ~label =
  let cur = ref from in
  for i = 1 to len do
    let v = Dag.add_vertex ~label:(Printf.sprintf "%s.%d" label i) g in
    Dag.add_edge g !cur v;
    cur := v
  done;
  !cur

(* Completion time of the structural combining tree when all [count]
   outputs arrive simultaneously at [arrival]; mirrors build_tree's
   pairing and the per-cell write serialization. The paper idealizes
   this as exactly 2y; staggered arrivals in an uneven tree can shave a
   unit, so the reduction's target is this exact value. *)
let tree_finish ~count ~arrival =
  let serialize arrivals =
    List.fold_left (fun clock a -> max clock a + 1) 0 (List.sort compare arrivals)
  in
  let rec go cells =
    match cells with
    | [ single ] -> single
    | _ ->
        let rec pair = function
          | a :: b :: rest -> serialize [ a; b ] :: pair rest
          | [ a ] -> serialize [ a ] :: []
          | [] -> []
        in
        go (pair cells)
  in
  go (List.init count (fun _ -> arrival))

let ilog2_ceil n =
  let y = ref 0 in
  while 1 lsl !y < n do
    incr y
  done;
  !y

let reduce (sat : Sat.t) =
  let n = sat.Sat.n_vars in
  let m = List.length sat.Sat.clauses in
  if n = 0 || m = 0 then invalid_arg "Gadget_split.reduce: need variables and clauses";
  let y = ilog2_ceil (n + (3 * m)) in
  let x = max ((2 * y) + 13) 8 in
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"S" g in
  let var_true_tail = Array.make n 0
  and var_false_tail = Array.make n 0
  and var_v4_tail = Array.make n 0
  and var_v5 = Array.make n 0
  and var_v6 = Array.make n 0
  and var_v7 = Array.make n 0 in
  for q = 0 to n - 1 do
    let lbl suffix = Printf.sprintf "V%d.%s" q suffix in
    let v1 = Dag.add_vertex ~label:(lbl "v1") g in
    Dag.add_edge g s v1;
    let _, t_final = composite g ~order:(2 * x) ~feeders:[ v1 ] ~label:(lbl "compT") in
    let _, f_final = composite g ~order:(2 * x) ~feeders:[ v1 ] ~label:(lbl "compF") in
    var_true_tail.(q) <- t_final;
    var_false_tail.(q) <- f_final;
    var_v5.(q) <- chain g ~from:t_final ~len:(4 * x) ~label:(lbl "chainT");
    var_v6.(q) <- chain g ~from:f_final ~len:(4 * x) ~label:(lbl "chainF");
    let _, v4_final = composite g ~order:(8 * x) ~feeders:[ t_final; f_final ] ~label:(lbl "comp4") in
    var_v4_tail.(q) <- v4_final;
    (* pad so V7 finishes at 7x+12 under a proper allocation: V4's final
       lands at 6x+7, so x+5 more unit-work cells are needed *)
    var_v7.(q) <- chain g ~from:v4_final ~len:(x + 5) ~label:(lbl "pad")
  done;
  (* tap cell that is early (5x+5) iff the literal is true / false *)
  let satisfy_cell (l : Sat.literal) = if l.Sat.positive then var_v5.(l.Sat.var) else var_v6.(l.Sat.var) in
  let falsify_cell (l : Sat.literal) = if l.Sat.positive then var_v6.(l.Sat.var) else var_v5.(l.Sat.var) in
  let clause_c2_tail = Array.make m 0
  and clause_c3_tail = Array.make m 0
  and clause_lines = Array.make m (0, 0, 0)
  and clause_comp_tails = Array.make m (0, 0, 0)
  and clause_c11 = Array.make m (0, 0, 0) in
  List.iteri
    (fun ci (l1, l2, l3) ->
      let lbl suffix = Printf.sprintf "C%d.%s" ci suffix in
      let c1 = Dag.add_vertex ~label:(lbl "c1") g in
      Dag.add_edge g s c1;
      let _, c2_final = composite g ~order:(8 * x) ~feeders:[ c1 ] ~label:(lbl "comp2") in
      let _, c3_final = composite g ~order:(8 * x) ~feeders:[ c1 ] ~label:(lbl "comp3") in
      clause_c2_tail.(ci) <- c2_final;
      clause_c3_tail.(ci) <- c3_final;
      let c4 = Dag.add_vertex ~label:(lbl "c4") g in
      Dag.add_edge g c2_final c4;
      Dag.add_edge g c3_final c4;
      let line taps idx =
        let cell = Dag.add_vertex ~label:(lbl (Printf.sprintf "c%d" idx)) g in
        List.iter (fun tap -> Dag.add_edge g tap cell) taps;
        cell
      in
      let c5 = line [ falsify_cell l1; falsify_cell l2; satisfy_cell l3 ] 5 in
      let c6 = line [ falsify_cell l1; satisfy_cell l2; falsify_cell l3 ] 6 in
      let c7 = line [ satisfy_cell l1; falsify_cell l2; falsify_cell l3 ] 7 in
      clause_lines.(ci) <- (c5, c6, c7);
      let comp_line feeder tag =
        let head, final = composite g ~order:(2 * x) ~feeders:[ feeder ] ~label:(lbl tag) in
        (* C4's write (and resource) also enters this composite's head *)
        Dag.add_edge g c4 head;
        final
      in
      let c8 = comp_line c5 "comp8" in
      let c9 = comp_line c6 "comp9" in
      let c10 = comp_line c7 "comp10" in
      clause_comp_tails.(ci) <- (c8, c9, c10);
      let paced feeder tag =
        let pace = chain g ~from:s ~len:((7 * x) + 11) ~label:(lbl tag) in
        let cell = Dag.add_vertex ~label:(lbl (tag ^ ".out")) g in
        Dag.add_edge g pace cell;
        Dag.add_edge g feeder cell;
        cell
      in
      clause_c11.(ci) <- (paced c8 "pace11", paced c9 "pace12", paced c10 "pace13"))
    sat.Sat.clauses;
  (* structural binary combining tree of height y over all outputs *)
  let outputs =
    Array.to_list var_v7
    @ List.concat_map (fun (a, b, c) -> [ a; b; c ]) (Array.to_list clause_c11)
  in
  let rec build_tree level cells =
    match cells with
    | [ _ ] when level >= y -> List.hd cells
    | _ ->
        let rec pair i = function
          | a :: b :: rest ->
              let p = Dag.add_vertex ~label:(Printf.sprintf "tree%d_%d" level i) g in
              Dag.add_edge g a p;
              Dag.add_edge g b p;
              p :: pair (i + 1) rest
          | [ a ] ->
              let p = Dag.add_vertex ~label:(Printf.sprintf "tree%d_%d" level i) g in
              Dag.add_edge g a p;
              p :: []
          | [] -> []
        in
        build_tree (level + 1) (pair 0 cells)
  in
  let root = build_tree 0 outputs in
  Dag.set_label g root "t";
  let problem = Problem.of_race_dag (Dag.copy g) Problem.Binary in
  {
    sat;
    dag = g;
    problem;
    x;
    y;
    budget = (2 * n) + (4 * m);
    target = tree_finish ~count:(n + (3 * m)) ~arrival:((7 * x) + 12);
    paper_target = (7 * x) + (2 * y) + 12;
    var_true_tail;
    var_false_tail;
    var_v4_tail;
    var_v5;
    var_v6;
    var_v7;
    clause_c2_tail;
    clause_c3_tail;
    clause_lines;
    clause_comp_tails;
    clause_c11;
  }

(* The two latest-starting lines of a clause under an assignment: with
   exactly one true literal, the matching line starts at 5x+8 and the
   other two at 6x+5; otherwise all three tie and we take the first two. *)
let late_lines t assignment ci (l1, l2, l3) =
  ignore (t, ci);
  let v l = Sat.literal_value l assignment in
  let matches =
    [ v l1 && (not (v l2)) && not (v l3);
      (not (v l1)) && v l2 && not (v l3);
      (not (v l1)) && (not (v l2)) && v l3 ]
  in
  (* line r corresponds to pattern "literal r+1 alone true" in order
     C7 (T,F,F), C6 (F,T,F), C5 (F,F,T): map to (c5, c6, c7) order *)
  let line_matches = [ List.nth matches 2; List.nth matches 1; List.nth matches 0 ] in
  let non_matching = List.filteri (fun i _ -> not (List.nth line_matches i)) [ 0; 1; 2 ] in
  (match non_matching with a :: b :: _ -> [ a; b ] | l -> l)

let reducer_cells t assignment =
  if Array.length assignment <> t.sat.Sat.n_vars then invalid_arg "Gadget_split: assignment size";
  let cells = Hashtbl.create 64 in
  Array.iteri
    (fun q truth ->
      Hashtbl.replace cells (if truth then t.var_true_tail.(q) else t.var_false_tail.(q)) ();
      Hashtbl.replace cells t.var_v4_tail.(q) ())
    assignment;
  List.iteri
    (fun ci clause ->
      Hashtbl.replace cells t.clause_c2_tail.(ci) ();
      Hashtbl.replace cells t.clause_c3_tail.(ci) ();
      let c8, c9, c10 = t.clause_comp_tails.(ci) in
      let tails = [| c8; c9; c10 |] in
      List.iter (fun i -> Hashtbl.replace cells tails.(i) ()) (late_lines t assignment ci clause))
    t.sat.Sat.clauses;
  cells

let reducers_of_assignment ?(kind = `Binary) t assignment =
  let cells = reducer_cells t assignment in
  let two_units =
    match kind with `Binary -> Reducer_sim.Binary { height = 1 } | `Kway -> Reducer_sim.Kway { ways = 2 }
  in
  fun v -> if Hashtbl.mem cells v then two_units else Reducer_sim.Serial

let allocation_of_assignment t assignment =
  let cells = reducer_cells t assignment in
  let alloc = Array.make (Problem.n_jobs t.problem) 0 in
  Hashtbl.iter (fun v () -> alloc.(v) <- 2) cells;
  alloc

let makespan_of_assignment t assignment =
  Sim.makespan t.dag ~reducer:(reducers_of_assignment t assignment)

let budget_of_assignment t assignment =
  Schedule.min_budget t.problem (allocation_of_assignment t assignment)

let decide_by_assignments t =
  let n = t.sat.Sat.n_vars in
  let a = Array.make n false in
  let rec go i =
    if i = n then
      if makespan_of_assignment t a <= t.target && budget_of_assignment t a <= t.budget then
        Some (Array.copy a)
      else None
    else begin
      a.(i) <- false;
      match go (i + 1) with
      | Some r -> Some r
      | None ->
          a.(i) <- true;
          go (i + 1)
    end
  in
  go 0

let line_finish_times t ~clause assignment =
  let finish = Sim.finish_times t.dag ~reducer:(reducers_of_assignment t assignment) in
  let c5, c6, c7 = t.clause_lines.(clause) in
  (finish.(c5), finish.(c6), finish.(c7))
