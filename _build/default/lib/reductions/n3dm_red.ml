open Rtt_duration
open Rtt_core

(* ---------------------------------------------------------------- *)
(* Brute-force oracle.                                               *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let n3dm_exists ~a ~b ~c =
  let n = Array.length a in
  if Array.length b <> n || Array.length c <> n then invalid_arg "N3dm_red.n3dm_exists";
  let total = Array.fold_left ( + ) 0 a + Array.fold_left ( + ) 0 b + Array.fold_left ( + ) 0 c in
  if total mod n <> 0 then None
  else begin
    let target = total / n in
    let perms = List.map Array.of_list (permutations (List.init n Fun.id)) in
    let check p q =
      let ok = ref true in
      for i = 0 to n - 1 do
        if a.(i) + b.(p.(i)) + c.(q.(p.(i))) <> target then ok := false
      done;
      !ok
    in
    let rec find = function
      | [] -> None
      | p :: rest -> (
          match List.find_opt (fun q -> check p q) perms with
          | Some q -> Some (p, q)
          | None -> find rest)
    in
    find perms
  end

(* ---------------------------------------------------------------- *)
(* Construction.                                                     *)

type matcher = {
  outputs : Aoa.node array;
  spread : Aoa.arc array array;  (* (x_i, y^j_i) as [i].(j) *)
  to_collector : Aoa.arc array array;  (* (y^j_i, y_i) *)
  to_zprime : Aoa.arc array array;  (* (y^j_i, z'_j) *)
  collector_out : Aoa.arc array;  (* (y_i, z_i) *)
  gather : Aoa.arc array;  (* (z'_j, z_j) *)
}

type t = {
  a : int array;
  b : int array;
  c : int array;
  instance : Aoa.instance;
  budget : int;
  target : int;
  big : int;
  triple_sum : int;
  a_arcs : Aoa.arc array;
  b_arcs : Aoa.arc array;
  c_arcs : Aoa.arc array;
  m1 : matcher;
  m2 : matcher;
}

let a t = t.a
let b t = t.b
let c t = t.c
let instance t = t.instance
let budget t = t.budget
let target t = t.target
let big t = t.big
let triple_sum t = t.triple_sum

let build_matcher builder ~inputs ~inf ~m_big ~tag =
  let n = Array.length inputs in
  let node fmt = Printf.ksprintf (fun l -> Aoa.node ~label:l builder) fmt in
  let y_split = Array.init n (fun i -> Array.init n (fun j -> node "%s_y%d_%d" tag (j + 1) (i + 1))) in
  let y_coll = Array.init n (fun i -> node "%s_y%d" tag (i + 1)) in
  let z_prime = Array.init n (fun j -> node "%s_z'%d" tag (j + 1)) in
  let outputs = Array.init n (fun j -> node "%s_z%d" tag (j + 1)) in
  let one_unit = Duration.two_point ~t0:inf ~r:1 ~t1:0 in
  let spread =
    Array.init n (fun i -> Array.init n (fun j -> Aoa.arc builder inputs.(i) y_split.(i).(j) one_unit))
  in
  let to_collector =
    Array.init n (fun i -> Array.init n (fun j -> Aoa.zero_arc builder y_split.(i).(j) y_coll.(i)))
  in
  let to_zprime =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Aoa.arc builder y_split.(i).(j) z_prime.(j) (Duration.two_point ~t0:m_big ~r:1 ~t1:0)))
  in
  let collector_out = Array.init n (fun i -> Aoa.arc builder y_coll.(i) outputs.(i) one_unit) in
  let gather =
    Array.init n (fun j ->
        if n = 1 then Aoa.zero_arc builder z_prime.(j) outputs.(j)
        else Aoa.arc builder z_prime.(j) outputs.(j) (Duration.two_point ~t0:inf ~r:(n - 1) ~t1:0))
  in
  { outputs; spread; to_collector; to_zprime; collector_out; gather }

let matcher_allocation m ~p =
  let n = Array.length m.outputs in
  let give = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      give := (m.spread.(i).(j), 1) :: !give;
      if j = p.(i) then give := (m.to_collector.(i).(j), 1) :: !give
      else give := (m.to_zprime.(i).(j), 1) :: !give
    done;
    give := (m.collector_out.(i), 1) :: !give;
    if n > 1 then give := (m.gather.(i), n - 1) :: !give
  done;
  !give

let reduce ~a ~b ~c =
  let n = Array.length a in
  if n = 0 || Array.length b <> n || Array.length c <> n then invalid_arg "N3dm_red.reduce: ragged input";
  Array.iter
    (fun v -> if v <= 0 then invalid_arg "N3dm_red.reduce: values must be positive")
    (Array.concat [ a; b; c ]);
  let total = Array.fold_left ( + ) 0 a + Array.fold_left ( + ) 0 b + Array.fold_left ( + ) 0 c in
  if total mod n <> 0 then invalid_arg "N3dm_red.reduce: target sum not integral";
  let triple_sum = total / n in
  let maxv arr = Array.fold_left max 0 arr in
  let m_big = maxv a + maxv b + maxv c + 1 in
  let target = (2 * m_big) + triple_sum in
  let inf = target + m_big in
  let builder = Aoa.create () in
  let s = Aoa.node ~label:"s" builder and t = Aoa.node ~label:"t" builder in
  let node fmt = Printf.ksprintf (fun l -> Aoa.node ~label:l builder) fmt in
  let a_nodes = Array.init n (fun i -> node "a%d" (i + 1)) in
  let a_arcs =
    Array.init n (fun i -> Aoa.arc builder s a_nodes.(i) (Duration.two_point ~t0:inf ~r:n ~t1:a.(i)))
  in
  let m1 = build_matcher builder ~inputs:a_nodes ~inf ~m_big ~tag:"m1" in
  let b_nodes = Array.init n (fun j -> node "b'%d" (j + 1)) in
  let b_arcs =
    Array.init n (fun j ->
        Aoa.arc builder m1.outputs.(j) b_nodes.(j) (Duration.two_point ~t0:inf ~r:n ~t1:b.(j)))
  in
  let m2 = build_matcher builder ~inputs:b_nodes ~inf ~m_big ~tag:"m2" in
  let c_arcs =
    Array.init n (fun k ->
        Aoa.arc builder m2.outputs.(k) t (Duration.two_point ~t0:inf ~r:n ~t1:c.(k)))
  in
  let instance = Aoa.instance builder in
  { a; b; c; instance; budget = n * n; target; big = m_big; triple_sum; a_arcs; b_arcs; c_arcs; m1; m2 }

let allocation_of_matching t ~p ~q =
  let n = Array.length t.a in
  let check_perm p =
    Array.length p = n
    &&
    let seen = Array.make n false in
    Array.for_all
      (fun j -> j >= 0 && j < n && not seen.(j) && (seen.(j) <- true; true))
      p
  in
  if not (check_perm p && check_perm q) then invalid_arg "N3dm_red: p and q must be permutations";
  let give =
    List.concat
      [
        List.init n (fun i -> (t.a_arcs.(i), n));
        List.init n (fun j -> (t.b_arcs.(j), n));
        List.init n (fun k -> (t.c_arcs.(k), n));
        matcher_allocation t.m1 ~p;
        matcher_allocation t.m2 ~p:q;
      ]
  in
  Aoa.arc_allocation t.instance give

let makespan_of_matching t ~p ~q =
  Schedule.makespan t.instance.Aoa.problem (allocation_of_matching t ~p ~q)

let decide_by_matchings t =
  let n = Array.length t.a in
  let perms = List.map Array.of_list (permutations (List.init n Fun.id)) in
  let ok p q =
    makespan_of_matching t ~p ~q <= t.target
    && Schedule.min_budget t.instance.Aoa.problem (allocation_of_matching t ~p ~q) <= t.budget
  in
  let rec find = function
    | [] -> None
    | p :: rest -> (
        match List.find_opt (fun q -> ok p q) perms with
        | Some q -> Some (p, q)
        | None -> find rest)
  in
  find perms
