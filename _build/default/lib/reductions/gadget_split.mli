(** The 1-in-3SAT reduction for recursive-binary / k-way splitting
    duration functions (Section 4.2: Lemma 4.5, Figures 12–14,
    Table 3).

    Unlike Section 4.1, the duration functions here must arise from
    reducers, so the construction works on a {e race DAG of memory
    cells}: composite nodes (Figure 12) are expanded into their
    [order + 2] plain cells, and placing "2 units of resource" on a
    composite means building a height-1 binary reducer over its final
    cell. Makespans are computed with the event-driven scheduler
    {!Rtt_parsim.Sim}, which serializes same-time writers exactly as the
    paper's "earliest finish time" analysis does — Table 3's
    [a = 6x + 4], [b = 5x + 6] entries fall out of the simulation.

    Construction summary (x = max (2y + 13, 8), y = log2 of the
    smallest power of two ≥ n + 3m):
    - variable gadget: V1 → two order-2x composites (TRUE/FALSE branch)
      → 4x-cell chains ending at the tap cells V5/V6; both branches
      feed the order-8x composite V4 whose 8x+2 serial time forces the
      gadget's 2 units to stay inside; a pad chain ends at V7, finishing
      at 7x+12 under a proper allocation;
    - clause gadget: C1 → two order-8x composites (the diamond, forcing
      4 units) → C4; tap cells C5/C6/C7 receive 3 writes each from the
      V5/V6 cells of their literals (the Table 3 patterns); each line
      continues into an order-2x composite C8/C9/C10 whose v1 also
      receives C4's write (and C4's resource units); chains of 7x+11
      cells from the source pace C11/C12/C13 to finish at 7x+12;
    - all V7 and C11..C13 cells meet a structural binary combining tree
      of height y, adding exactly 2y: the target makespan is
      [7x + 2y + 12] with budget [2n + 4m], achievable iff the formula
      is 1-in-3 satisfiable (Lemma 4.5). *)

open Rtt_dag
open Rtt_core

type t = {
  sat : Sat.t;
  dag : Dag.t;  (** the expanded cell DAG *)
  problem : Problem.t;  (** same DAG with binary-split durations (for min-flow feasibility) *)
  x : int;
  y : int;
  budget : int;  (** 2n + 4m *)
  target : int;
      (** exact simulated makespan of a proper allocation (the paper's
          idealized [7x + 2y + 12] up to a unit of combining-tree
          staggering; see {!paper_target}) *)
  paper_target : int;  (** 7x + 2y + 12 *)
  var_true_tail : Dag.vertex array;  (** final cell of the TRUE-branch composite *)
  var_false_tail : Dag.vertex array;
  var_v4_tail : Dag.vertex array;
  var_v5 : Dag.vertex array;  (** tap cell: early iff TRUE *)
  var_v6 : Dag.vertex array;  (** tap cell: early iff FALSE *)
  var_v7 : Dag.vertex array;
  clause_c2_tail : Dag.vertex array;
  clause_c3_tail : Dag.vertex array;
  clause_lines : (Dag.vertex * Dag.vertex * Dag.vertex) array;  (** C5, C6, C7 *)
  clause_comp_tails : (Dag.vertex * Dag.vertex * Dag.vertex) array;  (** C8, C9, C10 finals *)
  clause_c11 : (Dag.vertex * Dag.vertex * Dag.vertex) array;
}

val reduce : Sat.t -> t

val reducers_of_assignment :
  ?kind:[ `Binary | `Kway ] -> t -> bool array -> Dag.vertex -> Rtt_parsim.Reducer_sim.reducer
(** The canonical reducer placement for a truth assignment: two-unit
    reducers (height-1 binary by default, or 2-way splitters — the
    paper proves the gadget works identically for both, since
    [2 + k/2 + 2 = k/2 + 4] either way) on the chosen branch composite
    and V4 of every variable, on both diamond composites of every
    clause, and on the two latest-starting line composites of every
    clause. *)

val allocation_of_assignment : t -> bool array -> Schedule.allocation
(** The same placement as resource amounts (2 per reducer). *)

val makespan_of_assignment : t -> bool array -> int
val budget_of_assignment : t -> bool array -> int
val decide_by_assignments : t -> bool array option

val line_finish_times : t -> clause:int -> bool array -> int * int * int
(** Finish times of C5, C6, C7 under the assignment — the quantities
    tabulated in Table 3 (entries built from a = 6x+4, b = 5x+6). *)
