(** The 1-in-3SAT reduction with general non-increasing duration
    functions (Section 4.1: Theorem 4.1, Lemma 4.2, Figures 8–9; also
    the inapproximability Theorems 4.3).

    The figures are images in the paper; the gadgets here are
    reconstructed from the prose so that every stated invariant holds
    and is machine-checked by the tests:

    {b Variable gadget} (nodes [V1..V6]): arcs [(V1,V2)] and [(V1,V3)]
    with tuples [{(0,1),(1,0)}] — routing the gadget's single resource
    unit through [V2] means TRUE, through [V3] FALSE, making the chosen
    side's event time 0 and the other side's 1; zero-duration arcs
    [(V2,V4)], [(V3,V4)] rejoin, and the forcing chain
    [(V4,V5)], [(V5,V6)] with tuples [{(0,2),(1,0)}] pins the unit
    inside the gadget (leaking it into a clause leaves the chain at
    duration 2 > 1, the target makespan).

    {b Clause gadget} (nodes [C1..C10]): the diamond
    [(C1,C2),(C2,C4),(C1,C3),(C3,C4)], all tuples [{(0,1),(1,0)}],
    forces exactly two units; tap arcs of duration 0 connect variable
    nodes to the three pattern lines [C5, C6, C7] — line [C5] reads the
    nodes that are at time 0 iff (lit1 false, lit2 false, lit3 true),
    [C6] iff (F, T, F), [C7] iff (T, F, F) — and each line exits through
    an arc [{(0,1),(1,0)}] to [C8/C9/C10] and on to the sink. With
    exactly one true literal, one line starts at 0 (needs no resource)
    and the two units from [C4] expedite the other two; otherwise all
    three lines start at 1 and two units cannot save the makespan.

    Lemma 4.2: the instance has makespan 1 under budget [n + 2m] iff
    the formula is 1-in-3 satisfiable; otherwise the optimum is 2, which
    is the gap behind Theorem 4.3's factor-2 inapproximability. *)

open Rtt_core

type t = {
  sat : Sat.t;
  instance : Aoa.instance;
  budget : int;  (** n + 2m *)
  target : int;  (** 1 *)
  var_true_arc : Aoa.arc array;  (** (V1,V2) per variable *)
  var_false_arc : Aoa.arc array;  (** (V1,V3) *)
  var_force_arcs : (Aoa.arc * Aoa.arc) array;  (** (V4,V5), (V5,V6) *)
  clause_diamond : (Aoa.arc * Aoa.arc * Aoa.arc * Aoa.arc) array;
  clause_line_arcs : (Aoa.arc * Aoa.arc * Aoa.arc) array;  (** (C5,C8), (C6,C9), (C7,C10) *)
  clause_line_nodes : (Aoa.node * Aoa.node * Aoa.node) array;
}

val reduce : Sat.t -> t

val allocation_of_assignment : t -> bool array -> Schedule.allocation
(** The canonical allocation induced by a truth assignment: one unit per
    variable along its truth side and forcing chain; per clause, two
    units through the diamond and onward to the two latest-starting
    pattern lines. *)

val makespan_of_assignment : t -> bool array -> int
(** Makespan under {!allocation_of_assignment} — 1 iff the assignment
    1-in-3 satisfies every clause (when the allocation fits the
    budget). *)

val assignment_feasible : t -> bool array -> bool
(** The canonical allocation fits the budget (always true — checked by
    min-flow — and exposed for tests). *)

val decide_by_assignments : t -> bool array option
(** Searches all [2^n] assignments for one whose canonical allocation
    meets the target — equivalent to solving the 1-in-3SAT instance
    (Lemma 4.2), but exercised through the reduction. *)

val assignment_of_allocation : t -> Schedule.allocation -> bool array
(** Reads a truth assignment back out of any allocation: variable [i]
    is TRUE iff its [(V1,V2)] arc received a unit (backward direction of
    Lemma 4.2). *)
