(** The Partition reduction on bounded-treewidth graphs (Section 4.3,
    Theorem 4.6, Figures 15–16).

    Each item [s_i] contributes a 7-vertex gadget
    [{v1..v7}] (jobs on vertices, matching the paper's [V_i] bags):
    - [v1] (supply): duration [{(0, M), (s_i, 0)}] with an edge from the
      source — forces [s_i] resource units through the gadget; the total
      budget is [B = Σ s_i], so the forcing is tight;
    - [v2] (top) and [v3] (bottom): duration [{(0, s_i), (s_i, 0)}], fed
      from [v1]; the top vertices are chained [v2_1 -> v2_2 -> ...] and
      likewise the bottom ones, so whichever side does {e not} receive
      the item's units adds [s_i] to its path;
    - [v4] (funnel): duration [{(0, M), (s_i, 0)}], fed from both sides
      — it demands the same [s_i] units, pinning them inside the gadget
      so they cannot drift right and serve another item;
    - [v5, v6, v7]: zero-duration conduit to the sink [v0].

    Makespan [B/2] is achievable within budget [B] iff the items
    partition into two halves of equal sum. The accompanying path
    decomposition ([{src, v0} ∪ V_(i-1) ∪ V_i] per bag, Figure 16) has
    width 15, certifying bounded treewidth. *)

open Rtt_dag
open Rtt_core

type t = {
  items : int array;
  instance : Problem.t;
  budget : int;  (** Σ items *)
  target : int;  (** Σ items / 2 (floor) *)
  big : int;  (** the M of the construction *)
  supply : Dag.vertex array;
  top : Dag.vertex array;
  bottom : Dag.vertex array;
  funnel : Dag.vertex array;
  conduit : (Dag.vertex * Dag.vertex * Dag.vertex) array;
}

val reduce : int array -> t
(** @raise Invalid_argument on an empty set or non-positive items. *)

val partition_exists : int array -> bool
(** Brute-force Partition oracle (for ≤ ~24 items). *)

val allocation_of_subset : t -> bool array -> Schedule.allocation
(** [subset.(i) = true] sends item [i]'s units through the top vertex
    (so its time lands on the bottom path). *)

val makespan_of_subset : t -> bool array -> int

val decide_by_subsets : t -> bool array option
(** First subset whose canonical allocation meets the target within the
    budget; equivalent to Partition (Theorem 4.6). *)

val tree_decomposition : t -> Treewidth.t
(** The Figure 16 path decomposition; always valid, width ≤ 15. *)
