(** Activity-on-arc instance builder.

    The hardness constructions of Section 4 (and Appendix A) put
    resource-time tuples on {e arcs}. This helper assembles such a
    network and converts it to the activity-on-vertex {!Rtt_core.Problem}
    form by subdividing every arc through a job vertex (the inverse of
    the Section 2 transformation); the AOA nodes become zero-duration
    vertices, so AOA event times coincide with the finish times of the
    corresponding vertices. *)

open Rtt_dag
open Rtt_duration
open Rtt_core

type node = int
type arc = int

type t

val create : unit -> t

val node : ?label:string -> t -> node

val arc : ?label:string -> t -> node -> node -> Duration.t -> arc
(** A job arc with the given duration function. *)

val zero_arc : ?label:string -> t -> node -> node -> arc
(** Constant duration 0 (pure precedence / free resource conduit). *)

val n_nodes : t -> int
val n_arcs : t -> int

type instance = {
  problem : Problem.t;
  node_vertex : Dag.vertex array;  (** AOA node -> problem vertex *)
  arc_vertex : Dag.vertex array;  (** AOA arc -> its job vertex *)
}

val instance : t -> instance
(** Builds the problem (normalizing to a single source/sink if the AOA
    network has several). *)

val arc_allocation : instance -> (arc * int) list -> Schedule.allocation
(** Turns per-arc resource assignments into a per-vertex allocation of
    the subdivided problem. *)

val node_finish_times : instance -> Schedule.allocation -> int array
(** Event time of every AOA node under the allocation. *)
