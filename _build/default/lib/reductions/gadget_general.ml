open Rtt_duration
open Rtt_core

type t = {
  sat : Sat.t;
  instance : Aoa.instance;
  budget : int;
  target : int;
  var_true_arc : Aoa.arc array;
  var_false_arc : Aoa.arc array;
  var_force_arcs : (Aoa.arc * Aoa.arc) array;
  clause_diamond : (Aoa.arc * Aoa.arc * Aoa.arc * Aoa.arc) array;
  clause_line_arcs : (Aoa.arc * Aoa.arc * Aoa.arc) array;
  clause_line_nodes : (Aoa.node * Aoa.node * Aoa.node) array;
}

let speedable = Duration.two_point ~t0:1 ~r:1 ~t1:0
let forcing = Duration.two_point ~t0:2 ~r:1 ~t1:0

let reduce (sat : Sat.t) =
  let b = Aoa.create () in
  let s = Aoa.node ~label:"S" b and t = Aoa.node ~label:"T" b in
  let n = sat.Sat.n_vars in
  let v_nodes = Array.init n (fun i -> Array.init 6 (fun j -> Aoa.node ~label:(Printf.sprintf "V%d_%d" i (j + 1)) b)) in
  let var_true_arc = Array.make n 0 and var_false_arc = Array.make n 0 in
  let var_force_arcs = Array.make n (0, 0) in
  for i = 0 to n - 1 do
    let v j = v_nodes.(i).(j - 1) in
    ignore (Aoa.zero_arc b s (v 1));
    var_true_arc.(i) <- Aoa.arc ~label:(Printf.sprintf "x%d=T" i) b (v 1) (v 2) speedable;
    var_false_arc.(i) <- Aoa.arc ~label:(Printf.sprintf "x%d=F" i) b (v 1) (v 3) speedable;
    ignore (Aoa.zero_arc b (v 2) (v 4));
    ignore (Aoa.zero_arc b (v 3) (v 4));
    let f1 = Aoa.arc b (v 4) (v 5) forcing in
    let f2 = Aoa.arc b (v 5) (v 6) forcing in
    var_force_arcs.(i) <- (f1, f2);
    ignore (Aoa.zero_arc b (v 6) t)
  done;
  (* node that is at time 0 iff the literal is true / false *)
  let satisfy_node (l : Sat.literal) = v_nodes.(l.Sat.var).(if l.Sat.positive then 1 else 2) in
  let falsify_node (l : Sat.literal) = v_nodes.(l.Sat.var).(if l.Sat.positive then 2 else 1) in
  let m = List.length sat.Sat.clauses in
  let clause_diamond = Array.make m (0, 0, 0, 0) in
  let clause_line_arcs = Array.make m (0, 0, 0) in
  let clause_line_nodes = Array.make m (0, 0, 0) in
  List.iteri
    (fun ci (l1, l2, l3) ->
      let c j = Aoa.node ~label:(Printf.sprintf "C%d_%d" ci j) b in
      let c1 = c 1 and c2 = c 2 and c3 = c 3 and c4 = c 4 in
      let c5 = c 5 and c6 = c 6 and c7 = c 7 in
      let c8 = c 8 and c9 = c 9 and c10 = c 10 in
      ignore (Aoa.zero_arc b s c1);
      let d1 = Aoa.arc b c1 c2 speedable in
      let d2 = Aoa.arc b c2 c4 speedable in
      let d3 = Aoa.arc b c1 c3 speedable in
      let d4 = Aoa.arc b c3 c4 speedable in
      clause_diamond.(ci) <- (d1, d2, d3, d4);
      List.iter (fun x -> ignore (Aoa.zero_arc b x c5)) [ c4; falsify_node l1; falsify_node l2; satisfy_node l3 ];
      List.iter (fun x -> ignore (Aoa.zero_arc b x c6)) [ c4; falsify_node l1; satisfy_node l2; falsify_node l3 ];
      List.iter (fun x -> ignore (Aoa.zero_arc b x c7)) [ c4; satisfy_node l1; falsify_node l2; falsify_node l3 ];
      let e5 = Aoa.arc b c5 c8 speedable in
      let e6 = Aoa.arc b c6 c9 speedable in
      let e7 = Aoa.arc b c7 c10 speedable in
      clause_line_arcs.(ci) <- (e5, e6, e7);
      clause_line_nodes.(ci) <- (c5, c6, c7);
      List.iter (fun x -> ignore (Aoa.zero_arc b x t)) [ c8; c9; c10 ])
    sat.Sat.clauses;
  {
    sat;
    instance = Aoa.instance b;
    budget = n + (2 * m);
    target = 1;
    var_true_arc;
    var_false_arc;
    var_force_arcs;
    clause_diamond;
    clause_line_arcs;
    clause_line_nodes;
  }

let allocation_of_assignment t assignment =
  if Array.length assignment <> t.sat.Sat.n_vars then invalid_arg "Gadget_general: assignment size";
  let assignments = ref [] in
  let give a = assignments := (a, 1) :: !assignments in
  Array.iteri
    (fun i truth ->
      give (if truth then t.var_true_arc.(i) else t.var_false_arc.(i));
      let f1, f2 = t.var_force_arcs.(i) in
      give f1;
      give f2)
    assignment;
  List.iteri
    (fun ci (l1, l2, l3) ->
      let d1, d2, d3, d4 = t.clause_diamond.(ci) in
      List.iter give [ d1; d2; d3; d4 ];
      (* expedite the two pattern lines that do NOT match the truth
         assignment (all three when none matches, but only two units are
         available, so pick the two later lines deterministically) *)
      let matches pattern =
        List.for_all2
          (fun l want -> Sat.literal_value l assignment = want)
          [ l1; l2; l3 ] pattern
      in
      let e5, e6, e7 = t.clause_line_arcs.(ci) in
      let lines =
        [ (e5, matches [ false; false; true ]); (e6, matches [ false; true; false ]); (e7, matches [ true; false; false ]) ]
      in
      let unmatched = List.filter (fun (_, m) -> not m) lines in
      let chosen = List.filteri (fun i _ -> i < 2) unmatched in
      List.iter (fun (a, _) -> give a) chosen)
    t.sat.Sat.clauses;
  Aoa.arc_allocation t.instance !assignments

let makespan_of_assignment t assignment =
  Schedule.makespan t.instance.Aoa.problem (allocation_of_assignment t assignment)

let assignment_feasible t assignment =
  Schedule.min_budget t.instance.Aoa.problem (allocation_of_assignment t assignment) <= t.budget

let decide_by_assignments t =
  let n = t.sat.Sat.n_vars in
  let a = Array.make n false in
  let rec go i =
    if i = n then
      if makespan_of_assignment t a <= t.target && assignment_feasible t a then Some (Array.copy a) else None
    else begin
      a.(i) <- false;
      match go (i + 1) with
      | Some r -> Some r
      | None ->
          a.(i) <- true;
          go (i + 1)
    end
  in
  go 0

let assignment_of_allocation t alloc =
  Array.mapi
    (fun i arc ->
      ignore i;
      alloc.(t.instance.Aoa.arc_vertex.(arc)) > 0)
    t.var_true_arc
