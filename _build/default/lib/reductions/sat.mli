(** 1-in-3SAT instances (the source problem of Sections 4.1–4.2).

    An instance asks for a truth assignment under which {e exactly one}
    literal of every three-literal clause is true (Schaefer's variant,
    strongly NP-hard). The brute-force solver here is the ground truth
    against which the hardness reductions are machine-checked. *)

type literal = { var : int; positive : bool }

type clause = literal * literal * literal

type t = { n_vars : int; clauses : clause list }

val make : n_vars:int -> (int * bool) list list -> t
(** Clauses as [(var, positive)] triples.
    @raise Invalid_argument if a clause does not have exactly three
    literals or mentions a variable outside [0 .. n_vars-1]. *)

val lit : int -> bool -> literal

val literal_value : literal -> bool array -> bool

val clause_count_true : clause -> bool array -> int

val satisfies : t -> bool array -> bool
(** Exactly one true literal in every clause. *)

val solve : t -> bool array option
(** Brute force over all [2^n_vars] assignments (first in lexicographic
    order); [None] when unsatisfiable. Intended for [n_vars <= 20]. *)

val count_solutions : t -> int

val random : Random.State.t -> n_vars:int -> n_clauses:int -> t
(** Uniformly random clauses over distinct variables (requires
    [n_vars >= 3]). *)

val random_satisfiable : Random.State.t -> n_vars:int -> n_clauses:int -> t * bool array
(** Plants an assignment and emits only clauses with exactly one true
    literal under it. *)

val example_paper : t
(** The formula [(V1 ∨ ¬V2 ∨ V3) ∧ (¬V1 ∨ V2 ∨ V3)] of Figure 9
    (0-indexed variables). *)

val pp : Format.formatter -> t -> unit
