type literal = { var : int; positive : bool }
type clause = literal * literal * literal
type t = { n_vars : int; clauses : clause list }

let lit var positive = { var; positive }

let make ~n_vars clauses =
  let conv = function
    | [ (a, pa); (b, pb); (c, pc) ] ->
        List.iter
          (fun v -> if v < 0 || v >= n_vars then invalid_arg "Sat.make: variable out of range")
          [ a; b; c ];
        (lit a pa, lit b pb, lit c pc)
    | _ -> invalid_arg "Sat.make: clauses must have exactly three literals"
  in
  { n_vars; clauses = List.map conv clauses }

let literal_value l assignment = if l.positive then assignment.(l.var) else not assignment.(l.var)

let clause_count_true (a, b, c) assignment =
  List.length (List.filter (fun l -> literal_value l assignment) [ a; b; c ])

let satisfies t assignment =
  Array.length assignment = t.n_vars
  && List.for_all (fun c -> clause_count_true c assignment = 1) t.clauses

let assignments_fold t f init =
  let n = t.n_vars in
  let acc = ref init in
  let a = Array.make n false in
  let rec go i =
    if i = n then acc := f !acc a
    else begin
      a.(i) <- false;
      go (i + 1);
      a.(i) <- true;
      go (i + 1)
    end
  in
  go 0;
  !acc

exception Found of bool array

let solve t =
  try
    assignments_fold t (fun () a -> if satisfies t a then raise (Found (Array.copy a))) ();
    None
  with Found a -> Some a

let count_solutions t = assignments_fold t (fun n a -> if satisfies t a then n + 1 else n) 0

let random rng ~n_vars ~n_clauses =
  if n_vars < 3 then invalid_arg "Sat.random: need at least 3 variables";
  let clause () =
    (* three distinct variables, random polarities *)
    let rec pick chosen =
      if List.length chosen = 3 then chosen
      else begin
        let v = Random.State.int rng n_vars in
        if List.mem v chosen then pick chosen else pick (v :: chosen)
      end
    in
    List.map (fun v -> (v, Random.State.bool rng)) (pick [])
  in
  make ~n_vars (List.init n_clauses (fun _ -> clause ()))

let random_satisfiable rng ~n_vars ~n_clauses =
  if n_vars < 3 then invalid_arg "Sat.random_satisfiable: need at least 3 variables";
  let planted = Array.init n_vars (fun _ -> Random.State.bool rng) in
  let clause () =
    let rec pick chosen =
      if List.length chosen = 3 then chosen
      else begin
        let v = Random.State.int rng n_vars in
        if List.mem v chosen then pick chosen else pick (v :: chosen)
      end
    in
    let vars = pick [] in
    (* make exactly one literal true under the planted assignment *)
    let true_idx = Random.State.int rng 3 in
    List.mapi (fun i v -> (v, if i = true_idx then planted.(v) else not planted.(v))) vars
  in
  (make ~n_vars (List.init n_clauses (fun _ -> clause ())), planted)

let example_paper =
  make ~n_vars:3 [ [ (0, true); (1, false); (2, true) ]; [ (0, false); (1, true); (2, true) ] ]

let pp fmt t =
  let pp_lit fmt l = Format.fprintf fmt "%sV%d" (if l.positive then "" else "¬") l.var in
  Format.fprintf fmt "@[<h>";
  List.iteri
    (fun i (a, b, c) ->
      if i > 0 then Format.fprintf fmt " ∧ ";
      Format.fprintf fmt "(%a ∨ %a ∨ %a)" pp_lit a pp_lit b pp_lit c)
    t.clauses;
  Format.fprintf fmt "@]"
