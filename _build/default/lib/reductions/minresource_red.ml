open Rtt_duration
open Rtt_core

type t = {
  sat : Sat.t;
  instance : Aoa.instance;
  target : int;
  sat_budget : int;
  unsat_budget : int;
  walk_true : Aoa.arc array;  (* (e_q, T_q) *)
  walk_false : Aoa.arc array;
  direct : Aoa.arc;  (* (s, t0) *)
  line_exits : (Aoa.arc * Aoa.arc * Aoa.arc) array;  (* (P_r, X_c) per clause *)
}

let speedable = Duration.two_point ~t0:1 ~r:1 ~t1:0

let reduce (sat : Sat.t) =
  let n = sat.Sat.n_vars in
  let m = List.length sat.Sat.clauses in
  if m = 0 then invalid_arg "Minresource_red.reduce: need at least one clause";
  let target = n + m in
  let big = target + 2 in
  let b = Aoa.create () in
  let node fmt = Printf.ksprintf (fun l -> Aoa.node ~label:l b) fmt in
  let s = node "s" in
  let e = Array.init (n + 1) (fun q -> node "e%d" (q + 1)) in
  let t_side = Array.init n (fun q -> node "T%d" (q + 1)) in
  let f_side = Array.init n (fun q -> node "F%d" (q + 1)) in
  ignore (Aoa.zero_arc b s e.(0));
  let walk_true = Array.make n 0 and walk_false = Array.make n 0 in
  for q = 0 to n - 1 do
    walk_true.(q) <- Aoa.arc ~label:(Printf.sprintf "x%d=T" q) b e.(q) t_side.(q) speedable;
    ignore (Aoa.zero_arc b t_side.(q) e.(q + 1));
    walk_false.(q) <- Aoa.arc ~label:(Printf.sprintf "x%d=F" q) b e.(q) f_side.(q) speedable;
    ignore (Aoa.zero_arc b f_side.(q) e.(q + 1))
  done;
  let t0 = node "t0" in
  ignore (Aoa.zero_arc b e.(n) t0);
  let direct = Aoa.arc ~label:"direct" b s t0 (Duration.make [ (0, big); (1, n) ]) in
  (* tap node early (at q-1) iff assigning [want] to the literal's truth
     value holds, i.e. the variable equals [want = positive] *)
  let tap_node (l : Sat.literal) want = if want = l.Sat.positive then t_side.(l.Sat.var) else f_side.(l.Sat.var) in
  let line_exits = Array.make m (0, 0, 0) in
  let prev_exit = ref t0 in
  List.iteri
    (fun c (l1, l2, l3) ->
      let bc = n + c in
      let entry = node "E%d" c in
      ignore (Aoa.zero_arc b !prev_exit entry);
      let exit_node = node "X%d" c in
      let line pattern r =
        let p = node "P%d_%d" c r in
        ignore (Aoa.zero_arc b entry p);
        List.iter2
          (fun l want ->
            let tap = tap_node l want in
            let q = (match l with { Sat.var; _ } -> var) + 1 in
            let dur = bc + 1 - q in
            ignore (Aoa.arc b tap p (Duration.constant dur)))
          [ l1; l2; l3 ] pattern;
        Aoa.arc b p exit_node speedable
      in
      let x1 = line [ true; false; false ] 1 in
      let x2 = line [ false; true; false ] 2 in
      let x3 = line [ false; false; true ] 3 in
      line_exits.(c) <- (x1, x2, x3);
      prev_exit := exit_node)
    sat.Sat.clauses;
  let instance = Aoa.instance b in
  { sat; instance; target; sat_budget = 2; unsat_budget = 3; walk_true; walk_false; direct; line_exits }

let line_lateness t assignment c (l1, l2, l3) =
  (* which of the three exactly-one-true patterns matches *)
  ignore (t, c);
  let v l = Sat.literal_value l assignment in
  [ (v l1 && not (v l2) && not (v l3));
    ((not (v l1)) && v l2 && not (v l3));
    ((not (v l1)) && not (v l2) && v l3) ]

let allocation_of_assignment t assignment =
  if Array.length assignment <> t.sat.Sat.n_vars then invalid_arg "Minresource_red: assignment size";
  let give = ref [] in
  Array.iteri
    (fun q truth -> give := ((if truth then t.walk_true.(q) else t.walk_false.(q)), 1) :: !give)
    assignment;
  give := (t.direct, 1) :: !give;
  List.iteri
    (fun c clause ->
      let matches = line_lateness t assignment c clause in
      let x1, x2, x3 = t.line_exits.(c) in
      let exits = [ x1; x2; x3 ] in
      (* expedite the two lines whose pattern does not match (first two
         when none matches) *)
      let late = List.filteri (fun r _ -> not (List.nth matches r)) exits in
      let chosen = List.filteri (fun i _ -> i < 2) late in
      List.iter (fun a -> give := (a, 1) :: !give) chosen)
    t.sat.Sat.clauses;
  Aoa.arc_allocation t.instance !give

let makespan_of_assignment t assignment =
  Schedule.makespan t.instance.Aoa.problem (allocation_of_assignment t assignment)

let budget_of_assignment t assignment =
  Schedule.min_budget t.instance.Aoa.problem (allocation_of_assignment t assignment)

let three_unit_allocation t assignment =
  let give = ref [] in
  Array.iteri
    (fun q truth -> give := ((if truth then t.walk_true.(q) else t.walk_false.(q)), 1) :: !give)
    assignment;
  give := (t.direct, 2) :: !give;
  Array.iter
    (fun (x1, x2, x3) -> List.iter (fun a -> give := (a, 1) :: !give) [ x1; x2; x3 ])
    t.line_exits;
  Aoa.arc_allocation t.instance !give

let decide_by_assignments t =
  let n = t.sat.Sat.n_vars in
  let a = Array.make n false in
  let rec go i =
    if i = n then
      if makespan_of_assignment t a <= t.target && budget_of_assignment t a <= t.sat_budget then
        Some (Array.copy a)
      else None
    else begin
      a.(i) <- false;
      match go (i + 1) with
      | Some r -> Some r
      | None ->
          a.(i) <- true;
          go (i + 1)
    end
  in
  go 0

let min_units t =
  match decide_by_assignments t with
  | Some _ -> 2
  | None ->
      (* three units always suffice; validate on the all-false assignment *)
      let alloc = three_unit_allocation t (Array.make t.sat.Sat.n_vars false) in
      assert (Schedule.makespan t.instance.Aoa.problem alloc <= t.target);
      assert (Schedule.min_budget t.instance.Aoa.problem alloc <= t.unsat_budget);
      3
