open Rtt_dag
open Rtt_duration
open Rtt_core

type node = int
type arc = int

type arc_spec = { src : node; dst : node; duration : Duration.t; label : string option }

type t = { mutable n_nodes : int; mutable arcs : arc_spec list; mutable node_labels : (int * string) list }

let create () = { n_nodes = 0; arcs = []; node_labels = [] }

let node ?label t =
  let v = t.n_nodes in
  t.n_nodes <- t.n_nodes + 1;
  (match label with Some l -> t.node_labels <- (v, l) :: t.node_labels | None -> ());
  v

let arc ?label t src dst duration =
  if src < 0 || src >= t.n_nodes || dst < 0 || dst >= t.n_nodes then invalid_arg "Aoa.arc: bad node";
  t.arcs <- { src; dst; duration; label } :: t.arcs;
  List.length t.arcs - 1

let zero_arc ?label t src dst = arc ?label t src dst (Duration.constant 0)

let n_nodes t = t.n_nodes
let n_arcs t = List.length t.arcs

type instance = {
  problem : Problem.t;
  node_vertex : Dag.vertex array;
  arc_vertex : Dag.vertex array;
}

let instance t =
  let arcs = Array.of_list (List.rev t.arcs) in
  let g = Dag.create ~capacity:(t.n_nodes + Array.length arcs) () in
  let node_vertex = Array.init t.n_nodes (fun _ -> Dag.add_vertex g) in
  List.iter (fun (n, l) -> Dag.set_label g node_vertex.(n) l) t.node_labels;
  let durations = Hashtbl.create 16 in
  let arc_vertex =
    Array.map
      (fun spec ->
        let j = Dag.add_vertex ?label:spec.label g in
        Dag.add_edge g node_vertex.(spec.src) j;
        Dag.add_edge g j node_vertex.(spec.dst);
        Hashtbl.add durations j spec.duration;
        j)
      arcs
  in
  let problem =
    Problem.make g ~durations:(fun v ->
        match Hashtbl.find_opt durations v with Some d -> d | None -> Duration.constant 0)
  in
  { problem; node_vertex; arc_vertex }

let arc_allocation inst assignments =
  let alloc = Schedule.zero_allocation inst.problem in
  List.iter
    (fun (a, r) ->
      if a < 0 || a >= Array.length inst.arc_vertex then invalid_arg "Aoa.arc_allocation: bad arc";
      alloc.(inst.arc_vertex.(a)) <- alloc.(inst.arc_vertex.(a)) + r)
    assignments;
  alloc

let node_finish_times inst alloc =
  let ft = Schedule.finish_times inst.problem alloc in
  Array.map (fun v -> ft.(v)) inst.node_vertex
