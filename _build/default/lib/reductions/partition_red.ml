open Rtt_dag
open Rtt_duration
open Rtt_core

type t = {
  items : int array;
  instance : Problem.t;
  budget : int;
  target : int;
  big : int;
  supply : Dag.vertex array;
  top : Dag.vertex array;
  bottom : Dag.vertex array;
  funnel : Dag.vertex array;
  conduit : (Dag.vertex * Dag.vertex * Dag.vertex) array;
}

let reduce items =
  if Array.length items = 0 then invalid_arg "Partition_red.reduce: empty set";
  Array.iter (fun s -> if s <= 0 then invalid_arg "Partition_red.reduce: items must be positive") items;
  let total = Array.fold_left ( + ) 0 items in
  let target = total / 2 in
  let big = target + 1 in
  let n = Array.length items in
  let g = Dag.create () in
  let src = Dag.add_vertex ~label:"s" g in
  let v0 = Dag.add_vertex ~label:"v0" g in
  let supply = Array.init n (fun i -> Dag.add_vertex ~label:(Printf.sprintf "v1_%d" i) g) in
  let top = Array.init n (fun i -> Dag.add_vertex ~label:(Printf.sprintf "v2_%d" i) g) in
  let bottom = Array.init n (fun i -> Dag.add_vertex ~label:(Printf.sprintf "v3_%d" i) g) in
  let funnel = Array.init n (fun i -> Dag.add_vertex ~label:(Printf.sprintf "v4_%d" i) g) in
  let conduit =
    Array.init n (fun i ->
        ( Dag.add_vertex ~label:(Printf.sprintf "v5_%d" i) g,
          Dag.add_vertex ~label:(Printf.sprintf "v6_%d" i) g,
          Dag.add_vertex ~label:(Printf.sprintf "v7_%d" i) g ))
  in
  for i = 0 to n - 1 do
    Dag.add_edge g src supply.(i);
    Dag.add_edge g supply.(i) top.(i);
    Dag.add_edge g supply.(i) bottom.(i);
    if i > 0 then begin
      Dag.add_edge g top.(i - 1) top.(i);
      Dag.add_edge g bottom.(i - 1) bottom.(i)
    end;
    Dag.add_edge g top.(i) funnel.(i);
    Dag.add_edge g bottom.(i) funnel.(i);
    let c5, c6, c7 = conduit.(i) in
    Dag.add_edge g funnel.(i) c5;
    Dag.add_edge g c5 c6;
    Dag.add_edge g c6 c7;
    Dag.add_edge g c7 v0
  done;
  (* the final top/bottom vertices also reach the sink so their path
     totals count toward the makespan *)
  Dag.add_edge g top.(n - 1) v0;
  Dag.add_edge g bottom.(n - 1) v0;
  let durations = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      Hashtbl.add durations supply.(i) (Duration.two_point ~t0:big ~r:s ~t1:0);
      Hashtbl.add durations top.(i) (Duration.two_point ~t0:s ~r:s ~t1:0);
      Hashtbl.add durations bottom.(i) (Duration.two_point ~t0:s ~r:s ~t1:0);
      Hashtbl.add durations funnel.(i) (Duration.two_point ~t0:big ~r:s ~t1:0))
    items;
  let instance =
    Problem.make g ~durations:(fun v ->
        match Hashtbl.find_opt durations v with Some d -> d | None -> Duration.constant 0)
  in
  { items; instance; budget = total; target; big; supply; top; bottom; funnel; conduit }

let partition_exists items =
  let total = Array.fold_left ( + ) 0 items in
  if total mod 2 <> 0 then false
  else begin
    let half = total / 2 in
    (* subset-sum bitset DP *)
    let reachable = Array.make (half + 1) false in
    reachable.(0) <- true;
    Array.iter
      (fun s ->
        for v = half downto s do
          if reachable.(v - s) then reachable.(v) <- true
        done)
      items;
    reachable.(half)
  end

let allocation_of_subset t subset =
  if Array.length subset <> Array.length t.items then invalid_arg "Partition_red: subset size";
  let alloc = Schedule.zero_allocation t.instance in
  Array.iteri
    (fun i s ->
      alloc.(t.supply.(i)) <- s;
      alloc.(t.funnel.(i)) <- s;
      if subset.(i) then alloc.(t.top.(i)) <- s else alloc.(t.bottom.(i)) <- s)
    t.items;
  alloc

let makespan_of_subset t subset = Schedule.makespan t.instance (allocation_of_subset t subset)

let decide_by_subsets t =
  let n = Array.length t.items in
  let subset = Array.make n false in
  let rec go i =
    if i = n then
      if
        makespan_of_subset t subset <= t.target
        && Schedule.min_budget t.instance (allocation_of_subset t subset) <= t.budget
      then Some (Array.copy subset)
      else None
    else begin
      subset.(i) <- false;
      match go (i + 1) with
      | Some r -> Some r
      | None ->
          subset.(i) <- true;
          go (i + 1)
    end
  in
  go 0

let tree_decomposition t =
  let n = Array.length t.items in
  let gadget i =
    let c5, c6, c7 = t.conduit.(i) in
    [ t.supply.(i); t.top.(i); t.bottom.(i); t.funnel.(i); c5; c6; c7 ]
  in
  (* the problem's source (added by normalization) is our src vertex 0;
     the sink v0 is vertex 1 *)
  let src = 0 and v0 = 1 in
  let bags =
    Array.init n (fun i ->
        if i = 0 then (src :: v0 :: gadget 0)
        else src :: v0 :: (gadget (i - 1) @ gadget i))
  in
  Treewidth.path_decomposition bags
