(** The minimum-resource inapproximability construction (Section 4.1,
    Theorem 4.4, Figures 10–11).

    The paper only sketches this reduction ("the buffers are selected
    carefully"); this module realizes the sketch's invariants with a
    concrete instantiation (documented in DESIGN.md):

    - the [n] variable gadgets are chained: one resource unit walks
      [e_1 -> ... -> e_(n+1)], choosing the true or false side of each
      gadget ([{(0,1),(1,0)}] side arcs); the entry of gadget [q] is
      reached at exactly time [q - 1] and its exit at time [q];
    - a direct arc [(s, t0)] with tuples [{(0, M), (1, n)}] delivers a
      second unit to the clause chain at time [n], in step with the
      first;
    - clause gadgets are chained behind [t0]; clause [c]'s entry is
      reached at time [n + c]. Its three pattern lines (as in the
      Theorem 4.1 gadget) are timed by taps of constant duration
      [(n + c + 1) - position], so a line sits at [n + c] iff its
      exactly-one-true pattern matches the walk's assignment, at
      [n + c + 1] otherwise; the two units expedite the two non-matching
      lines' exits and both emerge at [n + c + 1].

    Under makespan target [A = n + m], two units suffice iff the formula
    is 1-in-3 satisfiable; otherwise some clause has three late lines
    and a third unit becomes necessary (and sufficient). Distinguishing
    2 from 3 is therefore NP-hard, giving the 3/2 approximation
    barrier. *)

open Rtt_core

type t = {
  sat : Sat.t;
  instance : Aoa.instance;
  target : int;  (** n + m *)
  sat_budget : int;  (** 2 *)
  unsat_budget : int;  (** 3 *)
  walk_true : Aoa.arc array;  (** the true-side arc of each variable gadget *)
  walk_false : Aoa.arc array;
  direct : Aoa.arc;  (** the (s, t0) arc carrying the second unit *)
  line_exits : (Aoa.arc * Aoa.arc * Aoa.arc) array;  (** pattern-line exit arcs per clause *)
}

val reduce : Sat.t -> t

val allocation_of_assignment : t -> bool array -> Schedule.allocation
(** The two-unit allocation induced by a truth assignment (walk + direct
    unit, expediting per-clause the two latest lines). *)

val makespan_of_assignment : t -> bool array -> int

val budget_of_assignment : t -> bool array -> int
(** Min-flow value of the canonical allocation (2 when it exists). *)

val three_unit_allocation : t -> bool array -> Schedule.allocation
(** Expedites all three lines of every clause — meets the target for any
    assignment, using three units. *)

val decide_by_assignments : t -> bool array option
(** An assignment whose two-unit allocation meets the target, if any. *)

val min_units : t -> int
(** 2 if the formula is 1-in-3 satisfiable (via
    {!decide_by_assignments}), else 3 (validated against
    {!three_unit_allocation}). *)
