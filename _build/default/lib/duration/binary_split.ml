let ceil_div a b = (a + b - 1) / b

(* floor (log2 n) for n >= 1 *)
let ilog2 n =
  if n < 1 then invalid_arg "Binary_split.ilog2";
  let r = ref 0 and v = ref n in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* k = floor (log2 d - log2 log2 e) = floor (log2 (d * ln 2)).
   Computed exactly over integers: log2 (d * ln 2) >= i  <=>  d * ln 2 >= 2^i
   <=> d >= 2^i / ln 2. We compare d * 2^20 against 2^i * (2^20 / ln 2)
   using integer arithmetic with a precomputed scaled constant. *)
let max_height ~work =
  if work < 1 then 0
  else begin
    (* 2^20 / ln 2 = 1512775.39... ; ties cannot occur because
       2^i / ln 2 is irrational *)
    let inv_ln2_scaled = 1512776 in
    (* find the largest i with work * 2^20 >= 2^i * inv_ln2_scaled *)
    let lhs = work * 1048576 in
    let i = ref 0 in
    while !i < 40 && lhs >= (1 lsl (!i + 1)) * inv_ln2_scaled do
      incr i
    done;
    if lhs >= inv_ln2_scaled then !i else 0
  end

let time ~work r =
  if work < 0 || r < 0 then invalid_arg "Binary_split.time";
  if r <= 1 || work = 0 then work
  else begin
    let k = max_height ~work in
    let i = min (ilog2 r) k in
    if i < 1 then work else min work (ceil_div work (1 lsl i) + i + 1)
  end

let levels ~work =
  let k = max_height ~work in
  0 :: List.init (max 0 k) (fun i -> 1 lsl (i + 1))

let to_duration ~work =
  (* running min guards against ceil-induced non-monotonic wiggles near
     the cutoff height *)
  let _, tuples =
    List.fold_left
      (fun (best, acc) r ->
        let t = min (time ~work r) best in
        (t, (r, t) :: acc))
      (max_int, [])
      (levels ~work)
  in
  Duration.make (List.rev tuples)
