lib/duration/kway.ml: Duration List
