lib/duration/duration.mli: Format
