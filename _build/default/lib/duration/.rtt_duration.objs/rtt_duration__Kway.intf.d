lib/duration/kway.mli: Duration
