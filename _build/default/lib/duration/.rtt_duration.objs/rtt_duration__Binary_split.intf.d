lib/duration/binary_split.mli: Duration
