lib/duration/duration.ml: Format List Printf String
