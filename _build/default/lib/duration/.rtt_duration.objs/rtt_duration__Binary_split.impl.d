lib/duration/binary_split.ml: Duration List
