let isqrt n =
  if n < 0 then invalid_arg "Kway.isqrt";
  let r = ref 0 in
  while (!r + 1) * (!r + 1) <= n do
    incr r
  done;
  !r

let ceil_div a b = (a + b - 1) / b

let max_split ~work = isqrt work

let time ~work k =
  if work < 0 || k < 0 then invalid_arg "Kway.time";
  if k <= 1 then work
  else begin
    let kmax = isqrt work in
    if kmax < 2 then work
    else begin
      let k = min k kmax in
      ceil_div work k + k
    end
  end

let to_duration ~work =
  let kmax = isqrt work in
  let _, steps =
    List.fold_left
      (fun (best, acc) k ->
        let t = min (time ~work k) best in
        (t, (k, t) :: acc))
      (work, [])
      (List.init (max 0 (kmax - 1)) (fun i -> i + 2))
  in
  Duration.make ((0, work) :: List.rev steps)
