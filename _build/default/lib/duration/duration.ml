type t = (int * int) list
(* invariant: non-empty; first tuple has resource 0; resources strictly
   increasing; times strictly decreasing *)

let make tuples =
  if tuples = [] then invalid_arg "Duration.make: empty";
  List.iter
    (fun (r, t) -> if r < 0 || t < 0 then invalid_arg "Duration.make: negative resource or time")
    tuples;
  let sorted = List.sort_uniq compare tuples in
  (match sorted with
  | (0, _) :: _ -> ()
  | _ -> invalid_arg "Duration.make: no tuple at resource 0");
  (* conflicting times at the same resource level *)
  let rec check_dups = function
    | (r1, t1) :: ((r2, t2) :: _ as rest) ->
        if r1 = r2 && t1 <> t2 then invalid_arg "Duration.make: conflicting times at one resource level";
        check_dups rest
    | _ -> ()
  in
  check_dups sorted;
  (* non-increasing overall *)
  let rec check_mono = function
    | (_, t1) :: (((_, t2) :: _) as rest) ->
        if t2 > t1 then invalid_arg "Duration.make: duration function must be non-increasing";
        check_mono rest
    | _ -> ()
  in
  check_mono sorted;
  (* canonicalize: keep only strictly improving steps *)
  let rec dedup last = function
    | [] -> []
    | (r, t) :: rest -> if t < last then (r, t) :: dedup t rest else dedup last rest
  in
  match sorted with
  | (0, t0) :: rest -> (0, t0) :: dedup t0 rest
  | _ -> assert false

let constant t =
  if t < 0 then invalid_arg "Duration.constant: negative time";
  [ (0, t) ]

let two_point ~t0 ~r ~t1 =
  if t1 >= t0 || r <= 0 then invalid_arg "Duration.two_point";
  make [ (0, t0); (r, t1) ]

let eval d r =
  if r < 0 then invalid_arg "Duration.eval: negative resource";
  let rec go best = function
    | (ri, ti) :: rest when ri <= r -> go ti rest
    | _ -> best
  in
  match d with
  | (0, t0) :: rest -> go t0 rest
  | _ -> assert false

let tuples d = d
let n_tuples d = List.length d
let base_time d = match d with (0, t0) :: _ -> t0 | _ -> assert false

let best_time d =
  match List.rev d with
  | (_, t) :: _ -> t
  | [] -> assert false

let max_useful_resource d =
  match List.rev d with
  | (r, _) :: _ -> r
  | [] -> assert false

let is_constant d = match d with [ _ ] -> true | _ -> false
let equal (a : t) (b : t) = a = b

let pp fmt d =
  Format.fprintf fmt "{%s}"
    (String.concat "; " (List.map (fun (r, t) -> Printf.sprintf "<%d,%d>" r t) d))
