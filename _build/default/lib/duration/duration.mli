(** Non-increasing duration step functions (Equation 1 of the paper).

    A duration function maps a resource amount [r >= 0] to the time
    needed to complete a job when [r] units of resource are available.
    It is represented by its resource-time tuples
    [(r_1, t_1), ..., (r_l, t_l)] with [r_1 = 0], strictly increasing
    resources and non-increasing times; [t (r) = t_i] for the largest
    [r_i <= r]. *)

type t

val make : (int * int) list -> t
(** [make tuples] validates and normalizes the tuple list: tuples are
    sorted, duplicates and steps that do not strictly decrease the time
    are dropped (they would waste resources), and a leading [(0, t)]
    tuple is required.
    @raise Invalid_argument if the list is empty, has no [r = 0] tuple,
    repeats a resource level with conflicting times, has a negative
    resource or time, or is increasing anywhere. *)

val constant : int -> t
(** A job that always takes the given time.
    @raise Invalid_argument on negative time. *)

val two_point : t0:int -> r:int -> t1:int -> t
(** The two-tuple form [{(0, t0), (r, t1)}] used throughout Section 3.
    @raise Invalid_argument unless [t1 < t0] and [r > 0]. *)

val eval : t -> int -> int
(** [eval d r] is the completion time with [r] units ([r >= 0]).
    @raise Invalid_argument on negative [r]. *)

val tuples : t -> (int * int) list
(** The canonical tuples, ascending resource, strictly decreasing time. *)

val n_tuples : t -> int
val base_time : t -> int
(** [eval d 0]. *)

val best_time : t -> int
(** Time at unbounded resources (the last tuple's time). *)

val max_useful_resource : t -> int
(** Smallest [r] achieving {!best_time}. *)

val is_constant : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
