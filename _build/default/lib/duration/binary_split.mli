(** The recursive binary splitting duration function (Equation 3 and
    Section 3.3 of the paper).

    A recursive binary reducer of height [i] (using [2^i] units of extra
    space) lets a node with [d] incoming writes finish in
    [ceil (d / 2^i) + i + 1] time. The height stops paying off at
    [k = floor (log2 d - log2 log2 e)]. Resource levels are 0, 1 and the
    powers of two up to [2^k]; one unit alone buys nothing
    ([t(1) = t(0) = d], the paper's tuple list in Section 3.3). *)

val time : work:int -> int -> int
(** [time ~work:d r] evaluates the step function at [r] units:
    [d] for [r <= 1]; [ceil (d / 2^i) + i + 1] with [i = floor (log2 r)]
    capped at [max_height ~work:d] for [r >= 2]. The value is clamped to
    never exceed [d] (a reducer is not used when it would slow the node
    down, which Equation 3 leaves implicit for tiny [d]).
    @raise Invalid_argument on negative arguments. *)

val max_height : work:int -> int
(** [floor (log2 work - log2 log2 e)] (at least 0), the height beyond
    which growing the reducer no longer reduces the duration. *)

val levels : work:int -> int list
(** The meaningful resource levels [0; 2; 4; ...; 2^k] (level 1 is
    omitted as it never improves on 0). *)

val to_duration : work:int -> Duration.t
(** The full canonical step function. *)
