(** The k-way splitting duration function (Equation 2 of the paper).

    A k-way split reducer puts [k] extra cells in front of a node with
    [d] incoming writes: the writes are spread across the cells
    ([ceil (d / k)] serialized writes each, in parallel) and the [k]
    cells then write their partial results into the node ([k] more
    serialized writes). Useful only while [k <= sqrt d]. *)

val time : work:int -> int -> int
(** [time ~work:d k] is Equation 2:
    [d] for [k <= 1]; [ceil (d/k) + k] for [2 <= k <= floor (sqrt d)];
    constant at [time ~work (floor (sqrt d))] beyond.
    @raise Invalid_argument on negative arguments. *)

val max_split : work:int -> int
(** [floor (sqrt work)], the largest useful [k]. *)

val to_duration : work:int -> Duration.t
(** The full step function, canonicalized (steps that do not strictly
    improve the duration are dropped). *)
