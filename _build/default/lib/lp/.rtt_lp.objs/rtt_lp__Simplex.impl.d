lib/lp/simplex.ml: Array List Rat Rtt_num
