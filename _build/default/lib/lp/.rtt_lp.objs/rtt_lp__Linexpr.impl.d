lib/lp/linexpr.ml: Format Int List Map Rat Rtt_num
