lib/lp/lp.ml: Array Format Linexpr List Rat Rtt_num Simplex
