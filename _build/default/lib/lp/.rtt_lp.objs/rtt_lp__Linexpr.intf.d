lib/lp/linexpr.mli: Format Rat Rtt_num
