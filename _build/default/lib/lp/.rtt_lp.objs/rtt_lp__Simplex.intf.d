lib/lp/simplex.mli: Rat Rtt_num
