lib/lp/lp.mli: Format Linexpr Rat Rtt_num
