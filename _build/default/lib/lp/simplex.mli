(** Exact two-phase primal simplex over rationals.

    Solves [minimize c·x subject to A x {<=,=,>=} b, x >= 0] with Bland's
    anti-cycling rule, so termination is guaranteed and results are exact
    — no tolerances. This is the engine behind the LP relaxation of
    Section 3.1 ({!Rtt_core.Lp_relax}). Dense tableau; intended for the
    small/medium instances the paper's constructions produce. *)

open Rtt_num

type relation = Le | Ge | Eq

type constr = { coeffs : Rat.t array; relation : relation; rhs : Rat.t }
(** One row: [coeffs · x relation rhs]. [coeffs] must have length equal
    to the number of variables. *)

type outcome =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

val minimize : n_vars:int -> constr list -> objective:Rat.t array -> outcome
(** All variables implicitly satisfy [x >= 0].
    @raise Invalid_argument on dimension mismatches. *)

val maximize : n_vars:int -> constr list -> objective:Rat.t array -> outcome
(** [maximize] negates the objective and delegates to {!minimize}; the
    reported [objective] is the maximum. *)
