lib/dag/gen.ml: Array Dag Random Sp
