lib/dag/dag.ml: Array Format List Queue String
