lib/dag/treewidth.mli: Dag
