lib/dag/sp.mli: Dag Format
