lib/dag/longest_path.mli: Dag
