lib/dag/gen.mli: Dag Random Sp
