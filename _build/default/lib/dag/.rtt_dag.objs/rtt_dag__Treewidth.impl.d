lib/dag/treewidth.ml: Array Dag Fun List
