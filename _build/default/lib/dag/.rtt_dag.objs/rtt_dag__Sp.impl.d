lib/dag/sp.ml: Array Dag Format Hashtbl List Option
