lib/dag/longest_path.ml: Array Dag List
