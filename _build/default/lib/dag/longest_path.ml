let finish_times g ~weight =
  let order = Dag.topo_sort g in
  let finish = Array.make (Dag.n_vertices g) 0 in
  List.iter
    (fun v ->
      let ready = List.fold_left (fun acc u -> max acc finish.(u)) 0 (Dag.pred g v) in
      finish.(v) <- ready + weight v)
    order;
  finish

let makespan g ~weight = Array.fold_left max 0 (finish_times g ~weight)

let critical_path g ~weight =
  let finish = finish_times g ~weight in
  let n = Dag.n_vertices g in
  if n = 0 then (0, [])
  else begin
    let best = ref 0 in
    for v = 1 to n - 1 do
      if finish.(v) > finish.(!best) then best := v
    done;
    (* walk backwards through a predecessor explaining each finish time;
       terminates at a source (no predecessors) *)
    let rec walk v acc =
      let acc = v :: acc in
      let target = finish.(v) - weight v in
      match List.find_opt (fun u -> finish.(u) = target) (Dag.pred g v) with
      | Some u -> walk u acc
      | None -> acc
    in
    (finish.(!best), walk !best [])
  end

let edge_finish_times g ~weight =
  let order = Dag.topo_sort g in
  let time = Array.make (Dag.n_vertices g) 0 in
  List.iter
    (fun v ->
      let t = List.fold_left (fun acc u -> max acc (time.(u) + weight u v)) 0 (Dag.pred g v) in
      time.(v) <- t)
    order;
  time

let edge_makespan g ~weight = Array.fold_left max 0 (edge_finish_times g ~weight)
