type 'a t = Leaf of 'a | Series of 'a t * 'a t | Parallel of 'a t * 'a t

let leaf x = Leaf x
let series a b = Series (a, b)
let parallel a b = Parallel (a, b)

let rec size = function Leaf _ -> 1 | Series (a, b) | Parallel (a, b) -> size a + size b

let leaves t =
  let rec go t acc = match t with Leaf x -> x :: acc | Series (a, b) | Parallel (a, b) -> go a (go b acc) in
  go t []

let rec map f = function
  | Leaf x -> Leaf (f x)
  | Series (a, b) -> Series (map f a, map f b)
  | Parallel (a, b) -> Parallel (map f a, map f b)

let combine_of_list op = function
  | [] -> invalid_arg "Sp: empty list"
  | x :: rest -> List.fold_left op x rest

let series_of_list l = combine_of_list series l
let parallel_of_list l = combine_of_list parallel l

let rec pp pp_leaf fmt = function
  | Leaf x -> pp_leaf fmt x
  | Series (a, b) -> Format.fprintf fmt "(%a ; %a)" (pp pp_leaf) a (pp pp_leaf) b
  | Parallel (a, b) -> Format.fprintf fmt "(%a | %a)" (pp pp_leaf) a (pp pp_leaf) b

let to_dag t =
  let g = Dag.create () in
  let jobs = ref [] in
  (* returns (sources, sinks) of the constructed sub-DAG *)
  let rec build = function
    | Leaf x ->
        let v = Dag.add_vertex g in
        jobs := (v, x) :: !jobs;
        ([ v ], [ v ])
    | Series (a, b) ->
        let src_a, snk_a = build a in
        let src_b, snk_b = build b in
        List.iter (fun u -> List.iter (fun v -> Dag.add_edge g u v) src_b) snk_a;
        (src_a, snk_b)
    | Parallel (a, b) ->
        let src_a, snk_a = build a in
        let src_b, snk_b = build b in
        (src_a @ src_b, snk_a @ snk_b)
  in
  ignore (build t);
  let arr = Array.make (Dag.n_vertices g) (snd (List.hd !jobs)) in
  List.iter (fun (v, x) -> arr.(v) <- x) !jobs;
  (g, arr)

(* Series-parallel reduction that carries a decomposition tree on every
   surviving edge. Edges are kept in a list of (src, dst, tree). *)
let decompose_ttsp g ~s ~t =
  if not (Dag.is_dag g) then None
  else begin
    let edges = ref (List.map (fun (u, v) -> (u, v, Leaf (u, v))) (Dag.edges g)) in
    let changed = ref true in
    while !changed do
      changed := false;
      (* parallel reduction: merge edges with equal endpoints *)
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (u, v, tr) ->
          match Hashtbl.find_opt tbl (u, v) with
          | Some tr' ->
              Hashtbl.replace tbl (u, v) (Parallel (tr', tr));
              changed := true
          | None -> Hashtbl.add tbl (u, v) tr)
        !edges;
      edges := Hashtbl.fold (fun (u, v) tr acc -> (u, v, tr) :: acc) tbl [];
      (* series reduction: contract an internal vertex with in=out=1 *)
      let indeg = Hashtbl.create 16 and outdeg = Hashtbl.create 16 in
      let bump h k = Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)) in
      List.iter
        (fun (u, v, _) ->
          bump outdeg u;
          bump indeg v)
        !edges;
      let contractible v =
        v <> s && v <> t
        && Hashtbl.find_opt indeg v = Some 1
        && Hashtbl.find_opt outdeg v = Some 1
      in
      let candidate =
        List.find_opt (fun (_, v, _) -> contractible v) !edges
      in
      match candidate with
      | Some (_, mid, _) ->
          let into, rest = List.partition (fun (_, v, _) -> v = mid) !edges in
          let out, rest = List.partition (fun (u, _, _) -> u = mid) rest in
          (match (into, out) with
          | [ (a, _, tr1) ], [ (_, b, tr2) ] ->
              edges := (a, b, Series (tr1, tr2)) :: rest;
              changed := true
          | _ -> ())
      | None -> ()
    done;
    match !edges with
    | [ (u, v, tr) ] when u = s && v = t -> Some tr
    | _ -> None
  end

let recognize_ttsp g ~s ~t =
  if not (Dag.is_dag g) then false
  else begin
    (* Work on a mutable multiset of edges with degree counts. *)
    let n = Dag.n_vertices g in
    let succ = Array.make n [] in
    List.iter (fun (u, v) -> succ.(u) <- v :: succ.(u)) (Dag.edges g);
    let indeg = Array.make n 0 and outdeg = Array.make n 0 in
    let recount () =
      Array.fill indeg 0 n 0;
      Array.fill outdeg 0 n 0;
      Array.iteri (fun u vs -> List.iter (fun v -> indeg.(v) <- indeg.(v) + 1; outdeg.(u) <- outdeg.(u) + 1) vs) succ
    in
    recount ();
    let changed = ref true in
    while !changed do
      changed := false;
      (* parallel reduction: collapse duplicate edges *)
      for u = 0 to n - 1 do
        let dedup = List.sort_uniq compare succ.(u) in
        if List.length dedup <> List.length succ.(u) then begin
          succ.(u) <- dedup;
          changed := true
        end
      done;
      recount ();
      (* series reduction: contract internal v with indeg = outdeg = 1 *)
      for v = 0 to n - 1 do
        if v <> s && v <> t && indeg.(v) = 1 && outdeg.(v) = 1 then begin
          let w = List.hd succ.(v) in
          (* find the unique predecessor *)
          let u = ref (-1) in
          for cand = 0 to n - 1 do
            if List.mem v succ.(cand) then u := cand
          done;
          if !u >= 0 && !u <> w then begin
            succ.(!u) <- w :: List.filter (fun x -> x <> v) succ.(!u);
            succ.(v) <- [];
            changed := true;
            recount ()
          end
        end
      done
    done;
    let remaining = Array.fold_left (fun acc vs -> acc + List.length vs) 0 succ in
    remaining = 1 && succ.(s) = [ t ]
  end
