type vertex = int

type t = {
  mutable n : int;
  mutable succ : vertex list array;
  mutable pred : vertex list array;
  mutable labels : string option array;
  mutable n_edges : int;
}

exception Cycle

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { n = 0; succ = Array.make capacity []; pred = Array.make capacity []; labels = Array.make capacity None; n_edges = 0 }

let grow g =
  let cap = Array.length g.succ in
  if g.n >= cap then begin
    let cap' = (2 * cap) + 1 in
    let succ' = Array.make cap' [] and pred' = Array.make cap' [] and labels' = Array.make cap' None in
    Array.blit g.succ 0 succ' 0 g.n;
    Array.blit g.pred 0 pred' 0 g.n;
    Array.blit g.labels 0 labels' 0 g.n;
    g.succ <- succ';
    g.pred <- pred';
    g.labels <- labels'
  end

let add_vertex ?label g =
  grow g;
  let v = g.n in
  g.n <- g.n + 1;
  g.labels.(v) <- label;
  v

let check_vertex g v name = if v < 0 || v >= g.n then invalid_arg ("Dag." ^ name ^ ": bad vertex")

let add_edge g u v =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Dag.add_edge: self-loop";
  g.succ.(u) <- v :: g.succ.(u);
  g.pred.(v) <- u :: g.pred.(v);
  g.n_edges <- g.n_edges + 1

let copy g =
  {
    n = g.n;
    succ = Array.map (fun l -> l) (Array.sub g.succ 0 (Array.length g.succ));
    pred = Array.map (fun l -> l) (Array.sub g.pred 0 (Array.length g.pred));
    labels = Array.copy g.labels;
    n_edges = g.n_edges;
  }

let of_edges ~n es =
  let g = create ~capacity:n () in
  for _ = 1 to n do
    ignore (add_vertex g)
  done;
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let n_vertices g = g.n
let n_edges g = g.n_edges
let vertices g = List.init g.n (fun i -> i)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) g.succ.(u)
  done;
  !acc

let succ g v =
  check_vertex g v "succ";
  g.succ.(v)

let pred g v =
  check_vertex g v "pred";
  g.pred.(v)

let out_degree g v = List.length (succ g v)
let in_degree g v = List.length (pred g v)

let label g v =
  check_vertex g v "label";
  g.labels.(v)

let set_label g v s =
  check_vertex g v "set_label";
  g.labels.(v) <- Some s

let mem_edge g u v =
  check_vertex g u "mem_edge";
  List.mem v g.succ.(u)

let sources g = List.filter (fun v -> g.pred.(v) = []) (vertices g)
let sinks g = List.filter (fun v -> g.succ.(v) = []) (vertices g)

let topo_sort g =
  (* Kahn's algorithm; raises Cycle when some vertex is never released. *)
  let indeg = Array.init g.n (fun v -> List.length g.pred.(v)) in
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] and count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      g.succ.(v)
  done;
  if !count <> g.n then raise Cycle;
  List.rev !order

let is_dag g = match topo_sort g with _ -> true | exception Cycle -> false

let transpose g =
  {
    n = g.n;
    succ = Array.init (Array.length g.pred) (fun i -> g.pred.(i));
    pred = Array.init (Array.length g.succ) (fun i -> g.succ.(i));
    labels = Array.copy g.labels;
    n_edges = g.n_edges;
  }

let reachable g v =
  check_vertex g v "reachable";
  let seen = Array.make g.n false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter go g.succ.(u)
    end
  in
  go v;
  seen

let ensure_single_source_sink g =
  if g.n = 0 then invalid_arg "Dag.ensure_single_source_sink: empty graph";
  let s =
    match sources g with
    | [ s ] -> s
    | srcs ->
        let s = add_vertex ~label:"S" g in
        List.iter (fun v -> if v <> s then add_edge g s v) srcs;
        s
  in
  let t =
    match List.filter (fun v -> v <> s || g.n = 1) (sinks g) with
    | [ t ] -> t
    | snks ->
        let t = add_vertex ~label:"T" g in
        List.iter (fun v -> if v <> t && v <> s then add_edge g v t) snks;
        t
  in
  (s, t)

let pp fmt g =
  Format.fprintf fmt "@[<v>dag with %d vertices, %d edges@," g.n g.n_edges;
  List.iter
    (fun u ->
      match g.succ.(u) with
      | [] -> ()
      | vs ->
          Format.fprintf fmt "%d -> %s@," u (String.concat ", " (List.map string_of_int vs)))
    (vertices g);
  Format.fprintf fmt "@]"
