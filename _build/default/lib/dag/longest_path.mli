(** Longest (critical) paths in DAGs with integer weights.

    The paper's makespan model (Section 1): each node [v] carries a work
    value [w v]; a node finishes [w v] time units after all its
    predecessors have finished; the makespan is the largest finish time.
    Equivalently, the makespan is the maximum over source→sink paths of
    the sum of node works — e.g. the DAG of Figure 4 has makespan 11. *)

val finish_times : Dag.t -> weight:(Dag.vertex -> int) -> int array
(** [finish_times g ~weight] gives each vertex's earliest finish time:
    [finish v = weight v + max (0, max over predecessors of finish)].
    @raise Dag.Cycle if [g] is not acyclic. *)

val makespan : Dag.t -> weight:(Dag.vertex -> int) -> int
(** Largest finish time over all vertices; [0] for the empty graph. *)

val critical_path : Dag.t -> weight:(Dag.vertex -> int) -> int * Dag.vertex list
(** The makespan together with one path achieving it (in source→sink
    order). The path is empty only for the empty graph. *)

val edge_finish_times : Dag.t -> weight:(Dag.vertex -> Dag.vertex -> int) -> int array
(** Event-time variant used for activity-on-arc networks: each vertex is
    an event occurring when all inbound activities complete;
    [time v = max over edges (u,v) of time u + weight u v], [0] at
    sources. With parallel edges the weight function is consulted once
    per parallel copy (same value each time). *)

val edge_makespan : Dag.t -> weight:(Dag.vertex -> Dag.vertex -> int) -> int
