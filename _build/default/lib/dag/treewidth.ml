type t = { bags : Dag.vertex list array; tree_edges : (int * int) list }

let make ~bags ~tree_edges = { bags; tree_edges }

let width d = Array.fold_left (fun acc bag -> max acc (List.length (List.sort_uniq compare bag) - 1)) (-1) d.bags

let adjacency d =
  let n = Array.length d.bags in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    d.tree_edges;
  adj

let is_tree d =
  let n = Array.length d.bags in
  if n = 0 then true
  else if List.length d.tree_edges <> n - 1 then false
  else begin
    let adj = adjacency d in
    let seen = Array.make n false in
    let rec dfs v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter dfs adj.(v)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let is_valid g d =
  let nv = Dag.n_vertices g in
  let n = Array.length d.bags in
  is_tree d
  && begin
       (* (1) coverage of vertices *)
       let covered = Array.make nv false in
       Array.iter (List.iter (fun v -> if v >= 0 && v < nv then covered.(v) <- true)) d.bags;
       Array.for_all Fun.id covered
     end
  && begin
       (* (2) every (undirected) edge inside some bag *)
       let bag_sets = Array.map (fun b -> List.sort_uniq compare b) d.bags in
       List.for_all
         (fun (u, v) -> Array.exists (fun bag -> List.mem u bag && List.mem v bag) bag_sets)
         (Dag.edges g)
     end
  && begin
       (* (3) occurrences of each vertex form a subtree *)
       let adj = adjacency d in
       let ok = ref true in
       for v = 0 to nv - 1 do
         let holds = Array.to_list (Array.mapi (fun i bag -> (i, List.mem v bag)) d.bags) in
         let members = List.filter_map (fun (i, m) -> if m then Some i else None) holds in
         match members with
         | [] -> ok := false
         | start :: _ ->
             let member = Array.make n false in
             List.iter (fun i -> member.(i) <- true) members;
             let seen = Array.make n false in
             let rec dfs i =
               if member.(i) && not seen.(i) then begin
                 seen.(i) <- true;
                 List.iter dfs adj.(i)
               end
             in
             dfs start;
             if not (List.for_all (fun i -> seen.(i)) members) then ok := false
       done;
       !ok
     end

let min_degree_heuristic g =
  let n = Dag.n_vertices g in
  if n = 0 then { bags = [||]; tree_edges = [] }
  else begin
    (* undirected adjacency sets *)
    let adj = Array.make n [] in
    let add_undirected u v =
      if not (List.mem v adj.(u)) then adj.(u) <- v :: adj.(u);
      if not (List.mem u adj.(v)) then adj.(v) <- u :: adj.(v)
    in
    List.iter (fun (u, v) -> add_undirected u v) (Dag.edges g);
    let eliminated = Array.make n false in
    let position = Array.make n 0 in
    let bags = Array.make n [] in
    for step = 0 to n - 1 do
      (* min-degree vertex among the survivors *)
      let best = ref (-1) and best_deg = ref max_int in
      for v = 0 to n - 1 do
        if not eliminated.(v) then begin
          let deg = List.length (List.filter (fun w -> not eliminated.(w)) adj.(v)) in
          if deg < !best_deg then begin
            best := v;
            best_deg := deg
          end
        end
      done;
      let v = !best in
      let nbrs = List.filter (fun w -> not eliminated.(w)) adj.(v) in
      bags.(step) <- v :: nbrs;
      position.(v) <- step;
      (* fill: the neighbourhood becomes a clique *)
      List.iter (fun a -> List.iter (fun b -> if a <> b then add_undirected a b) nbrs) nbrs;
      eliminated.(v) <- true
    done;
    (* connect each bag to the bag of its earliest-eliminated surviving
       neighbour; singletons chain to the next bag *)
    let tree_edges = ref [] in
    for step = 0 to n - 2 do
      match bags.(step) with
      | _ :: (_ :: _ as nbrs) ->
          let target =
            List.fold_left (fun acc w -> min acc position.(w)) max_int nbrs
          in
          tree_edges := (step, target) :: !tree_edges
      | _ -> tree_edges := (step, step + 1) :: !tree_edges
    done;
    { bags; tree_edges = !tree_edges }
  end

let path_decomposition bags =
  let n = Array.length bags in
  { bags; tree_edges = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) }
