let layered rng ~layers ~width ~edge_prob =
  if layers < 1 || width < 1 then invalid_arg "Gen.layered";
  let g = Dag.create () in
  let ranks =
    Array.init layers (fun _ ->
        let w = 1 + Random.State.int rng width in
        Array.init w (fun _ -> Dag.add_vertex g))
  in
  for l = 0 to layers - 2 do
    let cur = ranks.(l) and next = ranks.(l + 1) in
    (* guarantee connectivity: every vertex gets a successor, every next-rank
       vertex a predecessor *)
    Array.iter
      (fun u ->
        let v = next.(Random.State.int rng (Array.length next)) in
        Dag.add_edge g u v)
      cur;
    Array.iter
      (fun v -> if Dag.in_degree g v = 0 then Dag.add_edge g cur.(Random.State.int rng (Array.length cur)) v)
      next;
    Array.iter
      (fun u ->
        Array.iter
          (fun v -> if Random.State.float rng 1.0 < edge_prob && not (Dag.mem_edge g u v) then Dag.add_edge g u v)
          next)
      cur
  done;
  ignore (Dag.ensure_single_source_sink g);
  g

let erdos_renyi rng ~n ~edge_prob =
  if n < 1 then invalid_arg "Gen.erdos_renyi";
  let g = Dag.create ~capacity:n () in
  for _ = 1 to n do
    ignore (Dag.add_vertex g)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < edge_prob then Dag.add_edge g i j
    done
  done;
  ignore (Dag.ensure_single_source_sink g);
  g

let random_sp rng ~leaves ~series_bias =
  if leaves < 1 then invalid_arg "Gen.random_sp";
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    Sp.leaf v
  in
  let rec build k =
    if k = 1 then fresh ()
    else begin
      let left_size = 1 + Random.State.int rng (k - 1) in
      let left = build left_size and right = build (k - left_size) in
      if Random.State.float rng 1.0 < series_bias then Sp.series left right else Sp.parallel left right
    end
  in
  build leaves
