(** Graphviz (DOT) export for DAGs, used by the CLI and the examples. *)

val to_dot :
  ?name:string ->
  ?vertex_attr:(Dag.vertex -> string option) ->
  ?edge_attr:(Dag.vertex -> Dag.vertex -> string option) ->
  Dag.t ->
  string
(** [to_dot g] renders [g] as a [digraph]. Vertex labels from
    {!Dag.label} are used when present; [vertex_attr]/[edge_attr] may
    supply extra attribute strings (e.g. ["color=red"]). *)

val write_file : string -> string -> unit
(** [write_file path contents] — tiny helper so callers need no Unix. *)
