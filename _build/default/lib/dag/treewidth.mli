(** Tree decompositions (Section 4.3 of the paper).

    The weak NP-hardness construction of Theorem 4.6 exhibits a tree
    decomposition of width 15 for the Partition reduction graph. This
    module represents decompositions and machine-checks the three
    validity conditions, treating the input DAG as undirected. *)

type t = {
  bags : Dag.vertex list array;  (** bag contents, one per tree node *)
  tree_edges : (int * int) list;  (** undirected edges between tree nodes *)
}

val make : bags:Dag.vertex list array -> tree_edges:(int * int) list -> t

val width : t -> int
(** [max bag size - 1]; [-1] for an empty decomposition. *)

val is_tree : t -> bool
(** The tree-node graph is connected and acyclic. *)

val is_valid : Dag.t -> t -> bool
(** All three conditions: (1) bags cover every vertex; (2) every edge of
    the graph (as undirected) is contained in some bag; (3) for every
    vertex, the tree nodes whose bags contain it induce a connected
    subtree. *)

val path_decomposition : Dag.vertex list array -> t
(** Convenience: a decomposition whose tree is the path
    [0 - 1 - ... - n-1] (the shape used in Figure 16). *)

val min_degree_heuristic : Dag.t -> t
(** A valid tree decomposition computed by the classical min-degree
    elimination heuristic on the underlying undirected graph: repeatedly
    eliminate a minimum-degree vertex, turning its neighbourhood into a
    clique; each elimination step becomes a bag. The width is an upper
    bound on the true treewidth (tight on chordal graphs). Always
    passes {!is_valid}. *)
