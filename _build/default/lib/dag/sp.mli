(** Series-parallel structure (Section 3.4 of the paper).

    The exact dynamic program of Section 3.4 consumes a rooted binary
    decomposition tree whose leaves are the jobs (vertices of the
    series-parallel DAG) and whose internal nodes are labelled series or
    parallel. This module defines that tree, converts it to/from DAGs,
    and recognizes two-terminal series-parallel DAGs by the classical
    series/parallel reduction algorithm. *)

type 'a t =
  | Leaf of 'a
  | Series of 'a t * 'a t  (** left finishes before right starts *)
  | Parallel of 'a t * 'a t  (** independent *)

val leaf : 'a -> 'a t
val series : 'a t -> 'a t -> 'a t
val parallel : 'a t -> 'a t -> 'a t

val size : 'a t -> int
(** Number of leaves. *)

val leaves : 'a t -> 'a list
(** Left-to-right leaf order. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val series_of_list : 'a t list -> 'a t
val parallel_of_list : 'a t list -> 'a t
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

val to_dag : 'a t -> Dag.t * 'a array
(** Builds the (vertex-)series-parallel DAG induced by the tree: a leaf
    is a single vertex; [Series (a, b)] links every sink of [a] to every
    source of [b]; [Parallel (a, b)] is the disjoint union. The returned
    array maps each DAG vertex to its job. *)

val recognize_ttsp : Dag.t -> s:Dag.vertex -> t:Dag.vertex -> bool
(** Whether the DAG is two-terminal series-parallel between [s] and [t]:
    repeatedly merging parallel edges and contracting internal vertices
    with in-degree = out-degree = 1 reduces it to the single edge
    [(s, t)]. *)

val decompose_ttsp : Dag.t -> s:Dag.vertex -> t:Dag.vertex -> (Dag.vertex * Dag.vertex) t option
(** The decomposition tree of a two-terminal series-parallel DAG whose
    {e edges} are the jobs: leaves are the original edges (as endpoint
    pairs; parallel edges repeat), [Series] stacks a path, [Parallel]
    merges parallel branches. [None] when the DAG is not TTSP. Together
    with {!Rtt_core.Sp_exact} (whose recurrences are oblivious to
    whether jobs sit on vertices or edges) this solves activity-on-arc
    instances with series-parallel structure exactly. *)
