(** Mutable directed graphs intended to be acyclic.

    Vertices are dense integer identifiers allocated by {!add_vertex};
    edges are ordered pairs and parallel edges are permitted (several of
    the paper's constructions are naturally multigraphs). Acyclicity is
    not enforced on every [add_edge] — it is checked by {!topo_sort} /
    {!is_dag}, which every algorithm in this repository calls before
    trusting a graph. *)

type vertex = int

type t

exception Cycle
(** Raised by {!topo_sort} when the graph contains a directed cycle. *)

(** {1 Construction} *)

val create : ?capacity:int -> unit -> t

val add_vertex : ?label:string -> t -> vertex
(** Allocates a fresh vertex. The optional [label] is kept for
    diagnostics and DOT output. *)

val add_edge : t -> vertex -> vertex -> unit
(** Adds a directed edge. Parallel edges accumulate.
    @raise Invalid_argument if either endpoint is not a vertex, or on a
    self-loop. *)

val copy : t -> t

val of_edges : n:int -> (vertex * vertex) list -> t
(** A graph with vertices [0..n-1] and the given edges. *)

(** {1 Observation} *)

val n_vertices : t -> int
val n_edges : t -> int
val vertices : t -> vertex list
val edges : t -> (vertex * vertex) list
val succ : t -> vertex -> vertex list
val pred : t -> vertex -> vertex list
val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int
val label : t -> vertex -> string option
val set_label : t -> vertex -> string -> unit
val mem_edge : t -> vertex -> vertex -> bool

val sources : t -> vertex list
(** Vertices with in-degree zero, ascending. *)

val sinks : t -> vertex list
(** Vertices with out-degree zero, ascending. *)

(** {1 Structure} *)

val topo_sort : t -> vertex list
(** A topological order of all vertices.
    @raise Cycle if the graph has a directed cycle. *)

val is_dag : t -> bool

val transpose : t -> t

val reachable : t -> vertex -> bool array
(** [reachable g v] marks every vertex reachable from [v] (including [v]). *)

val ensure_single_source_sink : t -> vertex * vertex
(** Returns [(s, t)] such that [s] is the unique source and [t] the unique
    sink, adding a super-source and/or super-sink (labelled ["S"] / ["T"])
    when the graph has several. The graph is modified in place.
    @raise Invalid_argument on an empty graph. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
