(** Random DAG generators for tests and benchmarks.

    All generators are deterministic given the [Random.State.t] they are
    handed, so every experiment in the bench harness is reproducible. *)

val layered :
  Random.State.t -> layers:int -> width:int -> edge_prob:float -> Dag.t
(** A connected layered DAG: [layers] ranks of up to [width] vertices;
    each vertex is wired to at least one vertex of the next rank, plus
    extra forward edges with probability [edge_prob]. A unique source and
    sink are guaranteed (added if necessary). *)

val erdos_renyi : Random.State.t -> n:int -> edge_prob:float -> Dag.t
(** Random DAG on [n] vertices: each pair [(i, j)] with [i < j] is an
    edge with probability [edge_prob]; then a unique source/sink is
    ensured. *)

val random_sp : Random.State.t -> leaves:int -> series_bias:float -> int Sp.t
(** Random series-parallel decomposition tree over jobs [0..leaves-1];
    each internal node is series with probability [series_bias]. *)
