let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?(name = "g") ?(vertex_attr = fun _ -> None) ?(edge_attr = fun _ _ -> None) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  List.iter
    (fun v ->
      let label = match Dag.label g v with Some l -> escape l | None -> string_of_int v in
      let extra = match vertex_attr v with Some a -> ", " ^ a | None -> "" in
      Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"%s];\n" v label extra))
    (Dag.vertices g);
  List.iter
    (fun (u, v) ->
      let extra = match edge_attr u v with Some a -> " [" ^ a ^ "]" | None -> "" in
      Buffer.add_string buf (Printf.sprintf "  %d -> %d%s;\n" u v extra))
    (Dag.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
