open Rtt_dag
open Rtt_duration
open Rtt_num

type edge_kind =
  | Chain of { vertex : Dag.vertex; idx : int }
  | Chain_tail of { vertex : Dag.vertex; idx : int }
  | Link of { src : Dag.vertex; dst : Dag.vertex }
  | Simple of { vertex : Dag.vertex }

type edge = { src : Dag.vertex; dst : Dag.vertex; t0 : int; upgrade : int option; kind : edge_kind }

type t = {
  graph : Dag.t;
  edges : edge array;
  source : Dag.vertex;
  sink : Dag.vertex;
  problem : Problem.t;
  entry : Dag.vertex array;
  exits : Dag.vertex array;
  chains : int list array;
}

let of_problem (p : Problem.t) =
  let n = Problem.n_jobs p in
  let g = Dag.create ~capacity:(4 * n) () in
  let entry = Array.init n (fun v -> ignore v; Dag.add_vertex g) in
  let exits = Array.init n (fun v -> ignore v; Dag.add_vertex g) in
  Array.iteri (fun v a -> Dag.set_label g a (Printf.sprintf "a%d" v)) entry;
  Array.iteri (fun v b -> Dag.set_label g b (Printf.sprintf "b%d" v)) exits;
  let edges = ref [] in
  let n_edges = ref 0 in
  let chains = Array.make n [] in
  let push e =
    Dag.add_edge g e.src e.dst;
    edges := e :: !edges;
    incr n_edges;
    !n_edges - 1
  in
  for v = 0 to n - 1 do
    let tuples = Duration.tuples p.durations.(v) in
    match tuples with
    | [ (0, t0) ] ->
        let idx = push { src = entry.(v); dst = exits.(v); t0; upgrade = None; kind = Simple { vertex = v } } in
        chains.(v) <- [ idx ]
    | _ ->
        let l = List.length tuples in
        let resources = Array.of_list (List.map fst tuples) in
        let times = Array.of_list (List.map snd tuples) in
        let idxs = ref [] in
        for i = 0 to l - 1 do
          let u = Dag.add_vertex ~label:(Printf.sprintf "u%d_%d" v i) g in
          let upgrade = if i < l - 1 then Some (resources.(i + 1) - resources.(i)) else None in
          let idx = push { src = entry.(v); dst = u; t0 = times.(i); upgrade; kind = Chain { vertex = v; idx = i } } in
          ignore (push { src = u; dst = exits.(v); t0 = 0; upgrade = None; kind = Chain_tail { vertex = v; idx = i } });
          idxs := idx :: !idxs
        done;
        chains.(v) <- List.rev !idxs
  done;
  List.iter
    (fun (u, v) ->
      ignore (push { src = exits.(u); dst = entry.(v); t0 = 0; upgrade = None; kind = Link { src = u; dst = v } }))
    (Dag.edges p.dag);
  {
    graph = g;
    edges = Array.of_list (List.rev !edges);
    source = entry.(p.source);
    sink = exits.(p.sink);
    problem = p;
    entry;
    exits;
    chains;
  }

(* Edge-indexed longest path: event time of each graph vertex. *)
let event_times_fold t ~zero ~add ~max_ ~edge_time =
  let order = Dag.topo_sort t.graph in
  let time = Array.make (Dag.n_vertices t.graph) zero in
  let inbound = Array.make (Dag.n_vertices t.graph) [] in
  Array.iteri (fun i e -> inbound.(e.dst) <- i :: inbound.(e.dst)) t.edges;
  List.iter
    (fun v ->
      let best =
        List.fold_left
          (fun acc i ->
            let e = t.edges.(i) in
            max_ acc (add time.(e.src) (edge_time i)))
          zero inbound.(v)
      in
      time.(v) <- best)
    order;
  time

let makespan_with t ~edge_time =
  let times = event_times_fold t ~zero:0 ~add:( + ) ~max_:max ~edge_time in
  Array.fold_left max 0 times

let event_times_with t ~edge_time =
  event_times_fold t ~zero:Rat.zero ~add:Rat.add ~max_:Rat.max ~edge_time

let allocation_of_upgrades t ~upgraded =
  let p = t.problem in
  Array.init (Problem.n_jobs p) (fun v ->
      let tuples = Array.of_list (Duration.tuples p.durations.(v)) in
      if Array.length tuples = 1 then 0
      else begin
        (* first chain edge not upgraded determines the realized tuple *)
        let rec first_idx = function
          | [] -> Array.length tuples - 1
          | i :: rest -> (
              match t.edges.(i).kind with
              | Chain { idx; _ } -> if (not (upgraded i)) || t.edges.(i).upgrade = None then idx else first_idx rest
              | _ -> first_idx rest)
        in
        let j = first_idx t.chains.(v) in
        fst tuples.(j)
      end)

let vertex_lp_resource t ~flow v =
  List.fold_left (fun acc i -> Rat.add acc (flow i)) Rat.zero t.chains.(v)
