(** The 4-approximation for minimum makespan under recursive binary
    splitting duration functions (Section 3.2, Theorem 3.10).

    Bi-criteria at α = 1/2, then budget repair: a job whose rounded
    allocation [r_j] exceeds the LP resource [r*_j] is halved to
    [r_j / 2] (the next binary reducer level), which is at most [r*_j]
    since [r_j <= 2 r*_j]. Halving a binary reducer at most doubles its
    duration, so each job runs in at most [4 t*_j]. *)

type t = {
  allocation : int array;
  makespan : int;
  budget_used : int;
  lp_makespan : Rtt_num.Rat.t;  (** lower bound on OPT *)
  bicriteria : Bicriteria.t;
}

val min_makespan : Problem.t -> budget:int -> t
(** Intended for instances built with
    {!Rtt_duration.Binary_split.to_duration}.
    @raise Invalid_argument on negative budget. *)
