(** The (1/α, 1/(1−α)) bi-criteria approximation of Theorem 3.4.

    Pipeline: transform the instance to D″, solve LP 6–10 with the given
    budget, α-round, compute the integral min-flow, and pull the result
    back to a per-vertex allocation. Guarantees (both machine-checkable
    from the returned record):
    - [rounded.budget_used <= ceil (budget / (1 - α))], and more sharply
      [<= lp.budget_used / (1 - α)];
    - [rounded.makespan <= lp.makespan / α], and [lp.makespan] is a lower
      bound on the optimal makespan with the given budget. *)

open Rtt_num

type t = {
  transform : Transform.t;
  lp : Lp_relax.solution;
  rounded : Rounding.t;
  alpha : Rat.t;
  makespan_bound : Rat.t;  (** (1/α) · LP makespan *)
  budget_bound : Rat.t;  (** (1/(1−α)) · LP budget used *)
}

val min_makespan : Problem.t -> budget:int -> alpha:Rat.t -> t
(** @raise Invalid_argument unless [0 < alpha < 1] and [budget >= 0]. *)

val min_resource : Problem.t -> target:int -> alpha:Rat.t -> t option
(** Same rounding applied to the minimum-resource LP: [None] when the
    makespan target is unreachable even with unlimited resources. The
    rounded makespan is at most [target / α] and the resources used are
    at most [1/(1−α)] times the LP optimum, which lower-bounds OPT. *)

val satisfies_guarantees : t -> bool
(** Checks both bi-criteria inequalities exactly. *)

val best_alpha : Problem.t -> budget:int -> t
(** Chooses α automatically: the rounding outcome only changes when α
    crosses one of the finitely many ratios [t_e(f*_e) / t_e(0)] of the
    LP solution, so trying one α per threshold interval enumerates every
    reachable rounding. Returns the outcome with the smallest makespan
    whose integral min-flow fits the {e original} budget, falling back
    to the smallest-budget outcome when none fits. Strictly dominates
    any fixed-α choice on the same instance. *)
