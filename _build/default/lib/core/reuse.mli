(** The three resource-reuse regimes of Questions 1.1–1.3.

    Given a fixed allocation, the budget needed to realize it depends on
    how resources may be reused:

    - {b none} (Question 1.1): every job owns its units forever —
      budget = sum of allocations;
    - {b over paths} (Question 1.3, this paper): units travel
      source→sink paths — budget = min-flow with vertex lower bounds;
    - {b global} (Question 1.2): a memory manager reclaims units the
      moment a job finishes — budget = the peak concurrent usage of the
      earliest-start schedule (a lower bound on any schedule-aware
      optimum, and exactly the manager's high-water mark when jobs run
      as early as possible).

    Always [global <= paths <= none]; the ablation benchmark quantifies
    the gaps, which is the empirical content of the paper's claim that
    path reuse recovers most of global reuse without a central
    manager. *)

type budgets = {
  none : int;
  over_paths : int;
  global : int;
}

val budgets : Problem.t -> Schedule.allocation -> budgets

val no_reuse_budget : Problem.t -> Schedule.allocation -> int
(** Sum of the allocation. *)

val global_reuse_budget : Problem.t -> Schedule.allocation -> int
(** Peak concurrent usage when every job starts as early as possible
    and holds its units exactly during its execution window. *)
