open Rtt_duration

type t = { allocation : int array; makespan : int; budget_used : int; steps : int }

(* next step point of v's duration function beyond the current level *)
let next_step (p : Problem.t) v current =
  let tuples = Duration.tuples p.Problem.durations.(v) in
  List.find_opt (fun (r, _) -> r > current) tuples

let min_makespan (p : Problem.t) ~budget =
  if budget < 0 then invalid_arg "Greedy.min_makespan: negative budget";
  let n = Problem.n_jobs p in
  let alloc = Array.make n 0 in
  let steps = ref 0 in
  let current_ms = ref (Schedule.makespan p alloc) in
  let current_budget = ref 0 in
  let improved = ref true in
  while !improved do
    improved := false;
    (* evaluate every single-job upgrade *)
    let best = ref None in
    for v = 0 to n - 1 do
      match next_step p v alloc.(v) with
      | None -> ()
      | Some (r, _) ->
          let saved = alloc.(v) in
          alloc.(v) <- r;
          let cost = Schedule.min_budget p alloc in
          if cost <= budget then begin
            let ms = Schedule.makespan p alloc in
            if ms < !current_ms then begin
              (* improvement per extra unit (extra units may be zero when
                 reuse absorbs the upgrade — those are taken greedily) *)
              let gain = !current_ms - ms and extra = max 0 (cost - !current_budget) in
              let score = (float_of_int gain /. float_of_int (extra + 1), -extra) in
              match !best with
              | Some (s, _, _, _) when s >= score -> ()
              | _ -> best := Some (score, v, r, (ms, cost))
            end
          end;
          alloc.(v) <- saved
    done;
    match !best with
    | Some (_, v, r, (ms, cost)) ->
        alloc.(v) <- r;
        current_ms := ms;
        current_budget := cost;
        incr steps;
        improved := true
    | None -> ()
  done;
  { allocation = alloc; makespan = !current_ms; budget_used = !current_budget; steps = !steps }
