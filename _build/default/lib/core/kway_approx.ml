open Rtt_num
open Rtt_duration

type t = {
  allocation : int array;
  makespan : int;
  budget_used : int;
  lp_makespan : Rat.t;
  bicriteria : Bicriteria.t;
}

let min_makespan p ~budget =
  let bi = Bicriteria.min_makespan p ~budget ~alpha:Rat.half in
  let tr = bi.Bicriteria.transform in
  let lp = bi.Bicriteria.lp in
  let rounded_alloc = bi.Bicriteria.rounded.Rounding.allocation in
  let n = Problem.n_jobs p in
  let allocation =
    Array.init n (fun v ->
        if Duration.is_constant (Problem.duration p v) then 0
        else begin
          let r_star = Transform.vertex_lp_resource tr ~flow:(fun i -> lp.Lp_relax.flow.(i)) v in
          let r_j = rounded_alloc.(v) in
          if Rat.(Rat.of_int r_j <= r_star) then r_j
          else if r_j > 3 then r_j / 2
          else if Rat.(r_star >= Rat.two) then 2
          else 0
        end)
  in
  let budget_used = Schedule.min_budget p allocation in
  let makespan = Schedule.makespan p allocation in
  { allocation; makespan; budget_used; lp_makespan = lp.Lp_relax.makespan; bicriteria = bi }
