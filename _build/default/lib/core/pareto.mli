(** The space–time tradeoff curve of an instance.

    The paper optimizes one point (fixed budget or fixed target); a
    user deciding how much extra space to pay for wants the whole
    frontier: for each budget, the best reachable makespan. Exact
    frontiers enumerate budgets against the brute-force solver (small
    instances); approximate frontiers run the Theorem 3.16 pipeline per
    budget and are usable at scale. Both curves are non-increasing and
    flatten exactly at {!Problem.max_meaningful_budget}. *)

type point = {
  budget : int;
  makespan : int;
  allocation : int array;
}

val exact : ?max_budget:int -> ?max_states:int -> Problem.t -> point list
(** One point per budget in [0 .. max_budget] (default:
    {!Problem.max_meaningful_budget}, capped there in any case), each
    the true optimum. Consecutive duplicates are kept so the curve is
    directly plottable.
    @raise Exact.Too_large like {!Exact.min_makespan}. *)

val knees : point list -> point list
(** The budgets where the makespan actually improves — the purchase
    points a practitioner cares about. *)

val approximate : ?max_budget:int -> Problem.t -> point list
(** Same sweep through {!Binary_bicriteria.min_makespan}; points carry
    that algorithm's (4/3, 14/5) guarantees rather than optimality. The
    curve is made monotone by carrying the best allocation forward
    (the LP value can wobble across budgets after rounding). *)
