open Rtt_num
open Rtt_duration

type t = {
  allocation : int array;
  makespan : int;
  budget_used : int;
  lp : Lp_relax.solution;
  resource_bound : Rat.t;
  makespan_bound : Rat.t;
}

let round_resource r ~max_level =
  if Rat.(r < Rat.one) then 0
  else begin
    (* find i with 2^i <= r < 2^(i+1) *)
    let i = ref 0 in
    while
      let next = Rat.of_int (1 lsl (!i + 1)) in
      Rat.(next <= r)
    do
      incr i
    done;
    let lo = 1 lsl !i in
    let midpoint = Rat.of_ints (3 * lo) 2 in
    let rounded = if Rat.(r < midpoint) then lo else 2 * lo in
    min rounded max_level
  end

let round_all p tr (lp : Lp_relax.solution) =
  let n = Problem.n_jobs p in
  let allocation =
    Array.init n (fun v ->
        let d = Problem.duration p v in
        if Duration.is_constant d then 0
        else begin
          let r = Transform.vertex_lp_resource tr ~flow:(fun i -> lp.Lp_relax.flow.(i)) v in
          round_resource r ~max_level:(Duration.max_useful_resource d)
        end)
  in
  let budget_used = Schedule.min_budget p allocation in
  let makespan = Schedule.makespan p allocation in
  {
    allocation;
    makespan;
    budget_used;
    lp;
    resource_bound = Rat.mul (Rat.of_ints 4 3) lp.Lp_relax.budget_used;
    makespan_bound = Rat.mul (Rat.of_ints 14 5) lp.Lp_relax.makespan;
  }

let min_makespan p ~budget =
  if budget < 0 then invalid_arg "Binary_bicriteria.min_makespan: negative budget";
  let tr = Transform.of_problem p in
  let lp = Lp_relax.min_makespan tr ~budget in
  round_all p tr lp

let min_resource p ~target =
  if target < 0 then invalid_arg "Binary_bicriteria.min_resource: negative target";
  let tr = Transform.of_problem p in
  match Lp_relax.min_resource tr ~target:(Rat.of_int target) with
  | None -> None
  | Some lp ->
      let r = round_all p tr lp in
      (* for the min-resource objective the makespan bound is driven by
         the target rather than the LP's (possibly smaller) makespan *)
      Some { r with makespan_bound = Rat.mul (Rat.of_ints 14 5) (Rat.of_int target) }

let satisfies_guarantees t =
  Rat.(Rat.of_int t.budget_used <= t.resource_bound)
  && Rat.(Rat.of_int t.makespan <= t.makespan_bound)
