(** The two-step DAG transformation of Section 3.1 (Figures 6 and 7).

    Step 1 (activity on arc): every job vertex [v] of the instance
    becomes an arc [a_v -> b_v]; every precedence edge [(u, v)] becomes a
    zero-duration link arc [b_u -> a_v].

    Step 2 (at most two tuples per arc): a job arc whose duration
    function has tuples [(0,t_1), (r_2,t_2), ..., (r_l,t_l)] is replaced
    by [l] parallel two-edge chains [a_v -> u_i -> b_v]. Chain edge [i]
    is a job with tuples [{(0, t_i), (r_{i+1} - r_i, 0)}] for [i < l] and
    the single tuple [{(0, t_l)}] for [i = l]; the tail edges
    [u_i -> b_v] have duration 0. Driving chain edges [1..i-1] to zero
    upgrades the job to tuple [i] — the canonical bijection of
    Lemma 3.1. The recursive-binary expansion of Figure 7 is this same
    construction applied to Equation 3's tuples.

    Jobs with a single (constant) tuple become one direct arc. *)

open Rtt_dag
open Rtt_num

type edge_kind =
  | Chain of { vertex : Dag.vertex; idx : int }
      (** [idx]-th (0-based) chain edge of job [vertex] *)
  | Chain_tail of { vertex : Dag.vertex; idx : int }
  | Link of { src : Dag.vertex; dst : Dag.vertex }  (** precedence dummy *)
  | Simple of { vertex : Dag.vertex }  (** constant-duration job *)

type edge = {
  src : Dag.vertex;  (** in the transformed graph *)
  dst : Dag.vertex;
  t0 : int;  (** duration with no resource *)
  upgrade : int option;  (** [Some r]: [r] units drive the duration to 0 *)
  kind : edge_kind;
}

type t = {
  graph : Dag.t;
  edges : edge array;
  source : Dag.vertex;
  sink : Dag.vertex;
  problem : Problem.t;
  entry : Dag.vertex array;  (** [a_v] per original vertex *)
  exits : Dag.vertex array;  (** [b_v] per original vertex *)
  chains : int list array;  (** chain-edge indices per original vertex, in tuple order (also the [Simple] edge for constant jobs) *)
}

val of_problem : Problem.t -> t

val makespan_with : t -> edge_time:(int -> int) -> int
(** Longest path of the transformed graph where edge [e] takes
    [edge_time e] time (indexed into {!edges}). *)

val event_times_with : t -> edge_time:(int -> Rat.t) -> Rat.t array
(** Exact-rational event times per transformed-graph vertex. *)

val allocation_of_upgrades : t -> upgraded:(int -> bool) -> int array
(** Pulls a set of upgraded chain edges back to a per-vertex allocation:
    job [v] realizes the tuple of its first non-upgraded chain edge and
    is allocated that tuple's resource (Lemma 3.1's canonical mapping —
    non-prefix upgrade sets waste resource but remain sound). *)

val vertex_lp_resource : t -> flow:(int -> Rat.t) -> Dag.vertex -> Rat.t
(** Sum of the (possibly fractional) resources a flow routes through the
    chain edges of a job — the [r*_j] of Section 3.2. *)
