(** The 5-approximation for minimum makespan under k-way splitting
    duration functions (Section 3.2, Theorem 3.9).

    Runs the bi-criteria pipeline at α = 1/2 — giving a (2, 2)
    approximation — and then repairs the budget: every job whose rounded
    allocation [r_j] exceeds the (fractional) resource [r*_j] the LP
    routed through it is cut back to [k <= r*_j]:
    [k = floor (r_j / 2)] when [r_j > 3], else [k = 2] if [r*_j >= 2]
    and [k = 0] otherwise (Lemmas 3.5–3.8). The min-flow with the
    repaired requirements never exceeds the original budget, and each
    job's duration grows to at most [5 t*_j]. *)

type t = {
  allocation : int array;
  makespan : int;
  budget_used : int;
  lp_makespan : Rtt_num.Rat.t;  (** lower bound on OPT *)
  bicriteria : Bicriteria.t;  (** the intermediate (2,2) run *)
}

val min_makespan : Problem.t -> budget:int -> t
(** The instance's duration functions are expected to be of k-way type
    ({!Rtt_duration.Kway.to_duration}); the algorithm is well-defined on
    any instance but the 5·OPT guarantee is specific to that class.
    @raise Invalid_argument on negative budget. *)
