(** Bounded-processor execution of an allocated instance.

    Observation 1.1 bounds the running time of the program with
    {e unbounded} processors by the DAG's makespan. This module supplies
    the finite-processor side: greedy (Graham) list scheduling of the
    jobs under their allocated durations, with critical-path priority.
    The classic sandwich
    [max (T_inf, ceil (W / p)) <= T_p <= T_inf + W / p]
    (with [W] total work and [T_inf] the makespan) is asserted by the
    test suite. *)

type t = {
  finish : int;  (** completion time with [p] processors *)
  processor_of_job : int array;  (** which processor ran each job *)
  start_times : int array;
}

val list_schedule : Problem.t -> Schedule.allocation -> processors:int -> t
(** @raise Invalid_argument when [processors < 1]. *)

val speedup_curve : Problem.t -> Schedule.allocation -> processors:int list -> (int * int) list
(** [(p, T_p)] for each processor count. *)
