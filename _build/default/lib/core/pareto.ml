type point = { budget : int; makespan : int; allocation : int array }

let cap_budget p = function
  | Some b -> min b (Problem.max_meaningful_budget p)
  | None -> Problem.max_meaningful_budget p

let exact ?max_budget ?max_states p =
  let top = cap_budget p max_budget in
  List.init (top + 1) (fun budget ->
      let r = Exact.min_makespan ?max_states p ~budget in
      { budget; makespan = r.Exact.makespan; allocation = r.Exact.allocation })

let knees points =
  let rec go last = function
    | [] -> []
    | pt :: rest -> if pt.makespan < last then pt :: go pt.makespan rest else go last rest
  in
  go max_int points

let approximate ?max_budget p =
  let top = cap_budget p max_budget in
  let best = ref None in
  List.init (top + 1) (fun budget ->
      let r = Binary_bicriteria.min_makespan p ~budget in
      let candidate = { budget; makespan = r.Binary_bicriteria.makespan; allocation = r.Binary_bicriteria.allocation } in
      let chosen =
        match !best with
        | Some b when b.makespan <= candidate.makespan -> { b with budget }
        | _ -> candidate
      in
      best := Some chosen;
      chosen)
