(** A practical greedy baseline for the minimum-makespan problem.

    Not part of the paper's toolbox — included as the ablation baseline
    the benchmarks compare the LP pipeline against. Repeatedly considers
    upgrading one job to its next duration step, evaluates the true
    min-flow cost of the upgraded allocation, and commits the upgrade
    with the best makespan improvement per extra unit of budget;
    stops when no affordable upgrade improves the makespan. Runs in
    polynomial time but carries no approximation guarantee (the
    benchmarks exhibit instances where it loses to the LP rounding). *)

type t = {
  allocation : int array;
  makespan : int;
  budget_used : int;
  steps : int;  (** committed upgrades *)
}

val min_makespan : Problem.t -> budget:int -> t
(** @raise Invalid_argument on negative budget. *)
