(** Question 1.1: the tradeoff problem {e without} resource reuse.

    When every job owns its resources forever, realizing an allocation
    costs its plain sum and the problem becomes the classical discrete
    time-cost tradeoff problem (De et al.; Skutella's rounding — the
    algorithmic ancestor the paper builds LP 6–10 on). This module
    implements that regime with the same machinery: the Skutella-style
    LP over D″ (per-edge upgrade variables, a sum budget, no flow
    conservation), the same α-rounding, and a brute-force exact solver.

    Its purpose here is comparative: benchmark A5 prices identical
    instances under no-reuse vs path-reuse, which is the quantitative
    content of the paper's claim that routing resources along paths is
    worth formalizing. *)

open Rtt_num

type t = {
  lp_makespan : Rat.t;  (** LP lower bound on the no-reuse OPT *)
  lp_budget_used : Rat.t;
  makespan : int;  (** after α-rounding *)
  budget_used : int;  (** plain sum of the rounded allocation *)
  allocation : int array;
  makespan_bound : Rat.t;  (** (1/α)·LP makespan *)
  budget_bound : Rat.t;  (** 1/(1−α)·LP budget *)
}

val min_makespan : Problem.t -> budget:int -> alpha:Rat.t -> t
(** Skutella-style (1/α, 1/(1−α)) bi-criteria for the no-reuse regime.
    @raise Invalid_argument unless [0 < alpha < 1] and [budget >= 0]. *)

val satisfies_guarantees : t -> bool

val exact : ?max_states:int -> Problem.t -> budget:int -> Exact.t
(** Brute force with the sum-budget feasibility test (no min-flow). *)
