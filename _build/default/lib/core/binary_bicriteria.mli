(** The improved (4/3, 14/5) bi-criteria approximation for recursive
    binary splitting duration functions (Section 3.3, Theorem 3.16).

    After solving LP 6–10, the (fractional) resource [r] that the LP
    routes through each job's parallel chains is rounded to a reducer
    level by the paper's rule: [r < 1] rounds to 0;
    [2^i <= r < 3·2^(i-1)] rounds {e down} to [2^i]; and
    [3·2^(i-1) <= r < 2^(i+1)] rounds {e up} to [2^(i+1)]. Rounding up
    costs at most a 4/3 factor in resources (Lemma 3.15); rounding down
    costs at most a 14/5 factor in each job's duration
    (Lemmas 3.12–3.14). *)

open Rtt_num

type t = {
  allocation : int array;
  makespan : int;
  budget_used : int;
  lp : Lp_relax.solution;
  resource_bound : Rat.t;  (** (4/3) · LP budget used *)
  makespan_bound : Rat.t;  (** (14/5) · LP makespan *)
}

val round_resource : Rat.t -> max_level:int -> int
(** The Section 3.3 rounding rule, capped at the job's largest useful
    reducer level. Exposed for unit tests. *)

val min_makespan : Problem.t -> budget:int -> t
(** @raise Invalid_argument on negative budget. *)

val min_resource : Problem.t -> target:int -> t option
(** Extension (not stated in the paper, but a direct corollary of
    Theorem 3.16 applied to the minimum-resource LP): solve LP 6–10 with
    the makespan constrained to [target] and minimize the source
    outflow, then round with the same rule. Resources used are at most
    [(4/3)] times the LP optimum — hence at most [(4/3) OPT] — while
    the makespan stays within [(14/5) target]. [None] when the target
    is unreachable. *)

val satisfies_guarantees : t -> bool
