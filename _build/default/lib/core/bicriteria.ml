open Rtt_num

type t = {
  transform : Transform.t;
  lp : Lp_relax.solution;
  rounded : Rounding.t;
  alpha : Rat.t;
  makespan_bound : Rat.t;
  budget_bound : Rat.t;
}

let finish transform lp alpha =
  let rounded = Rounding.round transform ~alpha lp in
  {
    transform;
    lp;
    rounded;
    alpha;
    makespan_bound = Rat.div lp.Lp_relax.makespan alpha;
    budget_bound = Rat.div lp.Lp_relax.budget_used (Rat.sub Rat.one alpha);
  }

let min_makespan p ~budget ~alpha =
  if budget < 0 then invalid_arg "Bicriteria.min_makespan: negative budget";
  if Rat.(alpha <= Rat.zero) || Rat.(alpha >= Rat.one) then invalid_arg "Bicriteria: alpha must be in (0, 1)";
  let transform = Transform.of_problem p in
  let lp = Lp_relax.min_makespan transform ~budget in
  finish transform lp alpha

let min_resource p ~target ~alpha =
  if Rat.(alpha <= Rat.zero) || Rat.(alpha >= Rat.one) then invalid_arg "Bicriteria: alpha must be in (0, 1)";
  let transform = Transform.of_problem p in
  match Lp_relax.min_resource transform ~target:(Rat.of_int target) with
  | None -> None
  | Some lp -> Some (finish transform lp alpha)

let best_alpha p ~budget =
  if budget < 0 then invalid_arg "Bicriteria.best_alpha: negative budget";
  let transform = Transform.of_problem p in
  let lp = Lp_relax.min_makespan transform ~budget in
  (* candidate thresholds: the realized duration ratios of two-tuple
     edges; rounding flips exactly when alpha crosses one of them *)
  let ratios =
    Array.to_list
      (Array.mapi
         (fun i (e : Transform.edge) ->
           match e.Transform.upgrade with
           | Some _ when e.Transform.t0 > 0 ->
               Some (Rat.div (Lp_relax.edge_duration e lp.Lp_relax.flow.(i)) (Rat.of_int e.Transform.t0))
           | _ -> None)
         transform.Transform.edges)
  in
  let thresholds =
    List.sort_uniq Rat.compare
      (List.filter_map
         (fun r ->
           match r with
           | Some r when Rat.(r > Rat.zero) && Rat.(r < Rat.one) -> Some r
           | _ -> None)
         ratios)
  in
  (* one alpha strictly inside each interval between consecutive
     thresholds (plus one above the largest): alpha just above a
     threshold upgrades every edge at or below it *)
  let candidates =
    let rec midpoints = function
      | a :: (b :: _ as rest) -> Rat.div (Rat.add a b) Rat.two :: midpoints rest
      | [ a ] -> [ Rat.div (Rat.add a Rat.one) Rat.two ]
      | [] -> []
    in
    let below =
      match thresholds with
      | t :: _ -> [ Rat.div t Rat.two ]
      | [] -> []
    in
    let mids = midpoints thresholds in
    let all = below @ mids in
    if all = [] then [ Rat.half ] else all
  in
  let evaluate alpha = finish transform lp alpha in
  let results = List.map evaluate candidates in
  let fits r = r.rounded.Rounding.budget_used <= budget in
  let better a b =
    if fits a <> fits b then fits a
    else if a.rounded.Rounding.makespan <> b.rounded.Rounding.makespan then
      a.rounded.Rounding.makespan < b.rounded.Rounding.makespan
    else a.rounded.Rounding.budget_used < b.rounded.Rounding.budget_used
  in
  match results with
  | [] -> assert false
  | first :: rest -> List.fold_left (fun acc r -> if better r acc then r else acc) first rest

let satisfies_guarantees t =
  Rat.(Rat.of_int t.rounded.Rounding.makespan <= t.makespan_bound)
  && Rat.(Rat.of_int t.rounded.Rounding.budget_used <= t.budget_bound)
