open Rtt_dag
open Rtt_duration

type t = {
  dag : Dag.t;
  durations : Duration.t array;
  source : Dag.vertex;
  sink : Dag.vertex;
}

type objective = Min_makespan of { budget : int } | Min_resource of { target : int }

let make dag ~durations =
  if Dag.n_vertices dag = 0 then invalid_arg "Problem.make: empty graph";
  if not (Dag.is_dag dag) then invalid_arg "Problem.make: graph has a cycle";
  let n_before = Dag.n_vertices dag in
  let source, sink = Dag.ensure_single_source_sink dag in
  let durs =
    Array.init (Dag.n_vertices dag) (fun v ->
        if v < n_before then durations v else Duration.constant 0)
  in
  { dag; durations = durs; source; sink }

let n_jobs p = Dag.n_vertices p.dag
let duration p v = p.durations.(v)

let works dag = Array.init (Dag.n_vertices dag) (fun v -> Dag.in_degree dag v)

type reducer_kind = No_reducer | Kway | Binary

let of_race_dag dag kind =
  let w = works dag in
  make dag ~durations:(fun v ->
      let work = w.(v) in
      match kind with
      | No_reducer -> Duration.constant work
      | Kway -> Kway.to_duration ~work
      | Binary -> Binary_split.to_duration ~work)

let max_meaningful_budget p =
  Array.fold_left (fun acc d -> acc + Duration.max_useful_resource d) 0 p.durations

let pp fmt p =
  Format.fprintf fmt "@[<v>instance: %d jobs, source %d, sink %d@," (n_jobs p) p.source p.sink;
  Array.iteri (fun v d -> Format.fprintf fmt "  job %d: %a@," v Duration.pp d) p.durations;
  Format.fprintf fmt "@]"
