(** Plain-text serialization of problem instances.

    The format, one directive per line ([#] starts a comment):
    {v
    vertices <n>
    duration <v> <r>:<t> <r>:<t> ...
    edge <u> <v>
    v}
    Vertices without a [duration] line default to constant 0. The reader
    normalizes the graph through {!Problem.make}, so the written and
    re-read instance may gain a super source/sink. *)

val to_string : Problem.t -> string

val of_string : string -> Problem.t
(** @raise Invalid_argument on malformed input. *)

val write_file : string -> Problem.t -> unit
val read_file : string -> Problem.t
