(** α-rounding of the LP solution and the integral min-flow (Section 3.1,
    LP 11–13).

    Given a fractional LP solution and a threshold [0 < α < 1], an edge
    whose relaxed duration [t_e(f*_e)] fell strictly below [α · t_e(0)]
    is rounded {e up} in resources (requirement [r_e], duration 0); all
    others are rounded {e down} (requirement 0, duration [t_e(0)]). The
    resource requirement thus inflates by at most [1/(1-α)] per edge and
    the duration by at most [1/α] (Lemmas 3.2–3.3). A combinatorial
    min-flow with the requirements as lower bounds then yields an
    integral routing. *)

open Rtt_num

type t = {
  upgraded : bool array;  (** per transformed edge *)
  requirement : int array;  (** f'_e: [r_e] if upgraded else 0 *)
  flow : int array;  (** integral min-flow meeting the requirements *)
  budget_used : int;  (** value of that flow *)
  makespan : int;  (** makespan of D″ under the rounded durations *)
  allocation : int array;  (** pulled back to original vertices *)
}

val round : Transform.t -> alpha:Rat.t -> Lp_relax.solution -> t
(** @raise Invalid_argument unless [0 < alpha < 1]. *)

val rounded_edge_time : Transform.t -> t -> int -> int
(** Duration of transformed edge [i] after rounding: 0 if upgraded,
    [t0] otherwise. *)
