(** Instances of the discrete resource-time tradeoff problem with
    resource reuse over paths (Section 2 of the paper).

    An instance is a single-source single-sink DAG whose vertices are
    jobs, each with a non-increasing duration function. Resources flow
    from the source to the sink along paths; a unit of resource may be
    used by every job on its path (Question 1.3). *)

open Rtt_dag
open Rtt_duration

type t = private {
  dag : Dag.t;
  durations : Duration.t array;  (** indexed by vertex *)
  source : Dag.vertex;
  sink : Dag.vertex;
}

type objective =
  | Min_makespan of { budget : int }
      (** minimize makespan subject to at most [budget] resource units *)
  | Min_resource of { target : int }
      (** minimize resource units subject to makespan at most [target] *)

val make : Dag.t -> durations:(Dag.vertex -> Duration.t) -> t
(** Takes ownership of the DAG: it is normalized in place to a single
    source and sink (any super-source/sink added receives a constant-0
    duration; [durations] is consulted only for the original vertices).
    @raise Invalid_argument if the graph is empty or not acyclic. *)

val n_jobs : t -> int

val duration : t -> Dag.vertex -> Duration.t

val works : Dag.t -> int array
(** The paper's Section 1 convention for race DAGs: each vertex's work
    (= base duration) is its in-degree. *)

type reducer_kind = No_reducer | Kway | Binary

val of_race_dag : Dag.t -> reducer_kind -> t
(** Builds an instance from a race DAG [D(P)]: work = in-degree; the
    duration function of each vertex is the chosen reducer's tradeoff
    applied to that work ({!Rtt_duration.Kway} / {!Rtt_duration.Binary_split}),
    or constant when [No_reducer]. *)

val max_meaningful_budget : t -> int
(** Sum over vertices of the largest useful resource — no instance ever
    benefits from a larger budget. *)

val pp : Format.formatter -> t -> unit
