open Rtt_dag
open Rtt_duration

(* cap additions so that "unreachable" sentinels never overflow *)
let big = max_int / 4
let ( +! ) a b = min big (a + b)

let rec table tree ~budget =
  match tree with
  | Sp.Leaf d -> Array.init (budget + 1) (fun l -> Duration.eval d l)
  | Sp.Series (a, b) ->
      let ta = table a ~budget and tb = table b ~budget in
      Array.init (budget + 1) (fun l -> ta.(l) +! tb.(l))
  | Sp.Parallel (a, b) ->
      let ta = table a ~budget and tb = table b ~budget in
      Array.init (budget + 1) (fun l ->
          let best = ref big in
          for i = 0 to l do
            let v = max ta.(i) tb.(l - i) in
            if v < !best then best := v
          done;
          !best)

let makespan_table tree ~budget =
  if budget < 0 then invalid_arg "Sp_exact: negative budget";
  table tree ~budget

let min_makespan tree ~budget =
  if budget < 0 then invalid_arg "Sp_exact: negative budget";
  (* recompute tables with allocation backtracking *)
  let rec solve tree =
    match tree with
    | Sp.Leaf d ->
        let t = Array.init (budget + 1) (fun l -> Duration.eval d l) in
        (t, fun l ->
          (* smallest resource achieving t.(l) *)
          let rec shrink r = if r > 0 && t.(r - 1) = t.(l) then shrink (r - 1) else r in
          Sp.Leaf (shrink l))
    | Sp.Series (a, b) ->
        let ta, alloc_a = solve a and tb, alloc_b = solve b in
        let t = Array.init (budget + 1) (fun l -> ta.(l) +! tb.(l)) in
        (t, fun l -> Sp.Series (alloc_a l, alloc_b l))
    | Sp.Parallel (a, b) ->
        let ta, alloc_a = solve a and tb, alloc_b = solve b in
        let split = Array.make (budget + 1) 0 in
        let t =
          Array.init (budget + 1) (fun l ->
              let best = ref big and arg = ref 0 in
              for i = 0 to l do
                let v = max ta.(i) tb.(l - i) in
                if v < !best then begin
                  best := v;
                  arg := i
                end
              done;
              split.(l) <- !arg;
              !best)
        in
        (t, fun l -> Sp.Parallel (alloc_a split.(l), alloc_b (l - split.(l))))
  in
  let t, alloc = solve tree in
  (t.(budget), alloc budget)

let min_resource tree ~target =
  (* the makespan cannot improve past every leaf's best time, reached at
     the sum of max useful resources *)
  let cap = List.fold_left (fun acc d -> acc + Duration.max_useful_resource d) 0 (Sp.leaves tree) in
  let t = table tree ~budget:cap in
  let rec find l = if l > cap then None else if t.(l) <= target then Some l else find (l + 1) in
  find 0
