lib/core/nonreusable.mli: Exact Problem Rat Rtt_num
