lib/core/io.mli: Problem
