lib/core/io.ml: Array Buffer Dag Duration Fun Hashtbl List Printf Problem Rtt_dag Rtt_duration String
