lib/core/sp_exact.ml: Array Duration List Rtt_dag Rtt_duration Sp
