lib/core/bicriteria.mli: Lp_relax Problem Rat Rounding Rtt_num Transform
