lib/core/transform.mli: Dag Problem Rat Rtt_dag Rtt_num
