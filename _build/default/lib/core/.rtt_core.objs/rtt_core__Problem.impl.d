lib/core/problem.ml: Array Binary_split Dag Duration Format Kway Rtt_dag Rtt_duration
