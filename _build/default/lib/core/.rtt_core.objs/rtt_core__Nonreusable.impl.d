lib/core/nonreusable.ml: Array Dag Duration Exact Linexpr List Longest_path Lp Lp_relax Problem Rat Rtt_dag Rtt_duration Rtt_lp Rtt_num Transform
