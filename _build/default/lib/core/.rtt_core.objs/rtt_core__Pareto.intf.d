lib/core/pareto.mli: Problem
