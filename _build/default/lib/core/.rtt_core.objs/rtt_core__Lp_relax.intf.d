lib/core/lp_relax.mli: Rat Rtt_num Transform
