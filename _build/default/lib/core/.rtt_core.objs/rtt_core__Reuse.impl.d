lib/core/reuse.ml: Array List Problem Schedule
