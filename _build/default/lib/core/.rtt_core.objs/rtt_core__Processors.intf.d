lib/core/processors.mli: Problem Schedule
