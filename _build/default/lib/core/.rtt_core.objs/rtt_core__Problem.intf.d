lib/core/problem.mli: Dag Duration Format Rtt_dag Rtt_duration
