lib/core/schedule.mli: Dag Problem Rtt_dag
