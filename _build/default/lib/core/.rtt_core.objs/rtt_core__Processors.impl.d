lib/core/processors.ml: Array Dag Fun List Longest_path Problem Rtt_dag Schedule
