lib/core/transform.ml: Array Dag Duration List Printf Problem Rat Rtt_dag Rtt_duration Rtt_num
