lib/core/binary_bicriteria.ml: Array Duration Lp_relax Problem Rat Rtt_duration Rtt_num Schedule Transform
