lib/core/binary_bicriteria.mli: Lp_relax Problem Rat Rtt_num
