lib/core/pareto.ml: Binary_bicriteria Exact List Problem
