lib/core/schedule.ml: Array Dag Decompose Duration List Longest_path Maxflow Minflow Problem Rtt_dag Rtt_duration Rtt_flow
