lib/core/binary_approx.mli: Bicriteria Problem Rtt_num
