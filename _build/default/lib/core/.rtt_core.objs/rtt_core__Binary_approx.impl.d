lib/core/binary_approx.ml: Array Bicriteria Duration Lp_relax Problem Rat Rounding Rtt_duration Rtt_num Schedule Transform
