lib/core/kway_approx.mli: Bicriteria Problem Rtt_num
