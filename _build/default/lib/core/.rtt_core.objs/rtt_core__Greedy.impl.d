lib/core/greedy.ml: Array Duration List Problem Rtt_duration Schedule
