lib/core/exact.mli: Problem
