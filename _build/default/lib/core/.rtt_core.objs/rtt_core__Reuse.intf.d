lib/core/reuse.mli: Problem Schedule
