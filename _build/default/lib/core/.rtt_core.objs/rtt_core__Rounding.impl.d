lib/core/rounding.ml: Array Dag Lp_relax Maxflow Minflow Rat Rtt_dag Rtt_flow Rtt_num Transform
