lib/core/greedy.mli: Problem
