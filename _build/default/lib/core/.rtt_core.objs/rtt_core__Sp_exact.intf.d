lib/core/sp_exact.mli: Duration Rtt_dag Rtt_duration Sp
