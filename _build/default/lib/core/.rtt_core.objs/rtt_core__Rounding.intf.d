lib/core/rounding.mli: Lp_relax Rat Rtt_num Transform
