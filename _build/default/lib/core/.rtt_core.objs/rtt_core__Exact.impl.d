lib/core/exact.ml: Array Duration List Longest_path Problem Rtt_dag Rtt_duration Schedule
