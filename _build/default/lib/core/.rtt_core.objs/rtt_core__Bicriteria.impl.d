lib/core/bicriteria.ml: Array List Lp_relax Rat Rounding Rtt_num Transform
