lib/core/lp_relax.ml: Array Dag Linexpr List Lp Printf Rat Rtt_dag Rtt_lp Rtt_num Transform
