open Rtt_dag
open Rtt_duration
open Rtt_num
open Rtt_lp

type t = {
  lp_makespan : Rat.t;
  lp_budget_used : Rat.t;
  makespan : int;
  budget_used : int;
  allocation : int array;
  makespan_bound : Rat.t;
  budget_bound : Rat.t;
}

(* Skutella-style LP on D'': per-edge upgrade amounts x_e in [0, r_e],
   sum over all edges <= B, event-time precedence constraints. Unlike
   LP 6-10 there is no flow conservation - an upgrade is consumed. *)
let lp_relax (tr : Transform.t) ~budget =
  let lp = Lp.create () in
  let ne = Array.length tr.Transform.edges in
  let nv = Dag.n_vertices tr.Transform.graph in
  let xv =
    Array.map
      (fun (e : Transform.edge) -> match e.Transform.upgrade with Some _ -> Some (Lp.var lp "x") | None -> None)
      tr.Transform.edges
  in
  let tv = Array.init nv (fun _ -> Lp.var lp "T") in
  let tx v = Linexpr.var (Lp.var_index tv.(v)) in
  Lp.add_eq lp (tx tr.Transform.source) (Linexpr.const Rat.zero);
  Array.iteri
    (fun i (e : Transform.edge) ->
      let dur =
        match (e.Transform.upgrade, xv.(i)) with
        | Some r, Some x ->
            Lp.add_le lp (Linexpr.var (Lp.var_index x)) (Linexpr.const (Rat.of_int r));
            let slope = Rat.div (Rat.of_int e.Transform.t0) (Rat.of_int r) in
            Linexpr.add
              (Linexpr.const (Rat.of_int e.Transform.t0))
              (Linexpr.scale (Rat.neg slope) (Linexpr.var (Lp.var_index x)))
        | _ -> Linexpr.const (Rat.of_int e.Transform.t0)
      in
      Lp.add_le lp (Linexpr.add (tx e.Transform.src) dur) (tx e.Transform.dst))
    tr.Transform.edges;
  let total =
    Array.fold_left
      (fun acc x -> match x with Some x -> Linexpr.add acc (Linexpr.var (Lp.var_index x)) | None -> acc)
      Linexpr.zero xv
  in
  Lp.add_le lp total (Linexpr.const (Rat.of_int budget));
  match Lp.minimize lp (tx tr.Transform.sink) with
  | Lp.Optimal s ->
      let x_of i = match xv.(i) with Some x -> s.Lp.value x | None -> Rat.zero in
      (Array.init ne x_of, s.Lp.value tv.(tr.Transform.sink), s.Lp.expr_value total)
  | Lp.Infeasible | Lp.Unbounded -> assert false (* zero upgrades always feasible *)

let min_makespan p ~budget ~alpha =
  if budget < 0 then invalid_arg "Nonreusable.min_makespan: negative budget";
  if Rat.(alpha <= Rat.zero) || Rat.(alpha >= Rat.one) then
    invalid_arg "Nonreusable.min_makespan: alpha must be in (0, 1)";
  let tr = Transform.of_problem p in
  let x, lp_makespan, lp_budget = lp_relax tr ~budget in
  (* alpha-rounding, exactly as in Section 3.1 *)
  let upgraded =
    Array.mapi
      (fun i (e : Transform.edge) ->
        match e.Transform.upgrade with
        | None -> false
        | Some _ ->
            let t = Lp_relax.edge_duration e x.(i) in
            Rat.(t < Rat.mul alpha (Rat.of_int e.Transform.t0)))
      tr.Transform.edges
  in
  let allocation = Transform.allocation_of_upgrades tr ~upgraded:(fun i -> upgraded.(i)) in
  let makespan =
    Transform.makespan_with tr ~edge_time:(fun i ->
        if upgraded.(i) then 0 else tr.Transform.edges.(i).Transform.t0)
  in
  let budget_used = Array.fold_left ( + ) 0 allocation in
  {
    lp_makespan;
    lp_budget_used = lp_budget;
    makespan;
    budget_used;
    allocation;
    makespan_bound = Rat.div lp_makespan alpha;
    budget_bound = Rat.div lp_budget (Rat.sub Rat.one alpha);
  }

let satisfies_guarantees t =
  Rat.(Rat.of_int t.makespan <= t.makespan_bound)
  && Rat.(Rat.of_int t.budget_used <= t.budget_bound)

let exact ?(max_states = 2_000_000) (p : Problem.t) ~budget =
  if budget < 0 then invalid_arg "Nonreusable.exact: negative budget";
  let n = Problem.n_jobs p in
  let options =
    Array.init n (fun v ->
        List.filter (fun (r, _) -> r <= budget) (Duration.tuples p.Problem.durations.(v)))
  in
  let states =
    Array.fold_left (fun acc o -> if acc > max_states then acc else acc * max 1 (List.length o)) 1 options
  in
  if states > max_states then raise (Exact.Too_large states);
  let best = ref { Exact.makespan = max_int; budget_used = 0; allocation = Array.make n 0 } in
  let alloc = Array.make n 0 and time = Array.make n 0 in
  let rec go v spent =
    if spent > budget then ()
    else if v = n then begin
      let ms = Longest_path.makespan p.Problem.dag ~weight:(fun u -> time.(u)) in
      if ms < !best.Exact.makespan then
        best := { Exact.makespan = ms; budget_used = spent; allocation = Array.copy alloc }
    end
    else
      List.iter
        (fun (r, t) ->
          alloc.(v) <- r;
          time.(v) <- t;
          go (v + 1) (spent + r))
        options.(v)
  in
  go 0 0;
  assert (!best.Exact.makespan < max_int);
  !best
