type budgets = { none : int; over_paths : int; global : int }

let no_reuse_budget (p : Problem.t) alloc =
  ignore p;
  Array.fold_left ( + ) 0 alloc

let global_reuse_budget (p : Problem.t) alloc =
  let durations = Schedule.durations_at p alloc in
  let finish = Schedule.finish_times p alloc in
  (* job v holds alloc.(v) units during [finish - duration, finish);
     zero-duration jobs hold nothing *)
  let events = ref [] in
  Array.iteri
    (fun v r ->
      if r > 0 && durations.(v) > 0 then begin
        events := (finish.(v) - durations.(v), r) :: (finish.(v), -r) :: !events
      end)
    alloc;
  (* releases sort before acquisitions at the same instant: the manager
     reclaims before it hands out *)
  let ordered = List.sort compare !events in
  let peak = ref 0 and cur = ref 0 in
  List.iter
    (fun (_, delta) ->
      cur := !cur + delta;
      if !cur > !peak then peak := !cur)
    ordered;
  !peak

let budgets p alloc =
  {
    none = no_reuse_budget p alloc;
    over_paths = Schedule.min_budget p alloc;
    global = global_reuse_budget p alloc;
  }
