open Rtt_dag
open Rtt_duration

let to_string (p : Problem.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "vertices %d\n" (Problem.n_jobs p));
  Array.iteri
    (fun v d ->
      if not (Duration.is_constant d) || Duration.base_time d <> 0 then begin
        Buffer.add_string buf (Printf.sprintf "duration %d" v);
        List.iter (fun (r, t) -> Buffer.add_string buf (Printf.sprintf " %d:%d" r t)) (Duration.tuples d);
        Buffer.add_char buf '\n'
      end)
    p.Problem.durations;
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v)) (Dag.edges p.Problem.dag);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let durations = Hashtbl.create 16 in
  let edges = ref [] in
  let fail line msg = invalid_arg (Printf.sprintf "Io.of_string: %s in %S" msg line) in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | [ "vertices"; k ] -> (
            match int_of_string_opt k with
            | Some k when k > 0 -> n := k
            | _ -> fail line "bad vertex count")
        | "duration" :: v :: tuples -> (
            match int_of_string_opt v with
            | Some v ->
                let parse_tuple w =
                  match String.split_on_char ':' w with
                  | [ r; t ] -> (
                      match (int_of_string_opt r, int_of_string_opt t) with
                      | Some r, Some t -> (r, t)
                      | _ -> fail line "bad tuple")
                  | _ -> fail line "bad tuple"
                in
                Hashtbl.replace durations v (Duration.make (List.map parse_tuple tuples))
            | None -> fail line "bad vertex")
        | [ "edge"; u; v ] -> (
            match (int_of_string_opt u, int_of_string_opt v) with
            | Some u, Some v -> edges := (u, v) :: !edges
            | _ -> fail line "bad edge")
        | _ -> fail line "unknown directive"
      end)
    lines;
  if !n < 0 then invalid_arg "Io.of_string: missing vertices directive";
  let g = Dag.of_edges ~n:!n (List.rev !edges) in
  Problem.make g ~durations:(fun v ->
      match Hashtbl.find_opt durations v with Some d -> d | None -> Duration.constant 0)

let write_file path p =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string p))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
