(** Evaluating allocations: schedules, makespans, and resource
    feasibility through min-flow.

    An {e allocation} assigns each vertex an integral resource amount.
    Under the paper's model an allocation is realizable with budget [B]
    iff there is an s–t flow of value at most [B] routing at least
    [alloc v] units through every vertex [v] — each resource unit
    travels one source→sink path and serves every job on it. That
    feasibility test is a min-flow with vertex lower bounds, solved on
    the split graph (v_in → v_out arcs carry the lower bounds). *)

open Rtt_dag

type allocation = int array
(** Resource units per vertex. *)

val durations_at : Problem.t -> allocation -> int array
(** Per-vertex completion time under the allocation. *)

val finish_times : Problem.t -> allocation -> int array
(** Earliest finish time of every vertex. *)

val makespan : Problem.t -> allocation -> int

val critical_path : Problem.t -> allocation -> int * Dag.vertex list

val min_budget : Problem.t -> allocation -> int
(** The minimum number of resource units that must enter at the source
    for the allocation to be realizable (min-flow with vertex lower
    bounds). *)

val min_budget_with_routing : Problem.t -> allocation -> int * (Dag.vertex list * int) list
(** Additionally decomposes the optimal flow into weighted source→sink
    paths over the original vertices — the explicit "each unit follows a
    path" routing of Question 1.3. *)

val feasible : Problem.t -> budget:int -> allocation -> bool
(** [min_budget p alloc <= budget]. *)

val zero_allocation : Problem.t -> allocation
