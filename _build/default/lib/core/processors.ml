open Rtt_dag

type t = { finish : int; processor_of_job : int array; start_times : int array }

let list_schedule (p : Problem.t) alloc ~processors =
  if processors < 1 then invalid_arg "Processors.list_schedule: processors < 1";
  let g = p.Problem.dag in
  let n = Problem.n_jobs p in
  let durations = Schedule.durations_at p alloc in
  (* critical-path priority: longest duration-weighted path to the sink *)
  let priority =
    let rev = Dag.transpose g in
    Longest_path.finish_times rev ~weight:(fun v -> durations.(v))
  in
  let indeg = Array.init n (fun v -> Dag.in_degree g v) in
  let ready = ref [] in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready := v :: !ready
  done;
  let sort_ready () = ready := List.sort (fun a b -> compare priority.(b) priority.(a)) !ready in
  sort_ready ();
  (* running jobs as (finish_time, job, processor); free processors as ids *)
  let running = ref [] in
  let free = ref (List.init processors Fun.id) in
  let processor_of_job = Array.make n (-1) in
  let start_times = Array.make n 0 in
  let clock = ref 0 in
  let completed = ref 0 in
  let overall = ref 0 in
  while !completed < n do
    (* start as many ready jobs as processors allow *)
    let rec start () =
      match (!ready, !free) with
      | v :: rest, pid :: more ->
          ready := rest;
          free := more;
          processor_of_job.(v) <- pid;
          start_times.(v) <- !clock;
          running := (!clock + durations.(v), v, pid) :: !running;
          start ()
      | _ -> ()
    in
    start ();
    (* advance to the earliest completion *)
    (match !running with
    | [] ->
        (* all processors idle and nothing ready with jobs pending: the
           DAG would have to be cyclic, which Problem.make excludes *)
        assert (!completed = n)
    | l ->
        let finish_at = List.fold_left (fun acc (f, _, _) -> min acc f) max_int l in
        clock := finish_at;
        let done_now, still = List.partition (fun (f, _, _) -> f = finish_at) l in
        running := still;
        List.iter
          (fun (f, v, pid) ->
            overall := max !overall f;
            free := pid :: !free;
            incr completed;
            List.iter
              (fun w ->
                indeg.(w) <- indeg.(w) - 1;
                if indeg.(w) = 0 then ready := w :: !ready)
              (Dag.succ g v))
          done_now;
        sort_ready ())
  done;
  { finish = !overall; processor_of_job; start_times }

let speedup_curve p alloc ~processors =
  List.map (fun k -> (k, (list_schedule p alloc ~processors:k).finish)) processors
