(** Parallel-MM (Figure 3) and its space–time tradeoff (Section 1).

    With every [Z[i][j]] behind a lock the fully parallel code needs
    [Θ(n)] time; a recursive binary reducer of height [h] on each
    [Z[i][j]] brings the update phase down to [ceil (n / 2^h) + h + 1]
    at a cost of [n² · 2^h] extra space — almost halving the running
    time at [h = 1] and reaching [Θ(log n)] at [h = floor (log2 n)]. *)

val span : n:int -> height:int -> int
(** Simulated time to fully compute all [Z[i][j]] with reducers of the
    given height ([height = 0] means plain locks): all [n] updates of a
    cell arrive simultaneously once the inputs are ready.
    @raise Invalid_argument on [n < 1] or negative height. *)

val serial_span : n:int -> int
(** [span ~n ~height:0 = n] plus the final write bookkeeping — the
    lock/atomic baseline of Section 1. *)

val extra_space : n:int -> height:int -> int
(** [n² · 2^h] for [h >= 1], 0 for [h = 0]. *)

val speedup : n:int -> height:int -> float
(** [serial_span /. span]. *)
