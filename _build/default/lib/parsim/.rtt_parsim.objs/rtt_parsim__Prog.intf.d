lib/parsim/prog.mli: Random
