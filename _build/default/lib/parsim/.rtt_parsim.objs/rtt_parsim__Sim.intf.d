lib/parsim/sim.mli: Dag Reducer_sim Rtt_dag
