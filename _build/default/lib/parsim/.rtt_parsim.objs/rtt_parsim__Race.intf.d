lib/parsim/race.mli: Format Prog
