lib/parsim/reducer_sim.ml: Array List
