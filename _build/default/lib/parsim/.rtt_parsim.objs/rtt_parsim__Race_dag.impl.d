lib/parsim/race_dag.ml: Array Dag Hashtbl List Printf Prog Rtt_dag
