lib/parsim/sim.ml: Array Dag List Reducer_sim Rtt_dag
