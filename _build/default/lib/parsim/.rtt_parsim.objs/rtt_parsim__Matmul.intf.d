lib/parsim/matmul.mli:
