lib/parsim/interp.mli: Prog
