lib/parsim/prog.ml: List Random
