lib/parsim/interp.ml: Array Hashtbl List Prog
