lib/parsim/race.ml: Array Format List Prog
