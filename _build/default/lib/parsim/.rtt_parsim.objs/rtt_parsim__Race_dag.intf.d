lib/parsim/race_dag.mli: Dag Hashtbl Prog Rtt_dag
