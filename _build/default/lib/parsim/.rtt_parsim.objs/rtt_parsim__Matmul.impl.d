lib/parsim/matmul.ml: List Reducer_sim
