lib/parsim/reducer_sim.mli:
