open Rtt_dag

type t = {
  dag : Dag.t;
  cell_of_vertex : Prog.cell array;
  vertex_of_cell : (Prog.cell, Dag.vertex) Hashtbl.t;
}

exception Cyclic_dependencies

let build p =
  let cells = Prog.cells p in
  let dag = Dag.create ~capacity:(List.length cells) () in
  let vertex_of_cell = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let v = Dag.add_vertex ~label:(Printf.sprintf "cell%d" c) dag in
      Hashtbl.add vertex_of_cell c v)
    cells;
  List.iter
    (fun (dst, srcs) ->
      let dv = Hashtbl.find vertex_of_cell dst in
      List.iter
        (fun s -> if s <> dst then Dag.add_edge dag (Hashtbl.find vertex_of_cell s) dv)
        srcs)
    (Prog.updates p);
  if not (Dag.is_dag dag) then raise Cyclic_dependencies;
  let cell_of_vertex = Array.make (Dag.n_vertices dag) 0 in
  Hashtbl.iter (fun c v -> cell_of_vertex.(v) <- c) vertex_of_cell;
  { dag; cell_of_vertex; vertex_of_cell }

let works t = Array.init (Dag.n_vertices t.dag) (fun v -> Dag.in_degree t.dag v)
