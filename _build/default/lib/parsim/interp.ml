type combine = dst:int -> srcs:int list -> int

(* Event model: update k expands to read event 2k and write event 2k+1.
   Constraints:
   - 2k before 2k+1 (an update reads before it writes);
   - if updates j and k are ordered by the program (not logically
     parallel, j first), then 2j+1 before 2k (the whole of j precedes
     the whole of k). *)

let store_of_prog init p =
  let tbl = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace tbl c (init c)) (Prog.cells p);
  tbl

let read tbl c = Hashtbl.find tbl c

let final tbl =
  List.sort compare (Hashtbl.fold (fun c v acc -> (c, v) :: acc) tbl [])

let run_sequential ?(init = fun _ -> 0) f p =
  let tbl = store_of_prog init p in
  List.iter
    (fun (dst, srcs) ->
      let v = f ~dst:(read tbl dst) ~srcs:(List.map (read tbl) srcs) in
      Hashtbl.replace tbl dst v)
    (Prog.updates p);
  final tbl

(* order matrix: ordered.(j).(k) = true when update j must fully precede
   update k *)
let order_matrix p =
  (* reuse Race's notion of logical parallelism by recomputing paths *)
  let rec label path acc = function
    | Prog.Update _ -> List.rev path :: acc
    | Prog.Seq l ->
        snd
          (List.fold_left (fun (i, acc) child -> (i + 1, label ((i, `S) :: path) acc child)) (0, acc) l)
    | Prog.Par l ->
        snd
          (List.fold_left (fun (i, acc) child -> (i + 1, label ((i, `P) :: path) acc child)) (0, acc) l)
  in
  let paths = Array.of_list (List.rev (label [] [] p)) in
  let n = Array.length paths in
  let parallel a b =
    let rec go pa pb =
      match (pa, pb) with
      | (ia, ka) :: ra, (ib, _) :: rb -> if ia = ib then go ra rb else ka = `P
      | _ -> false
    in
    go paths.(a) paths.(b)
  in
  Array.init n (fun j -> Array.init n (fun k -> j <> k && j < k && not (parallel j k)))

let validate_schedule p schedule =
  let updates = Array.of_list (Prog.updates p) in
  let n = Array.length updates in
  if List.length schedule <> 2 * n then invalid_arg "Interp.run_schedule: wrong length";
  let seen = Array.make (2 * n) false in
  List.iter
    (fun e ->
      if e < 0 || e >= 2 * n || seen.(e) then invalid_arg "Interp.run_schedule: not a permutation";
      seen.(e) <- true)
    schedule;
  let pos = Array.make (2 * n) 0 in
  List.iteri (fun i e -> pos.(e) <- i) schedule;
  let ordered = order_matrix p in
  for k = 0 to n - 1 do
    if pos.(2 * k) > pos.((2 * k) + 1) then invalid_arg "Interp.run_schedule: write before read"
  done;
  for j = 0 to n - 1 do
    for k = 0 to n - 1 do
      if ordered.(j).(k) && pos.((2 * j) + 1) > pos.(2 * k) then
        invalid_arg "Interp.run_schedule: violates program order"
    done
  done

let exec_schedule init f p schedule =
  let updates = Array.of_list (Prog.updates p) in
  let tbl = store_of_prog init p in
  let pending = Hashtbl.create 8 in
  (* pending: update index -> value to write *)
  List.iter
    (fun e ->
      let k = e / 2 in
      let dst, srcs = updates.(k) in
      if e mod 2 = 0 then
        Hashtbl.replace pending k (f ~dst:(read tbl dst) ~srcs:(List.map (read tbl) srcs))
      else Hashtbl.replace tbl dst (Hashtbl.find pending k))
    schedule;
  final tbl

let run_schedule ?(init = fun _ -> 0) f p ~schedule =
  validate_schedule p schedule;
  exec_schedule init f p schedule

let possible_outcomes ?(init = fun _ -> 0) ?(limit = 14) f p cell =
  let updates = Array.of_list (Prog.updates p) in
  let n = Array.length updates in
  if 2 * n > limit then invalid_arg "Interp.possible_outcomes: too many events";
  let ordered = order_matrix p in
  let outcomes = Hashtbl.create 8 in
  let schedule = Array.make (2 * n) 0 in
  let used = Array.make (2 * n) false in
  (* enumerate all linearizations by DFS *)
  let rec go depth =
    if depth = 2 * n then begin
      let result = exec_schedule init f p (Array.to_list schedule) in
      match List.assoc_opt cell result with
      | Some v -> Hashtbl.replace outcomes v ()
      | None -> ()
    end
    else
      for e = 0 to (2 * n) - 1 do
        if not used.(e) then begin
          let k = e / 2 in
          let enabled =
            if e mod 2 = 1 then used.(2 * k) (* write needs its read done *)
            else begin
              (* read needs all program-order predecessors fully done *)
              let ok = ref true in
              for j = 0 to n - 1 do
                if ordered.(j).(k) && not used.((2 * j) + 1) then ok := false
              done;
              !ok
            end
          in
          if enabled then begin
            used.(e) <- true;
            schedule.(depth) <- e;
            go (depth + 1);
            used.(e) <- false
          end
        end
      done
  in
  go 0;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) outcomes [])

let is_deterministic ?(init = fun _ -> 0) ?(limit = 14) f p =
  List.for_all
    (fun c -> List.length (possible_outcomes ~init ~limit f p c) <= 1)
    (Prog.cells p)
