open Rtt_dag

let finish_times g ~reducer =
  let order = Dag.topo_sort g in
  let finish = Array.make (Dag.n_vertices g) 0 in
  List.iter
    (fun v ->
      let arrivals = List.map (fun u -> finish.(u)) (Dag.pred g v) in
      finish.(v) <- Reducer_sim.finish_time ~arrivals (reducer v))
    order;
  finish

let makespan g ~reducer = Array.fold_left max 0 (finish_times g ~reducer)
let serial_makespan g = makespan g ~reducer:(fun _ -> Reducer_sim.Serial)

let space_used g ~reducer =
  List.fold_left (fun acc v -> acc + Reducer_sim.space (reducer v)) 0 (Dag.vertices g)
