type race = { cell : Prog.cell; op1 : int; op2 : int; write_write : bool }

(* Label every update with its path from the root (list of (child index,
   node kind)); the LCA kind decides logical parallelism. *)
type access = { idx : int; path : (int * [ `S | `P ]) list; dst : Prog.cell; srcs : Prog.cell list }

let accesses p =
  let acc = ref [] and counter = ref 0 in
  let rec go path = function
    | Prog.Update { dst; srcs } ->
        acc := { idx = !counter; path = List.rev path; dst; srcs } :: !acc;
        incr counter
    | Prog.Seq l -> List.iteri (fun i child -> go ((i, `S) :: path) child) l
    | Prog.Par l -> List.iteri (fun i child -> go ((i, `P) :: path) child) l
  in
  go [] p;
  List.rev !acc

let logically_parallel a b =
  let rec go pa pb =
    match (pa, pb) with
    | (ia, ka) :: ra, (ib, _) :: rb ->
        if ia = ib then go ra rb else ka = `P
    | _ -> false (* one is an ancestor of the other: ordered *)
  in
  go a.path b.path

let find p =
  let ops = Array.of_list (accesses p) in
  let n = Array.length ops in
  let races = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = ops.(i) and b = ops.(j) in
      if logically_parallel a b then begin
        (* conflicting cells: write-write on dst, or write-read *)
        let mentions op c = op.dst = c || List.mem c op.srcs in
        let writes op c = op.dst = c in
        let cells = List.sort_uniq compare ((a.dst :: a.srcs) @ (b.dst :: b.srcs)) in
        List.iter
          (fun c ->
            if mentions a c && mentions b c && (writes a c || writes b c) then
              races :=
                { cell = c; op1 = a.idx; op2 = b.idx; write_write = writes a c && writes b c }
                :: !races)
          cells
      end
    done
  done;
  List.sort compare !races

let has_race p = find p <> []

let race_free_cells p =
  let racy = List.sort_uniq compare (List.map (fun r -> r.cell) (find p)) in
  List.filter (fun c -> not (List.mem c racy)) (Prog.cells p)

let pp_race fmt r =
  Format.fprintf fmt "race on cell %d between ops %d and %d (%s)" r.cell r.op1 r.op2
    (if r.write_write then "write/write" else "read/write")
