type cell = int

type t = Update of { dst : cell; srcs : cell list } | Seq of t list | Par of t list

let update dst srcs = Update { dst; srcs }
let seq l = Seq l
let par l = Par l

let updates p =
  let rec go acc = function
    | Update { dst; srcs } -> (dst, srcs) :: acc
    | Seq l | Par l -> List.fold_left go acc l
  in
  List.rev (go [] p)

let n_updates p = List.length (updates p)

let cells p =
  let all = List.concat_map (fun (d, ss) -> d :: ss) (updates p) in
  List.sort_uniq compare all

let counter_race =
  (* x is cell 0; each thread reads x and writes x+1 back *)
  Par [ Update { dst = 0; srcs = [ 0 ] }; Update { dst = 0; srcs = [ 0 ] } ]

let z_cell ~n i j = (i * n) + j
let x_cell ~n i j = (n * n) + (i * n) + j
let y_cell ~n i j = (2 * n * n) + (i * n) + j

let parallel_mm ~n =
  Par
    (List.concat
       (List.init n (fun i ->
            List.init n (fun j ->
                Seq
                  (List.init n (fun k ->
                       Update { dst = z_cell ~n i j; srcs = [ x_cell ~n i k; y_cell ~n k j ] }))))))

let random rng ~updates ~cells =
  if updates < 1 || cells < 1 then invalid_arg "Prog.random";
  let op () =
    let dst = Random.State.int rng cells in
    let srcs =
      List.init (1 + Random.State.int rng 2) (fun _ -> Random.State.int rng cells)
    in
    Update { dst; srcs }
  in
  let rec build k =
    if k = 1 then op ()
    else begin
      let left = 1 + Random.State.int rng (k - 1) in
      let l = build left and r = build (k - left) in
      if Random.State.bool rng then Seq [ l; r ] else Par [ l; r ]
    end
  in
  build updates

let parallel_mm_racy ~n =
  Par
    (List.concat
       (List.init n (fun i ->
            List.init n (fun j ->
                Par
                  (List.init n (fun k ->
                       Update { dst = z_cell ~n i j; srcs = [ x_cell ~n i k; y_cell ~n k j ] }))))))
