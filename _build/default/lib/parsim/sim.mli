(** Event-driven schedule of a race DAG with per-node reducers.

    Finishing times follow the paper's fine-grained model: updates along
    the outgoing arcs of [x] trigger the moment [x] is fully updated;
    each node serializes the incoming writes through its lock (or its
    reducer, when allocated) with unit-cost updates and unbounded
    processors. This is sharper than the coarse
    [finish = ready + work] bound used by the makespan model
    ({!Rtt_dag.Longest_path}); Observation 1.1 says the coarse model is
    an upper bound, and {!finish_times} lets tests check exactly that.
    The Section 4.2 hardness gadgets (Tables 3) are computed with this
    scheduler. *)

open Rtt_dag

val finish_times : Dag.t -> reducer:(Dag.vertex -> Reducer_sim.reducer) -> int array
(** Earliest finish time of every node: source nodes finish at 0; any
    other node finishes when its reducer has absorbed one update per
    incoming arc, each arriving at its tail's finish time. *)

val makespan : Dag.t -> reducer:(Dag.vertex -> Reducer_sim.reducer) -> int

val serial_makespan : Dag.t -> int
(** All nodes lock-serialized, no reducers. *)

val space_used : Dag.t -> reducer:(Dag.vertex -> Reducer_sim.reducer) -> int
(** Total extra space of all reducers (no reuse accounted). *)
