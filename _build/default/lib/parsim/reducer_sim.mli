(** Discrete-event simulation of reducers (Figure 2 and Section 1).

    A node with a lock and a waiting queue serializes the unit-cost
    updates it receives; a reducer interposes extra cells so updates
    proceed in parallel. The simulation works from the arrival times of
    the incoming updates:

    - {e no reducer}: one queue; sorted arrivals [a_1 <= ... <= a_d]
      complete at [c_i = max (a_i, c_(i-1)) + 1];
    - {e binary reducer of height h} ([2^h] units of extra space, using
      the "sibling becomes its own parent" optimization so each of the
      [h] combining levels costs one write): updates are dealt
      round-robin to [2^h] leaf queues; each level's pair completes one
      write after both children finish; a final write applies the root's
      value to the shared variable. For [d] simultaneous arrivals this
      reproduces the paper's [ceil (d / 2^h) + h + 1];
    - {e k-way splitter} ([k] cells): round-robin to [k] queues, then
      [k] serialized writes into the node — [ceil (d / k) + k] for
      simultaneous arrivals (Equation 2).

    Simulated times agree with {!Rtt_duration} on simultaneous arrivals;
    with staggered arrivals the simulation is exact where the closed
    forms are only bounds. *)

type reducer = Serial | Binary of { height : int } | Kway of { ways : int }

val finish_time : arrivals:int list -> reducer -> int
(** Completion time of the last write into the node; [0] when there are
    no arrivals (source cells).
    @raise Invalid_argument on negative arrivals, height, or [ways < 1]. *)

val space : reducer -> int
(** Extra space consumed: 0, [2^h], or [k]. *)

val reducer_of_allocation : int -> reducer
(** The best reducer buildable from [r] units under the binary
    discipline: [Serial] for [r <= 1], else height [floor (log2 r)]. *)
