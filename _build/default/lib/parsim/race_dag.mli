(** Building the race DAG [D(P)] of Section 1.

    Nodes are memory cells; a directed arc [x -> y] records that [y] is
    updated using the value stored at [x]. The in-degree of a node is
    (by the paper's convention) the number of updates it receives, which
    is also its work value. Programs with cyclic read-write dependencies
    between cells are rejected — the paper's model requires a DAG. *)

open Rtt_dag

type t = {
  dag : Dag.t;
  cell_of_vertex : Prog.cell array;
  vertex_of_cell : (Prog.cell, Dag.vertex) Hashtbl.t;
}

exception Cyclic_dependencies

val build : Prog.t -> t
(** One arc per (source, update) pair; a self-read (e.g. [x <- x + 1])
    does not create a self-loop — the paper treats successive updates to
    the same cell as the work accumulating at its node.
    @raise Cyclic_dependencies when the cell dependencies are cyclic. *)

val works : t -> int array
(** Per-vertex work = in-degree (number of incoming update arcs). *)
