(** Executing fork-join programs, sequentially and under adversarial
    interleavings — Figure 1 of the paper, made runnable.

    An update [dst <- f (dst, srcs)] is not atomic: it reads its inputs,
    computes, and writes back. Two logically parallel updates of the
    same cell can therefore interleave as read-read-write-write and lose
    one contribution — the lost-update anomaly behind the paper's
    motivating example ("the print statement will print an incorrect
    result (either 1 or 2)").

    The interpreter splits every update into a read event and a write
    event and explores schedules of these events that respect program
    order (within [Seq]) and the read-before-write order of each update;
    logically parallel events may interleave freely.

    The combining function is supplied by the caller:
    [f ~dst ~srcs] receives the value read from the destination cell and
    the values read from the source cells. The canonical increment is
    [fun ~dst ~srcs:_ -> dst + 1]. *)

type combine = dst:int -> srcs:int list -> int

val run_sequential : ?init:(Prog.cell -> int) -> combine -> Prog.t -> (Prog.cell * int) list
(** Executes updates in program order (the race-free semantics);
    returns the final store restricted to the cells the program touches,
    ascending. [init] defaults to [fun _ -> 0]. *)

val run_schedule :
  ?init:(Prog.cell -> int) -> combine -> Prog.t -> schedule:int list -> (Prog.cell * int) list
(** Executes under an explicit schedule: a permutation of event indices
    ([2k] is the read of update [k] in {!Prog.updates} order, [2k+1] its
    write).
    @raise Invalid_argument if the schedule is not a valid linearization
    (wrong length, duplicates, or violating program/read-write order). *)

val possible_outcomes : ?init:(Prog.cell -> int) -> ?limit:int -> combine -> Prog.t -> Prog.cell -> int list
(** All values the cell can hold after the program, over every valid
    interleaving (ascending, deduplicated). Exhaustive; the number of
    linearizations explodes, so programs beyond [limit] events
    (default 14, i.e. 7 updates) are rejected.
    @raise Invalid_argument when over the limit. *)

val is_deterministic : ?init:(Prog.cell -> int) -> ?limit:int -> combine -> Prog.t -> bool
(** Whether every touched cell has a unique outcome — agrees with
    {!Race.has_race} being [false] for programs whose updates actually
    conflict semantically. *)
