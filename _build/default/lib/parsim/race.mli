(** Determinacy-race detection on fork-join programs.

    Two update operations are {e logically parallel} when their lowest
    common ancestor in the program tree is a [Par] node. A determinacy
    race exists when two logically parallel operations touch the same
    cell and at least one writes it (Feng–Leiserson's definition, cited
    as [12, 24] in the paper). Detection here is the simple quadratic
    pairwise check — ample for the motivating examples. *)

type race = {
  cell : Prog.cell;
  op1 : int;  (** index into [Prog.updates] order *)
  op2 : int;
  write_write : bool;  (** both operations write the cell *)
}

val find : Prog.t -> race list
(** All races, lexicographic by (op1, op2, cell). *)

val has_race : Prog.t -> bool

val race_free_cells : Prog.t -> Prog.cell list
(** Cells accessed by the program that are involved in no race. *)

val pp_race : Format.formatter -> race -> unit
