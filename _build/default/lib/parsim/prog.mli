(** A tiny fork-join parallel-program representation (Section 1 of the
    paper).

    Programs are trees of sequential and parallel composition whose
    leaves are update operations: [update dst srcs] reads the cells
    [srcs] and combines them into [dst] with an associative-commutative
    operator (one unit of work, the paper's cost model). This is enough
    to express the paper's motivating examples — the racy double
    increment of Figure 1 and Parallel-MM of Figure 3 — and to derive
    the race DAG [D(P)]. *)

type cell = int

type t =
  | Update of { dst : cell; srcs : cell list }
  | Seq of t list
  | Par of t list

val update : cell -> cell list -> t
val seq : t list -> t
val par : t list -> t

val updates : t -> (cell * cell list) list
(** All update operations, in left-to-right program order. *)

val n_updates : t -> int

val cells : t -> cell list
(** Every cell mentioned, ascending, without duplicates. *)

val counter_race : t
(** Figure 1: two parallel threads each incrementing the shared cell 0
    — the canonical data race. *)

val parallel_mm : n:int -> t
(** Figure 3, Parallel-MM on n×n matrices: cells [0 .. n²-1] are [Z],
    [n² .. 2n²-1] are [X], [2n² .. 3n²-1] are [Y]; all (i, j) iterations
    are parallel and the inner k-loop sequentially updates [Z[i][j]] —
    racy if the k-loop were parallelized. *)

val parallel_mm_racy : n:int -> t
(** Parallel-MM with the inner k-loop also parallel — every [Z[i][j]]
    then carries [n] pairwise races. *)

val random : Random.State.t -> updates:int -> cells:int -> t
(** A random fork-join program: a random Seq/Par tree over [updates]
    update operations touching cells [0 .. cells-1] (each update reads
    one or two cells and writes one). For race/interpreter property
    tests. *)
