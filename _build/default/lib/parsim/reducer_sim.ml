type reducer = Serial | Binary of { height : int } | Kway of { ways : int }

(* one lock + queue: serialized unit-cost writes *)
let serialize arrivals =
  let sorted = List.sort compare arrivals in
  List.fold_left (fun clock a -> max clock a + 1) 0 sorted

let deal ~ways arrivals =
  let queues = Array.make ways [] in
  List.iteri (fun i a -> queues.(i mod ways) <- a :: queues.(i mod ways)) arrivals;
  queues

let finish_time ~arrivals reducer =
  List.iter (fun a -> if a < 0 then invalid_arg "Reducer_sim: negative arrival") arrivals;
  if arrivals = [] then 0
  else
    match reducer with
    | Serial -> serialize arrivals
    | Kway { ways } ->
        if ways < 1 then invalid_arg "Reducer_sim: ways < 1";
        if ways = 1 then serialize arrivals
        else begin
          let queues = deal ~ways arrivals in
          (* each non-empty split cell finishes its share, then writes
             into the node serially, arriving as soon as it is done *)
          let cell_done =
            List.filter_map
              (fun q -> if q = [] then None else Some (serialize q))
              (Array.to_list queues)
          in
          serialize cell_done
        end
    | Binary { height } ->
        if height < 0 then invalid_arg "Reducer_sim: negative height";
        if height = 0 then serialize arrivals
        else begin
          let leaves = 1 lsl height in
          let queues = deal ~ways:leaves arrivals in
          let level = ref (Array.to_list (Array.map serialize queues)) in
          (* combining: siblings merge one write after both are done
             (the earlier sibling becomes the parent) *)
          while List.length !level > 1 do
            let rec pair = function
              | a :: b :: rest -> (max a b + 1) :: pair rest
              | [ a ] -> [ a ]
              | [] -> []
            in
            level := pair !level
          done;
          (* final write of the root's value into the shared variable *)
          (match !level with [ t ] -> t + 1 | _ -> assert false)
        end

let space = function Serial -> 0 | Binary { height } -> 1 lsl height | Kway { ways } -> ways

let reducer_of_allocation r =
  if r <= 1 then Serial
  else begin
    let h = ref 0 and v = ref r in
    while !v > 1 do
      incr h;
      v := !v lsr 1
    done;
    Binary { height = !h }
  end
