let span ~n ~height =
  if n < 1 || height < 0 then invalid_arg "Matmul.span";
  (* X and Y are ready at time 0, so all n updates of every Z[i][j]
     arrive simultaneously; cells are independent, so the span is one
     cell's reducer time *)
  let arrivals = List.init n (fun _ -> 0) in
  let reducer = if height = 0 then Reducer_sim.Serial else Reducer_sim.Binary { height } in
  Reducer_sim.finish_time ~arrivals reducer

let serial_span ~n = span ~n ~height:0
let extra_space ~n ~height = if height = 0 then 0 else n * n * (1 lsl height)
let speedup ~n ~height = float_of_int (serial_span ~n) /. float_of_int (span ~n ~height)
