(* Sign-magnitude arbitrary-precision integers over 30-bit limbs.

   The magnitude is a little-endian [int array] with no trailing zero limb;
   the invariant is [sign = 0 <=> mag = [||]]. All limb products fit in a
   native int: (2^30-1)^2 + 2*(2^30-1) < 2^61. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers.                                                  *)

let mag_is_zero m = Array.length m = 0

let normalize_mag m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize_mag r

(* requires a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize_mag r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalize_mag r
  end

let mul_mag_small a k =
  (* k in [0, base) *)
  if k = 0 || mag_is_zero a then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * k) + !carry in
      r.(i) <- s land mask;
      carry := s lsr base_bits
    done;
    r.(la) <- !carry;
    normalize_mag r
  end

let add_mag_small a k =
  if k = 0 then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    Array.blit a 0 r 0 la;
    let carry = ref k in
    let i = ref 0 in
    while !carry <> 0 do
      let s = r.(!i) + !carry in
      r.(!i) <- s land mask;
      carry := s lsr base_bits;
      incr i
    done;
    normalize_mag r
  end

(* divmod of a magnitude by a small positive int; returns (quot, rem). *)
let divmod_mag_small a k =
  assert (k > 0 && k < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / k;
    r := cur mod k
  done;
  (normalize_mag q, !r)

let bitlen_mag a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let b = ref 0 and v = ref top in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    ((la - 1) * base_bits) + !b
  end

let shift_left_mag a k =
  if mag_is_zero a || k = 0 then Array.copy a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      if bits > 0 then r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr base_bits)
    done;
    normalize_mag r
  end

(* in-place logical shift right by one bit over the first [len] limbs *)
let shr1_inplace a len =
  for i = 0 to len - 1 do
    let lo = a.(i) lsr 1 in
    let hi = if i + 1 < len then (a.(i + 1) land 1) lsl (base_bits - 1) else 0 in
    a.(i) <- lo lor hi
  done

(* Binary long division of magnitudes: returns (quot, rem). *)
let divmod_mag a b =
  assert (not (mag_is_zero b));
  if cmp_mag a b < 0 then ([||], Array.copy a)
  else if Array.length b = 1 then begin
    let q, r = divmod_mag_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let shift = bitlen_mag a - bitlen_mag b in
    (* d = b lsl shift, kept in a scratch buffer wide enough for shr1 *)
    let d0 = shift_left_mag b shift in
    let width = Stdlib.max (Array.length a) (Array.length d0) + 1 in
    let d = Array.make width 0 in
    Array.blit d0 0 d 0 (Array.length d0);
    let rem = Array.make width 0 in
    Array.blit a 0 rem 0 (Array.length a);
    let q = Array.make (shift / base_bits + 1) 0 in
    let cmp_buf x y =
      (* compare two equal-width buffers as magnitudes *)
      let rec go i = if i < 0 then 0 else if x.(i) <> y.(i) then compare x.(i) y.(i) else go (i - 1) in
      go (width - 1)
    in
    let sub_buf x y =
      let borrow = ref 0 in
      for i = 0 to width - 1 do
        let v = x.(i) - y.(i) - !borrow in
        if v < 0 then begin
          x.(i) <- v + base;
          borrow := 1
        end else begin
          x.(i) <- v;
          borrow := 0
        end
      done;
      assert (!borrow = 0)
    in
    for i = shift downto 0 do
      if cmp_buf rem d >= 0 then begin
        sub_buf rem d;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end;
      shr1_inplace d width
    done;
    (normalize_mag q, normalize_mag rem)
  end

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                       *)

let mk sign mag = if mag_is_zero mag then zero else { sign; mag }

let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let rec of_int n =
  if n = 0 then zero
  else if n = Stdlib.min_int then
    (* abs would overflow; min_int = 2*(min_int/2) exactly *)
    let half = of_int (n / 2) in
    mk (-1) (add_mag half.mag half.mag)
  else begin
    let sign = if n > 0 then 1 else -1 in
    let rec limbs n acc = if n = 0 then List.rev acc else limbs (n lsr base_bits) ((n land mask) :: acc) in
    mk sign (Array.of_list (limbs (Stdlib.abs n) []))
  end

let sign x = x.sign
let is_zero x = x.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let neg x = mk (-x.sign) x.mag
let abs x = mk (Stdlib.abs x.sign) x.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (sub_mag a.mag b.mag)
    else mk b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = if a.sign = 0 || b.sign = 0 then zero else mk (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a k =
  if k = 0 || a.sign = 0 then zero
  else begin
    let s = if k > 0 then a.sign else -a.sign in
    let m = Stdlib.abs k in
    (* m < 0 only for min_int, which the slow path handles *)
    if m >= 0 && m < base then mk s (mul_mag_small a.mag m) else mul a (of_int k)
  end

let add_int a k =
  if k >= 0 && k < base && a.sign >= 0 then mk 1 (add_mag_small a.mag k) else add a (of_int k)

(* Euclidean divmod: remainder in [0, |b|). *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q_mag, r_mag = divmod_mag a.mag b.mag in
    let q0 = mk (a.sign * b.sign) q_mag and r0 = mk a.sign r_mag in
    if r0.sign >= 0 then (q0, r0)
    else if b.sign > 0 then (sub q0 one, add r0 b)
    else (add q0 one, sub r0 b)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow x n =
  if Stdlib.( < ) n 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (n lsr 1)
    end
  in
  go one x n

(* binary (Stein) gcd on magnitudes: far faster than Euclid here because
   divmod is bit-by-bit while shifts and subtraction are limb-wise *)
let count_trailing_zero_bits m =
  let i = ref 0 in
  while !i < Array.length m && m.(!i) = 0 do
    incr i
  done;
  if !i = Array.length m then 0
  else begin
    let limb = m.(!i) in
    let b = ref 0 in
    while limb land (1 lsl !b) = 0 do
      incr b
    done;
    (!i * base_bits) + !b
  end

let shift_right_mag m k =
  if mag_is_zero m || k = 0 then Array.copy m
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let lm = Array.length m in
    if limbs >= lm then [||]
    else begin
      let r = Array.make (lm - limbs) 0 in
      for i = 0 to lm - limbs - 1 do
        let lo = m.(i + limbs) lsr bits in
        let hi = if bits > 0 && i + limbs + 1 < lm then (m.(i + limbs + 1) lsl (base_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
      normalize_mag r
    end
  end

let gcd a b =
  let a = (abs a).mag and b = (abs b).mag in
  if mag_is_zero a then mk 1 b
  else if mag_is_zero b then mk 1 a
  else begin
    let za = count_trailing_zero_bits a and zb = count_trailing_zero_bits b in
    let shift = Stdlib.min za zb in
    let u = ref (shift_right_mag a za) and v = ref (shift_right_mag b zb) in
    (* both odd now *)
    while not (mag_is_zero !v) do
      let c = cmp_mag !u !v in
      if Stdlib.( > ) c 0 then begin
        let t = !u in
        u := !v;
        v := t
      end;
      (* v >= u, both odd: v - u is even *)
      let d = sub_mag !v !u in
      v := (if mag_is_zero d then d else shift_right_mag d (count_trailing_zero_bits d))
    done;
    mk 1 (shift_left_mag !u shift)
  end

let lcm a b = if is_zero a || is_zero b then zero else abs (div (mul a b) (gcd a b))

let to_int_opt x =
  (* accumulate negatively so that min_int round-trips *)
  let rec value i acc =
    (* invariant: acc <= 0 *)
    if Stdlib.( < ) i 0 then Some acc
    else if Stdlib.( < ) acc (Stdlib.min_int asr base_bits) then None
    else begin
      let shifted = acc lsl base_bits in
      let acc' = shifted - x.mag.(i) in
      if Stdlib.( > ) acc' shifted then None (* wrapped *) else value (i - 1) acc'
    end
  in
  match value (Array.length x.mag - 1) 0 with
  | None -> None
  | Some v ->
      if Stdlib.( < ) x.sign 0 then Some v
      else if Stdlib.( = ) v Stdlib.min_int then None
      else Some (-v)

let to_int x = match to_int_opt x with Some v -> v | None -> failwith "Bigint.to_int: overflow"

let to_float x =
  let f = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if Stdlib.( < ) x.sign 0 then -. !f else !f

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let chunks = ref [] in
    let m = ref x.mag in
    while not (mag_is_zero !m) do
      let q, r = divmod_mag_small !m 1_000_000_000 in
      chunks := r :: !chunks;
      m := q
    done;
    if Stdlib.( < ) x.sign 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let neg, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < n do
    let j = Stdlib.min n (!i + 9) in
    let len = j - !i in
    let chunk = String.sub s !i len in
    String.iter (fun c -> if Stdlib.( < ) c '0' || Stdlib.( > ) c '9' then invalid_arg "Bigint.of_string: bad digit") chunk;
    let v = int_of_string chunk in
    let scale = int_of_float (10.0 ** float_of_int len) in
    acc := add_int (mul_int !acc scale) v;
    i := j
  done;
  if neg then mk (- !acc.sign) !acc.mag else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
