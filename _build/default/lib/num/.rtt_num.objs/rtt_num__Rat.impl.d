lib/num/rat.ml: Bigint Format Stdlib String
