(** Arbitrary-precision signed integers.

    This module provides exact integer arithmetic of unbounded magnitude.
    It exists because the LP relaxation of Section 3.1 of the paper is
    solved with an exact rational simplex ({!Rat}, {!Rtt_lp.Simplex}), whose
    pivots can blow past the range of native 63-bit integers even on small
    instances. The representation is sign + magnitude, with the magnitude a
    little-endian array of 30-bit limbs.

    All operations are purely functional; values are immutable. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** [to_int x] is [x] as a native [int].
    @raise Failure if [x] does not fit. *)

val to_int_opt : t -> int option

val of_string : string -> t
(** Parses an optionally-signed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val to_float : t -> float
(** Nearest-double approximation; may overflow to infinity. *)

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: [divmod a b = (q, r)] with [a = q*b + r] and
    [0 <= r < |b|].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
(** Euclidean quotient. *)

val rem : t -> t -> t
(** Euclidean remainder, always non-negative. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow x n] for [n >= 0].
    @raise Invalid_argument if [n < 0]. *)

val gcd : t -> t -> t
(** Greatest common divisor, always non-negative. [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

(** {1 Infix operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
