type t = { n : Bigint.t; d : Bigint.t }
(* invariant: d > 0, gcd (n, d) = 1 *)

let mk_norm n d =
  if Bigint.is_zero d then raise Division_by_zero;
  let n, d = if Stdlib.( < ) (Bigint.sign d) 0 then (Bigint.neg n, Bigint.neg d) else (n, d) in
  if Bigint.is_zero n then { n = Bigint.zero; d = Bigint.one }
  else begin
    let g = Bigint.gcd n d in
    { n = Bigint.div n g; d = Bigint.div d g }
  end

let zero = { n = Bigint.zero; d = Bigint.one }
let one = { n = Bigint.one; d = Bigint.one }
let two = { n = Bigint.two; d = Bigint.one }
let half = { n = Bigint.one; d = Bigint.two }
let minus_one = { n = Bigint.minus_one; d = Bigint.one }
let of_bigint n = { n; d = Bigint.one }
let of_int i = of_bigint (Bigint.of_int i)
let make = mk_norm
let of_ints a b = mk_norm (Bigint.of_int a) (Bigint.of_int b)
let num x = x.n
let den x = x.d
let sign x = Bigint.sign x.n
let is_zero x = Bigint.is_zero x.n
let is_integer x = Bigint.equal x.d Bigint.one
let to_float x = Bigint.to_float x.n /. Bigint.to_float x.d

let to_bigint_floor x =
  (* Bigint.divmod is Euclidean (remainder >= 0), which is exactly floor
     division for positive denominators *)
  Bigint.div x.n x.d

let to_bigint_ceil x = Bigint.neg (Bigint.div (Bigint.neg x.n) x.d)
let to_int_floor x = Bigint.to_int (to_bigint_floor x)
let to_int_ceil x = Bigint.to_int (to_bigint_ceil x)

let to_string x =
  if is_integer x then Bigint.to_string x.n
  else Bigint.to_string x.n ^ "/" ^ Bigint.to_string x.d

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
      let a = Bigint.of_string (String.sub s 0 i) in
      let b = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      mk_norm a b

let compare a b = Bigint.compare (Bigint.mul a.n b.d) (Bigint.mul b.n a.d)
let equal a b = Stdlib.( = ) (compare a b) 0
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let neg x = { x with n = Bigint.neg x.n }
let abs x = { x with n = Bigint.abs x.n }

let add a b =
  mk_norm (Bigint.add (Bigint.mul a.n b.d) (Bigint.mul b.n a.d)) (Bigint.mul a.d b.d)

let sub a b =
  mk_norm (Bigint.sub (Bigint.mul a.n b.d) (Bigint.mul b.n a.d)) (Bigint.mul a.d b.d)

let mul a b = mk_norm (Bigint.mul a.n b.n) (Bigint.mul a.d b.d)
let div a b = if is_zero b then raise Division_by_zero else mk_norm (Bigint.mul a.n b.d) (Bigint.mul a.d b.n)
let inv x = div one x
let mul_int x k = mk_norm (Bigint.mul_int x.n k) x.d
let floor x = of_bigint (to_bigint_floor x)
let ceil x = of_bigint (to_bigint_ceil x)
let pp fmt x = Format.pp_print_string fmt (to_string x)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
