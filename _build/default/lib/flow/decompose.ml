type path = int list

let decompose ~n ~s ~t ~edges ~flow =
  if Array.length edges <> Array.length flow then invalid_arg "Decompose.decompose: length mismatch";
  Array.iter (fun f -> if f < 0 then invalid_arg "Decompose.decompose: negative flow") flow;
  (* conservation check *)
  let net = Array.make n 0 in
  Array.iteri
    (fun i (u, v) ->
      net.(u) <- net.(u) - flow.(i);
      net.(v) <- net.(v) + flow.(i))
    edges;
  for v = 0 to n - 1 do
    if v <> s && v <> t && net.(v) <> 0 then invalid_arg "Decompose.decompose: flow not conserved"
  done;
  (* adjacency of edges with remaining flow *)
  let remaining = Array.copy flow in
  let out = Array.make n [] in
  Array.iteri (fun i (u, _) -> out.(u) <- i :: out.(u)) edges;
  let result = ref [] in
  let rec walk v acc_edges =
    if v = t then List.rev acc_edges
    else begin
      match List.find_opt (fun i -> remaining.(i) > 0) out.(v) with
      | None -> invalid_arg "Decompose.decompose: stuck (flow not acyclic s-t?)"
      | Some i -> walk (snd edges.(i)) (i :: acc_edges)
    end
  in
  let continue = ref true in
  while !continue do
    if List.exists (fun i -> remaining.(i) > 0) out.(s) then begin
      let path_edges = walk s [] in
      let units = List.fold_left (fun acc i -> min acc remaining.(i)) max_int path_edges in
      List.iter (fun i -> remaining.(i) <- remaining.(i) - units) path_edges;
      let path = s :: List.map (fun i -> snd edges.(i)) path_edges in
      result := (path, units) :: !result
    end
    else continue := false
  done;
  if Array.exists (fun f -> f > 0) remaining then
    invalid_arg "Decompose.decompose: leftover flow not reachable from s";
  List.rev !result

let total paths = List.fold_left (fun acc (_, u) -> acc + u) 0 paths

let check ~edges ~flow paths =
  (* With parallel edges the per-copy split is not unique, so compare
     per-(u,v) totals rather than per-copy values. *)
  let add h key v =
    let cur = try Hashtbl.find h key with Not_found -> 0 in
    Hashtbl.replace h key (cur + v)
  in
  let expected = Hashtbl.create 16 in
  Array.iteri (fun i e -> add expected e flow.(i)) edges;
  let got = Hashtbl.create 16 in
  List.iter
    (fun (path, units) ->
      let rec go = function
        | u :: (v :: _ as rest) ->
            add got (u, v) units;
            go rest
        | _ -> ()
      in
      go path)
    paths;
  Hashtbl.fold
    (fun e v ok -> ok && v = (try Hashtbl.find got e with Not_found -> 0))
    expected true
  && Hashtbl.fold (fun e _ ok -> ok && Hashtbl.mem expected e) got true
