lib/flow/minflow.ml: Array Maxflow
