lib/flow/minflow.mli:
