lib/flow/decompose.ml: Array Hashtbl List
