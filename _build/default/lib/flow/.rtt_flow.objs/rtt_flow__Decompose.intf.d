lib/flow/decompose.mli:
