lib/flow/maxflow.mli:
