type edge_spec = { src : int; dst : int; lower : int; upper : int }
type result = { value : int; edge_flow : int array }

let validate ~n ~s ~t edges =
  if s = t then invalid_arg "Minflow.solve: s = t";
  if s < 0 || s >= n || t < 0 || t >= n then invalid_arg "Minflow.solve: bad terminal";
  Array.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then invalid_arg "Minflow.solve: bad endpoint";
      if e.lower < 0 || e.lower > e.upper then invalid_arg "Minflow.solve: bad bounds")
    edges

let solve ~n ~s ~t edges =
  validate ~n ~s ~t edges;
  (* vertices 0..n-1, super source n, super sink n+1 *)
  let g = Maxflow.create ~n:(n + 2) in
  let ss = n and tt = n + 1 in
  let excess = Array.make n 0 in
  let handles =
    Array.map
      (fun e ->
        excess.(e.dst) <- excess.(e.dst) + e.lower;
        excess.(e.src) <- excess.(e.src) - e.lower;
        Maxflow.add_edge g ~src:e.src ~dst:e.dst ~cap:(e.upper - e.lower))
      edges
  in
  (* close the circulation with t -> s *)
  let ts = Maxflow.add_edge g ~src:t ~dst:s ~cap:Maxflow.infinity in
  let demand = ref 0 in
  Array.iteri
    (fun v d ->
      if d > 0 then begin
        ignore (Maxflow.add_edge g ~src:ss ~dst:v ~cap:d);
        demand := !demand + d
      end
      else if d < 0 then ignore (Maxflow.add_edge g ~src:v ~dst:tt ~cap:(-d)))
    excess;
  let pushed = Maxflow.max_flow g ~s:ss ~t:tt in
  if pushed <> !demand then None
  else begin
    (* Feasible. The s-t value so far is the flow on the closing arc.
       Freeze its forward direction and cancel as much value as possible
       by pushing from t to s through the residual network. *)
    let v0 = Maxflow.flow g ts in
    Maxflow.freeze_edge g ts;
    let cancelled = Maxflow.max_flow g ~s:t ~t:s in
    let edge_flow = Array.map (fun h -> Maxflow.flow g h) handles in
    Array.iteri (fun i f -> edge_flow.(i) <- edges.(i).lower + f) edge_flow;
    Some { value = v0 - cancelled; edge_flow }
  end

let is_feasible ~n ~s ~t edges flow_values =
  Array.length edges = Array.length flow_values
  && begin
       let net = Array.make n 0 in
       let ok = ref true in
       Array.iteri
         (fun i e ->
           let f = flow_values.(i) in
           if f < e.lower || f > e.upper then ok := false;
           net.(e.src) <- net.(e.src) - f;
           net.(e.dst) <- net.(e.dst) + f)
         edges;
       !ok
       && begin
            let balanced = ref true in
            for v = 0 to n - 1 do
              if v <> s && v <> t && net.(v) <> 0 then balanced := false
            done;
            !balanced && net.(s) <= 0 && net.(s) = -net.(t)
          end
     end
