(** Decomposition of an integral acyclic s–t flow into weighted paths.

    The paper's model routes every unit of resource along a single
    source→sink path (Question 1.3); a min-flow solution only gives
    per-edge totals. This module recovers an explicit routing: a list of
    (path, units) pairs whose per-edge sums equal the input flow. The
    flow must live on a DAG (flow on DAGs is always acyclic, so no cycle
    cancelling is needed). *)

type path = int list
(** Vertices in source→sink order. *)

val decompose :
  n:int -> s:int -> t:int -> edges:(int * int) array -> flow:int array -> (path * int) list
(** [decompose ~n ~s ~t ~edges ~flow] splits the flow into at most
    [Array.length edges] weighted s–t paths. The [flow] array is indexed
    like [edges] and must satisfy conservation at every vertex other than
    [s] and [t].
    @raise Invalid_argument if the flow is negative somewhere or not
    conserved. *)

val total : (path * int) list -> int
(** Sum of path weights, i.e. the flow value. *)

val check : edges:(int * int) array -> flow:int array -> (path * int) list -> bool
(** Verifies that the decomposition re-sums exactly to the given flow. *)
