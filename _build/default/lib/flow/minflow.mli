(** Minimum s–t flow with per-edge lower bounds (LP 11–13 of the paper).

    The rounding step of Section 3.1 produces an integral resource
    requirement [f'_e] per edge and then asks for the cheapest flow that
    routes at least [f'_e] units through every edge [e]. Because the
    constraint matrix is a network matrix, the optimum is integral
    (the paper's Lemma 3.3); we obtain it combinatorially with two
    max-flow phases: first find any feasible circulation meeting the
    lower bounds (super-source/super-sink construction), then cancel as
    much s–t value as possible by running max-flow from t to s in the
    residual network. *)

type edge_spec = {
  src : int;
  dst : int;
  lower : int;  (** minimum units that must traverse this edge *)
  upper : int;  (** capacity; use [Maxflow.infinity] for unbounded *)
}

type result = {
  value : int;  (** total s–t flow value *)
  edge_flow : int array;  (** flow per input edge, same order as input *)
}

val solve : n:int -> s:int -> t:int -> edge_spec array -> result option
(** [solve ~n ~s ~t edges] is the minimum-value s–t flow meeting every
    bound, or [None] when the bounds are infeasible.
    @raise Invalid_argument on malformed specs ([lower < 0],
    [lower > upper], bad endpoints, or [s = t]). *)

val is_feasible : n:int -> s:int -> t:int -> edge_spec array -> int array -> bool
(** Checks conservation and bounds of a candidate flow assignment
    (used by tests and by the brute-force exact solver). *)
