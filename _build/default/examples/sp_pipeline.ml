(* Exact resource planning for a series-parallel workload (Section 3.4):
   a build-like pipeline of stages, some sequential, some parallel, each
   stage a reducible job; the O(m B^2) DP finds the true optimum for
   every budget and the cheapest budget for a deadline.

     dune exec examples/sp_pipeline.exe *)

open Rtt_dag
open Rtt_core

let () =
  (* pipeline: ingest ; (parse | validate) ; (index | stats | compress) ; publish *)
  let job name work = (name, Sp.leaf (Rtt_duration.Binary_split.to_duration ~work)) in
  let names = Hashtbl.create 8 in
  let mk name work =
    let n, l = job name work in
    Hashtbl.replace names (Sp.leaves l) n;
    l
  in
  let tree =
    Sp.series_of_list
      [
        mk "ingest" 24;
        Sp.parallel (mk "parse" 40) (mk "validate" 16);
        Sp.parallel_of_list [ mk "index" 32; mk "stats" 20; mk "compress" 28 ];
        mk "publish" 8;
      ]
  in
  let stage_names = [ "ingest"; "parse"; "validate"; "index"; "stats"; "compress"; "publish" ] in
  Format.printf "pipeline with %d stages: %s@.@." (Sp.size tree) (String.concat ", " stage_names);

  (* budget sweep *)
  Format.printf "%8s %10s %s@." "budget" "makespan" "per-stage allocation";
  List.iter
    (fun budget ->
      let ms, alloc = Sp_exact.min_makespan tree ~budget in
      let allocs = Sp.leaves alloc in
      Format.printf "%8d %10d %s@." budget ms
        (String.concat " " (List.map2 (fun n a -> Printf.sprintf "%s=%d" n a) stage_names allocs)))
    [ 0; 2; 4; 8; 16; 32 ];

  (* deadline planning *)
  Format.printf "@.cheapest budget per deadline:@.";
  List.iter
    (fun target ->
      match Sp_exact.min_resource tree ~target with
      | Some b -> Format.printf "  deadline %3d -> %d units@." target b
      | None -> Format.printf "  deadline %3d -> unreachable@." target)
    [ 150; 120; 100; 80; 60; 40 ];

  (* cross-check against the generic exact solver on the induced DAG *)
  let g, jobs = Sp.to_dag tree in
  let p = Problem.make g ~durations:(fun v -> jobs.(v)) in
  let dp, _ = Sp_exact.min_makespan tree ~budget:8 in
  let brute = (Exact.min_makespan p ~budget:8).Exact.makespan in
  Format.printf "@.DP vs brute force at B=8: %d = %d (%b)@." dp brute (dp = brute)
