(* The Section 4.1 hardness gadgets, run as an executable construction:
   reduce the paper's example formula (Figure 9), decide it through the
   DAG, and exhibit the factor-2 makespan gap of Theorem 4.3.

     dune exec examples/sat_hardness.exe *)

open Rtt_core
open Rtt_reductions

let () =
  let f = Sat.example_paper in
  Format.printf "formula (Figure 9): %a@." Sat.pp f;
  let red = Gadget_general.reduce f in
  Format.printf "reduced DAG: %d jobs, budget n+2m = %d, target makespan %d@."
    (Problem.n_jobs red.Gadget_general.instance.Aoa.problem)
    red.Gadget_general.budget red.Gadget_general.target;

  (* decide through the reduction *)
  (match Gadget_general.decide_by_assignments red with
  | Some a ->
      Format.printf "YES instance - assignment: %s@."
        (String.concat ""
           (List.mapi (fun i b -> Printf.sprintf "V%d=%c " i (if b then 'T' else 'F')) (Array.to_list a)
           |> List.map Fun.id));
      Format.printf "  achieves makespan %d within budget (min-flow %d)@."
        (Gadget_general.makespan_of_assignment red a)
        (Schedule.min_budget red.Gadget_general.instance.Aoa.problem
           (Gadget_general.allocation_of_assignment red a))
  | None -> Format.printf "NO instance@.");

  (* the approximation gap: every invalid assignment is stuck at 2 *)
  Format.printf "@.makespan per assignment (1 iff exactly-one-true everywhere):@.";
  for mask = 0 to 7 do
    let a = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
    Format.printf "  %c%c%c -> makespan %d %s@."
      (if a.(0) then 'T' else 'F')
      (if a.(1) then 'T' else 'F')
      (if a.(2) then 'T' else 'F')
      (Gadget_general.makespan_of_assignment red a)
      (if Sat.satisfies f a then "(satisfying)" else "")
  done;

  (* an unsatisfiable formula shows the other side of the gap *)
  let unsat = Sat.make ~n_vars:3 [ [ (0, true); (0, true); (0, true) ] ] in
  let red2 = Gadget_general.reduce unsat in
  Format.printf "@.unsatisfiable formula %a: best assignment makespan >= 2? %b@." Sat.pp unsat
    (Gadget_general.decide_by_assignments red2 = None);
  Format.printf
    "=> a sub-2-factor approximation would decide 1-in-3SAT (Theorem 4.3).@.";

  (* same story for the minimum-resource objective (Theorem 4.4) *)
  let mr_sat = Minresource_red.reduce f and mr_unsat = Minresource_red.reduce unsat in
  Format.printf "@.minimum-resource reduction (Theorem 4.4): satisfiable needs %d units, unsatisfiable %d@."
    (Minresource_red.min_units mr_sat) (Minresource_red.min_units mr_unsat);
  Format.printf "=> a sub-3/2-factor resource approximation is NP-hard.@."
