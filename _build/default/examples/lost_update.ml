(* Figure 1, executed: enumerate every interleaving of the racy double
   increment and watch the lost update appear; then check that the
   sequential (or reducer-mediated) semantics is deterministic.

     dune exec examples/lost_update.exe *)

open Rtt_parsim

let incr : Interp.combine = fun ~dst ~srcs:_ -> dst + 1

let show outcomes = String.concat ", " (List.map string_of_int outcomes)

let () =
  Format.printf "Figure 1: two parallel threads execute x <- x + 1 (x starts at 0)@.@.";
  let p = Prog.counter_race in
  Format.printf "races detected statically: %d@." (List.length (Race.find p));
  Format.printf "possible final values of x over all interleavings: {%s}@."
    (show (Interp.possible_outcomes incr p 0));
  Format.printf "  (the paper: \"the print statement will print an incorrect result (either 1 or 2)\")@.@.";

  (* replay the exact losing schedule: both threads read before either writes *)
  let lost = Interp.run_schedule incr p ~schedule:[ 0; 2; 1; 3 ] in
  Format.printf "read-read-write-write schedule: x = %d (the lost update)@." (List.assoc 0 lost);
  let ok = Interp.run_schedule incr p ~schedule:[ 0; 1; 2; 3 ] in
  Format.printf "serialized schedule:            x = %d@.@." (List.assoc 0 ok);

  (* more threads, more ways to lose *)
  List.iter
    (fun k ->
      let p = Prog.par (List.init k (fun _ -> Prog.update 0 [ 0 ])) in
      Format.printf "%d parallel increments -> outcomes {%s}@." k
        (show (Interp.possible_outcomes incr p 0)))
    [ 2; 3; 4 ];

  (* the fix: serialize (what a lock does), or use a reducer tree *)
  let serialized = Prog.seq (List.init 4 (fun _ -> Prog.update 0 [ 0 ])) in
  Format.printf "@.4 sequenced increments -> outcomes {%s} (deterministic: %b)@."
    (show (Interp.possible_outcomes incr serialized 0))
    (Interp.is_deterministic incr serialized);
  Format.printf
    "@.A lock restores determinism at the cost of serialization: that cost is what@.";
  Format.printf
    "reducers buy back, and what the whole resource-time tradeoff problem is about.@."
