(* The Parallel-MM space-time tradeoff of Section 1 (Figure 3): how
   reducer height trades extra space for update-phase span.

     dune exec examples/matmul_reducers.exe *)

open Rtt_parsim

let () =
  Format.printf "Parallel-MM (Figure 3): n x n matrix multiply, reducers on every Z[i][j]@.@.";
  List.iter
    (fun n ->
      Format.printf "n = %d (lock-only span: %d)@." n (Matmul.serial_span ~n);
      Format.printf "  %8s %10s %14s %10s@." "height" "span" "extra space" "speedup";
      let hmax = int_of_float (Float.log2 (float_of_int n)) in
      for h = 0 to hmax do
        Format.printf "  %8d %10d %14d %9.2fx@." h (Matmul.span ~n ~height:h)
          (Matmul.extra_space ~n ~height:h) (Matmul.speedup ~n ~height:h)
      done;
      Format.printf "@.")
    [ 16; 64; 256 ];
  Format.printf "The paper's headline points:@.";
  let n = 256 in
  Format.printf "- h=1 almost halves the running time using 2n^2 = %d extra cells: %d -> %d@."
    (2 * n * n) (Matmul.serial_span ~n) (Matmul.span ~n ~height:1);
  Format.printf "- h=log n reaches Theta(log n) using Theta(n^3) cells: span %d for n=%d@."
    (Matmul.span ~n ~height:8) n
