(* Determinacy races and race DAGs (Section 1, Figures 1 and 4):
   detect the races of a fork-join program, build its race DAG D(P),
   and mitigate the hot spots with reducers under a space budget.

     dune exec examples/race_detect.exe *)

open Rtt_dag
open Rtt_parsim
open Rtt_core

let () =
  (* Figure 1: the racy double increment *)
  Format.printf "Figure 1 - two parallel increments of x:@.";
  List.iter (fun r -> Format.printf "  %a@." Race.pp_race r) (Race.find Prog.counter_race);

  (* Parallel-MM with a parallelized inner loop races on every Z cell *)
  let n = 3 in
  let racy = Prog.parallel_mm_racy ~n in
  let races = Race.find racy in
  Format.printf "@.Parallel-MM with parallel k-loop (n = %d): %d races over %d cells@." n
    (List.length races)
    (List.length (List.sort_uniq compare (List.map (fun r -> r.Race.cell) races)));

  (* build the race DAG: cells are nodes, work = in-degree *)
  let rd = Race_dag.build racy in
  Format.printf "race DAG D(P): %d cells, %d dependence arcs@." (Dag.n_vertices rd.Race_dag.dag)
    (Dag.n_edges rd.Race_dag.dag);

  (* turn it into an optimization instance and spend a space budget *)
  let p = Problem.of_race_dag (Dag.copy rd.Race_dag.dag) Problem.Binary in
  let base = Schedule.makespan p (Schedule.zero_allocation p) in
  Format.printf "@.makespan without extra space: %d@." base;
  List.iter
    (fun budget ->
      let r = Exact.min_makespan p ~budget in
      Format.printf "  budget %2d -> optimal makespan %d@." budget r.Exact.makespan)
    [ 0; 2; 4; 6; 12; 18 ];

  (* check the chosen allocation against the fine-grained simulator *)
  let r = Exact.min_makespan p ~budget:18 in
  let fine =
    Sim.makespan rd.Race_dag.dag ~reducer:(fun v ->
        if v < Array.length r.Exact.allocation then Reducer_sim.reducer_of_allocation r.Exact.allocation.(v)
        else Reducer_sim.Serial)
  in
  Format.printf "@.with budget 18: model says %d, event-driven simulation says %d (Observation 1.1: sim <= model)@."
    r.Exact.makespan fine
