examples/quickstart.mli:
