examples/sp_pipeline.ml: Array Exact Format Hashtbl List Printf Problem Rtt_core Rtt_dag Rtt_duration Sp Sp_exact String
