examples/quickstart.ml: Bicriteria Dag Dot Exact Format List Lp_relax Option Printf Problem Rat Rounding Rtt_core Rtt_dag Rtt_num Schedule String
