examples/race_detect.mli:
