examples/matmul_reducers.ml: Float Format List Matmul Rtt_parsim
