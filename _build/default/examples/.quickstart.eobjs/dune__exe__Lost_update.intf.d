examples/lost_update.mli:
