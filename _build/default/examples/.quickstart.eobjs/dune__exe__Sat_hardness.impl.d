examples/sat_hardness.ml: Aoa Array Format Fun Gadget_general List Minresource_red Printf Problem Rtt_core Rtt_reductions Sat Schedule String
