examples/lost_update.ml: Format Interp List Prog Race Rtt_parsim String
