examples/race_detect.ml: Array Dag Exact Format List Problem Prog Race Race_dag Reducer_sim Rtt_core Rtt_dag Rtt_parsim Schedule Sim
