examples/sp_pipeline.mli:
