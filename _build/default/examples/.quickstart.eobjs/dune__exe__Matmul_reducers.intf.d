examples/matmul_reducers.mli:
