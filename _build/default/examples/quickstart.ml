(* Quickstart: build a small resource-time tradeoff instance, solve it
   exactly and with the Theorem 3.4 bi-criteria pipeline, and inspect
   the resource routing.

     dune exec examples/quickstart.exe *)

open Rtt_dag
open Rtt_core
open Rtt_num

let () =
  (* A fan-in DAG: eight producers write into a hot cell, which feeds a
     consumer. Jobs on vertices; the hot cell can host a recursive
     binary reducer (Equation 3 duration function). *)
  let g = Dag.create () in
  let src = Dag.add_vertex ~label:"src" g in
  let hot = Dag.add_vertex ~label:"hot" g in
  let out = Dag.add_vertex ~label:"out" g in
  let producers = List.init 8 (fun i -> Dag.add_vertex ~label:(Printf.sprintf "p%d" i) g) in
  List.iter
    (fun p ->
      Dag.add_edge g src p;
      Dag.add_edge g p hot)
    producers;
  Dag.add_edge g hot out;

  (* work = in-degree, reducer tradeoff at every vertex *)
  let p = Problem.of_race_dag g Problem.Binary in
  Format.printf "instance:@.%a@." Problem.pp p;

  let base = Schedule.makespan p (Schedule.zero_allocation p) in
  Format.printf "makespan with no extra space: %d@." base;

  (* what does each budget buy? (exact optimum) *)
  Format.printf "@.budget sweep (exact):@.";
  List.iter
    (fun budget ->
      let r = Exact.min_makespan p ~budget in
      Format.printf "  B=%d -> makespan %d (used %d)@." budget r.Exact.makespan r.Exact.budget_used)
    [ 0; 2; 4; 8 ];

  (* the LP + rounding pipeline of Theorem 3.4 *)
  let bi = Bicriteria.min_makespan p ~budget:4 ~alpha:Rat.half in
  Format.printf "@.bi-criteria (alpha = 1/2, B = 4):@.";
  Format.printf "  LP lower bound:   %s@." (Rat.to_string bi.Bicriteria.lp.Lp_relax.makespan);
  Format.printf "  rounded makespan: %d (bound %s)@." bi.Bicriteria.rounded.Rounding.makespan
    (Rat.to_string bi.Bicriteria.makespan_bound);
  Format.printf "  resources used:   %d (bound %s)@." bi.Bicriteria.rounded.Rounding.budget_used
    (Rat.to_string bi.Bicriteria.budget_bound);
  Format.printf "  guarantees hold:  %b@." (Bicriteria.satisfies_guarantees bi);

  (* explicit unit routing: every resource unit follows one path *)
  let alloc = bi.Bicriteria.rounded.Rounding.allocation in
  let value, paths = Schedule.min_budget_with_routing p alloc in
  Format.printf "@.routing of %d units (resource reuse over paths):@." value;
  List.iter
    (fun (path, units) ->
      Format.printf "  %d unit(s): %s@." units
        (String.concat " -> "
           (List.map (fun v -> Option.value ~default:(string_of_int v) (Dag.label p.Problem.dag v)) path)))
    paths;

  (* and the DOT rendering for graphviz users *)
  Format.printf "@.DOT output written to _build/quickstart.dot@.";
  Dot.write_file "quickstart.dot" (Dot.to_dot ~name:"quickstart" p.Problem.dag)
