(* rtt - command-line front end for the resource-time tradeoff library.

   Subcommands:
     solve    run an algorithm on an instance file
     gen      generate a random instance file
     exact    brute-force optimum of a (small) instance file
     sp       solve a random series-parallel instance with the exact DP
     reduce   run one of the paper's hardness reductions
     dot      export an instance's DAG as Graphviz
     demo     the Figure 4/5 walkthrough *)

open Cmdliner
open Rtt_dag
open Rtt_num
open Rtt_core

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)

let instance_arg =
  let doc = "Instance file (see lib/core/io.mli for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc)

let budget_arg =
  let doc = "Resource budget B." in
  Arg.(value & opt int 4 & info [ "b"; "budget" ] ~docv:"B" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let load path = Io.read_file path

let pp_alloc p alloc =
  let parts = ref [] in
  Array.iteri
    (fun v r ->
      if r > 0 then begin
        let name = Option.value ~default:(string_of_int v) (Dag.label p.Problem.dag v) in
        parts := Printf.sprintf "%s=%d" name r :: !parts
      end)
    alloc;
  if !parts = [] then "(none)" else String.concat " " (List.rev !parts)

(* ------------------------------------------------------------------ *)
(* solve                                                               *)

let algo_enum =
  Arg.enum
    [
      ("bicriteria", `Bicriteria);
      ("binary", `Binary);
      ("kway", `Kway);
      ("binary-bicriteria", `Binary_bicriteria);
    ]

let solve_cmd =
  let algo =
    let doc = "Algorithm: bicriteria | binary | kway | binary-bicriteria." in
    Arg.(value & opt algo_enum `Bicriteria & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)
  in
  let alpha =
    let doc = "Rounding threshold alpha (rational, e.g. 1/2) for bicriteria." in
    Arg.(value & opt string "1/2" & info [ "alpha" ] ~docv:"ALPHA" ~doc)
  in
  let run path algo budget alpha =
    let p = load path in
    (match algo with
    | `Bicriteria ->
        let bi = Bicriteria.min_makespan p ~budget ~alpha:(Rat.of_string alpha) in
        Format.printf "LP lower bound:   %s@." (Rat.to_string bi.Bicriteria.lp.Lp_relax.makespan);
        Format.printf "rounded makespan: %d (bound %s)@." bi.Bicriteria.rounded.Rounding.makespan
          (Rat.to_string bi.Bicriteria.makespan_bound);
        Format.printf "resources used:   %d (bound %s)@." bi.Bicriteria.rounded.Rounding.budget_used
          (Rat.to_string bi.Bicriteria.budget_bound);
        Format.printf "allocation:       %s@." (pp_alloc p bi.Bicriteria.rounded.Rounding.allocation)
    | `Binary ->
        let r = Binary_approx.min_makespan p ~budget in
        Format.printf "makespan: %d (LP lower bound %s, guarantee 4x)@." r.Binary_approx.makespan
          (Rat.to_string r.Binary_approx.lp_makespan);
        Format.printf "budget:   %d of %d@." r.Binary_approx.budget_used budget;
        Format.printf "allocation: %s@." (pp_alloc p r.Binary_approx.allocation)
    | `Kway ->
        let r = Kway_approx.min_makespan p ~budget in
        Format.printf "makespan: %d (LP lower bound %s, guarantee 5x)@." r.Kway_approx.makespan
          (Rat.to_string r.Kway_approx.lp_makespan);
        Format.printf "budget:   %d of %d@." r.Kway_approx.budget_used budget;
        Format.printf "allocation: %s@." (pp_alloc p r.Kway_approx.allocation)
    | `Binary_bicriteria ->
        let r = Binary_bicriteria.min_makespan p ~budget in
        Format.printf "makespan: %d (bound %s)@." r.Binary_bicriteria.makespan
          (Rat.to_string r.Binary_bicriteria.makespan_bound);
        Format.printf "budget:   %d (bound %s)@." r.Binary_bicriteria.budget_used
          (Rat.to_string r.Binary_bicriteria.resource_bound);
        Format.printf "allocation: %s@." (pp_alloc p r.Binary_bicriteria.allocation));
    0
  in
  let info = Cmd.info "solve" ~doc:"Run an approximation algorithm on an instance file." in
  Cmd.v info Term.(const run $ instance_arg $ algo $ budget_arg $ alpha)

(* ------------------------------------------------------------------ *)
(* exact                                                               *)

let exact_cmd =
  let target =
    let doc = "Makespan target (switches to the minimum-resource objective)." in
    Arg.(value & opt (some int) None & info [ "t"; "target" ] ~docv:"T" ~doc)
  in
  let run path budget target =
    let p = load path in
    (match target with
    | None ->
        let r = Exact.min_makespan p ~budget in
        Format.printf "optimal makespan: %d (budget used %d of %d)@." r.Exact.makespan
          r.Exact.budget_used budget;
        Format.printf "allocation: %s@." (pp_alloc p r.Exact.allocation)
    | Some t -> (
        match Exact.min_resource p ~target:t with
        | Some r ->
            Format.printf "minimum resources for makespan <= %d: %d@." t r.Exact.budget_used;
            Format.printf "allocation: %s@." (pp_alloc p r.Exact.allocation)
        | None -> Format.printf "target %d is unreachable at any budget@." t));
    0
  in
  let info = Cmd.info "exact" ~doc:"Brute-force optimum of a small instance." in
  Cmd.v info Term.(const run $ instance_arg $ budget_arg $ target)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)

let gen_cmd =
  let kind =
    Arg.enum [ ("hub", `Hub); ("layered", `Layered); ("er", `Er) ]
    |> fun e ->
    Arg.(value & opt e `Hub & info [ "k"; "kind" ] ~docv:"KIND" ~doc:"hub | layered | er (hub instances have fan-in heavy nodes where reducers matter).")
  in
  let n =
    Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of vertices (hubs x fan for hub; layers for layered).")
  in
  let run kind n seed =
    let rng = Random.State.make [| seed |] in
    let g =
      match kind with
      | `Layered -> Gen.layered rng ~layers:n ~width:4 ~edge_prob:0.3
      | `Er -> Gen.erdos_renyi rng ~n ~edge_prob:0.35
      | `Hub ->
          let g = Dag.create () in
          let s = Dag.add_vertex ~label:"s" g in
          let prev = ref s in
          let hubs = max 1 (n / 8) in
          for _ = 1 to hubs do
            let hub = Dag.add_vertex g in
            let feeders = List.init (6 + Random.State.int rng 6) (fun _ -> Dag.add_vertex g) in
            List.iter
              (fun f ->
                Dag.add_edge g !prev f;
                Dag.add_edge g f hub)
              feeders;
            prev := hub
          done;
          let t = Dag.add_vertex ~label:"t" g in
          Dag.add_edge g !prev t;
          g
    in
    let p = Problem.of_race_dag g Problem.Binary in
    print_string (Io.to_string p);
    0
  in
  let info = Cmd.info "gen" ~doc:"Generate a random instance on stdout." in
  Cmd.v info Term.(const run $ kind $ n $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sp                                                                  *)

let sp_cmd =
  let leaves = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of jobs.") in
  let run leaves budget seed =
    let rng = Random.State.make [| seed |] in
    let tree =
      Sp.map
        (fun _ -> Rtt_duration.Binary_split.to_duration ~work:(4 + Random.State.int rng 28))
        (Gen.random_sp rng ~leaves ~series_bias:0.5)
    in
    Format.printf "structure: %a@." (Sp.pp (fun fmt d -> Rtt_duration.Duration.pp fmt d)) tree;
    let ms, alloc = Sp_exact.min_makespan tree ~budget in
    Format.printf "optimal makespan with B=%d: %d@." budget ms;
    Format.printf "allocation: %s@."
      (String.concat " " (List.map string_of_int (Sp.leaves alloc)));
    0
  in
  let info = Cmd.info "sp" ~doc:"Exact DP on a random series-parallel instance (Section 3.4)." in
  Cmd.v info Term.(const run $ leaves $ budget_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* reduce                                                              *)

let reduce_cmd =
  let kind =
    Arg.enum
      [ ("sat", `Sat); ("sat-split", `Split); ("minresource", `Minres); ("partition", `Partition); ("n3dm", `N3dm) ]
    |> fun e ->
    Arg.(required & pos 0 (some e) None & info [] ~docv:"KIND" ~doc:"sat | sat-split | minresource | partition | n3dm.")
  in
  let run kind seed =
    let open Rtt_reductions in
    let rng = Random.State.make [| seed |] in
    (match kind with
    | `Sat ->
        let f = Sat.random rng ~n_vars:3 ~n_clauses:2 in
        Format.printf "formula: %a@." Sat.pp f;
        let red = Gadget_general.reduce f in
        Format.printf "budget n+2m = %d, target 1, %d jobs@." red.Gadget_general.budget
          (Problem.n_jobs red.Gadget_general.instance.Aoa.problem);
        (match Gadget_general.decide_by_assignments red with
        | Some _ -> Format.printf "result: YES (matches SAT oracle: %b)@." (Sat.solve f <> None)
        | None -> Format.printf "result: NO (matches SAT oracle: %b)@." (Sat.solve f = None))
    | `Split ->
        let f = Sat.random rng ~n_vars:3 ~n_clauses:1 in
        Format.printf "formula: %a@." Sat.pp f;
        let red = Gadget_split.reduce f in
        Format.printf "x = %d, y = %d, budget 2n+4m = %d, target %d, %d cells@." red.Gadget_split.x
          red.Gadget_split.y red.Gadget_split.budget red.Gadget_split.target
          (Dag.n_vertices red.Gadget_split.dag);
        (match Gadget_split.decide_by_assignments red with
        | Some _ -> Format.printf "result: YES (oracle: %b)@." (Sat.solve f <> None)
        | None -> Format.printf "result: NO (oracle: %b)@." (Sat.solve f = None))
    | `Minres ->
        let f = Sat.random rng ~n_vars:4 ~n_clauses:3 in
        Format.printf "formula: %a@." Sat.pp f;
        let red = Minresource_red.reduce f in
        Format.printf "minimum units: %d (2 iff satisfiable; oracle satisfiable: %b)@."
          (Minresource_red.min_units red) (Sat.solve f <> None)
    | `Partition ->
        let items = Array.init (4 + Random.State.int rng 3) (fun _ -> 1 + Random.State.int rng 8) in
        Format.printf "items: [%s]@."
          (String.concat "; " (Array.to_list (Array.map string_of_int items)));
        let red = Partition_red.reduce items in
        Format.printf "budget %d, target %d, treewidth certificate width %d@." red.Partition_red.budget
          red.Partition_red.target
          (Treewidth.width (Partition_red.tree_decomposition red));
        Format.printf "result: %s (oracle: %b)@."
          (if Partition_red.decide_by_subsets red <> None then "YES" else "NO")
          (Partition_red.partition_exists items)
    | `N3dm ->
        let n = 2 + Random.State.int rng 2 in
        let rec gen () =
          let mk () = Array.init n (fun _ -> 1 + Random.State.int rng 5) in
          let a = mk () and b = mk () and c = mk () in
          let total = Array.fold_left ( + ) 0 (Array.concat [ a; b; c ]) in
          if total mod n = 0 then (a, b, c) else gen ()
        in
        let a, b, c = gen () in
        let show arr = String.concat ";" (Array.to_list (Array.map string_of_int arr)) in
        Format.printf "A=[%s] B=[%s] C=[%s]@." (show a) (show b) (show c);
        let red = Rtt_reductions.N3dm_red.reduce ~a ~b ~c in
        Format.printf "budget n^2 = %d, target 2M+T = %d@." (N3dm_red.budget red) (N3dm_red.target red);
        Format.printf "result: %s (oracle: %b)@."
          (if N3dm_red.decide_by_matchings red <> None then "YES" else "NO")
          (N3dm_red.n3dm_exists ~a ~b ~c <> None));
    0
  in
  let info = Cmd.info "reduce" ~doc:"Run one of the paper's hardness reductions on a random instance." in
  Cmd.v info Term.(const run $ kind $ seed_arg)

(* ------------------------------------------------------------------ *)
(* pareto                                                              *)

let pareto_cmd =
  let approx =
    Arg.(value & flag & info [ "approx" ] ~doc:"Use the (4/3,14/5) LP pipeline instead of brute force.")
  in
  let max_budget =
    Arg.(value & opt int 8 & info [ "max-budget" ] ~docv:"B" ~doc:"Largest budget to sweep (default 8; exact sweeps are exponential).")
  in
  let run path approx max_budget =
    let p = load path in
    let curve =
      if approx then Pareto.approximate ~max_budget p else Pareto.exact ~max_budget p
    in
    Format.printf "%8s | %10s@." "budget" "makespan";
    List.iter
      (fun (pt : Pareto.point) -> Format.printf "%8d | %10d@." pt.Pareto.budget pt.Pareto.makespan)
      curve;
    let knees = Pareto.knees curve in
    Format.printf "knees: %s@."
      (String.concat ", " (List.map (fun (k : Pareto.point) -> string_of_int k.Pareto.budget) knees));
    0
  in
  let info = Cmd.info "pareto" ~doc:"Sweep the space-time tradeoff curve of an instance." in
  Cmd.v info Term.(const run $ instance_arg $ approx $ max_budget)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)

let dot_cmd =
  let run path =
    let p = load path in
    print_string (Dot.to_dot ~name:"instance" p.Problem.dag);
    0
  in
  let info = Cmd.info "dot" ~doc:"Export an instance's DAG as Graphviz DOT on stdout." in
  Cmd.v info Term.(const run $ instance_arg)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

let demo_cmd =
  let run () =
    let g = Dag.create () in
    let s = Dag.add_vertex ~label:"s" g in
    let a = Dag.add_vertex ~label:"a" g in
    let b = Dag.add_vertex ~label:"b" g in
    let c = Dag.add_vertex ~label:"c" g in
    let d = Dag.add_vertex ~label:"d" g in
    let t = Dag.add_vertex ~label:"t" g in
    let xs = List.init 5 (fun i -> Dag.add_vertex ~label:(Printf.sprintf "x%d" i) g) in
    Dag.add_edge g s a;
    Dag.add_edge g a b;
    Dag.add_edge g b c;
    List.iter
      (fun x ->
        Dag.add_edge g s x;
        Dag.add_edge g x c)
      xs;
    Dag.add_edge g c d;
    Dag.add_edge g (List.hd xs) d;
    Dag.add_edge g d t;
    let p = Problem.of_race_dag g Problem.Binary in
    Format.printf "Figure 4/5 walkthrough: node c has in-degree 6, works = in-degrees.@.";
    let ms0, path = Schedule.critical_path p (Schedule.zero_allocation p) in
    Format.printf "no extra space: makespan %d along %s@." ms0
      (String.concat " -> "
         (List.map (fun v -> Option.value ~default:(string_of_int v) (Dag.label p.Problem.dag v)) path));
    let r = Exact.min_makespan p ~budget:2 in
    Format.printf "two units of space: makespan %d, allocation %s@." r.Exact.makespan
      (pp_alloc p r.Exact.allocation);
    0
  in
  let info = Cmd.info "demo" ~doc:"The Figure 4/5 walkthrough (makespan 11 -> 10 with 2 units)." in
  Cmd.v info Term.(const run $ const ())

let main =
  let doc = "Discrete resource-time tradeoff with resource reuse over paths (SPAA '19 reproduction)." in
  let info = Cmd.info "rtt" ~version:"1.0.0" ~doc in
  Cmd.group info [ solve_cmd; exact_cmd; gen_cmd; sp_cmd; reduce_cmd; pareto_cmd; dot_cmd; demo_cmd ]

let () = exit (Cmd.eval' main)
