(* End-to-end integration tests: full pipelines crossing every library
   boundary — program -> race DAG -> instance -> transform -> LP ->
   rounding -> min-flow -> routing -> schedule, validated against the
   exact solver and the event-driven simulation. *)

open Rtt_dag
open Rtt_num
open Rtt_duration
open Rtt_core
open Rtt_parsim

let rng_of seed = Random.State.make [| seed |]
let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* program -> race DAG -> reducer-aware instance -> optimize *)
let program_pipeline =
  [
    Alcotest.test_case "racy Parallel-MM end to end" `Quick (fun () ->
        let prog = Prog.parallel_mm_racy ~n:4 in
        Alcotest.(check bool) "has races" true (Race.has_race prog);
        let rd = Race_dag.build prog in
        let p = Problem.of_race_dag (Dag.copy rd.Race_dag.dag) Problem.Binary in
        let base = Schedule.makespan p (Schedule.zero_allocation p) in
        (* every Z cell takes 2n = 8 serialized writes in the coarse model *)
        Alcotest.(check int) "base" 8 base;
        (* give every Z cell a height-1 reducer: 2 units each, but they
           cannot be shared across parallel Z cells *)
        let alloc = Schedule.zero_allocation p in
        for v = 0 to Problem.n_jobs p - 1 do
          if Duration.max_useful_resource (Problem.duration p v) > 0 then alloc.(v) <- 2
        done;
        let ms = Schedule.makespan p alloc in
        Alcotest.(check bool) "faster" true (ms < base);
        Alcotest.(check int) "independent cells need separate units" (2 * 16)
          (Schedule.min_budget p alloc));
    Alcotest.test_case "race-DAG optimization improves the simulated program" `Quick (fun () ->
        let g = Dag.create () in
        let s = Dag.add_vertex g in
        let hot = Dag.add_vertex g in
        let feeders = List.init 12 (fun _ -> Dag.add_vertex g) in
        List.iter
          (fun f ->
            Dag.add_edge g s f;
            Dag.add_edge g f hot)
          feeders;
        let sink = Dag.add_vertex g in
        Dag.add_edge g hot sink;
        let sim_dag = Dag.copy g in
        let p = Problem.of_race_dag g Problem.Binary in
        let r = Exact.min_makespan p ~budget:4 in
        (* replay the chosen allocation in the fine-grained simulator *)
        let fine =
          Sim.makespan sim_dag ~reducer:(fun v ->
              if v < Array.length r.Exact.allocation then
                Reducer_sim.reducer_of_allocation r.Exact.allocation.(v)
              else Reducer_sim.Serial)
        in
        Alcotest.(check bool) "sim at most model (Observation 1.1)" true (fine <= r.Exact.makespan);
        Alcotest.(check bool) "sim beats serial" true (fine < Sim.serial_makespan sim_dag));
  ]

let lp_roundtrip =
  [
    prop "full Theorem 3.4 pipeline invariant chain" 15 QCheck.(int_range 4 8) (fun n ->
        let rng = rng_of (n + 60_000) in
        let g = Gen.layered rng ~layers:3 ~width:3 ~edge_prob:0.3 in
        let p = Problem.of_race_dag g Problem.Binary in
        let budget = 1 + Random.State.int rng 6 in
        let alpha = Rat.half in
        let bi = Bicriteria.min_makespan p ~budget ~alpha in
        let lp = bi.Bicriteria.lp in
        let rounded = bi.Bicriteria.rounded in
        (* chain: LP budget within input, rounded requirement implies
           min-flow >= requirement on each edge, rounded durations only
           0 or t0 *)
        Rat.(lp.Lp_relax.budget_used <= Rat.of_int budget)
        && Array.for_all2
             (fun f req -> f >= req)
             rounded.Rounding.flow rounded.Rounding.requirement
        && Array.for_all
             (fun i ->
               let t = Rounding.rounded_edge_time bi.Bicriteria.transform rounded i in
               t = 0 || t = bi.Bicriteria.transform.Transform.edges.(i).Transform.t0)
             (Array.init (Array.length rounded.Rounding.upgraded) Fun.id));
    prop "routing decomposition covers the rounded allocation" 15 QCheck.(int_range 4 8) (fun n ->
        let rng = rng_of (n + 70_000) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let budget = 1 + Random.State.int rng 5 in
        let bi = Bicriteria.min_makespan p ~budget ~alpha:Rat.half in
        let alloc = bi.Bicriteria.rounded.Rounding.allocation in
        let value, paths = Schedule.min_budget_with_routing p alloc in
        (* each vertex's allocation is covered by the paths through it *)
        let through = Array.make (Problem.n_jobs p) 0 in
        List.iter
          (fun (path, units) -> List.iter (fun v -> through.(v) <- through.(v) + units) path)
          paths;
        value <= bi.Bicriteria.rounded.Rounding.budget_used
        && Array.for_all2 (fun t a -> t >= a) through alloc);
    prop "exact optimum sandwiched between LP and rounded makespan" 12 QCheck.(int_range 4 7)
      (fun n ->
        let rng = rng_of (n + 80_000) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let budget = 1 + Random.State.int rng 4 in
        let bi = Bicriteria.min_makespan p ~budget ~alpha:Rat.half in
        let opt = Exact.min_makespan p ~budget in
        Rat.(bi.Bicriteria.lp.Lp_relax.makespan <= Rat.of_int opt.Exact.makespan)
        &&
        (* rounded uses up to 2x budget, so it may beat OPT(budget); it
           must however beat OPT only by using more resources *)
        (bi.Bicriteria.rounded.Rounding.makespan >= opt.Exact.makespan
        || bi.Bicriteria.rounded.Rounding.budget_used > budget
        || Schedule.makespan p bi.Bicriteria.rounded.Rounding.allocation >= opt.Exact.makespan));
  ]

let duration_model_consistency =
  [
    prop "race-DAG durations agree with reducer simulation at every level" 20
      QCheck.(int_range 2 60)
      (fun work ->
        let d = Binary_split.to_duration ~work in
        List.for_all
          (fun (r, t) ->
            r = 0 || r = 1
            ||
            let arrivals = List.init work (fun _ -> 0) in
            Reducer_sim.finish_time ~arrivals (Reducer_sim.reducer_of_allocation r) <= t)
          (Duration.tuples d));
    prop "sp dp equals exact on sp problems built through Problem.make" 15 QCheck.(int_range 2 5)
      (fun leaves ->
        let rng = rng_of (leaves + 90_000) in
        let tree =
          Sp.map
            (fun _ -> Kway.to_duration ~work:(3 + Random.State.int rng 12))
            (Gen.random_sp rng ~leaves ~series_bias:0.5)
        in
        let budget = Random.State.int rng 6 in
        let ms, _ = Sp_exact.min_makespan tree ~budget in
        let g, jobs = Sp.to_dag tree in
        let p = Problem.make g ~durations:(fun v -> jobs.(v)) in
        ms = (Exact.min_makespan p ~budget).Exact.makespan);
  ]

(* the combinatorial min-flow must agree with LP 11-13 solved by our
   own simplex - two independent substrates validating each other *)
let minflow_vs_lp =
  [
    prop "min-flow value equals the LP 11-13 optimum" 25 QCheck.(int_range 3 9) (fun n ->
        let rng = rng_of (n + 50_000) in
        let specs = ref [] in
        for i = 0 to n - 2 do
          specs :=
            { Rtt_flow.Minflow.src = i; dst = i + 1; lower = Random.State.int rng 4; upper = Rtt_flow.Maxflow.infinity }
            :: !specs;
          if i + 2 < n then
            specs :=
              { Rtt_flow.Minflow.src = i; dst = i + 2; lower = Random.State.int rng 3; upper = Rtt_flow.Maxflow.infinity }
              :: !specs
        done;
        let specs = Array.of_list !specs in
        match Rtt_flow.Minflow.solve ~n ~s:0 ~t:(n - 1) specs with
        | None -> false
        | Some r ->
            (* LP: variables f_e >= lower_e, conservation, min sum out of s *)
            let open Rtt_lp in
            let lp = Lp.create () in
            let fv = Array.map (fun _ -> Lp.var lp "f") specs in
            Array.iteri
              (fun i spec ->
                Lp.add_ge lp
                  (Linexpr.var (Lp.var_index fv.(i)))
                  (Linexpr.const (Rtt_num.Rat.of_int spec.Rtt_flow.Minflow.lower)))
              specs;
            for v = 1 to n - 2 do
              let sum sel =
                Array.to_list specs
                |> List.mapi (fun i spec -> (i, spec))
                |> List.filter (fun (_, spec) -> sel spec)
                |> List.fold_left
                     (fun acc (i, _) -> Linexpr.add acc (Linexpr.var (Lp.var_index fv.(i))))
                     Linexpr.zero
              in
              Lp.add_eq lp
                (sum (fun spec -> spec.Rtt_flow.Minflow.dst = v))
                (sum (fun spec -> spec.Rtt_flow.Minflow.src = v))
            done;
            let objective =
              Array.to_list specs
              |> List.mapi (fun i spec -> (i, spec))
              |> List.filter (fun (_, spec) -> spec.Rtt_flow.Minflow.src = 0)
              |> List.fold_left
                   (fun acc (i, _) -> Linexpr.add acc (Linexpr.var (Lp.var_index fv.(i))))
                   Linexpr.zero
            in
            (match Lp.minimize lp objective with
            | Lp.Optimal s -> Rtt_num.Rat.(equal s.Lp.objective (of_int r.Rtt_flow.Minflow.value))
            | _ -> false));
  ]

(* edge-TTSP instances: decompose the DAG, solve with the SP DP, and
   check against the generic exact solver on the subdivided problem *)
let ttsp_pipeline =
  [
    prop "decompose_ttsp + Sp_exact = Exact on random TTSP networks" 20 QCheck.(int_range 2 6)
      (fun leaves ->
        let rng = rng_of (leaves + 120_000) in
        (* build a random edge-SP network by interpreting a random SP tree
           as a two-terminal network with jobs on edges *)
        let shape = Gen.random_sp rng ~leaves ~series_bias:0.5 in
        let durs =
          Array.init leaves (fun _ -> Binary_split.to_duration ~work:(2 + Random.State.int rng 12))
        in
        (* realize as a DAG via Rtt_reductions.Aoa: each SP leaf becomes
           an arc between fresh terminals composed per the tree *)
        let b = Rtt_reductions.Aoa.create () in
        let next_job = ref 0 in
        let rec realize tree =
          match tree with
          | Sp.Leaf _ ->
              let u = Rtt_reductions.Aoa.node b and v = Rtt_reductions.Aoa.node b in
              let j = !next_job in
              incr next_job;
              ignore (Rtt_reductions.Aoa.arc b u v durs.(j));
              (u, v)
          | Sp.Series (l, r) ->
              let ul, vl = realize l and ur, vr = realize r in
              ignore (Rtt_reductions.Aoa.zero_arc b vl ur);
              (ul, vr)
          | Sp.Parallel (l, r) ->
              let ul, vl = realize l and ur, vr = realize r in
              let u = Rtt_reductions.Aoa.node b and v = Rtt_reductions.Aoa.node b in
              ignore (Rtt_reductions.Aoa.zero_arc b u ul);
              ignore (Rtt_reductions.Aoa.zero_arc b u ur);
              ignore (Rtt_reductions.Aoa.zero_arc b vl v);
              ignore (Rtt_reductions.Aoa.zero_arc b vr v);
              (u, v)
        in
        ignore (realize shape);
        let inst = Rtt_reductions.Aoa.instance b in
        let p = inst.Rtt_reductions.Aoa.problem in
        (* the subdivided problem's DAG is still TTSP between its terminals *)
        let tree_opt = Sp.decompose_ttsp p.Problem.dag ~s:p.Problem.source ~t:p.Problem.sink in
        match tree_opt with
        | None -> false
        | Some edge_tree ->
            (* duration of each decomposition leaf = duration of the job
               vertex it passes through (edges into/out of job vertices) *)
            let dur_of_edge (u, v) =
              (* an edge (u, v): if v is a job vertex, its duration counts
                 on the entering edge; job vertices have exactly one in
                 and one out edge in the subdivision *)
              ignore u;
              p.Problem.durations.(v)
            in
            (* Each job vertex j appears as entering edge (u, j) and
               leaving edge (j, w). Attribute the duration to the
               entering edge and 0 to the leaving one. *)
            let tree_durs =
              Sp.map
                (fun (u, v) ->
                  if Dag.out_degree p.Problem.dag v = 1 && Dag.in_degree p.Problem.dag v = 1 then
                    dur_of_edge (u, v)
                  else Duration.constant 0)
                edge_tree
            in
            let budget = Random.State.int rng 6 in
            let dp, _ = Sp_exact.min_makespan tree_durs ~budget in
            let brute = (Exact.min_makespan p ~budget).Exact.makespan in
            dp = brute);
  ]

let cross_reduction =
  [
    Alcotest.test_case "same formula through both SAT reductions" `Quick (fun () ->
        let f = Rtt_reductions.Sat.example_paper in
        let general = Rtt_reductions.Gadget_general.reduce f in
        let split = Rtt_reductions.Gadget_split.reduce f in
        let ans_general = Rtt_reductions.Gadget_general.decide_by_assignments general <> None in
        let ans_split = Rtt_reductions.Gadget_split.decide_by_assignments split <> None in
        Alcotest.(check bool) "agree" ans_general ans_split;
        Alcotest.(check bool) "both yes" true ans_general);
    Alcotest.test_case "minresource and makespan reductions agree" `Quick (fun () ->
        let rng = rng_of 3 in
        for _ = 1 to 8 do
          let f = Rtt_reductions.Sat.random rng ~n_vars:3 ~n_clauses:2 in
          let mr = Rtt_reductions.Minresource_red.reduce f in
          let gg = Rtt_reductions.Gadget_general.reduce f in
          let from_mr = Rtt_reductions.Minresource_red.min_units mr = 2 in
          let from_gg = Rtt_reductions.Gadget_general.decide_by_assignments gg <> None in
          Alcotest.(check bool) "agree" from_gg from_mr
        done);
  ]

let () =
  Alcotest.run "integration"
    [
      ("program-pipeline", program_pipeline);
      ("lp-roundtrip", lp_roundtrip);
      ("model-consistency", duration_model_consistency);
      ("minflow-vs-lp", minflow_vs_lp);
      ("ttsp-pipeline", ttsp_pipeline);
      ("cross-reduction", cross_reduction);
    ]
