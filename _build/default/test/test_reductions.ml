(* Tests for the hardness constructions of Section 4 and Appendix A:
   every reduction is machine-checked in both directions against a
   brute-force oracle on small instances, and the paper's stated
   constants (Table 2 / Table 3 behaviour, gadget timings, treewidth)
   are verified. *)

open Rtt_core
open Rtt_reductions

let rng_of seed = Random.State.make [| seed |]

let sat_units =
  [
    Alcotest.test_case "paper example is satisfiable" `Quick (fun () ->
        match Sat.solve Sat.example_paper with
        | Some a -> Alcotest.(check bool) "valid" true (Sat.satisfies Sat.example_paper a)
        | None -> Alcotest.fail "expected satisfiable");
    Alcotest.test_case "exactly-one semantics" `Quick (fun () ->
        let f = Sat.make ~n_vars:3 [ [ (0, true); (1, true); (2, true) ] ] in
        Alcotest.(check bool) "TTT invalid" false (Sat.satisfies f [| true; true; true |]);
        Alcotest.(check bool) "TFF valid" true (Sat.satisfies f [| true; false; false |]));
    Alcotest.test_case "count_solutions" `Quick (fun () ->
        let f = Sat.make ~n_vars:3 [ [ (0, true); (1, true); (2, true) ] ] in
        Alcotest.(check int) "three" 3 (Sat.count_solutions f));
    Alcotest.test_case "unsatisfiable instance" `Quick (fun () ->
        (* x v x v x with itself negated: (x,x,x) needs exactly one of
           three copies of x true: impossible; also (¬x,¬x,¬x) *)
        let f = Sat.make ~n_vars:3 [ [ (0, true); (0, true); (0, true) ] ] in
        Alcotest.(check (option (array bool))) "none" None (Sat.solve f));
    Alcotest.test_case "make validates" `Quick (fun () ->
        Alcotest.check_raises "arity" (Invalid_argument "Sat.make: clauses must have exactly three literals")
          (fun () -> ignore (Sat.make ~n_vars:2 [ [ (0, true) ] ]));
        Alcotest.check_raises "range" (Invalid_argument "Sat.make: variable out of range") (fun () ->
            ignore (Sat.make ~n_vars:2 [ [ (0, true); (1, true); (5, true) ] ])));
    Alcotest.test_case "random_satisfiable really is" `Quick (fun () ->
        let rng = rng_of 13 in
        for _ = 1 to 20 do
          let f, planted = Sat.random_satisfiable rng ~n_vars:5 ~n_clauses:4 in
          Alcotest.(check bool) "planted works" true (Sat.satisfies f planted)
        done);
  ]

let gadget_general_units =
  [
    Alcotest.test_case "figure 9: the paper's formula reduces correctly" `Quick (fun () ->
        let red = Gadget_general.reduce Sat.example_paper in
        Alcotest.(check int) "budget n+2m" 7 red.Gadget_general.budget;
        Alcotest.(check int) "target" 1 red.Gadget_general.target;
        match Gadget_general.decide_by_assignments red with
        | Some a -> Alcotest.(check bool) "assignment valid" true (Sat.satisfies Sat.example_paper a)
        | None -> Alcotest.fail "expected yes-instance");
    Alcotest.test_case "satisfying assignment gives makespan exactly 1" `Quick (fun () ->
        let red = Gadget_general.reduce Sat.example_paper in
        let a = [| true; true; false |] in
        Alcotest.(check bool) "sat" true (Sat.satisfies Sat.example_paper a);
        Alcotest.(check int) "makespan" 1 (Gadget_general.makespan_of_assignment red a);
        Alcotest.(check bool) "within budget" true (Gadget_general.assignment_feasible red a));
    Alcotest.test_case "non-satisfying assignment forces makespan >= 2 (Theorem 4.3 gap)" `Quick
      (fun () ->
        let red = Gadget_general.reduce Sat.example_paper in
        let bad = [| true; true; true |] in
        Alcotest.(check bool) "invalid" false (Sat.satisfies Sat.example_paper bad);
        Alcotest.(check bool) "slow" true (Gadget_general.makespan_of_assignment red bad >= 2));
    Alcotest.test_case "table 2: per-clause line behaviour over all 8 assignments" `Quick (fun () ->
        (* one clause (V1 v V2 v V3): exactly-one-true rows have exactly
           one line at time 0, other rows have none *)
        let f = Sat.make ~n_vars:3 [ [ (0, true); (1, true); (2, true) ] ] in
        let red = Gadget_general.reduce f in
        let inst = red.Gadget_general.instance in
        for mask = 0 to 7 do
          let a = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
          let alloc = Gadget_general.allocation_of_assignment red a in
          let finish = Schedule.finish_times inst.Aoa.problem alloc in
          let c5, c6, c7 = red.Gadget_general.clause_line_nodes.(0) in
          let node_time n = finish.(inst.Aoa.node_vertex.(n)) in
          let zeros =
            List.length (List.filter (fun n -> node_time n = 0) [ c5; c6; c7 ])
          in
          let want = if Sat.clause_count_true (List.hd f.Sat.clauses) a = 1 then 1 else 0 in
          Alcotest.(check int) (Printf.sprintf "mask %d" mask) want zeros
        done);
    Alcotest.test_case "assignment read-back round-trips" `Quick (fun () ->
        let red = Gadget_general.reduce Sat.example_paper in
        let a = [| false; false; false |] in
        let alloc = Gadget_general.allocation_of_assignment red a in
        Alcotest.(check (array bool)) "roundtrip" a (Gadget_general.assignment_of_allocation red alloc));
    Alcotest.test_case "reduction agrees with SAT oracle (Lemma 4.2)" `Slow (fun () ->
        let rng = rng_of 42 in
        for _ = 1 to 40 do
          let n_vars = 3 + Random.State.int rng 2 in
          let n_clauses = 1 + Random.State.int rng 3 in
          let f = Sat.random rng ~n_vars ~n_clauses in
          let red = Gadget_general.reduce f in
          let want = Sat.solve f <> None in
          let got = Gadget_general.decide_by_assignments red <> None in
          Alcotest.(check bool) "equivalent" want got
        done);
  ]

let partition_units =
  [
    Alcotest.test_case "oracle basics" `Quick (fun () ->
        Alcotest.(check bool) "yes" true (Partition_red.partition_exists [| 3; 1; 1; 2; 2; 1 |]);
        Alcotest.(check bool) "no" false (Partition_red.partition_exists [| 3; 1; 1 |]);
        Alcotest.(check bool) "odd total" false (Partition_red.partition_exists [| 1; 2 |]));
    Alcotest.test_case "reduction constants" `Quick (fun () ->
        let red = Partition_red.reduce [| 3; 1; 2 |] in
        Alcotest.(check int) "budget = sum" 6 red.Partition_red.budget;
        Alcotest.(check int) "target = half" 3 red.Partition_red.target;
        Alcotest.(check bool) "M > target" true (red.Partition_red.big > red.Partition_red.target));
    Alcotest.test_case "canonical allocation achieves half on a yes-instance" `Quick (fun () ->
        let items = [| 3; 1; 2 |] in
        let red = Partition_red.reduce items in
        (* subset {3} vs {1,2} *)
        let subset = [| true; false; false |] in
        Alcotest.(check int) "makespan" 3 (Partition_red.makespan_of_subset red subset);
        Alcotest.(check bool) "budget" true
          (Schedule.min_budget red.Partition_red.instance (Partition_red.allocation_of_subset red subset)
          <= red.Partition_red.budget));
    Alcotest.test_case "figure 16: decomposition is valid with width <= 15" `Quick (fun () ->
        let red = Partition_red.reduce [| 3; 1; 1; 2; 2; 1 |] in
        let td = Partition_red.tree_decomposition red in
        Alcotest.(check bool) "valid" true
          (Rtt_dag.Treewidth.is_valid red.Partition_red.instance.Problem.dag td);
        Alcotest.(check bool) "width" true (Rtt_dag.Treewidth.width td <= 15));
    Alcotest.test_case "reduction agrees with Partition oracle (Theorem 4.6)" `Slow (fun () ->
        let rng = rng_of 7 in
        for _ = 1 to 40 do
          let n = 3 + Random.State.int rng 3 in
          let items = Array.init n (fun _ -> 1 + Random.State.int rng 6) in
          let red = Partition_red.reduce items in
          let want = Partition_red.partition_exists items in
          let got = Partition_red.decide_by_subsets red <> None in
          Alcotest.(check bool) "equivalent" want got
        done);
  ]

let n3dm_units =
  [
    Alcotest.test_case "oracle basics" `Quick (fun () ->
        Alcotest.(check bool) "yes" true
          (N3dm_red.n3dm_exists ~a:[| 1; 2 |] ~b:[| 2; 3 |] ~c:[| 4; 2 |] <> None);
        Alcotest.(check bool) "no" false
          (N3dm_red.n3dm_exists ~a:[| 1; 1 |] ~b:[| 1; 1 |] ~c:[| 1; 3 |] <> None));
    Alcotest.test_case "lemma A.1 constants" `Quick (fun () ->
        let red = N3dm_red.reduce ~a:[| 1; 2 |] ~b:[| 2; 3 |] ~c:[| 4; 2 |] in
        Alcotest.(check int) "budget n^2" 4 (N3dm_red.budget red);
        Alcotest.(check int) "T" 7 (N3dm_red.triple_sum red);
        Alcotest.(check int) "target 2M+T" ((2 * N3dm_red.big red) + 7) (N3dm_red.target red));
    Alcotest.test_case "matching allocation achieves 2M+T" `Quick (fun () ->
        let red = N3dm_red.reduce ~a:[| 1; 2 |] ~b:[| 2; 3 |] ~c:[| 4; 2 |] in
        match N3dm_red.decide_by_matchings red with
        | Some (p, q) ->
            Alcotest.(check int) "makespan" (N3dm_red.target red)
              (N3dm_red.makespan_of_matching red ~p ~q)
        | None -> Alcotest.fail "expected matching");
    Alcotest.test_case "reduction agrees with N3DM oracle" `Slow (fun () ->
        let rng = rng_of 23 in
        let tried = ref 0 in
        while !tried < 12 do
          let n = 2 + Random.State.int rng 2 in
          let gen () = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
          let a = gen () and b = gen () and c = gen () in
          let total = Array.fold_left ( + ) 0 (Array.concat [ a; b; c ]) in
          if total mod n = 0 then begin
            incr tried;
            let red = N3dm_red.reduce ~a ~b ~c in
            let want = N3dm_red.n3dm_exists ~a ~b ~c <> None in
            let got = N3dm_red.decide_by_matchings red <> None in
            Alcotest.(check bool) "equivalent" want got
          end
        done);
  ]

let minresource_units =
  [
    Alcotest.test_case "satisfiable needs exactly 2 units" `Quick (fun () ->
        let red = Minresource_red.reduce Sat.example_paper in
        Alcotest.(check int) "min units" 2 (Minresource_red.min_units red);
        match Minresource_red.decide_by_assignments red with
        | Some a ->
            Alcotest.(check int) "makespan" red.Minresource_red.target
              (Minresource_red.makespan_of_assignment red a);
            Alcotest.(check int) "budget" 2 (Minresource_red.budget_of_assignment red a)
        | None -> Alcotest.fail "expected assignment");
    Alcotest.test_case "unsatisfiable needs 3 units (Theorem 4.4 gap)" `Quick (fun () ->
        let f = Sat.make ~n_vars:3 [ [ (0, true); (0, true); (0, true) ] ] in
        let red = Minresource_red.reduce f in
        Alcotest.(check int) "min units" 3 (Minresource_red.min_units red));
    Alcotest.test_case "three units always meet the target" `Quick (fun () ->
        let rng = rng_of 5 in
        for _ = 1 to 10 do
          let f = Sat.random rng ~n_vars:4 ~n_clauses:3 in
          let red = Minresource_red.reduce f in
          let a = Array.init 4 (fun _ -> Random.State.bool rng) in
          let alloc = Minresource_red.three_unit_allocation red a in
          Alcotest.(check bool) "makespan" true
            (Schedule.makespan red.Minresource_red.instance.Aoa.problem alloc
            <= red.Minresource_red.target);
          Alcotest.(check bool) "budget" true
            (Schedule.min_budget red.Minresource_red.instance.Aoa.problem alloc <= 3)
        done);
    Alcotest.test_case "reduction agrees with SAT oracle" `Slow (fun () ->
        let rng = rng_of 77 in
        for _ = 1 to 30 do
          let f = Sat.random rng ~n_vars:(3 + Random.State.int rng 2) ~n_clauses:(1 + Random.State.int rng 3) in
          let red = Minresource_red.reduce f in
          let want = if Sat.solve f <> None then 2 else 3 in
          Alcotest.(check int) "equivalent" want (Minresource_red.min_units red)
        done);
  ]

let gadget_split_units =
  [
    Alcotest.test_case "gadget constants: V5/V6/V7 timings" `Quick (fun () ->
        let red = Gadget_split.reduce Sat.example_paper in
        let x = red.Gadget_split.x in
        let a = [| false; false; false |] in
        let finish =
          Rtt_parsim.Sim.finish_times red.Gadget_split.dag
            ~reducer:(Gadget_split.reducers_of_assignment red a)
        in
        (* variable 0 assigned FALSE: V6 early, V5 late *)
        Alcotest.(check int) "V6 early" ((5 * x) + 5) finish.(red.Gadget_split.var_v6.(0));
        Alcotest.(check int) "V5 late" ((6 * x) + 3) finish.(red.Gadget_split.var_v5.(0));
        Alcotest.(check int) "V7" ((7 * x) + 12) finish.(red.Gadget_split.var_v7.(0)));
    Alcotest.test_case "table 3: line finish times over all 8 assignments" `Quick (fun () ->
        (* single clause (V1 v V2 v V3) over its own variables *)
        let f = Sat.make ~n_vars:3 [ [ (0, true); (1, true); (2, true) ] ] in
        let red = Gadget_split.reduce f in
        let x = red.Gadget_split.x in
        let a_const = (6 * x) + 4 and b_const = (5 * x) + 6 in
        (* Table 3 final values per row (Vi,Vj,Vk) for (C5,C6,C7) *)
        let expect = function
          | true, true, true -> (a_const + 1, a_const + 1, a_const + 1)
          | false, true, true -> (a_const, a_const, a_const + 2)
          | true, false, true -> (a_const, a_const + 2, a_const)
          | true, true, false -> (a_const + 2, a_const, a_const)
          | false, false, true -> (b_const + 2, a_const + 1, a_const + 1)
          | false, true, false -> (a_const + 1, b_const + 2, a_const + 1)
          | true, false, false -> (a_const + 1, a_const + 1, b_const + 2)
          | false, false, false -> (a_const, a_const, a_const)
        in
        for mask = 0 to 7 do
          let assignment = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
          let got = Gadget_split.line_finish_times red ~clause:0 assignment in
          let want = expect (assignment.(0), assignment.(1), assignment.(2)) in
          Alcotest.(check (triple int int int)) (Printf.sprintf "mask %d" mask) want got
        done);
    Alcotest.test_case "lemma 4.5 forward: satisfiable meets target within budget" `Quick (fun () ->
        let red = Gadget_split.reduce Sat.example_paper in
        let a = [| false; false; false |] in
        Alcotest.(check int) "makespan" red.Gadget_split.target
          (Gadget_split.makespan_of_assignment red a);
        Alcotest.(check bool) "budget" true
          (Gadget_split.budget_of_assignment red a <= red.Gadget_split.budget));
    Alcotest.test_case "lemma 4.5 backward: bad assignments overshoot" `Quick (fun () ->
        let red = Gadget_split.reduce Sat.example_paper in
        let bad = [| true; true; true |] in
        Alcotest.(check bool) "overshoots" true
          (Gadget_split.makespan_of_assignment red bad > red.Gadget_split.target));
    Alcotest.test_case "binary and k-way reducers give identical gadget timings" `Quick (fun () ->
        (* Section 4.2: "using 2 units ... composite node v takes (k/2+4)
           units of time using either function" *)
        let red = Gadget_split.reduce Sat.example_paper in
        for mask = 0 to 7 do
          let a = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
          let ms_binary =
            Rtt_parsim.Sim.makespan red.Gadget_split.dag
              ~reducer:(Gadget_split.reducers_of_assignment ~kind:`Binary red a)
          in
          let ms_kway =
            Rtt_parsim.Sim.makespan red.Gadget_split.dag
              ~reducer:(Gadget_split.reducers_of_assignment ~kind:`Kway red a)
          in
          Alcotest.(check int) (Printf.sprintf "mask %d" mask) ms_binary ms_kway
        done);
    Alcotest.test_case "paper target within a unit of the simulated target" `Quick (fun () ->
        let red = Gadget_split.reduce Sat.example_paper in
        Alcotest.(check bool) "close" true
          (abs (red.Gadget_split.paper_target - red.Gadget_split.target) <= 1));
    Alcotest.test_case "reduction agrees with SAT oracle (Lemma 4.5)" `Slow (fun () ->
        let rng = rng_of 31 in
        for _ = 1 to 8 do
          let f = Sat.random rng ~n_vars:3 ~n_clauses:(1 + Random.State.int rng 2) in
          let red = Gadget_split.reduce f in
          let want = Sat.solve f <> None in
          let got = Gadget_split.decide_by_assignments red <> None in
          Alcotest.(check bool) "equivalent" want got
        done);
  ]

let () =
  Alcotest.run "rtt_reductions"
    [
      ("1in3sat", sat_units);
      ("gadget-general (§4.1)", gadget_general_units);
      ("partition (§4.3)", partition_units);
      ("n3dm (appendix A)", n3dm_units);
      ("minresource (thm 4.4)", minresource_units);
      ("gadget-split (§4.2)", gadget_split_units);
    ]
