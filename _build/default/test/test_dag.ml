(* Tests for the DAG substrate: graph invariants, topological sorting,
   longest paths (the paper's makespan model), series-parallel
   machinery, tree decompositions, and the generators. *)

open Rtt_dag

let rng_of seed = Random.State.make [| seed |]

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let dag_units =
  [
    Alcotest.test_case "add_vertex allocates densely" `Quick (fun () ->
        let g = Dag.create () in
        let a = Dag.add_vertex g and b = Dag.add_vertex g in
        Alcotest.(check (list int)) "ids" [ 0; 1 ] [ a; b ];
        Alcotest.(check int) "count" 2 (Dag.n_vertices g));
    Alcotest.test_case "edges and degrees" `Quick (fun () ->
        let g = diamond () in
        Alcotest.(check int) "n_edges" 4 (Dag.n_edges g);
        Alcotest.(check int) "out 0" 2 (Dag.out_degree g 0);
        Alcotest.(check int) "in 3" 2 (Dag.in_degree g 3);
        Alcotest.(check bool) "mem" true (Dag.mem_edge g 0 1);
        Alcotest.(check bool) "not mem" false (Dag.mem_edge g 1 0));
    Alcotest.test_case "parallel edges accumulate" `Quick (fun () ->
        let g = Dag.of_edges ~n:2 [ (0, 1); (0, 1) ] in
        Alcotest.(check int) "n_edges" 2 (Dag.n_edges g);
        Alcotest.(check int) "in_degree counts multiplicity" 2 (Dag.in_degree g 1));
    Alcotest.test_case "self-loop rejected" `Quick (fun () ->
        let g = Dag.of_edges ~n:1 [] in
        Alcotest.check_raises "loop" (Invalid_argument "Dag.add_edge: self-loop") (fun () ->
            Dag.add_edge g 0 0));
    Alcotest.test_case "bad vertex rejected" `Quick (fun () ->
        let g = Dag.of_edges ~n:1 [] in
        Alcotest.check_raises "bad" (Invalid_argument "Dag.add_edge: bad vertex") (fun () ->
            Dag.add_edge g 0 5));
    Alcotest.test_case "topological order respects edges" `Quick (fun () ->
        let g = diamond () in
        let order = Dag.topo_sort g in
        let pos = Array.make 4 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        List.iter (fun (u, v) -> Alcotest.(check bool) "order" true (pos.(u) < pos.(v))) (Dag.edges g));
    Alcotest.test_case "cycle detection" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
        Alcotest.(check bool) "is_dag" false (Dag.is_dag g);
        Alcotest.check_raises "topo" Dag.Cycle (fun () -> ignore (Dag.topo_sort g)));
    Alcotest.test_case "sources and sinks" `Quick (fun () ->
        let g = diamond () in
        Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
        Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks g));
    Alcotest.test_case "transpose reverses edges" `Quick (fun () ->
        let g = Dag.transpose (diamond ()) in
        Alcotest.(check bool) "mem" true (Dag.mem_edge g 1 0);
        Alcotest.(check (list int)) "sources" [ 3 ] (Dag.sources g));
    Alcotest.test_case "reachable" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 1); (2, 3) ] in
        let r = Dag.reachable g 0 in
        Alcotest.(check (list bool)) "marks" [ true; true; false; false ] (Array.to_list r));
    Alcotest.test_case "ensure_single_source_sink adds supernodes" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 2); (1, 2) ] in
        (* two sources 0,1; two sinks 2? no: sinks are 2 and 3 *)
        let s, t = Dag.ensure_single_source_sink g in
        Alcotest.(check (list int)) "single source" [ s ] (Dag.sources g);
        Alcotest.(check (list int)) "single sink" [ t ] (Dag.sinks g));
    Alcotest.test_case "ensure_single noop when already single" `Quick (fun () ->
        let g = diamond () in
        let n_before = Dag.n_vertices g in
        let s, t = Dag.ensure_single_source_sink g in
        Alcotest.(check int) "no new vertices" n_before (Dag.n_vertices g);
        Alcotest.(check int) "s" 0 s;
        Alcotest.(check int) "t" 3 t);
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let g = diamond () in
        let h = Dag.copy g in
        Dag.add_edge h 0 3;
        Alcotest.(check int) "g unchanged" 4 (Dag.n_edges g);
        Alcotest.(check int) "h changed" 5 (Dag.n_edges h));
    Alcotest.test_case "labels" `Quick (fun () ->
        let g = Dag.create () in
        let v = Dag.add_vertex ~label:"hello" g in
        Alcotest.(check (option string)) "get" (Some "hello") (Dag.label g v);
        Dag.set_label g v "world";
        Alcotest.(check (option string)) "set" (Some "world") (Dag.label g v));
  ]

let longest_path_units =
  [
    Alcotest.test_case "single vertex" `Quick (fun () ->
        let g = Dag.of_edges ~n:1 [] in
        Alcotest.(check int) "makespan" 7 (Longest_path.makespan g ~weight:(fun _ -> 7)));
    Alcotest.test_case "path sums vertex weights" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
        Alcotest.(check int) "sum" 6 (Longest_path.makespan g ~weight:(fun v -> v + 1)));
    Alcotest.test_case "diamond takes heavier branch" `Quick (fun () ->
        let g = diamond () in
        let w = [| 0; 5; 1; 2 |] in
        Alcotest.(check int) "makespan" 7 (Longest_path.makespan g ~weight:(fun v -> w.(v)));
        let ms, path = Longest_path.critical_path g ~weight:(fun v -> w.(v)) in
        Alcotest.(check int) "cp value" 7 ms;
        Alcotest.(check (list int)) "cp path" [ 0; 1; 3 ] path);
    Alcotest.test_case "finish times are per-vertex" `Quick (fun () ->
        let g = diamond () in
        let ft = Longest_path.finish_times g ~weight:(fun _ -> 1) in
        Alcotest.(check (list int)) "finish" [ 1; 2; 2; 3 ] (Array.to_list ft));
    Alcotest.test_case "edge makespan (activity on arc)" `Quick (fun () ->
        let g = diamond () in
        let w u v = if (u, v) = (0, 1) then 5 else 1 in
        Alcotest.(check int) "events" 6 (Longest_path.edge_makespan g ~weight:w));
    Alcotest.test_case "critical path is a real path" `Quick (fun () ->
        let rng = rng_of 3 in
        for _ = 1 to 20 do
          let g = Gen.erdos_renyi rng ~n:12 ~edge_prob:0.3 in
          let w v = (v mod 5) + 1 in
          let ms, path = Longest_path.critical_path g ~weight:w in
          (* consecutive vertices are connected *)
          let rec ok = function
            | a :: (b :: _ as rest) -> Dag.mem_edge g a b && ok rest
            | _ -> true
          in
          Alcotest.(check bool) "path valid" true (ok path);
          Alcotest.(check int) "path sums to makespan" ms
            (List.fold_left (fun acc v -> acc + w v) 0 path)
        done);
  ]

let sp_units =
  [
    Alcotest.test_case "size and leaves" `Quick (fun () ->
        let t = Sp.series (Sp.leaf 1) (Sp.parallel (Sp.leaf 2) (Sp.leaf 3)) in
        Alcotest.(check int) "size" 3 (Sp.size t);
        Alcotest.(check (list int)) "leaves" [ 1; 2; 3 ] (Sp.leaves t));
    Alcotest.test_case "to_dag series is a chain" `Quick (fun () ->
        let t = Sp.series_of_list [ Sp.leaf 0; Sp.leaf 1; Sp.leaf 2 ] in
        let g, jobs = Sp.to_dag t in
        Alcotest.(check int) "vertices" 3 (Dag.n_vertices g);
        Alcotest.(check int) "edges" 2 (Dag.n_edges g);
        Alcotest.(check int) "single source" 1 (List.length (Dag.sources g));
        Alcotest.(check int) "jobs len" 3 (Array.length jobs));
    Alcotest.test_case "to_dag parallel has no edges" `Quick (fun () ->
        let t = Sp.parallel_of_list [ Sp.leaf 0; Sp.leaf 1; Sp.leaf 2 ] in
        let g, _ = Sp.to_dag t in
        Alcotest.(check int) "edges" 0 (Dag.n_edges g));
    Alcotest.test_case "to_dag series-of-parallel connects all" `Quick (fun () ->
        let t = Sp.series (Sp.parallel (Sp.leaf 0) (Sp.leaf 1)) (Sp.parallel (Sp.leaf 2) (Sp.leaf 3)) in
        let g, _ = Sp.to_dag t in
        Alcotest.(check int) "edges" 4 (Dag.n_edges g));
    Alcotest.test_case "recognize_ttsp accepts SP dags" `Quick (fun () ->
        (* diamond with both terminals *)
        let g = diamond () in
        Alcotest.(check bool) "diamond" true (Sp.recognize_ttsp g ~s:0 ~t:3));
    Alcotest.test_case "recognize_ttsp rejects crossing dag" `Quick (fun () ->
        (* the "N" / crossing structure is not two-terminal SP:
           s -> a, s -> b, a -> t, b -> t, a -> b' ... use the classic
           W-graph: s->a, s->b, a->c, b->c, a->t? build InterlockedDiamond *)
        let g = Dag.of_edges ~n:5 [ (0, 1); (0, 2); (1, 3); (2, 3); (1, 4); (3, 4) ] in
        Alcotest.(check bool) "not sp" false (Sp.recognize_ttsp g ~s:0 ~t:4));
    Alcotest.test_case "random sp converts and recognizes" `Quick (fun () ->
        let rng = rng_of 11 in
        for _ = 1 to 10 do
          let t = Gen.random_sp rng ~leaves:8 ~series_bias:0.5 in
          let g, _ = Sp.to_dag t in
          Alcotest.(check bool) "dag" true (Dag.is_dag g)
        done);
    Alcotest.test_case "decompose_ttsp on the diamond" `Quick (fun () ->
        let g = diamond () in
        match Sp.decompose_ttsp g ~s:0 ~t:3 with
        | Some tree ->
            Alcotest.(check int) "four edges" 4 (Sp.size tree);
            Alcotest.(check (list (pair int int))) "leaves are the edges"
              [ (0, 1); (0, 2); (1, 3); (2, 3) ]
              (List.sort compare (Sp.leaves tree))
        | None -> Alcotest.fail "diamond is TTSP");
    Alcotest.test_case "decompose_ttsp rejects the interlocked dag" `Quick (fun () ->
        let g = Dag.of_edges ~n:5 [ (0, 1); (0, 2); (1, 3); (2, 3); (1, 4); (3, 4) ] in
        Alcotest.(check bool) "none" true (Sp.decompose_ttsp g ~s:0 ~t:4 = None));
    Alcotest.test_case "decompose_ttsp handles parallel edges" `Quick (fun () ->
        let g = Dag.of_edges ~n:2 [ (0, 1); (0, 1); (0, 1) ] in
        match Sp.decompose_ttsp g ~s:0 ~t:1 with
        | Some tree -> Alcotest.(check int) "three leaves" 3 (Sp.size tree)
        | None -> Alcotest.fail "parallel edges are TTSP");
    Alcotest.test_case "decompose agrees with recognize on random graphs" `Quick (fun () ->
        let rng = rng_of 47 in
        for _ = 1 to 30 do
          let g = Gen.erdos_renyi rng ~n:(4 + Random.State.int rng 6) ~edge_prob:0.4 in
          let s = List.hd (Dag.sources g) and t = List.hd (Dag.sinks g) in
          Alcotest.(check bool) "agree" (Sp.recognize_ttsp g ~s ~t)
            (Sp.decompose_ttsp g ~s ~t <> None)
        done);
    Alcotest.test_case "map preserves shape" `Quick (fun () ->
        let t = Sp.series (Sp.leaf 1) (Sp.leaf 2) in
        Alcotest.(check (list int)) "mapped" [ 2; 4 ] (Sp.leaves (Sp.map (fun x -> 2 * x) t)));
  ]

let treewidth_units =
  [
    Alcotest.test_case "path decomposition of a path graph" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
        let d = Treewidth.path_decomposition [| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] |] in
        Alcotest.(check bool) "valid" true (Treewidth.is_valid g d);
        Alcotest.(check int) "width" 1 (Treewidth.width d));
    Alcotest.test_case "missing edge coverage fails" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
        let d = Treewidth.path_decomposition [| [ 0; 1 ]; [ 1; 2 ] |] in
        Alcotest.(check bool) "invalid" false (Treewidth.is_valid g d));
    Alcotest.test_case "disconnected occurrences fail" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
        let d = Treewidth.path_decomposition [| [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] |] in
        (* vertex 0 occurs in bags 0 and 2 but not 1 *)
        Alcotest.(check bool) "invalid" false (Treewidth.is_valid g d));
    Alcotest.test_case "non-tree rejected" `Quick (fun () ->
        let d = Treewidth.make ~bags:[| [ 0 ]; [ 0 ]; [ 0 ] |] ~tree_edges:[ (0, 1) ] in
        Alcotest.(check bool) "not a tree" false (Treewidth.is_tree d));
    Alcotest.test_case "single bag covers clique" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
        let d = Treewidth.make ~bags:[| [ 0; 1; 2 ] |] ~tree_edges:[] in
        Alcotest.(check bool) "valid" true (Treewidth.is_valid g d);
        Alcotest.(check int) "width" 2 (Treewidth.width d));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let gen_props =
  [
    prop "erdos_renyi is a single-source single-sink dag" 30 QCheck.(int_range 2 30) (fun n ->
        let rng = rng_of n in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.3 in
        Dag.is_dag g && List.length (Dag.sources g) = 1 && List.length (Dag.sinks g) = 1);
    prop "layered is a single-source single-sink dag" 30 QCheck.(int_range 2 8) (fun layers ->
        let rng = rng_of layers in
        let g = Gen.layered rng ~layers ~width:4 ~edge_prob:0.3 in
        Dag.is_dag g && List.length (Dag.sources g) = 1 && List.length (Dag.sinks g) = 1);
    prop "random_sp has requested leaves" 30 QCheck.(int_range 1 30) (fun leaves ->
        let rng = rng_of leaves in
        Sp.size (Gen.random_sp rng ~leaves ~series_bias:0.5) = leaves);
    prop "topo_sort covers all vertices exactly once" 30 QCheck.(int_range 2 40) (fun n ->
        let rng = rng_of (n + 1000) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.25 in
        let order = Dag.topo_sort g in
        List.sort_uniq compare order = Dag.vertices g);
    prop "makespan at least any single weight" 30 QCheck.(int_range 2 20) (fun n ->
        let rng = rng_of (n + 2000) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.3 in
        let w v = (v * 7 mod 11) + 1 in
        let ms = Longest_path.makespan g ~weight:w in
        List.for_all (fun v -> ms >= w v) (Dag.vertices g));
  ]

let () =
  Alcotest.run "rtt_dag"
    [
      ("dag", dag_units);
      ("longest-path", longest_path_units);
      ("series-parallel", sp_units);
      ("treewidth", treewidth_units);
      ("generators+properties", gen_props);
    ]
