(* Tests for the parallel-program substrate: the fork-join program
   representation, determinacy-race detection (Figure 1), race DAGs,
   reducer simulation (Figure 2), and Parallel-MM (Figure 3). *)

open Rtt_parsim
open Rtt_dag

let prog_units =
  [
    Alcotest.test_case "counter_race shape" `Quick (fun () ->
        Alcotest.(check int) "updates" 2 (Prog.n_updates Prog.counter_race);
        Alcotest.(check (list int)) "cells" [ 0 ] (Prog.cells Prog.counter_race));
    Alcotest.test_case "parallel_mm counts" `Quick (fun () ->
        let p = Prog.parallel_mm ~n:3 in
        Alcotest.(check int) "updates" 27 (Prog.n_updates p);
        Alcotest.(check int) "cells" 27 (List.length (Prog.cells p)));
    Alcotest.test_case "updates in program order" `Quick (fun () ->
        let p = Prog.seq [ Prog.update 0 [ 1 ]; Prog.update 2 [ 0 ] ] in
        Alcotest.(check (list (pair int (list int)))) "order" [ (0, [ 1 ]); (2, [ 0 ]) ]
          (Prog.updates p));
  ]

let race_units =
  [
    Alcotest.test_case "figure 1: the double increment races" `Quick (fun () ->
        let races = Race.find Prog.counter_race in
        Alcotest.(check bool) "has race" true (races <> []);
        match races with
        | r :: _ ->
            Alcotest.(check int) "on x" 0 r.Race.cell;
            Alcotest.(check bool) "write/write" true r.Race.write_write
        | [] -> assert false);
    Alcotest.test_case "sequential increments are race-free" `Quick (fun () ->
        let p = Prog.seq [ Prog.update 0 [ 0 ]; Prog.update 0 [ 0 ] ] in
        Alcotest.(check bool) "no race" false (Race.has_race p));
    Alcotest.test_case "read/write race detected" `Quick (fun () ->
        let p = Prog.par [ Prog.update 0 [ 1 ]; Prog.update 1 [ 2 ] ] in
        (* op1 reads 1 while op2 writes 1 *)
        let races = Race.find p in
        Alcotest.(check int) "one race" 1 (List.length races);
        Alcotest.(check bool) "not ww" false (List.hd races).Race.write_write);
    Alcotest.test_case "disjoint parallel writes are race-free" `Quick (fun () ->
        let p = Prog.par [ Prog.update 0 [ 2 ]; Prog.update 1 [ 2 ] ] in
        Alcotest.(check bool) "no race" false (Race.has_race p));
    Alcotest.test_case "parallel_mm is race-free, racy variant races" `Quick (fun () ->
        Alcotest.(check bool) "mm ok" false (Race.has_race (Prog.parallel_mm ~n:2));
        Alcotest.(check bool) "racy mm" true (Race.has_race (Prog.parallel_mm_racy ~n:2)));
    Alcotest.test_case "race_free_cells excludes racy ones" `Quick (fun () ->
        let p = Prog.par [ Prog.update 0 [ 2 ]; Prog.update 0 [ 3 ] ] in
        let free = Race.race_free_cells p in
        Alcotest.(check bool) "0 is racy" false (List.mem 0 free);
        Alcotest.(check bool) "2 is free" true (List.mem 2 free));
    Alcotest.test_case "nesting: par inside seq is ordered with siblings" `Quick (fun () ->
        let p =
          Prog.seq [ Prog.par [ Prog.update 0 [ 1 ] ]; Prog.update 0 [ 1 ] ]
        in
        Alcotest.(check bool) "ordered" false (Race.has_race p));
  ]

let race_dag_units =
  [
    Alcotest.test_case "race dag of racy MM has in-degree n at Z cells" `Quick (fun () ->
        let p = Prog.parallel_mm_racy ~n:3 in
        let rd = Race_dag.build p in
        let works = Race_dag.works rd in
        (* Z cells are 0..8, each updated 3 times using 2 sources each *)
        let z0 = Hashtbl.find rd.Race_dag.vertex_of_cell 0 in
        Alcotest.(check int) "z work" 6 works.(z0));
    Alcotest.test_case "cyclic dependencies rejected" `Quick (fun () ->
        let p = Prog.seq [ Prog.update 0 [ 1 ]; Prog.update 1 [ 0 ] ] in
        Alcotest.check_raises "cycle" Race_dag.Cyclic_dependencies (fun () ->
            ignore (Race_dag.build p)));
    Alcotest.test_case "self reads do not self-loop" `Quick (fun () ->
        let p = Prog.update 0 [ 0; 1 ] in
        let rd = Race_dag.build p in
        Alcotest.(check bool) "dag" true (Dag.is_dag rd.Race_dag.dag));
  ]

let reducer_units =
  [
    Alcotest.test_case "serial queue serializes" `Quick (fun () ->
        Alcotest.(check int) "simultaneous" 5
          (Reducer_sim.finish_time ~arrivals:[ 0; 0; 0; 0; 0 ] Reducer_sim.Serial);
        Alcotest.(check int) "staggered" 4
          (Reducer_sim.finish_time ~arrivals:[ 0; 1; 2; 3 ] Reducer_sim.Serial);
        Alcotest.(check int) "empty" 0 (Reducer_sim.finish_time ~arrivals:[] Reducer_sim.Serial));
    Alcotest.test_case "figure 2: binary reducer formula" `Quick (fun () ->
        (* n simultaneous updates with height h finish at ceil(n/2^h)+h+1 *)
        List.iter
          (fun (n, h) ->
            let arrivals = List.init n (fun _ -> 0) in
            let want = ((n + (1 lsl h) - 1) / (1 lsl h)) + h + 1 in
            Alcotest.(check int)
              (Printf.sprintf "n=%d h=%d" n h)
              want
              (Reducer_sim.finish_time ~arrivals (Reducer_sim.Binary { height = h })))
          [ (8, 1); (8, 2); (8, 3); (64, 3); (100, 4); (5, 1); (17, 2) ]);
    Alcotest.test_case "equation 2: k-way formula" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            let arrivals = List.init n (fun _ -> 0) in
            let want = ((n + k - 1) / k) + k in
            Alcotest.(check int)
              (Printf.sprintf "n=%d k=%d" n k)
              want
              (Reducer_sim.finish_time ~arrivals (Reducer_sim.Kway { ways = k })))
          [ (16, 2); (16, 4); (30, 5); (9, 3) ]);
    Alcotest.test_case "height 0 and 1-way degrade to serial" `Quick (fun () ->
        let arrivals = [ 0; 2; 2; 5 ] in
        let serial = Reducer_sim.finish_time ~arrivals Reducer_sim.Serial in
        Alcotest.(check int) "h0" serial
          (Reducer_sim.finish_time ~arrivals (Reducer_sim.Binary { height = 0 }));
        Alcotest.(check int) "k1" serial
          (Reducer_sim.finish_time ~arrivals (Reducer_sim.Kway { ways = 1 })));
    Alcotest.test_case "space accounting" `Quick (fun () ->
        Alcotest.(check int) "serial" 0 (Reducer_sim.space Reducer_sim.Serial);
        Alcotest.(check int) "binary" 8 (Reducer_sim.space (Reducer_sim.Binary { height = 3 }));
        Alcotest.(check int) "kway" 5 (Reducer_sim.space (Reducer_sim.Kway { ways = 5 })));
    Alcotest.test_case "reducer_of_allocation" `Quick (fun () ->
        Alcotest.(check bool) "0" true (Reducer_sim.reducer_of_allocation 0 = Reducer_sim.Serial);
        Alcotest.(check bool) "1" true (Reducer_sim.reducer_of_allocation 1 = Reducer_sim.Serial);
        Alcotest.(check bool) "2" true
          (Reducer_sim.reducer_of_allocation 2 = Reducer_sim.Binary { height = 1 });
        Alcotest.(check bool) "7" true
          (Reducer_sim.reducer_of_allocation 7 = Reducer_sim.Binary { height = 2 }));
    Alcotest.test_case "negative arrivals rejected" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Reducer_sim: negative arrival") (fun () ->
            ignore (Reducer_sim.finish_time ~arrivals:[ -1 ] Reducer_sim.Serial)));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let reducer_props =
  [
    prop "reducers beat the lock once the fan-in amortizes the tree" 100
      QCheck.(pair (int_range 1 400) (int_range 1 6))
      (fun (n, h) ->
        (* a tiny reducer can lose (n = 2, h = 1 costs 3 vs 2): the tree
           pays h+1 overhead, amortized only when n >= 2^h (h+2) *)
        QCheck.assume ((1 lsl h) * (h + 2) <= n);
        let arrivals = List.init n (fun _ -> 0) in
        Reducer_sim.finish_time ~arrivals (Reducer_sim.Binary { height = h })
        <= Reducer_sim.finish_time ~arrivals Reducer_sim.Serial);
    prop "binary simulation matches Equation 3 on simultaneous arrivals" 100
      QCheck.(pair (int_range 4 300) (int_range 1 5))
      (fun (n, h) ->
        QCheck.assume (h <= Rtt_duration.Binary_split.max_height ~work:n);
        let arrivals = List.init n (fun _ -> 0) in
        Reducer_sim.finish_time ~arrivals (Reducer_sim.Binary { height = h })
        = Rtt_duration.Binary_split.time ~work:n (1 lsl h));
    prop "kway simulation within Equation 2 (equal when k divides n)" 100
      QCheck.(pair (int_range 4 300) (int_range 2 8))
      (fun (n, k) ->
        QCheck.assume (k <= Rtt_duration.Kway.max_split ~work:n);
        let arrivals = List.init n (fun _ -> 0) in
        let sim = Reducer_sim.finish_time ~arrivals (Reducer_sim.Kway { ways = k }) in
        let formula = Rtt_duration.Kway.time ~work:n k in
        sim <= formula && (n mod k <> 0 || sim = formula));
    prop "finish time weakly increases with arrivals" 50
      QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_range 0 30))
      (fun arrivals ->
        let f = Reducer_sim.finish_time ~arrivals Reducer_sim.Serial in
        let shifted = List.map (fun a -> a + 1) arrivals in
        Reducer_sim.finish_time ~arrivals:shifted Reducer_sim.Serial >= f);
  ]

let sim_units =
  [
    Alcotest.test_case "observation 1.1: event model bounded by makespan model" `Quick (fun () ->
        let rng = Random.State.make [| 6 |] in
        for _ = 1 to 20 do
          let g = Gen.erdos_renyi rng ~n:10 ~edge_prob:0.35 in
          let fine = Sim.serial_makespan g in
          let coarse = Longest_path.makespan g ~weight:(fun v -> Dag.in_degree g v) in
          Alcotest.(check bool) "fine <= coarse" true (fine <= coarse)
        done);
    Alcotest.test_case "reducers reduce the simulated makespan" `Quick (fun () ->
        let g = Dag.create () in
        let s = Dag.add_vertex g in
        let hub = Dag.add_vertex g in
        let feeders = List.init 16 (fun _ -> Dag.add_vertex g) in
        List.iter
          (fun f ->
            Dag.add_edge g s f;
            Dag.add_edge g f hub)
          feeders;
        let serial = Sim.serial_makespan g in
        let reduced =
          Sim.makespan g ~reducer:(fun v ->
              if v = hub then Reducer_sim.Binary { height = 2 } else Reducer_sim.Serial)
        in
        Alcotest.(check int) "serial" 17 serial;
        Alcotest.(check int) "reduced" 8 reduced;
        Alcotest.(check int) "space" 4
          (Sim.space_used g ~reducer:(fun v ->
               if v = hub then Reducer_sim.Binary { height = 2 } else Reducer_sim.Serial)));
  ]

let matmul_units =
  [
    Alcotest.test_case "lock-only span is Theta(n)" `Quick (fun () ->
        Alcotest.(check int) "n=64" 64 (Matmul.serial_span ~n:64));
    Alcotest.test_case "height halves at h=1" `Quick (fun () ->
        (* paper: running time almost halves using 2n^2 extra space *)
        let n = 64 in
        let s = Matmul.span ~n ~height:1 in
        Alcotest.(check int) "halved" ((n / 2) + 2) s;
        Alcotest.(check int) "space" (2 * n * n) (Matmul.extra_space ~n ~height:1));
    Alcotest.test_case "full height reaches Theta(log n)" `Quick (fun () ->
        let n = 64 in
        let h = 6 in
        let s = Matmul.span ~n ~height:h in
        Alcotest.(check int) "log-ish" (1 + h + 1) s);
    Alcotest.test_case "speedup grows with height" `Quick (fun () ->
        let n = 64 in
        let s1 = Matmul.speedup ~n ~height:1 and s4 = Matmul.speedup ~n ~height:4 in
        Alcotest.(check bool) "monotone" true (s4 > s1));
    Alcotest.test_case "rejects bad input" `Quick (fun () ->
        Alcotest.check_raises "n" (Invalid_argument "Matmul.span") (fun () ->
            ignore (Matmul.span ~n:0 ~height:0)));
  ]

let incr_combine : Interp.combine = fun ~dst ~srcs:_ -> dst + 1
let sum_combine : Interp.combine = fun ~dst ~srcs -> dst + List.fold_left ( + ) 0 srcs

let interp_units =
  [
    Alcotest.test_case "figure 1: the race can lose an increment" `Quick (fun () ->
        (* two parallel x++ can print 1 (lost update) or 2 *)
        let outcomes = Interp.possible_outcomes incr_combine Prog.counter_race 0 in
        Alcotest.(check (list int)) "outcomes" [ 1; 2 ] outcomes);
    Alcotest.test_case "sequential semantics is the intended one" `Quick (fun () ->
        let result = Interp.run_sequential incr_combine Prog.counter_race in
        Alcotest.(check (list (pair int int))) "x = 2" [ (0, 2) ] result);
    Alcotest.test_case "sequenced increments are deterministic" `Quick (fun () ->
        let p = Prog.seq [ Prog.update 0 [ 0 ]; Prog.update 0 [ 0 ] ] in
        Alcotest.(check bool) "det" true (Interp.is_deterministic incr_combine p);
        Alcotest.(check (list int)) "only 2" [ 2 ] (Interp.possible_outcomes incr_combine p 0));
    Alcotest.test_case "three parallel increments: 1..3 possible" `Quick (fun () ->
        let p = Prog.par [ Prog.update 0 [ 0 ]; Prog.update 0 [ 0 ]; Prog.update 0 [ 0 ] ] in
        Alcotest.(check (list int)) "outcomes" [ 1; 2; 3 ] (Interp.possible_outcomes incr_combine p 0));
    Alcotest.test_case "disjoint parallel updates stay deterministic" `Quick (fun () ->
        let p = Prog.par [ Prog.update 0 [ 2 ]; Prog.update 1 [ 2 ] ] in
        Alcotest.(check bool) "det" true
          (Interp.is_deterministic ~init:(fun c -> if c = 2 then 5 else 0) sum_combine p));
    Alcotest.test_case "race detector agrees with outcome nondeterminism" `Quick (fun () ->
        (* on write-write conflicts the static and dynamic views agree *)
        List.iter
          (fun p ->
            let racy = Race.find p <> [] in
            let nondet = not (Interp.is_deterministic incr_combine p) in
            if nondet then Alcotest.(check bool) "nondet => racy" true racy)
          [
            Prog.counter_race;
            Prog.seq [ Prog.update 0 [ 0 ]; Prog.update 0 [ 0 ] ];
            Prog.par [ Prog.update 0 [ 1 ]; Prog.update 1 [ 2 ] ];
          ]);
    Alcotest.test_case "explicit schedule replays the lost update" `Quick (fun () ->
        (* events: 0 = read op0, 1 = write op0, 2 = read op1, 3 = write op1 *)
        let lost = Interp.run_schedule incr_combine Prog.counter_race ~schedule:[ 0; 2; 1; 3 ] in
        Alcotest.(check (list (pair int int))) "x = 1" [ (0, 1) ] lost;
        let good = Interp.run_schedule incr_combine Prog.counter_race ~schedule:[ 0; 1; 2; 3 ] in
        Alcotest.(check (list (pair int int))) "x = 2" [ (0, 2) ] good);
    Alcotest.test_case "invalid schedules rejected" `Quick (fun () ->
        Alcotest.check_raises "write first" (Invalid_argument "Interp.run_schedule: write before read")
          (fun () -> ignore (Interp.run_schedule incr_combine Prog.counter_race ~schedule:[ 1; 0; 2; 3 ]));
        Alcotest.check_raises "length" (Invalid_argument "Interp.run_schedule: wrong length")
          (fun () -> ignore (Interp.run_schedule incr_combine Prog.counter_race ~schedule:[ 0; 1 ]));
        let seq = Prog.seq [ Prog.update 0 [ 0 ]; Prog.update 0 [ 0 ] ] in
        Alcotest.check_raises "program order"
          (Invalid_argument "Interp.run_schedule: violates program order") (fun () ->
            ignore (Interp.run_schedule incr_combine seq ~schedule:[ 2; 3; 0; 1 ])));
    Alcotest.test_case "too many events rejected" `Quick (fun () ->
        let p = Prog.par (List.init 10 (fun _ -> Prog.update 0 [ 0 ])) in
        Alcotest.check_raises "limit" (Invalid_argument "Interp.possible_outcomes: too many events")
          (fun () -> ignore (Interp.possible_outcomes incr_combine p 0)));
  ]

let () =
  Alcotest.run "rtt_parsim"
    [
      ("prog", prog_units);
      ("race-detection", race_units);
      ("race-dag", race_dag_units);
      ("reducer-sim", reducer_units);
      ("reducer-properties", reducer_props);
      ("dag-sim", sim_units);
      ("parallel-mm", matmul_units);
      ("interpreter", interp_units);
    ]
