test/test_lp.ml: Alcotest Array Linexpr List Lp Printf QCheck QCheck_alcotest Random Rat Rtt_lp Rtt_num
