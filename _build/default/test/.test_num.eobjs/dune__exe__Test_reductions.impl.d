test/test_reductions.ml: Alcotest Aoa Array Gadget_general Gadget_split List Minresource_red N3dm_red Partition_red Printf Problem Random Rtt_core Rtt_dag Rtt_parsim Rtt_reductions Sat Schedule
