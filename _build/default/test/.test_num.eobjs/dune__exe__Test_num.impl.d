test/test_num.ml: Alcotest Bigint Float List Printf QCheck QCheck_alcotest Rat Rtt_num String
