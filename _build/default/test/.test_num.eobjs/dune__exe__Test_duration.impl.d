test/test_duration.ml: Alcotest Binary_split Duration Kway List Printf QCheck QCheck_alcotest Rtt_duration
