test/test_flow.ml: Alcotest Array Decompose List Maxflow Minflow QCheck QCheck_alcotest Random Rtt_flow
