test/test_dag.ml: Alcotest Array Dag Gen List Longest_path QCheck QCheck_alcotest Random Rtt_dag Sp Treewidth
