test/test_parsim.mli:
