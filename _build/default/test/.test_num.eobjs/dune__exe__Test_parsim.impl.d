test/test_parsim.ml: Alcotest Array Dag Gen Hashtbl Interp List Longest_path Matmul Printf Prog QCheck QCheck_alcotest Race Race_dag Random Reducer_sim Rtt_dag Rtt_duration Rtt_parsim Sim
