test/test_duration.mli:
