(* Tests for the three duration-function classes of Section 2:
   general non-increasing step functions (Equation 1), k-way splitting
   (Equation 2) and recursive binary splitting (Equation 3). *)

open Rtt_duration

let duration_units =
  [
    Alcotest.test_case "make validates and canonicalizes" `Quick (fun () ->
        let d = Duration.make [ (0, 10); (2, 7); (4, 7); (6, 3) ] in
        (* the (4,7) step buys nothing and is dropped *)
        Alcotest.(check (list (pair int int))) "tuples" [ (0, 10); (2, 7); (6, 3) ] (Duration.tuples d));
    Alcotest.test_case "make rejects bad input" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Duration.make: empty") (fun () ->
            ignore (Duration.make []));
        Alcotest.check_raises "no zero" (Invalid_argument "Duration.make: no tuple at resource 0")
          (fun () -> ignore (Duration.make [ (1, 5) ]));
        Alcotest.check_raises "increasing"
          (Invalid_argument "Duration.make: duration function must be non-increasing") (fun () ->
            ignore (Duration.make [ (0, 3); (2, 5) ]));
        Alcotest.check_raises "negative"
          (Invalid_argument "Duration.make: negative resource or time") (fun () ->
            ignore (Duration.make [ (0, -1) ]));
        Alcotest.check_raises "conflict"
          (Invalid_argument "Duration.make: conflicting times at one resource level") (fun () ->
            ignore (Duration.make [ (0, 5); (0, 4) ])));
    Alcotest.test_case "eval steps correctly" `Quick (fun () ->
        let d = Duration.make [ (0, 10); (2, 7); (6, 3) ] in
        List.iter
          (fun (r, want) -> Alcotest.(check int) (Printf.sprintf "t(%d)" r) want (Duration.eval d r))
          [ (0, 10); (1, 10); (2, 7); (5, 7); (6, 3); (100, 3) ]);
    Alcotest.test_case "eval rejects negative resources" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Duration.eval: negative resource") (fun () ->
            ignore (Duration.eval (Duration.constant 3) (-1))));
    Alcotest.test_case "constant" `Quick (fun () ->
        let d = Duration.constant 4 in
        Alcotest.(check bool) "is_constant" true (Duration.is_constant d);
        Alcotest.(check int) "eval" 4 (Duration.eval d 100);
        Alcotest.(check int) "max_useful" 0 (Duration.max_useful_resource d));
    Alcotest.test_case "two_point" `Quick (fun () ->
        let d = Duration.two_point ~t0:5 ~r:3 ~t1:0 in
        Alcotest.(check int) "t(0)" 5 (Duration.eval d 0);
        Alcotest.(check int) "t(3)" 0 (Duration.eval d 3);
        Alcotest.(check int) "base" 5 (Duration.base_time d);
        Alcotest.(check int) "best" 0 (Duration.best_time d);
        Alcotest.check_raises "no gain" (Invalid_argument "Duration.two_point") (fun () ->
            ignore (Duration.two_point ~t0:5 ~r:3 ~t1:5)));
  ]

let kway_units =
  [
    Alcotest.test_case "equation 2 values" `Quick (fun () ->
        (* d = 16: sqrt = 4 *)
        List.iter
          (fun (k, want) -> Alcotest.(check int) (Printf.sprintf "t(16,%d)" k) want (Kway.time ~work:16 k))
          [ (0, 16); (1, 16); (2, 10); (3, 9); (4, 8); (5, 8); (100, 8) ]);
    Alcotest.test_case "max_split" `Quick (fun () ->
        Alcotest.(check int) "sqrt 16" 4 (Kway.max_split ~work:16);
        Alcotest.(check int) "sqrt 17" 4 (Kway.max_split ~work:17);
        Alcotest.(check int) "sqrt 1" 1 (Kway.max_split ~work:1);
        Alcotest.(check int) "sqrt 0" 0 (Kway.max_split ~work:0));
    Alcotest.test_case "tiny works degenerate" `Quick (fun () ->
        Alcotest.(check int) "d=1" 1 (Kway.time ~work:1 5);
        Alcotest.(check int) "d=3 k=2" 3 (Kway.time ~work:3 2));
    Alcotest.test_case "to_duration consistent with time" `Quick (fun () ->
        let work = 30 in
        let d = Kway.to_duration ~work in
        for r = 0 to 12 do
          Alcotest.(check bool)
            (Printf.sprintf "t(%d)" r)
            true
            (Duration.eval d r <= Kway.time ~work r)
        done);
  ]

let binary_units =
  [
    Alcotest.test_case "equation 3 values" `Quick (fun () ->
        (* d = 64: k = floor (log2 (64 ln 2)) = floor(log2 44.36) = 5 *)
        Alcotest.(check int) "k" 5 (Binary_split.max_height ~work:64);
        List.iter
          (fun (r, want) ->
            Alcotest.(check int) (Printf.sprintf "t(64,%d)" r) want (Binary_split.time ~work:64 r))
          [ (0, 64); (1, 64); (2, 34); (4, 19); (8, 12); (16, 9); (32, 8); (64, 8); (1000, 8) ]);
    Alcotest.test_case "max_height small values" `Quick (fun () ->
        List.iter
          (fun (d, want) ->
            Alcotest.(check int) (Printf.sprintf "k(%d)" d) want (Binary_split.max_height ~work:d))
          [ (1, 0); (2, 0); (3, 1); (4, 1); (6, 2); (12, 3); (24, 4) ]);
    Alcotest.test_case "levels" `Quick (fun () ->
        Alcotest.(check (list int)) "levels 64" [ 0; 2; 4; 8; 16; 32 ] (Binary_split.levels ~work:64));
    Alcotest.test_case "time clamps at work" `Quick (fun () ->
        (* small d where the formula would exceed d *)
        Alcotest.(check int) "d=3 r=2" 3 (Binary_split.time ~work:3 2));
    Alcotest.test_case "composite-node constants of Section 4.2" `Quick (fun () ->
        (* a composite of order k with 2 units finishes its final cell's
           writes in ceil(k/2) + 2 = k/2 + 2 for even k *)
        let k = 42 in
        Alcotest.(check int) "binary t(2)" ((k / 2) + 2) (Binary_split.time ~work:k 2);
        Alcotest.(check int) "kway t(2)" ((k / 2) + 2) (Kway.time ~work:k 2));
    Alcotest.test_case "to_duration non-increasing and canonical" `Quick (fun () ->
        for work = 1 to 100 do
          let d = Binary_split.to_duration ~work in
          let tuples = Duration.tuples d in
          let rec mono = function
            | (_, t1) :: (((_, t2) :: _) as rest) -> t2 < t1 && mono rest
            | _ -> true
          in
          Alcotest.(check bool) (Printf.sprintf "mono %d" work) true (mono tuples)
        done);
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let props =
  [
    prop "kway non-increasing in k" 100 QCheck.(pair (int_range 1 200) (int_range 0 30)) (fun (w, k) ->
        Kway.time ~work:w (k + 1) <= Kway.time ~work:w k);
    prop "kway never worse than serial" 100 QCheck.(pair (int_range 1 200) (int_range 0 30)) (fun (w, k) ->
        Kway.time ~work:w k <= w);
    prop "binary non-increasing in r" 100 QCheck.(pair (int_range 1 300) (int_range 0 64)) (fun (w, r) ->
        Binary_split.time ~work:w (r + 1) <= Binary_split.time ~work:w r);
    prop "binary halving at most doubles (Theorem 3.10's engine)" 100
      QCheck.(pair (int_range 4 500) (int_range 1 8))
      (fun (w, i) ->
        let r = 1 lsl i in
        Binary_split.time ~work:w (r / 2) <= 2 * Binary_split.time ~work:w r);
    prop "binary t(2^k) matches formula when formula helps" 100 QCheck.(int_range 8 1000) (fun w ->
        let k = Binary_split.max_height ~work:w in
        k < 1
        || Binary_split.time ~work:w (1 lsl k) = min w (((w + (1 lsl k) - 1) / (1 lsl k)) + k + 1));
    prop "eval at tuple points returns tuple times" 100 QCheck.(int_range 1 500) (fun w ->
        let d = Binary_split.to_duration ~work:w in
        List.for_all (fun (r, t) -> Duration.eval d r = t) (Duration.tuples d));
    prop "duration eval is non-increasing" 100
      QCheck.(pair (int_range 1 300) (int_range 0 50))
      (fun (w, r) ->
        let d = Kway.to_duration ~work:w in
        Duration.eval d (r + 1) <= Duration.eval d r);
  ]

let () =
  Alcotest.run "rtt_duration"
    [ ("step-functions", duration_units); ("kway", kway_units); ("binary", binary_units); ("properties", props) ]
