(* Second-wave coverage: edge cases and cross-module behaviours that the
   per-library suites do not reach — residual-network semantics of
   repeated max-flow runs, min-cut saturation, DOT escaping, planted
   large-formula forward checks of the reductions, and algebraic
   identities on the number tower. *)

open Rtt_num
open Rtt_dag
open Rtt_flow
open Rtt_duration
open Rtt_core
open Rtt_reductions

let rng_of seed = Random.State.make [| seed |]
let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let num_extra =
  [
    Alcotest.test_case "mul_int boundary values" `Quick (fun () ->
        let big = Bigint.of_string "123456789123456789" in
        List.iter
          (fun k ->
            Alcotest.(check string)
              (Printf.sprintf "k=%d" k)
              (Bigint.to_string (Bigint.mul big (Bigint.of_int k)))
              (Bigint.to_string (Bigint.mul_int big k)))
          [ 0; 1; -1; 1073741823; 1073741824; -1073741825; max_int; min_int ]);
    Alcotest.test_case "add_int boundary values" `Quick (fun () ->
        let big = Bigint.of_string "999999999999999999999" in
        List.iter
          (fun k ->
            Alcotest.(check string)
              (Printf.sprintf "k=%d" k)
              (Bigint.to_string (Bigint.add big (Bigint.of_int k)))
              (Bigint.to_string (Bigint.add_int big k)))
          [ 0; 1; -1; 1 lsl 29; (1 lsl 30) + 1; min_int ]);
    prop "pow adds exponents" 50 QCheck.(pair (int_range 0 20) (int_range 0 20)) (fun (a, b) ->
        let x = Bigint.of_int 3 in
        Bigint.equal (Bigint.pow x (a + b)) (Bigint.mul (Bigint.pow x a) (Bigint.pow x b)));
    prop "gcd is associative" 50 QCheck.(triple small_nat small_nat small_nat) (fun (a, b, c) ->
        let f = Bigint.of_int in
        Bigint.equal
          (Bigint.gcd (f a) (Bigint.gcd (f b) (f c)))
          (Bigint.gcd (Bigint.gcd (f a) (f b)) (f c)));
    prop "stein gcd agrees with euclid on naturals" 200 QCheck.(pair (int_range 0 1000000) (int_range 0 1000000)) (fun (a, b) ->
        let rec euclid a b = if b = 0 then a else euclid b (a mod b) in
        Bigint.to_int (Bigint.gcd (Bigint.of_int a) (Bigint.of_int b)) = euclid (max a b) (min a b));
    Alcotest.test_case "rat mul_int and min/max" `Quick (fun () ->
        Alcotest.(check string) "mul_int" "9/2" (Rat.to_string (Rat.mul_int (Rat.of_ints 3 2) 3));
        Alcotest.(check string) "min" "1/3" (Rat.to_string (Rat.min (Rat.of_ints 1 3) (Rat.of_ints 1 2)));
        Alcotest.(check string) "max" "1/2" (Rat.to_string (Rat.max (Rat.of_ints 1 3) (Rat.of_ints 1 2))));
    prop "rat compare is transitive" 100 QCheck.(triple (int_range (-50) 50) (int_range (-50) 50) (int_range (-50) 50))
      (fun (a, b, c) ->
        let q x = Rat.of_ints x 7 in
        if Rat.(q a <= q b) && Rat.(q b <= q c) then Rat.(q a <= q c) else true);
  ]

let flow_extra =
  [
    Alcotest.test_case "second max_flow run finds nothing more" `Quick (fun () ->
        let g = Maxflow.create ~n:4 in
        ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3);
        ignore (Maxflow.add_edge g ~src:1 ~dst:2 ~cap:2);
        ignore (Maxflow.add_edge g ~src:2 ~dst:3 ~cap:5);
        Alcotest.(check int) "first" 2 (Maxflow.max_flow g ~s:0 ~t:3);
        Alcotest.(check int) "residual is drained" 0 (Maxflow.max_flow g ~s:0 ~t:3));
    Alcotest.test_case "freeze_edge blocks further flow" `Quick (fun () ->
        let g = Maxflow.create ~n:2 in
        let e = Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5 in
        Maxflow.freeze_edge g e;
        Alcotest.(check int) "frozen" 0 (Maxflow.max_flow g ~s:0 ~t:1));
    prop "min-cut edges are saturated" 50 QCheck.(int_range 3 10) (fun n ->
        let rng = rng_of (n + 600) in
        let g = Maxflow.create ~n in
        let edges = ref [] in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j && Random.State.float rng 1.0 < 0.4 then begin
              let c = Random.State.int rng 9 in
              edges := (i, j, c, Maxflow.add_edge g ~src:i ~dst:j ~cap:c) :: !edges
            end
          done
        done;
        ignore (Maxflow.max_flow g ~s:0 ~t:(n - 1));
        let cut = Maxflow.min_cut g ~s:0 in
        cut.(n - 1)
        || List.for_all
             (fun (i, j, c, e) -> (not (cut.(i) && not cut.(j))) || Maxflow.flow g e = c)
             !edges);
    Alcotest.test_case "minflow respects binding upper bounds" `Quick (fun () ->
        (* lower bound 4 must route around a capacity-2 shortcut *)
        let specs =
          [|
            { Minflow.src = 0; dst = 1; lower = 4; upper = 99 };
            { Minflow.src = 1; dst = 3; lower = 0; upper = 2 };
            { Minflow.src = 1; dst = 2; lower = 0; upper = 99 };
            { Minflow.src = 2; dst = 3; lower = 0; upper = 99 };
          |]
        in
        match Minflow.solve ~n:4 ~s:0 ~t:3 specs with
        | Some r ->
            Alcotest.(check int) "value" 4 r.Minflow.value;
            Alcotest.(check bool) "cap respected" true (r.Minflow.edge_flow.(1) <= 2)
        | None -> Alcotest.fail "feasible");
    Alcotest.test_case "decompose with parallel edges" `Quick (fun () ->
        let edges = [| (0, 1); (0, 1); (1, 2) |] in
        let flow = [| 1; 2; 3 |] in
        let paths = Decompose.decompose ~n:3 ~s:0 ~t:2 ~edges ~flow in
        Alcotest.(check int) "total" 3 (Decompose.total paths);
        Alcotest.(check bool) "check" true (Decompose.check ~edges ~flow paths));
  ]

let dag_extra =
  [
    Alcotest.test_case "DOT output mentions every vertex and edge" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
        Dag.set_label g 0 "say \"hi\"";
        let dot = Dot.to_dot g in
        Alcotest.(check bool) "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
        List.iter
          (fun needle ->
            let contains s sub =
              let n = String.length s and m = String.length sub in
              let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) needle true (contains dot needle))
          [ "0 -> 1"; "1 -> 2"; "say \\\"hi\\\"" ]);
    Alcotest.test_case "generator argument validation" `Quick (fun () ->
        let rng = rng_of 1 in
        Alcotest.check_raises "layers" (Invalid_argument "Gen.layered") (fun () ->
            ignore (Gen.layered rng ~layers:0 ~width:2 ~edge_prob:0.5));
        Alcotest.check_raises "n" (Invalid_argument "Gen.erdos_renyi") (fun () ->
            ignore (Gen.erdos_renyi rng ~n:0 ~edge_prob:0.5));
        Alcotest.check_raises "leaves" (Invalid_argument "Gen.random_sp") (fun () ->
            ignore (Gen.random_sp rng ~leaves:0 ~series_bias:0.5)));
    Alcotest.test_case "edge event times with parallel edges" `Quick (fun () ->
        let g = Dag.of_edges ~n:2 [ (0, 1); (0, 1) ] in
        Alcotest.(check int) "max of copies" 7 (Longest_path.edge_makespan g ~weight:(fun _ _ -> 7)));
    Alcotest.test_case "isolated vertex gets wired by normalization" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1) ] in
        (* vertex 2 is isolated: both a source and a sink *)
        let s, t = Dag.ensure_single_source_sink g in
        Alcotest.(check (list int)) "one source" [ s ] (Dag.sources g);
        Alcotest.(check (list int)) "one sink" [ t ] (Dag.sinks g);
        Alcotest.(check bool) "still a dag" true (Dag.is_dag g));
  ]

let treewidth_extra =
  [
    Alcotest.test_case "min-degree heuristic on a path has width 1" `Quick (fun () ->
        let g = Dag.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
        let td = Treewidth.min_degree_heuristic g in
        Alcotest.(check bool) "valid" true (Treewidth.is_valid g td);
        Alcotest.(check int) "width" 1 (Treewidth.width td));
    Alcotest.test_case "heuristic is valid on random dags" `Quick (fun () ->
        let rng = rng_of 81 in
        for _ = 1 to 25 do
          let g = Gen.erdos_renyi rng ~n:(3 + Random.State.int rng 12) ~edge_prob:0.3 in
          let td = Treewidth.min_degree_heuristic g in
          Alcotest.(check bool) "valid" true (Treewidth.is_valid g td)
        done);
    Alcotest.test_case "heuristic confirms the Partition graph is skinny (Thm 4.6)" `Quick
      (fun () ->
        let red = Partition_red.reduce [| 3; 1; 1; 2; 2; 1 |] in
        let g = red.Partition_red.instance.Problem.dag in
        let td = Treewidth.min_degree_heuristic g in
        Alcotest.(check bool) "valid" true (Treewidth.is_valid g td);
        (* the hand decomposition has width 15; the heuristic should do
           at least as well on this near-path-like structure *)
        Alcotest.(check bool) "width <= 15" true (Treewidth.width td <= 15));
    Alcotest.test_case "heuristic on a clique uses one fat bag" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
        let td = Treewidth.min_degree_heuristic g in
        Alcotest.(check bool) "valid" true (Treewidth.is_valid g td);
        Alcotest.(check int) "width" 3 (Treewidth.width td));
  ]

let interp_random =
  [
    prop "race-free random programs are deterministic" 40 QCheck.(int_range 0 10_000) (fun seed ->
        let rng = rng_of seed in
        let p = Rtt_parsim.Prog.random rng ~updates:(1 + Random.State.int rng 4) ~cells:3 in
        let combine : Rtt_parsim.Interp.combine =
          fun ~dst ~srcs -> dst + List.fold_left ( + ) 1 srcs
        in
        if Rtt_parsim.Race.has_race p then true
        else Rtt_parsim.Interp.is_deterministic combine p);
    prop "nondeterministic random programs are racy" 40 QCheck.(int_range 0 10_000) (fun seed ->
        let rng = rng_of (seed + 77777) in
        let p = Rtt_parsim.Prog.random rng ~updates:(1 + Random.State.int rng 4) ~cells:2 in
        let combine : Rtt_parsim.Interp.combine =
          fun ~dst ~srcs -> dst + List.fold_left ( + ) 1 srcs
        in
        if Rtt_parsim.Interp.is_deterministic combine p then true
        else Rtt_parsim.Race.has_race p);
  ]

let reductions_extra =
  [
    Alcotest.test_case "planted formulas: forward direction at scale (Lemma 4.2)" `Quick (fun () ->
        let rng = rng_of 71 in
        for _ = 1 to 10 do
          let f, planted = Sat.random_satisfiable rng ~n_vars:7 ~n_clauses:6 in
          let red = Gadget_general.reduce f in
          Alcotest.(check int) "makespan 1" 1 (Gadget_general.makespan_of_assignment red planted);
          Alcotest.(check bool) "within budget" true (Gadget_general.assignment_feasible red planted)
        done);
    Alcotest.test_case "planted formulas: minresource forward at scale (Thm 4.4)" `Quick (fun () ->
        let rng = rng_of 72 in
        for _ = 1 to 10 do
          let f, planted = Sat.random_satisfiable rng ~n_vars:6 ~n_clauses:5 in
          let red = Minresource_red.reduce f in
          Alcotest.(check int) "target met" red.Minresource_red.target
            (Minresource_red.makespan_of_assignment red planted);
          Alcotest.(check int) "two units" 2 (Minresource_red.budget_of_assignment red planted)
        done);
    Alcotest.test_case "planted formulas: splitting gadget forward at scale (Lemma 4.5)" `Quick
      (fun () ->
        let rng = rng_of 73 in
        let f, planted = Sat.random_satisfiable rng ~n_vars:4 ~n_clauses:3 in
        let red = Gadget_split.reduce f in
        Alcotest.(check int) "target met" red.Gadget_split.target
          (Gadget_split.makespan_of_assignment red planted);
        Alcotest.(check bool) "budget" true
          (Gadget_split.budget_of_assignment red planted <= red.Gadget_split.budget));
    Alcotest.test_case "doubled multisets always partition" `Quick (fun () ->
        let rng = rng_of 74 in
        for _ = 1 to 10 do
          let base = Array.init (2 + Random.State.int rng 4) (fun _ -> 1 + Random.State.int rng 9) in
          let items = Array.append base base in
          let red = Partition_red.reduce items in
          (* each copy on one side *)
          let n = Array.length base in
          let subset = Array.init (2 * n) (fun i -> i < n) in
          Alcotest.(check int) "halves" red.Partition_red.target
            (Partition_red.makespan_of_subset red subset)
        done);
    Alcotest.test_case "n3dm: identical columns always match" `Quick (fun () ->
        let a = [| 2; 2; 2 |] and b = [| 3; 3; 3 |] and c = [| 4; 4; 4 |] in
        let red = N3dm_red.reduce ~a ~b ~c in
        let id = [| 0; 1; 2 |] in
        Alcotest.(check int) "target met" (N3dm_red.target red)
          (N3dm_red.makespan_of_matching red ~p:id ~q:id));
    Alcotest.test_case "n3dm rejects malformed permutations" `Quick (fun () ->
        let red = N3dm_red.reduce ~a:[| 1; 2 |] ~b:[| 2; 3 |] ~c:[| 4; 2 |] in
        Alcotest.check_raises "dup" (Invalid_argument "N3dm_red: p and q must be permutations")
          (fun () -> ignore (N3dm_red.allocation_of_matching red ~p:[| 0; 0 |] ~q:[| 0; 1 |])));
    Alcotest.test_case "gadget budgets are tight (no slack in min-flow)" `Quick (fun () ->
        (* the canonical allocation's min-flow equals the stated budget
           exactly: every unit is accounted for *)
        let f = Sat.example_paper in
        let red = Gadget_general.reduce f in
        let a = [| false; false; false |] in
        Alcotest.(check int) "general tight" red.Gadget_general.budget
          (Schedule.min_budget red.Gadget_general.instance.Aoa.problem
             (Gadget_general.allocation_of_assignment red a));
        let red2 = Gadget_split.reduce f in
        Alcotest.(check int) "split tight" red2.Gadget_split.budget
          (Gadget_split.budget_of_assignment red2 a));
  ]

(* The strongest reduction checks: the brute-force solver explores
   ARBITRARY allocations, so these tests confirm the gadgets admit no
   cheating solution outside the intended assignment-shaped ones. *)
let adversarial_exactness =
  [
    Alcotest.test_case "general gadget: exact OPT = 1 iff satisfiable (n=1, m=1)" `Quick (fun () ->
        (* (x ∨ ¬x ∨ x) is 1-in-3 satisfiable with x = F *)
        let sat_f = Sat.make ~n_vars:1 [ [ (0, true); (0, false); (0, true) ] ] in
        let red = Gadget_general.reduce sat_f in
        let opt = Exact.min_makespan red.Gadget_general.instance.Aoa.problem ~budget:red.Gadget_general.budget in
        Alcotest.(check int) "sat opt" 1 opt.Exact.makespan;
        (* (x ∨ x ∨ x) is unsatisfiable *)
        let unsat_f = Sat.make ~n_vars:1 [ [ (0, true); (0, true); (0, true) ] ] in
        let red2 = Gadget_general.reduce unsat_f in
        let opt2 = Exact.min_makespan red2.Gadget_general.instance.Aoa.problem ~budget:red2.Gadget_general.budget in
        Alcotest.(check bool) "unsat opt >= 2 (Theorem 4.3 gap against ALL allocations)" true
          (opt2.Exact.makespan >= 2));
    Alcotest.test_case "minresource gadget: exact min budget = 2 vs 3 (n=1, m=1)" `Quick (fun () ->
        let sat_f = Sat.make ~n_vars:1 [ [ (0, true); (0, false); (0, true) ] ] in
        let red = Minresource_red.reduce sat_f in
        (match Exact.min_resource red.Minresource_red.instance.Aoa.problem ~target:red.Minresource_red.target with
        | Some r -> Alcotest.(check int) "sat needs 2" 2 r.Exact.budget_used
        | None -> Alcotest.fail "target reachable");
        let unsat_f = Sat.make ~n_vars:1 [ [ (0, true); (0, true); (0, true) ] ] in
        let red2 = Minresource_red.reduce unsat_f in
        match Exact.min_resource red2.Minresource_red.instance.Aoa.problem ~target:red2.Minresource_red.target with
        | Some r -> Alcotest.(check int) "unsat needs 3" 3 r.Exact.budget_used
        | None -> Alcotest.fail "target reachable with 3");
    Alcotest.test_case "partition gadget: exact OPT matches the oracle (tiny sets)" `Quick (fun () ->
        List.iter
          (fun items ->
            let red = Partition_red.reduce items in
            let opt = Exact.min_makespan red.Partition_red.instance ~budget:red.Partition_red.budget in
            let expected = Partition_red.partition_exists items in
            Alcotest.(check bool)
              (Printf.sprintf "items [%s]"
                 (String.concat ";" (Array.to_list (Array.map string_of_int items))))
              expected
              (opt.Exact.makespan <= red.Partition_red.target))
          [ [| 1; 1 |]; [| 2; 1; 1 |]; [| 2; 1 |]; [| 3; 2; 1 |] ]);
    Alcotest.test_case "general gadget: exact min-resource for makespan 1 equals n+2m" `Quick
      (fun () ->
        let sat_f = Sat.make ~n_vars:1 [ [ (0, true); (0, false); (0, true) ] ] in
        let red = Gadget_general.reduce sat_f in
        match Exact.min_resource red.Gadget_general.instance.Aoa.problem ~target:1 with
        | Some r -> Alcotest.(check int) "budget tight" red.Gadget_general.budget r.Exact.budget_used
        | None -> Alcotest.fail "makespan 1 reachable");
  ]

let core_extra =
  [
    prop "exact makespan is monotone in budget" 15 QCheck.(int_range 4 7) (fun n ->
        let rng = rng_of (n + 7200) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let prev = ref max_int in
        List.for_all
          (fun b ->
            let ms = (Exact.min_makespan p ~budget:b).Exact.makespan in
            let ok = ms <= !prev in
            prev := ms;
            ok)
          [ 0; 1; 2; 3; 4 ]);
    prop "lp makespan is monotone in budget" 10 QCheck.(int_range 4 7) (fun n ->
        let rng = rng_of (n + 7300) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let tr = Transform.of_problem p in
        let prev = ref None in
        List.for_all
          (fun b ->
            let ms = (Lp_relax.min_makespan tr ~budget:b).Lp_relax.makespan in
            let ok = match !prev with None -> true | Some q -> Rat.(ms <= q) in
            prev := Some ms;
            ok)
          [ 0; 2; 4 ]);
    Alcotest.test_case "transform handles the all-constant instance" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
        let p = Problem.make g ~durations:(fun v -> Duration.constant (v + 1)) in
        let tr = Transform.of_problem p in
        let lp = Lp_relax.min_makespan tr ~budget:10 in
        Alcotest.(check string) "lp = base" "6" (Rat.to_string lp.Lp_relax.makespan);
        let bi = Bicriteria.min_makespan p ~budget:10 ~alpha:Rat.half in
        Alcotest.(check int) "rounded = base" 6 bi.Bicriteria.rounded.Rounding.makespan;
        Alcotest.(check int) "no resources" 0 bi.Bicriteria.rounded.Rounding.budget_used);
    Alcotest.test_case "single-vertex instance" `Quick (fun () ->
        let g = Dag.of_edges ~n:1 [] in
        let p = Problem.make g ~durations:(fun _ -> Duration.make [ (0, 5); (2, 1) ]) in
        Alcotest.(check int) "B=0" 5 (Exact.min_makespan p ~budget:0).Exact.makespan;
        Alcotest.(check int) "B=2" 1 (Exact.min_makespan p ~budget:2).Exact.makespan;
        let bi = Bicriteria.min_makespan p ~budget:2 ~alpha:Rat.half in
        Alcotest.(check bool) "guarantees" true (Bicriteria.satisfies_guarantees bi));
    Alcotest.test_case "io file round-trip" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
        let p = Problem.make g ~durations:(fun v -> if v = 1 then Duration.make [ (0, 9); (2, 3) ] else Duration.constant 1) in
        let path = Filename.temp_file "rtt_test" ".rtt" in
        Io.write_file path p;
        let p' = Io.read_file path in
        Sys.remove path;
        Alcotest.(check int) "same optimum" (Exact.min_makespan p ~budget:2).Exact.makespan
          (Exact.min_makespan p' ~budget:2).Exact.makespan);
    Alcotest.test_case "greedy on an instance where it must chain upgrades" `Quick (fun () ->
        (* two serial hubs: greedy should learn that one unit pays twice *)
        let g = Dag.create () in
        let s = Dag.add_vertex g in
        let mk prev =
          let hub = Dag.add_vertex g in
          List.iter
            (fun f ->
              Dag.add_edge g prev f;
              Dag.add_edge g f hub)
            (List.init 9 (fun _ -> Dag.add_vertex g));
          hub
        in
        let h1 = mk s in
        let h2 = mk h1 in
        let t = Dag.add_vertex g in
        Dag.add_edge g h2 t;
        let p = Problem.of_race_dag g Problem.Binary in
        let r = Greedy.min_makespan p ~budget:2 in
        (* both hubs get the same 2 units via reuse *)
        Alcotest.(check int) "budget" 2 r.Greedy.budget_used;
        Alcotest.(check bool) "both hubs upgraded" true (r.Greedy.steps >= 2));
  ]

let () =
  Alcotest.run "extra"
    [
      ("num-extra", num_extra);
      ("flow-extra", flow_extra);
      ("dag-extra", dag_extra);
      ("treewidth-extra", treewidth_extra);
      ("interp-random", interp_random);
      ("reductions-extra", reductions_extra);
      ("adversarial-exactness", adversarial_exactness);
      ("core-extra", core_extra);
    ]
