(* Tests for max-flow, min-flow with lower bounds, and flow
   decomposition — the combinatorial engine behind the rounding step of
   Section 3.1. *)

open Rtt_flow

let rng_of seed = Random.State.make [| seed |]

let clrs_network () =
  (* the classic CLRS example, max flow 23 *)
  let g = Maxflow.create ~n:6 in
  let add (a, b) c = ignore (Maxflow.add_edge g ~src:a ~dst:b ~cap:c) in
  add (0, 1) 16;
  add (0, 2) 13;
  add (1, 2) 10;
  add (2, 1) 4;
  add (1, 3) 12;
  add (3, 2) 9;
  add (2, 4) 14;
  add (4, 3) 7;
  add (3, 5) 20;
  add (4, 5) 4;
  g

let maxflow_units =
  [
    Alcotest.test_case "clrs example" `Quick (fun () ->
        Alcotest.(check int) "value" 23 (Maxflow.max_flow (clrs_network ()) ~s:0 ~t:5));
    Alcotest.test_case "single edge" `Quick (fun () ->
        let g = Maxflow.create ~n:2 in
        let e = Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5 in
        Alcotest.(check int) "value" 5 (Maxflow.max_flow g ~s:0 ~t:1);
        Alcotest.(check int) "edge flow" 5 (Maxflow.flow g e);
        Alcotest.(check int) "cap" 5 (Maxflow.cap g e));
    Alcotest.test_case "disconnected" `Quick (fun () ->
        let g = Maxflow.create ~n:3 in
        ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5);
        Alcotest.(check int) "value" 0 (Maxflow.max_flow g ~s:0 ~t:2));
    Alcotest.test_case "zero capacity" `Quick (fun () ->
        let g = Maxflow.create ~n:2 in
        ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:0);
        Alcotest.(check int) "value" 0 (Maxflow.max_flow g ~s:0 ~t:1));
    Alcotest.test_case "rejects s = t" `Quick (fun () ->
        let g = Maxflow.create ~n:2 in
        Alcotest.check_raises "st" (Invalid_argument "Maxflow.max_flow: s = t") (fun () ->
            ignore (Maxflow.max_flow g ~s:0 ~t:0)));
    Alcotest.test_case "rejects negative capacity" `Quick (fun () ->
        let g = Maxflow.create ~n:2 in
        Alcotest.check_raises "neg" (Invalid_argument "Maxflow.add_edge: negative capacity")
          (fun () -> ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:(-1))));
    Alcotest.test_case "min cut separates s from t" `Quick (fun () ->
        let g = clrs_network () in
        ignore (Maxflow.max_flow g ~s:0 ~t:5);
        let cut = Maxflow.min_cut g ~s:0 in
        Alcotest.(check bool) "s in" true cut.(0);
        Alcotest.(check bool) "t out" false cut.(5));
    Alcotest.test_case "parallel edges add up" `Quick (fun () ->
        let g = Maxflow.create ~n:2 in
        ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3);
        ignore (Maxflow.add_edge g ~src:0 ~dst:1 ~cap:4);
        Alcotest.(check int) "value" 7 (Maxflow.max_flow g ~s:0 ~t:1));
  ]

(* random network for property testing *)
let random_network rng n p cap =
  let g = Maxflow.create ~n in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Random.State.float rng 1.0 < p then begin
        let c = Random.State.int rng cap in
        edges := (i, j, c, Maxflow.add_edge g ~src:i ~dst:j ~cap:c) :: !edges
      end
    done
  done;
  (g, !edges)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let maxflow_props =
  [
    prop "flow = capacity of min cut" 50 QCheck.(int_range 3 12) (fun n ->
        let rng = rng_of n in
        let g, edges = random_network rng n 0.35 10 in
        let v = Maxflow.max_flow g ~s:0 ~t:(n - 1) in
        let cut = Maxflow.min_cut g ~s:0 in
        if cut.(n - 1) then v = 0 (* t reachable means flow 0 and no cut... impossible *)
        else begin
          let cut_cap =
            List.fold_left
              (fun acc (i, j, c, _) -> if cut.(i) && not cut.(j) then acc + c else acc)
              0 edges
          in
          v = cut_cap
        end);
    prop "flow conservation" 50 QCheck.(int_range 3 12) (fun n ->
        let rng = rng_of (n + 77) in
        let g, edges = random_network rng n 0.35 10 in
        let v = Maxflow.max_flow g ~s:0 ~t:(n - 1) in
        let net = Array.make n 0 in
        List.iter
          (fun (i, j, _, e) ->
            let f = Maxflow.flow g e in
            net.(i) <- net.(i) - f;
            net.(j) <- net.(j) + f)
          edges;
        net.(0) = -v
        && net.(n - 1) = v
        && Array.for_all (( = ) 0) (Array.sub net 1 (max 0 (n - 2))));
    prop "edge flows within capacity" 50 QCheck.(int_range 3 12) (fun n ->
        let rng = rng_of (n + 154) in
        let g, edges = random_network rng n 0.4 10 in
        ignore (Maxflow.max_flow g ~s:0 ~t:(n - 1));
        List.for_all (fun (_, _, c, e) -> Maxflow.flow g e >= 0 && Maxflow.flow g e <= c) edges);
  ]

let minflow_units =
  [
    Alcotest.test_case "path with one lower bound" `Quick (fun () ->
        let specs =
          [|
            { Minflow.src = 0; dst = 1; lower = 0; upper = Maxflow.infinity };
            { Minflow.src = 1; dst = 2; lower = 3; upper = Maxflow.infinity };
            { Minflow.src = 2; dst = 3; lower = 0; upper = Maxflow.infinity };
          |]
        in
        match Minflow.solve ~n:4 ~s:0 ~t:3 specs with
        | Some r ->
            Alcotest.(check int) "value" 3 r.Minflow.value;
            Alcotest.(check (list int)) "flows" [ 3; 3; 3 ] (Array.to_list r.Minflow.edge_flow)
        | None -> Alcotest.fail "expected feasible");
    Alcotest.test_case "parallel lower bounds add" `Quick (fun () ->
        let specs =
          [|
            { Minflow.src = 0; dst = 1; lower = 2; upper = 99 };
            { Minflow.src = 0; dst = 2; lower = 1; upper = 99 };
            { Minflow.src = 1; dst = 3; lower = 0; upper = 99 };
            { Minflow.src = 2; dst = 3; lower = 0; upper = 99 };
          |]
        in
        match Minflow.solve ~n:4 ~s:0 ~t:3 specs with
        | Some r -> Alcotest.(check int) "value" 3 r.Minflow.value
        | None -> Alcotest.fail "expected feasible");
    Alcotest.test_case "series lower bounds reuse" `Quick (fun () ->
        (* one unit can satisfy many bounds along a path: 0->1->2->3 each lower 5 *)
        let specs =
          [|
            { Minflow.src = 0; dst = 1; lower = 5; upper = 99 };
            { Minflow.src = 1; dst = 2; lower = 5; upper = 99 };
            { Minflow.src = 2; dst = 3; lower = 5; upper = 99 };
          |]
        in
        match Minflow.solve ~n:4 ~s:0 ~t:3 specs with
        | Some r -> Alcotest.(check int) "value" 5 r.Minflow.value
        | None -> Alcotest.fail "expected feasible");
    Alcotest.test_case "upper bounds can make it infeasible" `Quick (fun () ->
        let specs =
          [|
            { Minflow.src = 0; dst = 1; lower = 5; upper = 99 };
            { Minflow.src = 1; dst = 2; lower = 0; upper = 3 };
            { Minflow.src = 2; dst = 3; lower = 0; upper = 99 };
          |]
        in
        Alcotest.(check bool) "infeasible" true (Minflow.solve ~n:4 ~s:0 ~t:3 specs = None));
    Alcotest.test_case "zero lower bounds give zero flow" `Quick (fun () ->
        let specs = [| { Minflow.src = 0; dst = 1; lower = 0; upper = 99 } |] in
        match Minflow.solve ~n:2 ~s:0 ~t:1 specs with
        | Some r -> Alcotest.(check int) "value" 0 r.Minflow.value
        | None -> Alcotest.fail "expected feasible");
    Alcotest.test_case "bypass reduces the minimum" `Quick (fun () ->
        (* lower bound sits off the mainline; flow must still pass it *)
        let specs =
          [|
            { Minflow.src = 0; dst = 1; lower = 0; upper = 99 };
            { Minflow.src = 1; dst = 3; lower = 0; upper = 99 };
            { Minflow.src = 0; dst = 2; lower = 4; upper = 99 };
            { Minflow.src = 2; dst = 3; lower = 0; upper = 99 };
          |]
        in
        match Minflow.solve ~n:4 ~s:0 ~t:3 specs with
        | Some r -> Alcotest.(check int) "value" 4 r.Minflow.value
        | None -> Alcotest.fail "expected feasible");
    Alcotest.test_case "validates input" `Quick (fun () ->
        Alcotest.check_raises "bad bounds" (Invalid_argument "Minflow.solve: bad bounds") (fun () ->
            ignore
              (Minflow.solve ~n:2 ~s:0 ~t:1 [| { Minflow.src = 0; dst = 1; lower = 5; upper = 2 } |])));
  ]

(* random DAG-shaped min-flow instances, validated against feasibility
   and minimality via brute-force search over smaller flows *)
let minflow_props =
  [
    prop "solution is feasible" 50 QCheck.(int_range 3 10) (fun n ->
        let rng = rng_of (n + 31) in
        let specs = ref [] in
        for i = 0 to n - 2 do
          specs := { Minflow.src = i; dst = i + 1; lower = Random.State.int rng 4; upper = Maxflow.infinity } :: !specs;
          if i + 2 < n then
            specs := { Minflow.src = i; dst = i + 2; lower = Random.State.int rng 3; upper = Maxflow.infinity } :: !specs
        done;
        let specs = Array.of_list !specs in
        match Minflow.solve ~n ~s:0 ~t:(n - 1) specs with
        | None -> false
        | Some r -> Minflow.is_feasible ~n ~s:0 ~t:(n - 1) specs r.Minflow.edge_flow);
    prop "value is at least the max lower bound" 50 QCheck.(int_range 3 10) (fun n ->
        let rng = rng_of (n + 87) in
        let specs =
          Array.init (n - 1) (fun i ->
              { Minflow.src = i; dst = i + 1; lower = Random.State.int rng 6; upper = Maxflow.infinity })
        in
        let maxlb = Array.fold_left (fun acc s -> max acc s.Minflow.lower) 0 specs in
        match Minflow.solve ~n ~s:0 ~t:(n - 1) specs with
        | None -> false
        | Some r -> r.Minflow.value = maxlb (* on a path the min flow equals the max bound *));
  ]

let decompose_units =
  [
    Alcotest.test_case "diamond decomposition" `Quick (fun () ->
        let edges = [| (0, 1); (0, 2); (1, 3); (2, 3) |] in
        let flow = [| 2; 1; 2; 1 |] in
        let paths = Decompose.decompose ~n:4 ~s:0 ~t:3 ~edges ~flow in
        Alcotest.(check int) "total" 3 (Decompose.total paths);
        Alcotest.(check bool) "re-sums" true (Decompose.check ~edges ~flow paths));
    Alcotest.test_case "zero flow gives no paths" `Quick (fun () ->
        let edges = [| (0, 1) |] in
        let paths = Decompose.decompose ~n:2 ~s:0 ~t:1 ~edges ~flow:[| 0 |] in
        Alcotest.(check int) "total" 0 (Decompose.total paths));
    Alcotest.test_case "rejects unconserved flow" `Quick (fun () ->
        let edges = [| (0, 1); (1, 2) |] in
        Alcotest.check_raises "conservation"
          (Invalid_argument "Decompose.decompose: flow not conserved") (fun () ->
            ignore (Decompose.decompose ~n:3 ~s:0 ~t:2 ~edges ~flow:[| 2; 1 |])));
    Alcotest.test_case "rejects negative flow" `Quick (fun () ->
        let edges = [| (0, 1) |] in
        Alcotest.check_raises "negative" (Invalid_argument "Decompose.decompose: negative flow")
          (fun () -> ignore (Decompose.decompose ~n:2 ~s:0 ~t:1 ~edges ~flow:[| -1 |])));
  ]

let decompose_props =
  [
    prop "min-flow solutions decompose exactly" 50 QCheck.(int_range 3 10) (fun n ->
        let rng = rng_of (n + 913) in
        let specs = ref [] in
        for i = 0 to n - 2 do
          specs := { Minflow.src = i; dst = i + 1; lower = Random.State.int rng 4; upper = Maxflow.infinity } :: !specs;
          if i + 2 < n then
            specs := { Minflow.src = i; dst = i + 2; lower = Random.State.int rng 3; upper = Maxflow.infinity } :: !specs
        done;
        let specs = Array.of_list !specs in
        match Minflow.solve ~n ~s:0 ~t:(n - 1) specs with
        | None -> false
        | Some r ->
            let edges = Array.map (fun s -> (s.Minflow.src, s.Minflow.dst)) specs in
            let paths = Decompose.decompose ~n ~s:0 ~t:(n - 1) ~edges ~flow:r.Minflow.edge_flow in
            Decompose.total paths = r.Minflow.value && Decompose.check ~edges ~flow:r.Minflow.edge_flow paths);
  ]

let () =
  Alcotest.run "rtt_flow"
    [
      ("maxflow", maxflow_units);
      ("maxflow-properties", maxflow_props);
      ("minflow", minflow_units);
      ("minflow-properties", minflow_props);
      ("decompose", decompose_units);
      ("decompose-properties", decompose_props);
    ]
