(** Maximum s–t flow (Dinic's algorithm) on integer capacities.

    Substrate for the min-flow computation of Section 3.1: after
    α-rounding the LP solution, the integral resource requirement at each
    edge becomes a lower bound and the paper computes a minimum flow
    meeting all lower bounds; that reduces to two max-flow computations
    ({!Minflow}). Capacities up to [Maxflow.infinity] are supported. *)

type t

type edge = int
(** Handle returned by {!add_edge}; use it to query {!flow}. *)

val infinity : int
(** A capacity treated as unbounded ([max_int / 4]). *)

val create : n:int -> t
(** A flow network on vertices [0 .. n-1]. *)

val n_vertices : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> edge
(** Adds a directed edge of capacity [cap >= 0].
    @raise Invalid_argument on bad endpoints or negative capacity. *)

val augment_site : string
(** Fault-injection site (["flow.augment"]): when armed through
    {!Rtt_budget.Budget.arm}, the triggering augmentation attempt raises
    [Rtt_budget.Budget.Injected_fault]. Each augmentation attempt also
    consumes one unit of ambient fuel (stage ["flow"]). *)

val max_flow : t -> s:int -> t:int -> int
(** Runs Dinic from scratch on the current residual state: repeated calls
    push additional flow, so [max_flow g ~s ~t] after an earlier run on a
    different terminal pair operates on the residual network — exactly
    what the min-flow reduction needs.
    @raise Invalid_argument if [s = t].
    @raise Rtt_budget.Budget.Fuel_exhausted when an ambient fuel budget
    runs out mid-solve.
    @raise Rtt_budget.Budget.Injected_fault when {!augment_site} fires. *)

val freeze_edge : t -> edge -> unit
(** Zeroes the remaining forward residual capacity of the edge so that
    later [max_flow] runs cannot push more through it (its current flow
    may still be cancelled via the reverse arc). Used by {!Minflow}. *)

val flow : t -> edge -> int
(** Net flow currently routed through the edge. *)

val cap : t -> edge -> int
(** Original capacity of the edge. *)

val min_cut : t -> s:int -> bool array
(** After a [max_flow] run: vertices reachable from [s] in the residual
    network (the source side of a minimum cut). *)
