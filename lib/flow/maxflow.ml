(* Dinic's algorithm. Edges are stored in a flat array where edge [2k] and
   its reverse [2k+1] are paired; residual capacity lives in [cap]. *)

open Rtt_budget

let augment_site = "flow.augment"

type t = {
  n : int;
  mutable dst : int array;
  mutable cap : int array;  (* residual capacities *)
  mutable orig : int array;  (* original capacities (forward edges) *)
  mutable m : int;  (* number of residual arcs *)
  adj : int list array;  (* outgoing residual arc ids per vertex *)
}

type edge = int

let infinity = max_int / 4

let create ~n =
  if n < 1 then invalid_arg "Maxflow.create";
  { n; dst = Array.make 16 0; cap = Array.make 16 0; orig = Array.make 16 0; m = 0; adj = Array.make n [] }

let n_vertices g = g.n

let grow g =
  if g.m + 2 > Array.length g.dst then begin
    let cap' = max 16 (2 * Array.length g.dst) in
    let resize a = let r = Array.make cap' 0 in Array.blit a 0 r 0 g.m; r in
    g.dst <- resize g.dst;
    g.cap <- resize g.cap;
    g.orig <- resize g.orig
  end

let add_edge g ~src ~dst ~cap =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then invalid_arg "Maxflow.add_edge: bad vertex";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  grow g;
  let e = g.m in
  g.dst.(e) <- dst;
  g.cap.(e) <- cap;
  g.orig.(e) <- cap;
  g.dst.(e + 1) <- src;
  g.cap.(e + 1) <- 0;
  g.orig.(e + 1) <- 0;
  g.adj.(src) <- e :: g.adj.(src);
  g.adj.(dst) <- (e + 1) :: g.adj.(dst);
  g.m <- g.m + 2;
  e

let bfs g s t level =
  Array.fill level 0 g.n (-1);
  level.(s) <- 0;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        let v = g.dst.(e) in
        if g.cap.(e) > 0 && level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v q
        end)
      g.adj.(u)
  done;
  level.(t) >= 0

let max_flow g ~s ~t =
  if s = t then invalid_arg "Maxflow.max_flow: s = t";
  let level = Array.make g.n (-1) in
  let iter = Array.make g.n [] in
  let total = ref 0 in
  while bfs g s t level do
    for v = 0 to g.n - 1 do
      iter.(v) <- g.adj.(v)
    done;
    let rec dfs u pushed =
      if u = t then pushed
      else begin
        let rec try_edges () =
          match iter.(u) with
          | [] -> 0
          | e :: rest ->
              let v = g.dst.(e) in
              if g.cap.(e) > 0 && level.(v) = level.(u) + 1 then begin
                let d = dfs v (min pushed g.cap.(e)) in
                if d > 0 then begin
                  g.cap.(e) <- g.cap.(e) - d;
                  g.cap.(e lxor 1) <- g.cap.(e lxor 1) + d;
                  d
                end
                else begin
                  iter.(u) <- rest;
                  try_edges ()
                end
              end
              else begin
                iter.(u) <- rest;
                try_edges ()
              end
        in
        try_edges ()
      end
    in
    let rec pump () =
      Budget.tick ~stage:"flow";
      if Budget.probe ~site:augment_site then raise (Budget.Injected_fault { site = augment_site });
      let d = dfs s infinity in
      if d > 0 then begin
        total := !total + d;
        pump ()
      end
    in
    pump ()
  done;
  !total

let freeze_edge g e = g.cap.(e) <- 0

let flow g e = g.orig.(e) - g.cap.(e)
let cap g e = g.orig.(e)

let min_cut g ~s =
  let seen = Array.make g.n false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter (fun e -> if g.cap.(e) > 0 then go g.dst.(e)) g.adj.(u)
    end
  in
  go s;
  seen
