(** The unit of work shared by the sequential supervisor and pool
    workers: one attempt at one spool job, with cache consultation,
    checkpoint/resume, durable result publication, and failure
    classification — everything except journaling, which stays with
    whichever process owns the journal (the supervisor / pool parent).

    Keeping this in one place is what makes [--workers N] behaviorally
    identical to [--workers 1]: both paths run literally the same
    attempt code, so the journal outcomes differ only in record
    order. *)

open Rtt_engine

type config = {
  spool : string;
  budget : int;  (** Resource budget passed to every solve. *)
  policy : Policy.t;
  max_attempts : int;  (** Attempts per job before it is declared dead. *)
  deadline_fuel : int option;  (** Per-attempt fuel deadline; [None] = unmetered. *)
  checkpoint_every : int;  (** Ticks between checkpoint offers. *)
  seed : int;  (** Backoff jitter seed ({!Retry.backoff}); inherited by forked workers. *)
  sleep : bool;  (** Actually pause 1 ms per backoff unit between attempts. *)
  verbose : bool;  (** Progress lines on stderr. *)
  workers : int;  (** Pool width; 1 = the in-process sequential drain. *)
  cache_dir : string option;
      (** Content-addressed result cache directory ({!Rtt_engine.Cache});
          [None] disables caching and duplicate-instance coalescing. *)
}

exception Interrupted
(** Raised out of {!attempt} when [stop] turned true mid-solve; the
    in-flight state has been checkpointed first. *)

val alpha : Rtt_num.Rat.t
(** The alpha every solve, digest, and cache re-validation agrees on
    (1/2, {!Engine.solve}'s default). *)

val instance_suffix : string

val jobs_in : spool:string -> string list
(** Instance files ([*.rtt]) in the spool, sorted. *)

val result_path : spool:string -> job:string -> string

val render : Rtt_core.Problem.t -> Engine.success -> string
(** Exactly the text [rtt solve] prints for this success
    ({!Engine.pp_success} plus the allocation line) — stored under the
    [rendered] key of the result file so the daemon can answer
    [submit --wait] byte-identically to a local solve. *)

val write_result :
  ?rendered:string ->
  spool:string -> job:string -> attempt:int -> cached:bool -> Engine.success -> unit
(** Atomically (tmp + fsync + rename) publish a job's result file.
    [rendered] is stored percent-encoded under the [rendered] key. *)

val read_result : spool:string -> job:string -> (string * string) list option
(** The recorded result file as [key, value] pairs ([allocation] is a
    space-separated list, [rendered] percent-encoded); [None] if
    absent. *)

type outcome =
  | Solved of Engine.success * bool  (** The success and whether it came from the cache. *)
  | Failed of { error_class : string; transient : bool; backoff : int }
      (** [transient] is {!Retry.classify}'s verdict alone; whether the
          attempt is actually retried also depends on [max_attempts],
          which the caller owns. [backoff] is the deterministic
          [(seed, job, attempt)] value whenever [transient]. *)

val claim_of : Engine.success -> budget:int -> Validate.claim
(** The {!Validate.claim} this success asserts under [budget] and the
    pinned alpha — what cache re-validation (and [rtt fsck]'s
    fingerprint audit) checks against the instance. *)

val digest_of : config -> Rtt_core.Problem.t -> string
(** {!Fingerprint.digest} under this configuration's budget, policy,
    and pinned alpha. *)

val attempt :
  config -> stop:(unit -> bool) -> log:(string -> unit) -> job:string -> attempt:int -> outcome
(** Run one attempt: load (load failures are permanent), consult and
    re-validate the cache, otherwise solve with checkpoint offers every
    [checkpoint_every] ticks and a warm start from any existing
    checkpoint sidecar. On success the result file (and cache entry) is
    durable before [Solved] is returned, so the caller's completion
    record never precedes its evidence.
    @raise Interrupted when [stop] turns true at a checkpoint offer. *)
