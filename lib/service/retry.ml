open Rtt_engine

type classification = Transient | Permanent

let rec classify = function
  | Error.Fuel_exhausted _ | Error.Lp_failure _ | Error.Flow_failure _ | Error.Fault_injected _
  | Error.Internal _ ->
      Transient
  | Error.Certificate_mismatch _ ->
      (* a deterministic solver should never produce one of these twice,
         and an injected corruption never will — worth one more try *)
      Transient
  | Error.All_rungs_failed reports ->
      if List.exists (fun (_, e) -> classify e = Transient) reports then Transient else Permanent
  | Error.Parse_error _ | Error.Io_error _ | Error.Invalid_instance _ | Error.Invalid_request _
  | Error.Too_large _ ->
      Permanent

let base_backoff = 100
let max_backoff = 2000

let backoff ~seed ~job ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff: attempts are 1-based";
  let exp =
    (* saturating doubling: attempt 1 -> base, 2 -> 2*base, ... The
       half-cap guard clamps before multiplying, so the accumulator can
       never exceed max_backoff — no intermediate overflow at any
       attempt count (a spool that has retried a job 10_000 times still
       gets the cap, not a negative sleep). *)
    let rec go acc k =
      if k <= 1 || acc >= max_backoff then acc
      else go (if acc > max_backoff / 2 then max_backoff else acc * 2) (k - 1)
    in
    min max_backoff (go base_backoff attempt)
  in
  let jitter =
    let key = Printf.sprintf "%d:%s:%d" seed job attempt in
    Int32.to_int (Int32.logand (Journal.crc32 key) 0x7FFFFFFFl) mod (base_backoff / 2)
  in
  exp + jitter
