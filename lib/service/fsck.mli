(** Offline storage scrubber behind [rtt fsck]: audit a spool (and its
    cache directory) for every kind of damage a crash — or an injected
    disk fault — can leave behind, and optionally repair it.

    The audit covers the whole durability surface:

    - {b journal}: CRC/torn-tail audit at the byte level (trailing
      bytes beyond the committed prefix, decodable records stranded
      after a mid-file corruption), plus a state-machine coherence
      pass over the committed records (a [done] with no [started], a
      duplicate [done], in-flight attempts at crash time);
    - {b spool files}: result files whose journal record is missing
      (the signature of a truncated journal), journaled jobs whose
      instance or result file is gone, orphan [*.tmp] litter from
      interrupted atomic writes;
    - {b checkpoints}: [*.ckpt] sidecars that fail the frame CRC, and
      stale sidecars for jobs already terminal;
    - {b session journals}: each
      [sessions/<sid>/journal.log] ({!Rtt_session.Session}) is scanned
      at the frame level for bytes past its committed mutation prefix —
      the same torn-tail class as the main journal, repaired by
      truncating that journal alone;
    - {b cache}: checksum audit of every entry
      ({!Rtt_engine.Cache.audit}), and — when a budget is supplied — a
      fingerprint audit that re-validates each entry reachable from a
      spool instance against that instance ({!Rtt_engine.Validate}),
      so a forged or stale entry is flagged, not just a torn one.

    {!repair} fixes everything fixable locally: seals the journal
    tail and deletes corrupt cache entries, bad checkpoints, and tmp
    litter. Findings marked {!Backfill} — journal records or spool
    files that exist only on a peer — are left for the caller, which
    can pull them from a reachable primary or replica over the
    [repl.*] catch-up protocol and then {!scan} again. *)

type action =
  | Seal  (** Repairable locally by truncating the journal to its committed prefix. *)
  | Truncate of { path : string; bytes : int }
      (** Repairable locally by truncating this file (a session
          journal) to [bytes] — the per-journal generalization of
          {!Seal}. *)
  | Delete of string  (** Repairable locally by deleting this path. *)
  | Backfill  (** Needs records or files from a reachable primary/replica. *)
  | Note  (** Informational; never makes the spool dirty. *)

type finding = {
  code : string;  (** Stable kebab-case class, e.g. ["journal-torn-tail"]. *)
  file : string;  (** The file concerned (relative to the spool where sensible). *)
  detail : string;
  action : action;
}

type report = {
  findings : finding list;
  records : int;  (** Committed journal records. *)
  journal_bytes : int;  (** Journal size on disk. *)
  committed_bytes : int;  (** Byte length of the committed prefix. *)
  cache_entries : int;  (** Entries seen in the cache directory. *)
}

val scan :
  spool:string ->
  ?cache_dir:string ->
  ?budget:int ->
  ?policy:Rtt_engine.Policy.t ->
  unit ->
  report
(** Audit without mutating anything. The fingerprint audit of cache
    entries runs only when [budget] is supplied (the digest depends on
    it); [policy] defaults to {!Rtt_engine.Policy.default}. *)

val dirty : report -> bool
(** Whether any finding demands action ({!Note}s alone are clean). *)

val needs_backfill : report -> bool

val offer_zero : report -> bool
(** Whether a catch-up pull repairing this spool should offer
    watermark 0 rather than its committed record count: true when an
    attachment of an {e already-committed} record is missing (instance
    or result file), which only a full re-ship can restore. *)

val repair : spool:string -> report -> finding list * finding list
(** Apply every local repair in [report]: one journal seal if any
    finding asks for it, then the deletions. Returns
    [(performed, remaining)] — [remaining] is the {!Backfill} set.
    {!Note}s are neither performed nor remaining. *)

val render : report -> string
(** Human-readable multi-line rendering (one line per finding plus a
    summary); ends with a newline. *)

val clean_exit_code : int  (** 0 — nothing wrong. *)

val dirty_exit_code : int
(** 50 — damage found and (some of it) not repaired. *)

val repaired_exit_code : int
(** 51 — damage was found and fully repaired; the spool is clean now. *)
