(** Fork-based parallel drain: the pool parent owns the journal and the
    claim protocol; each worker is a forked child running the shared
    {!Work.attempt} over a framed pipe protocol.

    Exactly-once is inherited from the journal discipline, not from the
    pipes: the parent records [Started] when it hands a job to a worker
    and a terminal event only when the worker reports back. A worker
    that dies mid-solve (SIGKILL, crash) leaves a claim with no
    terminal record, exactly like a whole-process crash of the
    sequential supervisor, so the parent replays it — attempt consumed,
    resumed from the last checkpoint — and never double-reports.

    When the configuration has a cache directory, jobs with the same
    {!Rtt_engine.Fingerprint} digest are never in flight concurrently:
    the first occupant solves and publishes the entry, later ones are
    served from the cache. *)

val drain :
  Work.config ->
  record:(Journal.event -> string -> unit) ->
  jobs:(string * int) list ->
  stop:bool ref ->
  log:(string -> unit) ->
  unit
(** Drain [jobs] — [(job, next_attempt)] pairs in admission order —
    across [config.workers] forked workers. [record] journals an event
    for a job (the parent is the only journal writer). Returns when the
    spool is drained or [stop] has turned true; on stop, in-flight
    workers are signalled, given a grace period to checkpoint and
    abandon, then reaped. *)
