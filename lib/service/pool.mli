(** Fork-based parallel drain: the pool parent owns the journal and the
    claim protocol; each worker is a forked child running the shared
    {!Work.attempt} over a framed pipe protocol.

    Exactly-once is inherited from the journal discipline, not from the
    pipes: the parent records [Started] when it hands a job to a worker
    and a terminal event only when the worker reports back. A worker
    that dies mid-solve (SIGKILL, crash) leaves a claim with no
    terminal record, exactly like a whole-process crash of the
    sequential supervisor, so the parent replays it — attempt consumed,
    resumed from the last checkpoint — and never double-reports.

    When the configuration has a cache directory, jobs with the same
    {!Rtt_engine.Fingerprint} digest are never in flight concurrently:
    the first occupant solves and publishes the entry, later ones are
    served from the cache. *)

(** {1 Worker wire protocol}

    One {!Frame}d line per message: the parent sends {!assignment}
    payloads down, the worker sends {!report} payloads up. Exposed so
    the network daemon can drive workers that are byte-compatible with
    the pool's — same assignment grammar, same report grammar, same
    {!Work.attempt} in the child. *)

val worker_loop :
  Work.config -> from_parent:Unix.file_descr -> to_parent:Unix.file_descr -> 'a
(** The body run in a forked child: read one assignment, run the
    shared {!Work.attempt}, report the outcome, repeat; exits the
    process (never returns). Installs its own SIGTERM/SIGINT handlers
    (checkpoint, report [abandoned], exit). *)

val assignment : job:string -> attempt:int -> string
(** Payload asking a worker to run [attempt] of [job]. *)

val quit_payload : string
(** Payload asking a worker to exit cleanly. *)

type report =
  | Solved of { attempt : int; makespan : int; budget_used : int; fuel : int; cached : bool }
  | Failed of { attempt : int; error_class : string; transient : bool; backoff : int }
  | Abandoned of { attempt : int }
      (** The worker checkpointed and gave the job back (shutdown). *)

val report_payload : report -> string
val parse_report : string -> report option

val send : Unix.file_descr -> string -> unit
(** Frame a payload and write it fully ({!Frame.write}). *)

val drain :
  Work.config ->
  record:(Journal.event -> string -> unit) ->
  jobs:(string * int) list ->
  stop:bool ref ->
  log:(string -> unit) ->
  unit
(** Drain [jobs] — [(job, next_attempt)] pairs in admission order —
    across [config.workers] forked workers. [record] journals an event
    for a job (the parent is the only journal writer). Returns when the
    spool is drained or [stop] has turned true; on stop, in-flight
    workers are signalled, given a grace period to checkpoint and
    abandon, then reaped. *)
