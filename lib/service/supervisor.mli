(** Crash-safe batch supervisor: drains a spool directory of instance
    files through {!Rtt_engine.Engine.solve}.

    The spool is the unit of state: instance files ([*.rtt]), the job
    journal ([journal.log], {!Journal}), per-job checkpoint sidecars
    ([*.ckpt], {!Checkpoint}) and per-job results ([*.result]). A
    supervisor process can die at any instruction — [kill -9]
    included — and a restarted [run] over the same spool recovers to a
    consistent state from the journal alone: completed jobs are never
    re-run (or double-reported), an interrupted attempt resumes from
    its checkpoint, and attempt counts survive.

    Failure handling composes three deterministic mechanisms:
    per-attempt fuel deadlines ([deadline_fuel], no wall clock),
    transient-vs-permanent classification with capped exponential
    backoff ({!Retry}), and checkpoint/resume (the exact rung's
    branch-and-bound incumbent is persisted every [checkpoint_every]
    ticks and fed back as a warm start, so a retried or resumed attempt
    spends strictly less fuel than a cold one).

    With [workers > 1] the drain runs through a fork-based worker pool
    ({!Pool}): the parent keeps sole ownership of the journal, claims
    jobs, and hands them to workers over pipes; each worker runs the
    same {!Work.attempt} as the sequential path, so the two modes
    produce the same journal outcomes up to record order. A worker
    killed mid-solve is a crashed attempt — replayed, never
    double-reported. With a [cache_dir], results are published to a
    content-addressed cache ({!Rtt_engine.Cache}) and duplicate
    instances are solved once.

    On SIGTERM/SIGINT the supervisor stops claiming jobs, checkpoints
    and journals the in-flight attempt(s) as abandoned, and returns
    {!shutdown_exit_code}. *)

type config = Work.config = {
  spool : string;
  budget : int;  (** Resource budget passed to every solve. *)
  policy : Rtt_engine.Policy.t;
  max_attempts : int;  (** Attempts per job before it is declared dead. *)
  deadline_fuel : int option;  (** Per-attempt fuel deadline; [None] = unmetered. *)
  checkpoint_every : int;  (** Ticks between checkpoint offers. *)
  seed : int;  (** Backoff jitter seed ({!Retry.backoff}); inherited by forked workers. *)
  sleep : bool;  (** Actually pause 1 ms per backoff unit between attempts. *)
  verbose : bool;  (** Progress lines on stderr. *)
  workers : int;  (** Pool width; 1 = in-process sequential drain. *)
  cache_dir : string option;  (** Content-addressed result cache; [None] disables. *)
}

val default_config : spool:string -> config
(** budget 4, default policy, 3 attempts, no deadline, checkpoint every
    1000 ticks, seed 0, sleeping, quiet, 1 worker, no cache. *)

val drained_exit_code : int  (** 0 — every job reached [done]. *)

val failed_jobs_exit_code : int
(** 31 — the spool was drained but at least one job failed permanently. *)

val shutdown_exit_code : int
(** 30 — a SIGTERM/SIGINT stopped the run; undone jobs remain resumable. *)

val run : ?notify:(Journal.record -> unit) -> config -> int
(** Drain the spool; returns one of the exit codes above. Never raises
    on solver failures — those are journaled.

    [notify] is called with every record immediately after it has been
    durably journaled — the hook a front-end (the network daemon, a
    metrics exporter) uses to observe completions without tailing the
    journal file. It runs in the journal-owning process; keep it
    fast and never let it raise. *)

val report : spool:string -> (string * Journal.status) list
(** Current job states: the journal's view, plus spool instance files
    the journal has not seen yet (as pending). *)

val render_report : spool:string -> string
(** Human-readable table for [rtt jobs], with a trailing
    completed-from-cache tally when any job was served from the
    cache. *)

val result_path : spool:string -> job:string -> string

val read_result : spool:string -> job:string -> (string * string) list option
(** The recorded result file as [key, value] pairs ([allocation] is a
    space-separated list); [None] if absent. *)
