open Rtt_core
open Rtt_budget
open Rtt_engine

type config = {
  spool : string;
  budget : int;
  policy : Policy.t;
  max_attempts : int;
  deadline_fuel : int option;
  checkpoint_every : int;
  seed : int;
  sleep : bool;
  verbose : bool;
}

let default_config ~spool =
  {
    spool;
    budget = 4;
    policy = Policy.default;
    max_attempts = 3;
    deadline_fuel = None;
    checkpoint_every = 1000;
    seed = 0;
    sleep = true;
    verbose = false;
  }

let drained_exit_code = 0
let failed_jobs_exit_code = 31
let shutdown_exit_code = 30

exception Shutdown

let instance_suffix = ".rtt"

let jobs_in ~spool =
  match Sys.readdir spool with
  | exception Sys_error _ -> []
  | entries ->
      entries |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f instance_suffix)
      |> List.sort compare

(* ------------------------------------------------------------------ *)
(* results                                                             *)

let result_path ~spool ~job = Filename.concat spool (job ^ ".result")

let write_result ~spool ~job ~attempt (s : Engine.success) =
  let final = result_path ~spool ~job in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let text =
        Printf.sprintf "job %s\nrung %s\nattempt %d\nmakespan %d\nbudget_used %d\nfuel %d\ndegraded %d\nallocation %s\n"
          job (Policy.rung_name s.Engine.rung) attempt s.Engine.makespan s.Engine.budget_used
          s.Engine.fuel_spent
          (List.length s.Engine.degraded)
          (String.concat " " (Array.to_list (Array.map string_of_int s.Engine.allocation)))
      in
      let bytes = Bytes.of_string text in
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written := !written + Unix.write fd bytes !written (len - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp final

let read_result ~spool ~job =
  match open_in (result_path ~spool ~job) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> Some (List.rev acc)
            | line -> (
                match String.index_opt line ' ' with
                | Some i ->
                    go ((String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)) :: acc)
                | None -> go acc)
          in
          go [])

(* ------------------------------------------------------------------ *)
(* the drain loop                                                      *)

let run cfg =
  let spool = cfg.spool in
  let log fmt =
    Printf.ksprintf (fun s -> if cfg.verbose then Printf.eprintf "[serve] %s\n%!" s) fmt
  in
  let states = ref (Journal.fold (Journal.replay ~spool)) in
  let journal = Journal.open_ ~spool in
  let record event job =
    let r = { Journal.job; event } in
    Journal.append journal r;
    states := Journal.apply !states r
  in
  let stop = ref false in
  let install signal = Sys.signal signal (Sys.Signal_handle (fun _ -> stop := true)) in
  let saved_term = install Sys.sigterm in
  let saved_int = install Sys.sigint in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm saved_term;
      Sys.set_signal Sys.sigint saved_int;
      Journal.close journal)
    (fun () ->
      (* admit new spool files *)
      let jobs = jobs_in ~spool in
      List.iter (fun job -> if not (List.mem_assoc job !states) then record Journal.Queued job) jobs;
      (* one attempt; returns [`Done | `Dead | `Retry of int] *)
      let attempt_once job ~attempt =
        record (Journal.Started { attempt }) job;
        match Engine.load (Filename.concat spool job) with
        | Error e ->
            log "%s attempt %d: unloadable (%s)" job attempt (Error.to_string e);
            record
              (Journal.Failed
                 { attempt; error_class = Error.class_name e; transient = false; backoff = 0 })
              job;
            `Dead
        | Ok p -> (
            let warm_start =
              Option.bind (Checkpoint.load ~spool ~job) Exact.allocation_of_snapshot
            in
            if warm_start <> None then log "%s attempt %d: resuming from checkpoint" job attempt;
            let sink snapshot =
              Checkpoint.store ~spool ~job snapshot;
              if !stop then raise Shutdown
            in
            let solve () =
              Budget.with_checkpoint ~every:cfg.checkpoint_every sink (fun () ->
                  Engine.solve ?fuel:cfg.deadline_fuel ~policy:cfg.policy ?warm_start p
                    ~budget:cfg.budget)
            in
            match solve () with
            | exception Shutdown ->
                record (Journal.Abandoned { attempt }) job;
                log "%s attempt %d: abandoned on shutdown (checkpoint kept)" job attempt;
                raise Shutdown
            | Ok s ->
                (* result before journal: a crash in between re-runs the
                   job and rewrites the identical (deterministic) result,
                   so `done` is only ever journaled for a durable result *)
                write_result ~spool ~job ~attempt s;
                record
                  (Journal.Done
                     {
                       attempt;
                       makespan = s.Engine.makespan;
                       budget_used = s.Engine.budget_used;
                       fuel = s.Engine.fuel_spent;
                     })
                  job;
                Checkpoint.clear ~spool ~job;
                log "%s attempt %d: done (makespan %d, fuel %d)" job attempt s.Engine.makespan
                  s.Engine.fuel_spent;
                `Done
            | Error e ->
                let error_class = Error.class_name e in
                if attempt < cfg.max_attempts && Retry.classify e = Retry.Transient then begin
                  let backoff = Retry.backoff ~seed:cfg.seed ~job ~attempt in
                  record (Journal.Failed { attempt; error_class; transient = true; backoff }) job;
                  log "%s attempt %d: transient %s, backoff %d" job attempt error_class backoff;
                  `Retry backoff
                end
                else begin
                  record (Journal.Failed { attempt; error_class; transient = false; backoff = 0 }) job;
                  log "%s attempt %d: permanent %s" job attempt error_class;
                  `Dead
                end)
      in
      let rec drive job ~attempt =
        if !stop then raise Shutdown;
        if attempt > cfg.max_attempts then
          record
            (Journal.Failed
               { attempt = cfg.max_attempts; error_class = "retries-exhausted"; transient = false;
                 backoff = 0 })
            job
        else
          match attempt_once job ~attempt with
          | `Done | `Dead -> ()
          | `Retry backoff ->
              if cfg.sleep then Unix.sleepf (float_of_int backoff /. 1000.);
              drive job ~attempt:(attempt + 1)
      in
      match
        List.iter
          (fun job ->
            match List.assoc_opt job !states with
            | Some (Journal.Completed _) -> ()
            | Some (Journal.Dead _) -> ()
            | Some (Journal.Pending { attempts }) -> drive job ~attempt:(attempts + 1)
            | Some (Journal.Running { attempt }) | Some (Journal.Interrupted { attempt }) ->
                (* a Running state at startup is a crashed attempt: the
                   process died holding the job. Same recovery as a
                   graceful abandon — the attempt is consumed, resume
                   from the checkpoint *)
                drive job ~attempt:(attempt + 1)
            | None -> drive job ~attempt:1)
          jobs
      with
      | () ->
          if !stop then shutdown_exit_code
          else if
            List.exists (function _, Journal.Dead _ -> true | _ -> false) !states
          then failed_jobs_exit_code
          else drained_exit_code
      | exception Shutdown ->
          log "shutdown requested; exiting";
          shutdown_exit_code)

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)

let report ~spool =
  let states = Journal.fold (Journal.replay ~spool) in
  let unseen =
    List.filter_map
      (fun job ->
        if List.mem_assoc job states then None else Some (job, Journal.Pending { attempts = 0 }))
      (jobs_in ~spool)
  in
  states @ unseen

let render_report ~spool =
  let entries = report ~spool in
  let buf = Buffer.create 256 in
  let width =
    List.fold_left (fun acc (job, _) -> max acc (String.length job)) (String.length "job") entries
  in
  Buffer.add_string buf (Printf.sprintf "%-*s | state\n" width "job");
  List.iter
    (fun (job, status) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s | %s\n" width job (Format.asprintf "%a" Journal.pp_status status)))
    entries;
  Buffer.contents buf
