type config = Work.config = {
  spool : string;
  budget : int;
  policy : Rtt_engine.Policy.t;
  max_attempts : int;
  deadline_fuel : int option;
  checkpoint_every : int;
  seed : int;
  sleep : bool;
  verbose : bool;
  workers : int;
  cache_dir : string option;
}

let default_config ~spool =
  {
    spool;
    budget = 4;
    policy = Rtt_engine.Policy.default;
    max_attempts = 3;
    deadline_fuel = None;
    checkpoint_every = 1000;
    seed = 0;
    sleep = true;
    verbose = false;
    workers = 1;
    cache_dir = None;
  }

let drained_exit_code = 0
let failed_jobs_exit_code = 31
let shutdown_exit_code = 30

exception Shutdown

let jobs_in = Work.jobs_in
let result_path = Work.result_path
let read_result = Work.read_result

(* ------------------------------------------------------------------ *)
(* the drain loop                                                      *)

let run ?(notify = fun _ -> ()) cfg =
  let spool = cfg.spool in
  let log fmt =
    Printf.ksprintf (fun s -> if cfg.verbose then Printf.eprintf "[serve] %s\n%!" s) fmt
  in
  let states = ref (Journal.fold (Journal.replay ~spool)) in
  let journal = Journal.open_ ~spool in
  let record event job =
    let r = { Journal.job; event } in
    Journal.append journal r;
    states := Journal.apply !states r;
    notify r
  in
  let stop = ref false in
  let install signal = Sys.signal signal (Sys.Signal_handle (fun _ -> stop := true)) in
  let saved_term = install Sys.sigterm in
  let saved_int = install Sys.sigint in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm saved_term;
      Sys.set_signal Sys.sigint saved_int;
      Journal.close journal)
    (fun () ->
      (* admit new spool files *)
      let jobs = jobs_in ~spool in
      List.iter (fun job -> if not (List.mem_assoc job !states) then record Journal.Queued job) jobs;
      (* each job's next attempt number, per the journal: completed and
         dead jobs are done; a Running state at startup is a crashed
         attempt (the process died holding the job) with the same
         recovery as a graceful abandon — the attempt is consumed,
         resume from the checkpoint *)
      let next_attempt job =
        match List.assoc_opt job !states with
        | Some (Journal.Completed _) | Some (Journal.Dead _) -> None
        | Some (Journal.Pending { attempts }) -> Some (attempts + 1)
        | Some (Journal.Running { attempt }) | Some (Journal.Interrupted { attempt }) ->
            Some (attempt + 1)
        | None -> Some 1
      in
      let exhausted job =
        record
          (Journal.Failed
             { attempt = cfg.max_attempts; error_class = "retries-exhausted"; transient = false;
               backoff = 0 })
          job
      in
      let exit_code () =
        if !stop then shutdown_exit_code
        else if List.exists (function _, Journal.Dead _ -> true | _ -> false) !states then
          failed_jobs_exit_code
        else drained_exit_code
      in
      if cfg.workers > 1 then begin
        let worklist =
          List.filter_map
            (fun job ->
              match next_attempt job with
              | None -> None
              | Some attempt when attempt > cfg.max_attempts ->
                  exhausted job;
                  None
              | Some attempt -> Some (job, attempt))
            jobs
        in
        Pool.drain cfg ~record ~jobs:worklist ~stop ~log:(fun s -> log "%s" s);
        exit_code ()
      end
      else begin
        (* one attempt; returns [`Done | `Dead | `Retry of int] *)
        let attempt_once job ~attempt =
          record (Journal.Started { attempt }) job;
          match
            Work.attempt cfg ~stop:(fun () -> !stop) ~log:(fun s -> log "%s" s) ~job ~attempt
          with
          | exception Work.Interrupted ->
              record (Journal.Abandoned { attempt }) job;
              log "%s attempt %d: abandoned on shutdown (checkpoint kept)" job attempt;
              raise Shutdown
          | Work.Solved (s, cached) ->
              record
                (Journal.Done
                   {
                     attempt;
                     makespan = s.Rtt_engine.Engine.makespan;
                     budget_used = s.Rtt_engine.Engine.budget_used;
                     fuel = s.Rtt_engine.Engine.fuel_spent;
                     cached;
                   })
                job;
              `Done
          | Work.Failed { error_class; transient; backoff } ->
              if transient && attempt < cfg.max_attempts then begin
                record (Journal.Failed { attempt; error_class; transient = true; backoff }) job;
                `Retry backoff
              end
              else begin
                record (Journal.Failed { attempt; error_class; transient = false; backoff = 0 }) job;
                `Dead
              end
        in
        let rec drive job ~attempt =
          if !stop then raise Shutdown;
          if attempt > cfg.max_attempts then exhausted job
          else
            match attempt_once job ~attempt with
            | `Done | `Dead -> ()
            | `Retry backoff ->
                if cfg.sleep then Unix.sleepf (float_of_int backoff /. 1000.);
                drive job ~attempt:(attempt + 1)
        in
        match
          List.iter
            (fun job ->
              match next_attempt job with
              | None -> ()
              | Some attempt -> drive job ~attempt)
            jobs
        with
        | () -> exit_code ()
        | exception Shutdown ->
            log "shutdown requested; exiting";
            shutdown_exit_code
      end)

(* ------------------------------------------------------------------ *)
(* reporting                                                           *)

let report ~spool =
  let states = Journal.fold (Journal.replay ~spool) in
  let unseen =
    List.filter_map
      (fun job ->
        if List.mem_assoc job states then None else Some (job, Journal.Pending { attempts = 0 }))
      (jobs_in ~spool)
  in
  states @ unseen

let render_report ~spool =
  let entries = report ~spool in
  let buf = Buffer.create 256 in
  let width =
    List.fold_left (fun acc (job, _) -> max acc (String.length job)) (String.length "job") entries
  in
  Buffer.add_string buf (Printf.sprintf "%-*s | state\n" width "job");
  List.iter
    (fun (job, status) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s | %s\n" width job (Format.asprintf "%a" Journal.pp_status status)))
    entries;
  let hits =
    List.fold_left
      (fun acc -> function _, Journal.Completed { cached = true; _ } -> acc + 1 | _ -> acc)
      0 entries
  in
  if hits > 0 then Buffer.add_string buf (Printf.sprintf "%d completed from cache\n" hits);
  Buffer.contents buf
