(** The one machine-readable job serializer.

    [rtt jobs --json] (spool view) and [rtt status] (daemon view) both
    print exactly this rendering, one JSON object per job, so scripts
    never have to reconcile two formats. Fields:

    - [id]: the job's identity — its spool instance name without the
      [.rtt] suffix, which for daemon submissions is the instance's
      {!Rtt_engine.Fingerprint} digest;
    - [state]: ["pending" | "running" | "interrupted" | "done" |
      "failed" | "unknown"] ({!Journal.status_name}, or ["unknown"]
      when no journal entry exists);
    - [attempts]: attempts consumed (the in-flight one included);
    - [fuel]: engine steps the completing attempt spent ([null] until
      done);
    - [cache_hit]: whether the result came from the content-addressed
      cache ([null] until done);
    - [error]: the terminal error class ([null] unless failed). *)

val json_of : id:string -> Journal.status option -> string
(** One JSON object on a single line, no trailing newline. [None]
    renders as state ["unknown"]. *)
