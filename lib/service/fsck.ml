open Rtt_engine

type action =
  | Seal
  | Truncate of { path : string; bytes : int }
  | Delete of string
  | Backfill
  | Note

type finding = { code : string; file : string; detail : string; action : action }

type report = {
  findings : finding list;
  records : int;
  journal_bytes : int;
  committed_bytes : int;
  cache_entries : int;
}

let clean_exit_code = 0
let dirty_exit_code = 50
let repaired_exit_code = 51

let read_whole p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let list_dir dir = match Sys.readdir dir with exception Sys_error _ -> [] | a -> Array.to_list a

(* ------------------------------------------------------------------ *)
(* journal audit                                                       *)

let journal_findings ~spool ~records =
  let p = Journal.path ~spool in
  let _, ok = Journal.replay_wire ~spool in
  let size = match read_whole p with None -> 0 | Some s -> String.length s in
  let tail = ref [] in
  if size > ok then begin
    let s = Option.get (read_whole p) in
    let suffix = String.sub s ok (size - ok) in
    (* decodable complete lines past the corruption point are records
       the seal will drop: they cannot be trusted in sequence, but a
       peer that holds them can re-ship them after the seal *)
    let stranded =
      String.split_on_char '\n' suffix
      |> List.filter (fun l -> l <> "" && Journal.decode l <> None)
      |> List.length
    in
    tail :=
      {
        code = "journal-torn-tail";
        file = Filename.basename p;
        detail =
          Printf.sprintf "%d uncommitted byte%s past record %d" (size - ok)
            (if size - ok = 1 then "" else "s")
            records;
        action = Seal;
      }
      :: !tail;
    if stranded > 0 then
      tail :=
        {
          code = "journal-stranded-records";
          file = Filename.basename p;
          detail =
            Printf.sprintf
              "%d decodable record%s after the corruption point; sealing drops them (a peer \
               backfill restores them)"
              stranded
              (if stranded = 1 then "" else "s");
          action = Seal;
        }
        :: !tail
  end;
  (List.rev !tail, size, ok)

(* State-machine coherence over the committed prefix: the replayable
   grammar tolerates these (Done is final, late events are ignored),
   but their presence means some writer misbehaved — worth reporting
   even though nothing needs repair. *)
let coherence_findings records =
  let jpath = "journal.log" in
  let started : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let dones : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun { Journal.job; event } ->
      match event with
      | Journal.Started _ -> Hashtbl.replace started job ()
      | Journal.Done _ ->
          let n = Option.value ~default:0 (Hashtbl.find_opt dones job) in
          Hashtbl.replace dones job (n + 1);
          if n = 1 then
            out :=
              {
                code = "journal-duplicate-done";
                file = jpath;
                detail = Printf.sprintf "%s completed more than once (first done wins on replay)" job;
                action = Note;
              }
              :: !out;
          if n = 0 && not (Hashtbl.mem started job) then
            out :=
              {
                code = "journal-done-unstarted";
                file = jpath;
                detail = Printf.sprintf "%s has a done record but no started record" job;
                action = Note;
              }
              :: !out
      | _ -> ())
    records;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* spool files vs journal state                                        *)

let spool_findings ~spool states =
  let out = ref [] in
  let add f = out := f :: !out in
  let status job = List.assoc_opt job states in
  let entries = list_dir spool in
  let has name = List.mem name entries in
  (* journaled jobs: their files must match their state *)
  List.iter
    (fun (job, st) ->
      if not (has job) then
        add
          {
            code = "missing-instance";
            file = job;
            detail = "journaled job has no instance file";
            action = Backfill;
          };
      match st with
      | Journal.Completed _ ->
          if not (has (job ^ ".result")) then
            add
              {
                code = "missing-result";
                file = job ^ ".result";
                detail = "job is done in the journal but its result file is gone";
                action = Backfill;
              }
      | Journal.Running { attempt } ->
          add
            {
              code = "journal-inflight";
              file = job;
              detail =
                Printf.sprintf "attempt %d was in flight at crash time (claim replays on restart)"
                  attempt;
              action = Note;
            }
      | _ -> ())
    states;
  (* spool files: anything the journal cannot account for *)
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        add
          {
            code = "tmp-litter";
            file = name;
            detail = "interrupted atomic write";
            action = Delete (Filename.concat spool name);
          }
      else if Filename.check_suffix name ".result" then begin
        let job = Filename.chop_suffix name ".result" in
        match status job with
        | Some (Journal.Completed _) -> ()
        | Some _ ->
            add
              {
                code = "result-without-done";
                file = name;
                detail = "result file exists but the journal never saw the job complete";
                action = Backfill;
              }
        | None ->
            add
              {
                code = "result-without-done";
                file = name;
                detail = "result file for a job the journal does not know";
                action = Backfill;
              }
      end
      else if Filename.check_suffix name ".ckpt" then begin
        let job = Filename.chop_suffix name ".ckpt" in
        let path = Filename.concat spool name in
        let ok =
          match read_whole path with None -> false | Some s -> Frame.unframe s <> None
        in
        if not ok then
          add
            {
              code = "checkpoint-corrupt";
              file = name;
              detail = "sidecar fails the frame CRC; the next attempt starts cold";
              action = Delete path;
            }
        else
          match status job with
          | Some (Journal.Completed _) | Some (Journal.Dead _) ->
              add
                {
                  code = "checkpoint-stale";
                  file = name;
                  detail = "sidecar for a terminal job (the clear was lost in a crash)";
                  action = Delete path;
                }
          | _ -> ()
      end
      else if Filename.check_suffix name Work.instance_suffix then begin
        if status name = None then
          add
            {
              code = "instance-unjournaled";
              file = name;
              detail = "instance file the journal has not seen (a daemon adopts these on start)";
              action = Note;
            }
      end)
    entries;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* session journals                                                    *)

(* One CRC-framed [mut <escaped-op>] line per committed session
   mutation, audited at the frame level — the op grammar itself is the
   session layer's concern (its replay rejects what a byte scan cannot
   see), but a torn or corrupt tail is exactly the journal-torn-tail
   damage class and repairs the same way: truncate to the committed
   prefix. The owning daemon performs the same seal on reattach; fsck
   does it offline. *)
let session_findings ~spool =
  let root = Filename.concat spool "sessions" in
  let out = ref [] in
  List.iter
    (fun sid ->
      let rel = Filename.concat (Filename.concat "sessions" sid) "journal.log" in
      let jpath = Filename.concat spool rel in
      match read_whole jpath with
      | None -> ()
      | Some s ->
          let n = String.length s in
          let ok = ref 0 and start = ref 0 and stop = ref false in
          while (not !stop) && !start < n do
            match String.index_from_opt s !start '\n' with
            | None -> stop := true
            | Some nl -> (
                let line = String.sub s !start (nl - !start) in
                match Frame.unframe line with
                | Some payload
                  when String.length payload >= 4 && String.sub payload 0 4 = "mut " ->
                    ok := nl + 1;
                    start := nl + 1
                | _ -> stop := true)
          done;
          if n > !ok then
            out :=
              {
                code = "session-journal-torn-tail";
                file = rel;
                detail =
                  Printf.sprintf "%d uncommitted byte%s past the committed mutation prefix"
                    (n - !ok)
                    (if n - !ok = 1 then "" else "s");
                action = Truncate { path = jpath; bytes = !ok };
              }
              :: !out)
    (List.sort compare (list_dir root));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* cache audit                                                         *)

let cache_findings ~spool ~cache_dir ~budget ~policy =
  match cache_dir with
  | None -> ([], 0)
  | Some dir ->
      let out = ref [] in
      let add f = out := f :: !out in
      let keys = Cache.keys ~dir in
      List.iter
        (fun key ->
          match Cache.audit ~dir ~key with
          | Error reason ->
              add
                {
                  code = "cache-entry-corrupt";
                  file = Filename.basename (Cache.path ~dir ~key);
                  detail = reason;
                  action = Delete (Cache.path ~dir ~key);
                }
          | Ok () ->
              if not (Fingerprint.is_digest key) then
                add
                  {
                    code = "cache-key-foreign";
                    file = Filename.basename (Cache.path ~dir ~key);
                    detail = "entry key is not a fingerprint digest";
                    action = Note;
                  })
        keys;
      List.iter
        (fun name ->
          if Filename.check_suffix name ".tmp" then
            add
              {
                code = "tmp-litter";
                file = name;
                detail = "interrupted atomic write";
                action = Delete (Filename.concat dir name);
              })
        (list_dir dir);
      (* fingerprint audit: every entry reachable from a spool instance
         must validate against that instance — a checksum-clean but
         wrong entry (forged, or stale after an incompatible change) is
         damage the checksum alone cannot see *)
      (match budget with
      | None -> ()
      | Some budget ->
          let policy = Option.value ~default:Policy.default policy in
          List.iter
            (fun job ->
              match Engine.load (Filename.concat spool job) with
              | Error _ -> ()
              | Ok p -> (
                  let key = Fingerprint.digest ~policy ~alpha:Work.alpha p ~budget in
                  match Cache.lookup ~dir ~key with
                  | None -> ()
                  | Some s -> (
                      match Validate.check p (Work.claim_of s ~budget) with
                      | Ok () -> ()
                      | Error e ->
                          add
                            {
                              code = "cache-entry-invalid";
                              file = Filename.basename (Cache.path ~dir ~key);
                              detail =
                                Printf.sprintf "entry for %s fails validation: %s" job
                                  (Error.to_string e);
                              action = Delete (Cache.path ~dir ~key);
                            })))
            (Work.jobs_in ~spool));
      (List.rev !out, List.length keys)

(* ------------------------------------------------------------------ *)
(* the scan                                                            *)

let scan ~spool ?cache_dir ?budget ?policy () =
  let lines, _ = Journal.replay_wire ~spool in
  let records = List.filter_map Journal.decode lines in
  let states = Journal.fold records in
  let journal, journal_bytes, committed_bytes =
    journal_findings ~spool ~records:(List.length records)
  in
  let cache, cache_entries = cache_findings ~spool ~cache_dir ~budget ~policy in
  {
    findings =
      journal @ coherence_findings records @ spool_findings ~spool states
      @ session_findings ~spool @ cache;
    records = List.length records;
    journal_bytes;
    committed_bytes;
    cache_entries;
  }

let dirty r = List.exists (fun f -> f.action <> Note) r.findings
let needs_backfill r = List.exists (fun f -> f.action = Backfill) r.findings

let offer_zero r =
  List.exists
    (fun f -> f.code = "missing-instance" || f.code = "missing-result")
    r.findings

let repair ~spool r =
  let performed = ref [] in
  let remaining = ref [] in
  let sealed = ref false in
  List.iter
    (fun f ->
      match f.action with
      | Seal ->
          if not !sealed then begin
            ignore (Journal.seal ~spool);
            sealed := true
          end;
          performed := f :: !performed
      | Truncate { path; bytes } ->
          (try
             let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
             Fun.protect
               ~finally:(fun () -> Unix.close fd)
               (fun () ->
                 Rtt_diskio.Diskio.ftruncate fd bytes;
                 Rtt_diskio.Diskio.fsync fd)
           with Unix.Unix_error _ -> ());
          performed := f :: !performed
      | Delete path ->
          (try Sys.remove path with Sys_error _ -> ());
          performed := f :: !performed
      | Backfill -> remaining := f :: !remaining
      | Note -> ())
    r.findings;
  (List.rev !performed, List.rev !remaining)

let render r =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      let verb =
        match f.action with
        | Seal -> "seal"
        | Truncate _ -> "truncate"
        | Delete _ -> "delete"
        | Backfill -> "backfill"
        | Note -> "note"
      in
      Buffer.add_string b (Printf.sprintf "%-24s %-9s %s: %s\n" f.code verb f.file f.detail))
    r.findings;
  let issues = List.length (List.filter (fun f -> f.action <> Note) r.findings) in
  Buffer.add_string b
    (Printf.sprintf "%d record%s (%d of %d bytes committed), %d cache entr%s, %d issue%s\n"
       r.records
       (if r.records = 1 then "" else "s")
       r.committed_bytes r.journal_bytes r.cache_entries
       (if r.cache_entries = 1 then "y" else "ies")
       issues
       (if issues = 1 then "" else "s"));
  Buffer.contents b
