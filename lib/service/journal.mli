(** Write-ahead job journal: the supervisor's single source of truth.

    Append-only, line-framed, one record per line, each protected by a
    CRC-32 over its payload and fsync'd before {!append} returns — so a
    [kill -9] at any instruction leaves a journal whose valid prefix is
    exactly the set of events that were durably acknowledged. Replay
    ({!replay}) accepts that prefix and drops a truncated or
    CRC-corrupt tail record (and anything after it) instead of failing:
    an interrupted append is indistinguishable from an append that
    never happened, which is the correct recovery semantics for a WAL.

    The derived job state ({!fold}/{!apply}) is a pure left fold, so
    replaying any prefix of a journal and then the rest yields the same
    state map as one replay — the idempotence property the test suite
    checks. *)

type event =
  | Queued  (** The job was discovered in the spool. *)
  | Started of { attempt : int }  (** Attempt [attempt] (1-based) claimed the job. *)
  | Done of { attempt : int; makespan : int; budget_used : int; fuel : int; cached : bool }
      (** The attempt produced a validated answer; recorded once, ever.
          [cached] marks a result served from the content-addressed
          cache instead of a solve ([fuel] is then 0). Journals written
          before the cache existed replay with [cached = false]. *)
  | Failed of { attempt : int; error_class : string; transient : bool; backoff : int }
      (** The attempt failed. [transient] means the supervisor will
          retry after [backoff] backoff units; permanent failures end
          the job. *)
  | Abandoned of { attempt : int }
      (** Graceful shutdown interrupted the attempt; the job resumes
          from its checkpoint on the next run. *)

type record = { job : string; event : event }

(** {1 Durable log} *)

type t
(** An open journal handle (append mode). *)

val path : spool:string -> string
(** [spool ^ "/journal.log"]. *)

val open_ : spool:string -> t
(** Open (creating if absent) the spool's journal for appending. Seals
    first ({!seal}): a torn final line left by a crash is truncated
    away so the next append starts on a newline boundary rather than
    corrupting itself against the torn tail. *)

val append : t -> record -> unit
(** Frame, CRC, write and fsync one record. When [append] returns, the
    record survives a crash. *)

val append_line : t -> string -> unit
(** Append one already-framed line (no trailing newline) verbatim,
    then fsync. Used by replication followers so a replayed journal is
    byte-for-byte the primary's — re-encoding could differ if the wire
    format ever grows alternate spellings. The line is not validated;
    callers decode before appending. *)

val replay_wire : spool:string -> string list * int
(** The committed prefix at the byte level: the framed lines (without
    their newlines) that both decode and end in ['\n'], and the total
    byte length of that prefix (newlines included). A decodable final
    line with no terminating newline is a torn write and is excluded.
    This is the stream a primary ships to followers and the follower's
    durable watermark is [List.length (fst (replay_wire ...))]. *)

val seal : spool:string -> int
(** Truncate the journal to its committed prefix ({!replay_wire}) and
    fsync; returns the number of committed records. A missing journal
    seals to 0 records. Promotion calls this to fsync-seal a follower's
    tail before replaying claims. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The underlying descriptor — exposed so a forked child (pool or
    daemon worker) can close its inherited copy; only the owning
    process may write. *)

val replay : spool:string -> record list
(** The journal's valid prefix, in append order. A missing journal is
    an empty one. A record that fails CRC or framing ends the prefix:
    it and everything after it are dropped. *)

(** {1 Derived job state} *)

type status =
  | Pending of { attempts : int }
      (** Awaiting (re)execution; [attempts] already consumed. *)
  | Running of { attempt : int }
      (** A [Started] with no terminal event — in-flight, or the
          previous process crashed mid-attempt. *)
  | Interrupted of { attempt : int }  (** Abandoned by a graceful shutdown. *)
  | Completed of { attempt : int; makespan : int; budget_used : int; fuel : int; cached : bool }
  | Dead of { attempts : int; error_class : string }
      (** Permanently failed (bad instance, or retries exhausted). *)

val apply : (string * status) list -> record -> (string * status) list
(** One state-machine step; unknown jobs are inserted in encounter
    order. *)

val fold : record list -> (string * status) list
(** [List.fold_left apply []]. *)

val status_name : status -> string
val pp_status : Format.formatter -> status -> unit

(** {1 Wire format (exposed for tests)} *)

val encode : record -> string
(** One framed line, without the trailing newline. *)

val decode : string -> record option
(** [None] on bad CRC or framing. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string, as used by the framing.
    Alias of {!Frame.crc32}. *)

val encode_job : string -> string
(** Percent-encode a job name so it survives space-separated framing
    (also used by the worker-pool wire protocol). Alias of
    {!Frame.escape}. *)

val decode_job : string -> string option
