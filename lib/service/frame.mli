(** CRC-32 line framing — the one wire discipline shared by every
    byte stream in the system: the write-ahead journal, checkpoint
    sidecars, the worker-pool pipes, and the network daemon's socket
    protocol.

    A frame is a single line ["<crc-as-8-hex> <payload>"], where the
    CRC-32 (IEEE 802.3, reflected) is computed over the payload alone.
    The payload must not contain a newline; payloads that need to carry
    arbitrary bytes (job names, instance file contents) go through
    {!escape} first. Anything that fails the CRC or the framing shape
    reads back as [None] — a protocol bug or a torn write becomes an
    ignorable line, never a silently misparsed message. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3, reflected), table-driven. *)

val frame : string -> string
(** [frame payload] is ["<crc8hex> <payload>"], without a trailing
    newline. The payload must not contain ['\n'] (see {!escape}). *)

val unframe : string -> string option
(** Inverse of {!frame} on a single line (no trailing newline):
    [Some payload] iff the line has the framing shape and the CRC
    matches. *)

val write : Unix.file_descr -> string -> unit
(** [write fd payload] writes [frame payload ^ "\n"] fully, retrying
    on [EINTR] and short writes. Raises [Unix.Unix_error] like
    [Unix.write] on a broken pipe. *)

(** {1 Token escaping}

    Frames are newline-terminated and their payloads token-split on
    spaces, so any field that can contain arbitrary bytes is
    percent-encoded: [' '], ['%'], ['\n'] and ['\r'] become [%XX]. *)

val escape : string -> string

val unescape : string -> string option
(** [None] on a truncated or malformed [%XX] sequence. *)

(** {1 Incremental reader}

    Splits an arbitrary byte stream (socket reads, pipe reads) into
    frames, tolerating any chunking. A line longer than [max_frame]
    bytes poisons the reader — every subsequent feed yields
    [`Overflow] — because an unbounded line is exactly the
    slow-loris / malicious-client shape the limit exists to stop. *)

type reader

val reader : ?max_frame:int -> unit -> reader
(** A fresh reader. [max_frame] (default 16 MiB) bounds a single
    line, terminator included. *)

val feed : reader -> string -> [ `Frame of string | `Corrupt of string | `Overflow ] list
(** Feed a chunk; returns the completed items in stream order.
    [`Frame p] is a CRC-valid payload, [`Corrupt line] a complete line
    that failed {!unframe}, [`Overflow] (terminal, reported once per
    poisoned feed) a line that exceeded [max_frame]. *)

val buffered : reader -> int
(** Bytes currently held for an incomplete line. *)
