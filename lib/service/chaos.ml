open Rtt_engine
module Gen = Rtt_dag.Gen
module Problem = Rtt_core.Problem
module Io = Rtt_core.Io

type schedule = (Faults.site * int) list

(* ------------------------------------------------------------------ *)
(* schedules                                                           *)

let inproc_pool =
  [
    Faults.Disk_fsync_fail;
    Faults.Disk_short_write;
    Faults.Disk_enospc;
    Faults.Disk_eio;
    Faults.Disk_rename_fail;
    Faults.Fuel_zero;
    Faults.Lp_infeasible;
    Faults.Flow_abort;
  ]

let nodes_pool = inproc_pool @ [ Faults.Repl_frame_drop; Faults.Repl_ack_delay ]

let schedule_of_seed ?(nodes = false) seed =
  let pool = if nodes then nodes_pool else inproc_pool in
  let rng = Random.State.make [| 0x5eed; seed |] in
  let narms = 1 + Random.State.int rng 3 in
  let rec pick acc k =
    if k = 0 then List.rev acc
    else
      let site = List.nth pool (Random.State.int rng (List.length pool)) in
      if List.mem_assoc site acc then pick acc k
      else pick ((site, Random.State.int rng 26) :: acc) (k - 1)
  in
  pick [] narms

let schedule_to_string schedule =
  String.concat ","
    (List.map (fun (site, after) -> Printf.sprintf "%s:%d" (Faults.name site) after) schedule)

let schedule_of_string s =
  let parse_arm a =
    let site_s, after =
      match String.index_opt a ':' with
      | None -> (a, Ok 0)
      | Some i -> (
          ( String.sub a 0 i,
            let n = String.sub a (i + 1) (String.length a - i - 1) in
            match int_of_string_opt n with
            | Some v when v >= 0 -> Ok v
            | _ -> Error (Printf.sprintf "bad trigger count %S" n) ))
    in
    match (Faults.of_string site_s, after) with
    | None, _ -> Error (Printf.sprintf "unknown fault site %S" site_s)
    | _, Error e -> Error e
    | Some site, Ok after -> Ok (site, after)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | a :: rest -> ( match parse_arm a with Ok arm -> go (arm :: acc) rest | Error e -> Error e)
  in
  go [] (List.filter (fun a -> a <> "") (String.split_on_char ',' s))

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_chaos_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* the workload: small dense race DAGs, cheap for every rung of the
   fallback chain; [index] keys the instance so a seed regenerates the
   identical spool *)
let instance_text ~seed ~index =
  let rng = Random.State.make [| 0x7a05; seed; index |] in
  Io.to_string (Problem.of_race_dag (Gen.erdos_renyi rng ~n:6 ~edge_prob:0.35) Problem.Binary)

(* index of the instance behind job slot [i]: the last slot duplicates
   the first, so every run exercises coalescing/cache sharing *)
let slot_index ~jobs i = if i = jobs - 1 && jobs > 1 then 0 else i

(* ------------------------------------------------------------------ *)
(* invariants                                                          *)

(* fsck findings a clean crash story is allowed to leave behind:
   interrupted atomic writes and checkpoint sidecars whose clear was
   lost — exactly the residue [rtt fsck --repair] exists to mop up *)
let benign f =
  f.Fsck.action = Fsck.Note || f.Fsck.code = "tmp-litter" || f.Fsck.code = "checkpoint-stale"

let check_spool ~spool ~cache_dir ~budget ~policy ~expected =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let lines, committed = Journal.replay_wire ~spool in
  let size =
    match Unix.stat (Journal.path ~spool) with
    | { Unix.st_size; _ } -> st_size
    | exception Unix.Unix_error _ -> 0
  in
  if size <> committed then
    add "journal holds %d uncommitted bytes at quiescence" (size - committed);
  let records = List.filter_map Journal.decode lines in
  let dones : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun { Journal.job; event } ->
      match event with
      | Journal.Done _ ->
          let n = Option.value ~default:0 (Hashtbl.find_opt dones job) in
          Hashtbl.replace dones job (n + 1);
          if n = 1 then add "%s: second done record (exactly-once violated)" job
      | _ -> ())
    records;
  let states = Journal.fold records in
  List.iter
    (fun job ->
      match List.assoc_opt job states with
      | Some (Journal.Completed _) ->
          if Work.read_result ~spool ~job = None then
            add "%s: completed but its result file is missing or unreadable" job
      | Some (Journal.Dead _) -> ()
      | Some st -> add "%s: not terminal at quiescence (%s)" job (Journal.status_name st)
      | None -> add "%s: never journaled" job)
    expected;
  (match cache_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun key ->
          match Cache.audit ~dir ~key with
          | Ok () -> ()
          | Error r -> add "cache entry %s: %s" key r)
        (Cache.keys ~dir));
  let report = Fsck.scan ~spool ?cache_dir ~budget ~policy () in
  List.iter
    (fun f ->
      if not (benign f) then add "fsck: %s %s (%s)" f.Fsck.code f.Fsck.file f.Fsck.detail)
    report.Fsck.findings;
  if Fsck.dirty report then begin
    ignore (Fsck.repair ~spool report);
    if Fsck.dirty (Fsck.scan ~spool ?cache_dir ~budget ~policy ()) then
      add "fsck --repair left the spool dirty"
  end;
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* the in-process workload                                             *)

let run_inproc ?(jobs = 4) ~seed schedule =
  let dir = fresh_dir "inproc" in
  let spool = Filename.concat dir "spool" in
  let cache = Filename.concat dir "cache" in
  Unix.mkdir spool 0o755;
  let expected =
    List.init jobs (fun i ->
        let job = Printf.sprintf "j%02d.rtt" i in
        write_file (Filename.concat spool job)
          (instance_text ~seed ~index:(slot_index ~jobs i));
        job)
  in
  Faults.reset ();
  List.iter (fun (site, after) -> Faults.arm ~after site) schedule;
  let cfg =
    {
      (Supervisor.default_config ~spool) with
      seed;
      sleep = false;
      cache_dir = Some cache;
      (* metered and checkpoint-happy, so the fuel site has a context
         to fire in and checkpoint writes cross the fault shim often *)
      deadline_fuel = Some 500_000;
      checkpoint_every = 25;
    }
  in
  (* a fault that escapes an attempt (journal append, say) kills the
     supervisor exactly like a power cut; recovery is a re-run over the
     same spool. Arms not yet consumed stay armed across re-runs — a
     machine whose disk keeps failing. *)
  let rec drain rounds =
    if rounds = 0 then Error "supervisor did not quiesce within 8 crash/recovery rounds"
    else
      match Supervisor.run cfg with
      | (_ : int) -> Ok ()
      | exception _ -> drain (rounds - 1)
  in
  let outcome = drain 8 in
  Faults.reset ();
  let problems =
    match outcome with
    | Error m -> [ m ]
    | Ok () ->
        let base =
          check_spool ~spool ~cache_dir:(Some cache) ~budget:cfg.Work.budget
            ~policy:cfg.Work.policy ~expected
        in
        (* the duplicate pair is the same optimization question; two
           completions must agree on the answer *)
        if jobs > 1 then
          let first = List.hd expected and last = List.nth expected (jobs - 1) in
          let states = Journal.fold (Journal.replay ~spool) in
          match (List.assoc_opt first states, List.assoc_opt last states) with
          | ( Some (Journal.Completed { makespan = ma; _ }),
              Some (Journal.Completed { makespan = mb; _ }) )
            when ma <> mb ->
              base
              @ [
                  Printf.sprintf "duplicate pair disagrees: %s makespan %d, %s makespan %d"
                    first ma last mb;
                ]
          | _ -> base
        else base
  in
  match problems with
  | [] ->
      rm_rf dir;
      Ok ()
  | ps -> Error (String.concat "; " ps ^ Printf.sprintf " (spool kept at %s)" spool)

(* ------------------------------------------------------------------ *)
(* the two-node workload                                               *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_proc exe args =
  let out = Filename.temp_file "rtt_chaos_out" ".txt" in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin fd null in
  Unix.close fd;
  Unix.close null;
  let code =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED c -> c
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 255
  in
  let text = read_file out in
  Sys.remove out;
  (code, String.trim text)

let spawn exe args =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin null null in
  Unix.close null;
  pid

let alive pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let stop_gently pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if not (alive pid) then ()
    else if Unix.gettimeofday () > deadline then reap pid
    else begin
      ignore (Unix.select [] [] [] 0.02);
      go ()
    end
  in
  go ()

let wait_for ?(timeout = 30.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      ignore (Unix.select [] [] [] 0.03);
      go ()
    end
  in
  go ()

let inject_args schedule =
  List.concat_map
    (fun (site, after) -> [ "--inject"; Printf.sprintf "%s:%d" (Faults.name site) after ])
    schedule

let run_nodes ~rtt ?(jobs = 3) ~seed schedule =
  let dir = fresh_dir "nodes" in
  let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
  Unix.mkdir a 0o755;
  Unix.mkdir b 0o755;
  let ca = Filename.concat dir "ca" and cb = Filename.concat dir "cb" in
  let asock = Filename.concat dir "a.sock" and bsock = Filename.concat dir "b.sock" in
  let files =
    List.init jobs (fun i ->
        let path = Filename.concat dir (Printf.sprintf "i%d.rtt" i) in
        write_file path (instance_text ~seed ~index:(slot_index ~jobs i));
        path)
  in
  (* ack-delay is a follower-side site; everything else fires on the
     primary *)
  let replica_arms, daemon_arms =
    List.partition (fun (site, _) -> site = Faults.Repl_ack_delay) schedule
  in
  let daemon_args extra =
    [ "daemon"; "--spool"; a; "--socket"; asock; "-b"; "4"; "--cache-dir"; ca ] @ extra
  in
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let daemon = ref (spawn rtt (daemon_args (inject_args daemon_arms))) in
  let restarts = ref 0 in
  (* a crashed primary is a power cut; restarting it over the same
     spool (injections spent with the dead process) is the recovery
     path under test *)
  let ensure_daemon () =
    if not (alive !daemon) then
      if !restarts >= 5 then add "primary crashed more than 5 times"
      else begin
        incr restarts;
        daemon := spawn rtt (daemon_args [])
      end
  in
  if not (wait_for ~timeout:15.0 (fun () -> Sys.file_exists asock || not (alive !daemon)))
  then add "primary never created its socket";
  ensure_daemon ();
  let replica =
    spawn rtt
      ([ "replica"; "--spool"; b; "--socket"; bsock; "--primary"; asock; "--cache-dir"; cb ]
      @ inject_args replica_arms)
  in
  let ids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      stop_gently !daemon;
      stop_gently replica)
    (fun () ->
      ignore (wait_for ~timeout:15.0 (fun () -> Sys.file_exists bsock || not (alive replica)));
      if not (alive replica) then add "replica died at startup";
      (* submit, riding out primary crashes *)
      List.iter
        (fun file ->
          let rec try_submit k =
            if k = 0 then add "submit of %s never accepted" (Filename.basename file)
            else begin
              ensure_daemon ();
              match run_proc rtt [ "submit"; file; "--socket"; asock ] with
              | 0, id -> if not (List.mem id !ids) then ids := id :: !ids
              | _ ->
                  ignore (Unix.select [] [] [] 0.1);
                  try_submit (k - 1)
            end
          in
          if !problems = [] then try_submit 8)
        files;
      let expected = List.rev_map (fun id -> id ^ Work.instance_suffix) !ids in
      let terminal () =
        let states = Journal.fold (Journal.replay ~spool:a) in
        List.for_all
          (fun job ->
            match List.assoc_opt job states with
            | Some (Journal.Completed _) | Some (Journal.Dead _) -> true
            | _ -> false)
          expected
      in
      if !problems = [] then begin
        if
          not
            (wait_for ~timeout:60.0 (fun () ->
                 ensure_daemon ();
                 !problems <> [] || terminal ()))
        then add "jobs did not all reach a terminal state within 60s";
        (* byte convergence: the follower's journal becomes the
           primary's, byte for byte *)
        let converged () =
          let ta = try read_file (Journal.path ~spool:a) with Sys_error _ -> "" in
          ta <> "" && ta = (try read_file (Journal.path ~spool:b) with Sys_error _ -> "")
        in
        if !problems = [] then begin
          if
            not
              (wait_for ~timeout:30.0 (fun () ->
                   ensure_daemon ();
                   converged ()))
          then add "journals did not converge byte-for-byte within 30s"
        end
      end;
      (* graceful stop before auditing the spools *)
      stop_gently !daemon;
      stop_gently replica;
      if !problems = [] then begin
        List.iter (fun p -> problems := p :: !problems)
          (check_spool ~spool:a ~cache_dir:(Some ca) ~budget:4 ~policy:Policy.default
             ~expected);
        (* the follower's states must agree on every terminal outcome *)
        let sa = Journal.fold (Journal.replay ~spool:a) in
        let sb = Journal.fold (Journal.replay ~spool:b) in
        List.iter
          (fun job ->
            match (List.assoc_opt job sa, List.assoc_opt job sb) with
            | ( Some (Journal.Completed { makespan = ma; _ }),
                Some (Journal.Completed { makespan = mb; _ }) )
              when ma = mb ->
                ()
            | Some (Journal.Dead _), Some (Journal.Dead _) -> ()
            | x, y ->
                add "%s: primary %s, replica %s" job
                  (match x with Some s -> Journal.status_name s | None -> "absent")
                  (match y with Some s -> Journal.status_name s | None -> "absent"))
          expected
      end;
      match List.rev !problems with
      | [] ->
          rm_rf dir;
          Ok ()
      | ps -> Error (String.concat "; " ps ^ Printf.sprintf " (spools kept at %s)" dir))

(* ------------------------------------------------------------------ *)
(* shrinking and the seed driver                                       *)

let shrink ~check schedule reason =
  let rec drop sched reason =
    let rec try_each i =
      if i >= List.length sched then None
      else
        let cand = List.filteri (fun j _ -> j <> i) sched in
        if cand = [] then try_each (i + 1)
        else
          match check cand with Error r -> Some (cand, r) | Ok () -> try_each (i + 1)
    in
    match try_each 0 with Some (s, r) -> drop s r | None -> halve sched reason
  and halve sched reason =
    let rec try_each i =
      if i >= List.length sched then None
      else
        let cand =
          List.mapi (fun j (site, a) -> if j = i && a > 0 then (site, a / 2) else (site, a)) sched
        in
        if cand = sched then try_each (i + 1)
        else
          match check cand with Error r -> Some (cand, r) | Ok () -> try_each (i + 1)
    in
    match try_each 0 with Some (s, r) -> halve s r | None -> (sched, reason)
  in
  drop schedule reason

type failure = { seed : int option; mode : string; schedule : schedule; reason : string }

let render_failure f =
  let sched = schedule_to_string f.schedule in
  let seed_bit = match f.seed with Some s -> Printf.sprintf ", seed %d" s | None -> "" in
  let replay_seed =
    match f.seed with
    | Some s -> Printf.sprintf "  replay:  rtt chaos --mode %s --seed %d\n" f.mode s
    | None -> ""
  in
  let workload =
    match f.seed with Some s -> Printf.sprintf " --seed %d" s | None -> ""
  in
  Printf.sprintf
    "chaos: FAILED (%s%s)\n  reason:  %s\n  minimal: %s\n%s  exactly: rtt chaos --mode %s%s --schedule %s\n"
    f.mode seed_bit f.reason sched replay_seed f.mode workload sched

let run_seeds ?(jobs = 4) ?(nodes_every = 5) ?rtt ?(log = fun _ -> ()) ~mode ~first ~count ()
    =
  let runs = ref 0 in
  let failure = ref None in
  let check_of mname seed =
    match mname with
    | "nodes" -> (
        match rtt with
        | None -> invalid_arg "Chaos.run_seeds: nodes mode needs ~rtt"
        | Some rtt -> fun sched -> run_nodes ~rtt ~jobs ~seed sched)
    | _ -> fun sched -> run_inproc ~jobs ~seed sched
  in
  let one mname seed =
    if !failure = None then begin
      let sched = schedule_of_seed ~nodes:(mname = "nodes") seed in
      let check = check_of mname seed in
      match check sched with
      | Ok () ->
          incr runs;
          log (Printf.sprintf "seed %d %s ok  [%s]" seed mname (schedule_to_string sched))
      | Error reason ->
          log
            (Printf.sprintf "seed %d %s FAILED (%s); shrinking" seed mname
               (schedule_to_string sched));
          let minimal, reason = shrink ~check sched reason in
          failure := Some { seed = Some seed; mode = mname; schedule = minimal; reason }
    end
  in
  for seed = first to first + count - 1 do
    match mode with
    | `Inproc -> one "inproc" seed
    | `Nodes -> one "nodes" seed
    | `Both ->
        one "inproc" seed;
        if (seed - first) mod nodes_every = 0 then one "nodes" seed
  done;
  match !failure with Some f -> Error f | None -> Ok !runs
