(* Minimal JSON emission: the object shape is fixed and flat, so a
   string escaper plus a few printfs beats a dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of ~id status =
  let state = match status with None -> "unknown" | Some s -> Journal.status_name s in
  let attempts =
    match status with
    | None -> 0
    | Some (Journal.Pending { attempts }) | Some (Journal.Dead { attempts; _ }) -> attempts
    | Some (Journal.Running { attempt })
    | Some (Journal.Interrupted { attempt })
    | Some (Journal.Completed { attempt; _ }) ->
        attempt
  in
  let fuel =
    match status with Some (Journal.Completed { fuel; _ }) -> string_of_int fuel | _ -> "null"
  in
  let cache_hit =
    match status with
    | Some (Journal.Completed { cached; _ }) -> string_of_bool cached
    | _ -> "null"
  in
  let error =
    match status with
    | Some (Journal.Dead { error_class; _ }) -> Printf.sprintf "%S" (escape error_class)
    | _ -> "null"
  in
  Printf.sprintf
    "{\"id\":\"%s\",\"state\":\"%s\",\"attempts\":%d,\"fuel\":%s,\"cache_hit\":%s,\"error\":%s}"
    (escape id) (escape state) attempts fuel cache_hit error
