(* Minimal JSON emission: the object shape is fixed and flat, so the
   shared escaper ({!Rtt_engine.Jsonout}) plus a few printfs beats a
   dependency. *)

let json_of ~id status =
  let quote = Rtt_engine.Jsonout.quote in
  let state = match status with None -> "unknown" | Some s -> Journal.status_name s in
  let attempts =
    match status with
    | None -> 0
    | Some (Journal.Pending { attempts }) | Some (Journal.Dead { attempts; _ }) -> attempts
    | Some (Journal.Running { attempt })
    | Some (Journal.Interrupted { attempt })
    | Some (Journal.Completed { attempt; _ }) ->
        attempt
  in
  let fuel =
    match status with Some (Journal.Completed { fuel; _ }) -> string_of_int fuel | _ -> "null"
  in
  let cache_hit =
    match status with
    | Some (Journal.Completed { cached; _ }) -> string_of_bool cached
    | _ -> "null"
  in
  let error =
    match status with
    (* [quote], not a double pass through [%S]: the former per-module
       escaper fed already-escaped text to [%S], mangling backslashes *)
    | Some (Journal.Dead { error_class; _ }) -> quote error_class
    | _ -> "null"
  in
  Printf.sprintf "{\"id\":%s,\"state\":%s,\"attempts\":%d,\"fuel\":%s,\"cache_hit\":%s,\"error\":%s}"
    (quote id) (quote state) attempts fuel cache_hit error
