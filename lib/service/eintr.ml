let rec read fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf off len

let rec write fd buf off len =
  match Unix.write fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write fd buf off len

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let select r w e timeout =
  match Unix.select r w e timeout with
  | sets -> sets
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])

let connect fd addr =
  match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* the connect proceeds in the kernel; poll for the outcome *)
      let rec settle () =
        match Unix.select [] [ fd ] [] 1.0 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> settle ()
        | _, [ _ ], _ -> (
            match Unix.getsockopt_error fd with
            | None -> ()
            | Some e -> raise (Unix.Unix_error (e, "connect", "")))
        | _ -> settle ()
      in
      settle ()
  | exception Unix.Unix_error (Unix.EISCONN, _, _) -> ()

let rec accept fd =
  match Unix.accept fd with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept fd
