(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven                        *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* framing                                                             *)

let frame payload = Printf.sprintf "%08lx %s" (crc32 payload) payload

(* Only canonical lowercase hex: [int_of_string "0x..."] would also
   accept uppercase digits and underscores, letting some single-byte
   corruptions of the CRC field ("a" -> "A", leading "0" -> "_") parse
   to the same checksum value and slip through. *)
let is_lower_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let unframe line =
  match String.index_opt line ' ' with
  | Some 8 when String.for_all is_lower_hex (String.sub line 0 8) -> (
      let payload = String.sub line 9 (String.length line - 9) in
      match int_of_string_opt ("0x" ^ String.sub line 0 8) with
      | Some crc when Int32.of_int crc = crc32 payload -> Some payload
      | _ -> None)
  | _ -> None

let write_all = Eintr.write_all

let write fd payload =
  let b = Bytes.of_string (frame payload ^ "\n") in
  write_all fd b 0 (Bytes.length b)

(* ------------------------------------------------------------------ *)
(* token escaping                                                      *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\r' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 < n then begin
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
            Buffer.add_char buf (Char.chr code);
            go (i + 3)
        | None -> None
      end
      else None
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* incremental reader                                                  *)

type reader = { max_frame : int; buf : Buffer.t; mutable poisoned : bool }

let reader ?(max_frame = 16 * 1024 * 1024) () =
  { max_frame; buf = Buffer.create 256; poisoned = false }

let buffered r = Buffer.length r.buf

let feed r chunk =
  if r.poisoned then [ `Overflow ]
  else begin
    Buffer.add_string r.buf chunk;
    let s = Buffer.contents r.buf in
    let items = ref [] in
    let start = ref 0 in
    (try
       while true do
         let nl = String.index_from s !start '\n' in
         let line = String.sub s !start (nl - !start) in
         items :=
           (match unframe line with Some p -> `Frame p | None -> `Corrupt line) :: !items;
         start := nl + 1
       done
     with Not_found -> ());
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s !start (String.length s - !start);
    if Buffer.length r.buf >= r.max_frame then begin
      r.poisoned <- true;
      List.rev (`Overflow :: !items)
    end
    else List.rev !items
  end
