(** Retry-on-[EINTR] wrappers for the fd calls in the service and net
    layers — the pool's parent↔worker pipes and the daemon's sockets.

    These processes field real signals mid-syscall — SIGTERM starting a
    drain, SIGCHLD from the fork pool, SIGINT at a terminal — and an
    interrupted [read]/[write]/[connect]/[accept] must restart, not
    surface as a spurious [Unix_error (EINTR, _, _)] that tears a frame
    (or a pool assignment) in half. [select] is the exception: an
    interrupted wait returns empty sets so the caller re-checks its own
    state (drain flags, deadlines) before sleeping again, which is
    exactly what a signal should cause. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read], restarted on [EINTR]. *)

val write : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.write], restarted on [EINTR]. May still be short. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** Loop {!write} to completion. *)

val select :
  Unix.file_descr list ->
  Unix.file_descr list ->
  Unix.file_descr list ->
  float ->
  Unix.file_descr list * Unix.file_descr list * Unix.file_descr list
(** [Unix.select]; an [EINTR] returns [([], [], [])] — the caller's
    loop re-evaluates and sleeps again. *)

val connect : Unix.file_descr -> Unix.sockaddr -> unit
(** [Unix.connect], completed on [EINTR]: an interrupted connect keeps
    running in the kernel, so retrying the call itself can report
    [EALREADY]/[EISCONN]. Waits for writability and re-checks
    [SO_ERROR] instead, re-raising the real failure if there is one. *)

val accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr
(** [Unix.accept], restarted on [EINTR]. *)
