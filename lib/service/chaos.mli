(** Deterministic chaos harness behind [rtt chaos]: run seeded fault
    schedules against a real workload and check the durability
    invariants the rest of the system promises.

    A {e schedule} arms one or more {!Rtt_engine.Faults} sites, each
    with a trigger count — fire on the [after]-th probe of that site.
    Schedules are derived deterministically from a seed, so a failing
    seed replays bit-for-bit; on failure the harness shrinks the
    schedule to a local minimum (drop arms, halve trigger counts)
    before reporting.

    Two workloads:

    - {b inproc}: a temp spool of small generated instances (with a
      deliberate duplicate pair) drained by {!Supervisor.run} in this
      process. A fault that escapes an attempt — a journal fsync
      failure, say — crashes the run exactly like a power cut; the
      harness re-runs the supervisor over the same spool, which {e is}
      the recovery path.
    - {b nodes}: a primary [rtt daemon] and an [rtt replica] spawned as
      real subprocesses (faults delivered via [--inject]), jobs pushed
      through [rtt submit]; a crashed primary is restarted and the
      drain resumed.

    Invariants checked at quiescence, both modes: the journal replays
    clean to its last byte; every job reaches exactly one terminal
    state (at most one [done] record, ever); completed jobs have
    parseable result files (the duplicate pair agreeing on makespan);
    every cache entry passes its checksum audit; an {!Fsck.scan} finds
    nothing beyond benign crash residue (tmp litter, stale
    checkpoints), and {!Fsck.repair} leaves the spool clean. The nodes
    workload additionally requires the two journals byte-identical. *)

type schedule = (Rtt_engine.Faults.site * int) list
(** Arms, in order: fire [site] on its [after]-th probe. *)

val schedule_of_seed : ?nodes:bool -> int -> schedule
(** 1–3 distinct arms, deterministic in [seed]. [nodes] widens the
    site pool with the replication sites ([repl.frame-drop],
    [repl.ack-delay]), which only exist on the two-node workload. *)

val schedule_to_string : schedule -> string
(** [SITE:AFTER,SITE:AFTER,...] — the [--schedule] syntax. *)

val schedule_of_string : string -> (schedule, string) result

val run_inproc : ?jobs:int -> seed:int -> schedule -> (unit, string) result
(** One in-process run: [jobs] instances (default 4, last a duplicate
    of the first) generated from [seed], schedule armed, supervisor
    driven to quiescence through up to 8 crash/recovery rounds, then
    the invariants. [Error reason] keeps the spool on disk for
    inspection and says where. *)

val run_nodes : rtt:string -> ?jobs:int -> seed:int -> schedule -> (unit, string) result
(** One two-node run against the [rtt] binary at that path. The
    replication sites arm the replica process; everything else arms
    the primary. *)

val shrink :
  check:(schedule -> (unit, string) result) ->
  schedule ->
  string ->
  schedule * string
(** Greedy minimization of a failing schedule: repeatedly drop any arm
    (then halve any trigger count) whose removal still fails [check],
    to a local minimum. Returns the minimal schedule and its failure
    reason. Each probe is a full chaos run, so cost is bounded by the
    schedule's size (at most 3 arms). *)

type failure = {
  seed : int option;  (** [None] when the schedule was given explicitly. *)
  mode : string;  (** ["inproc"] or ["nodes"]. *)
  schedule : schedule;  (** Minimal (post-{!shrink}). *)
  reason : string;
}

val render_failure : failure -> string
(** Multi-line report ending with the exact replay commands. *)

val run_seeds :
  ?jobs:int ->
  ?nodes_every:int ->
  ?rtt:string ->
  ?log:(string -> unit) ->
  mode:[ `Inproc | `Nodes | `Both ] ->
  first:int ->
  count:int ->
  unit ->
  (int, failure) result
(** Drive seeds [first .. first + count - 1]; stop at the first
    failure, shrink it, and return it. [`Both] runs inproc on every
    seed and nodes on every [nodes_every]-th (default 5 — the
    two-node workload costs two process spawns per run); [`Nodes]
    and [`Both] require [rtt]. [Ok n] is the number of runs that
    passed. [log] receives one progress line per run. *)
