(** Sidecar checkpoint files: one per job, atomically replaced.

    The supervisor installs {!store} as the
    {!Rtt_budget.Budget.with_checkpoint} sink while a job solves; the
    kernel's serialized state (e.g. {!Rtt_core.Exact.snapshot_of}) is
    written to a temporary file, fsync'd and renamed over the sidecar,
    so a crash during a checkpoint leaves either the previous snapshot
    or the new one — never a torn file. Each snapshot carries the same
    CRC framing as the journal; {!load} returns [None] for anything
    unreadable or corrupt, which downgrades a resume to a cold start
    instead of failing the job. *)

val path : spool:string -> job:string -> string
(** [spool ^ "/" ^ job ^ ".ckpt"]. *)

val store : spool:string -> job:string -> string -> unit
val load : spool:string -> job:string -> string option
val clear : spool:string -> job:string -> unit
