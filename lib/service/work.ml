open Rtt_core
open Rtt_num
open Rtt_budget
open Rtt_engine

type config = {
  spool : string;
  budget : int;
  policy : Policy.t;
  max_attempts : int;
  deadline_fuel : int option;
  checkpoint_every : int;
  seed : int;
  sleep : bool;
  verbose : bool;
  workers : int;
  cache_dir : string option;
}

(* The supervisor never overrides Engine.solve's alpha, but the digest,
   the solve, and the re-validation of cache hits must all agree on it,
   so it is pinned here rather than defaulted in three places. *)
let alpha = Rat.half

exception Interrupted

let instance_suffix = ".rtt"

let jobs_in ~spool =
  match Sys.readdir spool with
  | exception Sys_error _ -> []
  | entries ->
      entries |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f instance_suffix)
      |> List.sort compare

(* ------------------------------------------------------------------ *)
(* results                                                             *)

let result_path ~spool ~job = Filename.concat spool (job ^ ".result")

(* Exactly what `rtt solve` prints for this success — stored with the
   result so a network client's `submit --wait` can be byte-identical
   to a local solve without the daemon re-deriving anything. *)
let render p (s : Engine.success) =
  Format.asprintf "%a@." Engine.pp_success s
  ^ Format.asprintf "allocation: %s@." (Engine.render_allocation p s.Engine.allocation)

let write_result ?rendered ~spool ~job ~attempt ~cached (s : Engine.success) =
  let text =
    Printf.sprintf
      "job %s\nrung %s\nattempt %d\nmakespan %d\nbudget_used %d\nfuel %d\ncached %d\ndegraded %d\nallocation %s\n"
      job (Policy.rung_name s.Engine.rung) attempt s.Engine.makespan s.Engine.budget_used
      s.Engine.fuel_spent
      (if cached then 1 else 0)
      (List.length s.Engine.degraded)
      (String.concat " " (Array.to_list (Array.map string_of_int s.Engine.allocation)))
    ^
    (* the blob is percent-encoded onto one line so the key-value
       reader stays line-oriented *)
    match rendered with
    | Some r -> Printf.sprintf "rendered %s\n" (Frame.escape r)
    | None -> ""
  in
  Rtt_diskio.Diskio.atomic_write ~path:(result_path ~spool ~job) text

let read_result ~spool ~job =
  match open_in (result_path ~spool ~job) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> Some (List.rev acc)
            | line -> (
                match String.index_opt line ' ' with
                | Some i ->
                    go ((String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)) :: acc)
                | None -> go acc)
          in
          go [])

(* ------------------------------------------------------------------ *)
(* one attempt                                                         *)

type outcome =
  | Solved of Engine.success * bool  (** The success and whether it came from the cache. *)
  | Failed of { error_class : string; transient : bool; backoff : int }
      (** [transient] is {!Retry.classify}'s verdict alone; whether the
          attempt is actually retried also depends on [max_attempts],
          which the caller owns. [backoff] is the deterministic
          [(seed, job, attempt)] jitter value regardless. *)

let digest_of cfg p = Fingerprint.digest ~policy:cfg.policy ~alpha p ~budget:cfg.budget

let claim_of (s : Engine.success) ~budget : Validate.claim =
  {
    Validate.rung = s.Engine.rung;
    allocation = s.Engine.allocation;
    makespan = s.Engine.makespan;
    budget_used = s.Engine.budget_used;
    budget;
    alpha = (if s.Engine.rung = Policy.Bicriteria then Some alpha else None);
    lp_makespan = s.Engine.lp_makespan;
    lp_budget = s.Engine.lp_budget;
  }

let cache_lookup cfg p ~log =
  match cfg.cache_dir with
  | None -> None
  | Some dir -> (
      match Cache.lookup ~dir ~key:(digest_of cfg p) with
      | None -> None
      | Some s -> (
          (* a hit is never trusted blind: the entry is re-validated
             against the instance, so a forged or stale cache can cost a
             redundant solve but never serve a wrong answer *)
          match Validate.check p (claim_of s ~budget:cfg.budget) with
          | Ok () -> Some s
          | Error e ->
              log (Printf.sprintf "cache entry rejected by validation (%s)" (Error.to_string e));
              None))

(* The cache is an optimization: a disk failure publishing an entry
   (ENOSPC, failed rename) must not fail the attempt that produced a
   perfectly good result. The torn tmp it may leave behind is fsck's
   business. *)
let cache_store cfg p s ~log =
  match cfg.cache_dir with
  | None -> ()
  | Some dir -> (
      try Cache.store ~dir ~key:(digest_of cfg p) s
      with Unix.Unix_error (e, fn, _) ->
        log (Printf.sprintf "cache store failed (%s in %s); continuing" (Unix.error_message e) fn))

(* One attempt at [job], shared verbatim by the sequential supervisor
   and by pool workers: load, consult the cache, otherwise solve with
   checkpointing and a warm start, publish the durable result file, and
   classify any failure. Raises [Interrupted] (after persisting a
   checkpoint) when [stop] turns true mid-solve. *)
let attempt cfg ~stop ~log ~job ~attempt =
  let spool = cfg.spool in
  match Engine.load (Filename.concat spool job) with
  | Error e ->
      log (Printf.sprintf "%s attempt %d: unloadable (%s)" job attempt (Error.to_string e));
      Failed { error_class = Error.class_name e; transient = false; backoff = 0 }
  | Ok p -> (
      (* A failed result write is a transient attempt failure, not a
         crash: the computation was fine, only the publish failed — the
         retry rewrites the identical (deterministic) result. *)
      let publish ~cached s =
        match write_result ~rendered:(render p s) ~spool ~job ~attempt ~cached s with
        | () -> None
        | exception Unix.Unix_error (e, fn, _) ->
            log
              (Printf.sprintf "%s attempt %d: result write failed (%s in %s)" job attempt
                 (Unix.error_message e) fn);
            Some
              (Failed
                 {
                   error_class = Error.class_name (Error.Io_error fn);
                   transient = true;
                   backoff = Retry.backoff ~seed:cfg.seed ~job ~attempt;
                 })
      in
      match cache_lookup cfg p ~log with
      | Some s -> (
          match publish ~cached:true s with
          | Some failed -> failed
          | None ->
              Checkpoint.clear ~spool ~job;
              log
                (Printf.sprintf "%s attempt %d: cache hit (makespan %d)" job attempt
                   s.Engine.makespan);
              Solved (s, true))
      | None -> (
          let warm_start =
            Option.bind (Checkpoint.load ~spool ~job) Exact.allocation_of_snapshot
          in
          if warm_start <> None then
            log (Printf.sprintf "%s attempt %d: resuming from checkpoint" job attempt);
          let sink snapshot =
            Checkpoint.store ~spool ~job snapshot;
            if stop () then raise Interrupted
          in
          let solve () =
            Budget.with_checkpoint ~every:cfg.checkpoint_every sink (fun () ->
                Engine.solve ?fuel:cfg.deadline_fuel ~policy:cfg.policy ~alpha ?warm_start p
                  ~budget:cfg.budget)
          in
          match solve () with
          | Ok s -> (
              (* result (and cache entry) before any completion report: a
                 crash in between re-runs the job and rewrites the
                 identical (deterministic) result, so `done` is only ever
                 journaled for a durable result *)
              cache_store cfg p s ~log;
              match publish ~cached:false s with
              | Some failed -> failed
              | None ->
                  Checkpoint.clear ~spool ~job;
                  log
                    (Printf.sprintf "%s attempt %d: done (makespan %d, fuel %d)" job attempt
                       s.Engine.makespan s.Engine.fuel_spent);
                  Solved (s, false))
          | Error e ->
              let error_class = Error.class_name e in
              let transient = Retry.classify e = Retry.Transient in
              let backoff = if transient then Retry.backoff ~seed:cfg.seed ~job ~attempt else 0 in
              log
                (Printf.sprintf "%s attempt %d: %s %s" job attempt
                   (if transient then "transient" else "permanent")
                   error_class);
              Failed { error_class; transient; backoff }))
