let path ~spool ~job = Filename.concat spool (job ^ ".ckpt")

let store ~spool ~job snapshot =
  let final = path ~spool ~job in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let line = Frame.frame snapshot in
      let bytes = Bytes.of_string line in
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written := !written + Unix.write fd bytes !written (len - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp final

let load ~spool ~job =
  match open_in (path ~spool ~job) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          Frame.unframe (really_input_string ic len))

let clear ~spool ~job = try Sys.remove (path ~spool ~job) with Sys_error _ -> ()
