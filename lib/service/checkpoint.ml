let path ~spool ~job = Filename.concat spool (job ^ ".ckpt")

let store ~spool ~job snapshot =
  let final = path ~spool ~job in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let line = Printf.sprintf "%08lx %s" (Journal.crc32 snapshot) snapshot in
      let bytes = Bytes.of_string line in
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written := !written + Unix.write fd bytes !written (len - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp final

let load ~spool ~job =
  match open_in (path ~spool ~job) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          let line = really_input_string ic len in
          if len < 9 || line.[8] <> ' ' then None
          else
            let snapshot = String.sub line 9 (len - 9) in
            match int_of_string_opt ("0x" ^ String.sub line 0 8) with
            | Some crc when Int32.of_int crc = Journal.crc32 snapshot -> Some snapshot
            | _ -> None)

let clear ~spool ~job = try Sys.remove (path ~spool ~job) with Sys_error _ -> ()
