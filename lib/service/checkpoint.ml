let path ~spool ~job = Filename.concat spool (job ^ ".ckpt")

let store ~spool ~job snapshot =
  Rtt_diskio.Diskio.atomic_write ~path:(path ~spool ~job) (Frame.frame snapshot)

let load ~spool ~job =
  match open_in (path ~spool ~job) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          Frame.unframe (really_input_string ic len))

let clear ~spool ~job = try Sys.remove (path ~spool ~job) with Sys_error _ -> ()
