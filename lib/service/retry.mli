(** Retry policy: error classification and deterministic backoff.

    Transient failures are those where a retry can plausibly do better:
    fuel deadlines (the retry resumes from a checkpoint, so the same
    deadline buys further progress), injected faults and LP/flow
    aborts (one-shot by construction), and internal errors. Permanent
    failures are deterministic properties of the request itself —
    malformed input, bad parameters, a state space over the cap — where
    retrying burns attempts for the same answer.

    Backoff is capped exponential with deterministic jitter: the jitter
    is a hash of [(seed, job, attempt)], not a random draw, so a given
    spool replays the exact same backoff sequence — the property the
    fault-driven retry test pins down. Backoff is measured in abstract
    units (the supervisor maps one unit to one millisecond). *)

open Rtt_engine

type classification = Transient | Permanent

val classify : Error.t -> classification
(** [All_rungs_failed] is transient iff at least one rung failed
    transiently. *)

val base_backoff : int
(** Backoff units of the first retry (100). *)

val max_backoff : int
(** Cap on the exponential growth (2000 units). *)

val backoff : seed:int -> job:string -> attempt:int -> int
(** Backoff units to wait after failed attempt [attempt] (1-based):
    [min max_backoff (base * 2^(attempt-1))] plus jitter in
    [0, base/2), deterministic in [(seed, job, attempt)]. The
    exponential saturates at {!max_backoff} with no intermediate
    overflow, so the result stays in
    [[base_backoff, max_backoff + base_backoff / 2)] for every
    attempt count however large.
    @raise Invalid_argument when [attempt < 1]. *)
