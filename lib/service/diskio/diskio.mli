(** The single chokepoint for durable storage syscalls.

    Every byte the system promises to keep — journal appends and
    seals, cache entries, checkpoint sidecars, result files,
    replicated blobs — goes through the four operations below instead
    of calling [Unix] directly. That buys two things: the EINTR
    discipline lives in one place, and each operation carries a
    {!Rtt_budget.Budget} fault site, so the chaos harness can make the
    disk fail deterministically — at the Nth write, fsync, or rename —
    without patching storage code.

    Injected failures surface as ordinary [Unix.Unix_error]s
    ([ENOSPC]/[EIO]), indistinguishable from the real thing to the
    caller; the short-write fault additionally leaves a genuinely torn
    file behind (a prefix of the bytes landed), which is the on-disk
    state the journal's seal and [rtt fsck] exist to clean up.

    This library sits below [rtt_engine] so the content-addressed
    cache shares the shim with the service layer's journal and
    checkpoints. *)

val fsync_fail_site : string
(** ["disk.fsync-fail"] — the triggering {!fsync} raises [EIO] after
    the preceding writes may or may not have reached the platter. *)

val short_write_site : string
(** ["disk.short-write"] — the triggering {!write_all} writes only a
    prefix of its bytes, then raises [EIO]: a torn write. *)

val enospc_site : string
(** ["disk.enospc"] — the triggering {!write_all} raises [ENOSPC]
    before writing anything. *)

val eio_site : string
(** ["disk.eio"] — the triggering {!write_all} or {!ftruncate} raises
    [EIO] before touching the file. *)

val rename_fail_site : string
(** ["disk.rename-fail"] — the triggering {!rename} raises [EIO]
    without renaming; the temp file stays behind as litter. *)

val sites : string list
(** All five site strings, for registries and docs. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** Write the whole range, restarting on [EINTR]. Probes
    {!enospc_site}, {!eio_site} and {!short_write_site}. *)

val fsync : Unix.file_descr -> unit
(** [Unix.fsync]; probes {!fsync_fail_site}. *)

val rename : string -> string -> unit
(** [Unix.rename]; probes {!rename_fail_site}. *)

val ftruncate : Unix.file_descr -> int -> unit
(** [Unix.ftruncate]; probes {!eio_site}. *)

val atomic_write : path:string -> string -> unit
(** The tmp + write + fsync + rename idiom every durable artifact
    uses: write [body] to [path ^ ".<pid>.tmp"], fsync, rename over
    [path]. A crash or injected failure at any point leaves either the
    old file or tmp litter, never a torn [path]. The tmp file is
    deliberately {e not} cleaned up on failure — it is exactly the
    litter [rtt fsck] audits. *)
