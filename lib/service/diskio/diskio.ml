open Rtt_budget

let fsync_fail_site = "disk.fsync-fail"
let short_write_site = "disk.short-write"
let enospc_site = "disk.enospc"
let eio_site = "disk.eio"
let rename_fail_site = "disk.rename-fail"
let sites = [ fsync_fail_site; short_write_site; enospc_site; eio_site; rename_fail_site ]

let fail err fn = raise (Unix.Unix_error (err, fn, "injected"))

let rec plain_write_all fd bytes off len =
  if len > 0 then
    match Unix.write fd bytes off len with
    | n -> plain_write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> plain_write_all fd bytes off len

let write_all fd bytes off len =
  if Budget.probe ~site:enospc_site then fail Unix.ENOSPC "write";
  if Budget.probe ~site:eio_site then fail Unix.EIO "write";
  if Budget.probe ~site:short_write_site then begin
    (* land a strict prefix, then fail: the torn write the journal's
       seal-on-open and fsck's tail audit must be able to absorb *)
    plain_write_all fd bytes off (len / 2);
    fail Unix.EIO "write"
  end;
  plain_write_all fd bytes off len

let fsync fd =
  if Budget.probe ~site:fsync_fail_site then fail Unix.EIO "fsync";
  Unix.fsync fd

let rename src dst =
  if Budget.probe ~site:rename_fail_site then fail Unix.EIO "rename";
  Unix.rename src dst

let ftruncate fd len =
  if Budget.probe ~site:eio_site then fail Unix.EIO "ftruncate";
  Unix.ftruncate fd len

let atomic_write ~path body =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.of_string body in
      write_all fd b 0 (Bytes.length b);
      fsync fd);
  rename tmp path
