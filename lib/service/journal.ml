type event =
  | Queued
  | Started of { attempt : int }
  | Done of { attempt : int; makespan : int; budget_used : int; fuel : int; cached : bool }
  | Failed of { attempt : int; error_class : string; transient : bool; backoff : int }
  | Abandoned of { attempt : int }

type record = { job : string; event : event }

(* The CRC-32 and the line framing now live in {!Frame}, shared with
   the pool pipes and the network daemon; the aliases below keep this
   module the journal-facing name for them. *)

let crc32 = Frame.crc32

(* wire format: "<crc-as-8-hex> <payload>"; payload tokens are space-
   separated, job names percent-encoded so any file name round-trips *)

let encode_job = Frame.escape
let decode_job = Frame.unescape

let payload_of { job; event } =
  let j = encode_job job in
  match event with
  | Queued -> Printf.sprintf "queued %s" j
  | Started { attempt } -> Printf.sprintf "started %s %d" j attempt
  | Done { attempt; makespan; budget_used; fuel; cached } ->
      Printf.sprintf "done %s %d %d %d %d %s" j attempt makespan budget_used fuel
        (if cached then "cached" else "fresh")
  | Failed { attempt; error_class; transient; backoff } ->
      Printf.sprintf "failed %s %d %s %s %d" j attempt error_class
        (if transient then "transient" else "permanent")
        backoff
  | Abandoned { attempt } -> Printf.sprintf "abandoned %s %d" j attempt

let record_of_payload payload =
  let int = int_of_string_opt in
  match String.split_on_char ' ' payload with
  | [ "queued"; j ] -> Option.map (fun job -> { job; event = Queued }) (decode_job j)
  | [ "started"; j; a ] -> (
      match (decode_job j, int a) with
      | Some job, Some attempt -> Some { job; event = Started { attempt } }
      | _ -> None)
  | [ "done"; j; a; ms; bu; fu ] -> (
      (* pre-cache journals: a five-field done is a fresh solve *)
      match (decode_job j, int a, int ms, int bu, int fu) with
      | Some job, Some attempt, Some makespan, Some budget_used, Some fuel ->
          Some { job; event = Done { attempt; makespan; budget_used; fuel; cached = false } }
      | _ -> None)
  | [ "done"; j; a; ms; bu; fu; (("cached" | "fresh") as src) ] -> (
      match (decode_job j, int a, int ms, int bu, int fu) with
      | Some job, Some attempt, Some makespan, Some budget_used, Some fuel ->
          Some
            { job; event = Done { attempt; makespan; budget_used; fuel; cached = src = "cached" } }
      | _ -> None)
  | [ "failed"; j; a; cls; tr; bo ] -> (
      match (decode_job j, int a, int bo, tr) with
      | Some job, Some attempt, Some backoff, ("transient" | "permanent") ->
          Some
            {
              job;
              event = Failed { attempt; error_class = cls; transient = tr = "transient"; backoff };
            }
      | _ -> None)
  | [ "abandoned"; j; a ] -> (
      match (decode_job j, int a) with
      | Some job, Some attempt -> Some { job; event = Abandoned { attempt } }
      | _ -> None)
  | _ -> None

let encode r = Frame.frame (payload_of r)
let decode line = Option.bind (Frame.unframe line) record_of_payload

(* ------------------------------------------------------------------ *)
(* durable log                                                         *)

type t = { fd : Unix.file_descr }

let path ~spool = Filename.concat spool "journal.log"

let read_whole p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* The committed prefix at the byte level: every line must both decode
   and carry its terminating newline. A final line that happens to
   decode but has no '\n' is still a torn write — counting it would let
   a subsequent append glue a new record onto it, corrupting both. *)
let replay_wire ~spool =
  match read_whole (path ~spool) with
  | None -> ([], 0)
  | Some s ->
      let n = String.length s in
      let lines = ref [] in
      let ok = ref 0 in
      let start = ref 0 in
      let stop = ref false in
      while (not !stop) && !start < n do
        match String.index_from_opt s !start '\n' with
        | None -> stop := true
        | Some nl -> (
            let line = String.sub s !start (nl - !start) in
            match decode line with
            | Some _ ->
                lines := line :: !lines;
                ok := nl + 1;
                start := nl + 1
            | None -> stop := true)
      done;
      (List.rev !lines, !ok)

let seal ~spool =
  let lines, ok = replay_wire ~spool in
  let p = path ~spool in
  (match Unix.stat p with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | st ->
      if st.Unix.st_size > ok then begin
        let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Rtt_diskio.Diskio.ftruncate fd ok;
            Rtt_diskio.Diskio.fsync fd)
      end);
  List.length lines

(* Sealing on open means an append after a torn final write lands on a
   newline boundary instead of being glued onto the torn line — which
   would make the new record (and everything after it) unreadable. *)
let open_ ~spool =
  ignore (seal ~spool);
  { fd = Unix.openfile (path ~spool) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 }

let append_line t line =
  let bytes = Bytes.of_string (line ^ "\n") in
  Rtt_diskio.Diskio.write_all t.fd bytes 0 (Bytes.length bytes);
  Rtt_diskio.Diskio.fsync t.fd

let append t r = append_line t (encode r)
let close t = Unix.close t.fd
let fd t = t.fd

let replay ~spool =
  match open_in (path ~spool) with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | line -> (
                match decode line with
                | Some r -> go (r :: acc)
                (* an undecodable record ends the valid prefix: it is
                   either a torn final write or corruption, and nothing
                   after it can be trusted *)
                | None -> List.rev acc)
          in
          go [])

(* ------------------------------------------------------------------ *)
(* derived state                                                       *)

type status =
  | Pending of { attempts : int }
  | Running of { attempt : int }
  | Interrupted of { attempt : int }
  | Completed of { attempt : int; makespan : int; budget_used : int; fuel : int; cached : bool }
  | Dead of { attempts : int; error_class : string }

let step status event =
  match (status, event) with
  (* a Done is final: late or duplicate events never un-complete a job,
     so a result is reported at most once *)
  | (Some (Completed _ as c), _) -> c
  | _, Queued -> ( match status with Some s -> s | None -> Pending { attempts = 0 })
  | _, Started { attempt } -> Running { attempt }
  | _, Done { attempt; makespan; budget_used; fuel; cached } ->
      Completed { attempt; makespan; budget_used; fuel; cached }
  | _, Failed { attempt; transient = true; _ } -> Pending { attempts = attempt }
  | _, Failed { attempt; error_class; transient = false; _ } ->
      Dead { attempts = attempt; error_class }
  | _, Abandoned { attempt } -> Interrupted { attempt }

let apply states { job; event } =
  let rec go = function
    | [] -> [ (job, step None event) ]
    | (j, s) :: rest when j = job -> (j, step (Some s) event) :: rest
    | entry :: rest -> entry :: go rest
  in
  go states

let fold records = List.fold_left apply [] records

let status_name = function
  | Pending _ -> "pending"
  | Running _ -> "running"
  | Interrupted _ -> "interrupted"
  | Completed _ -> "done"
  | Dead _ -> "failed"

let pp_status fmt = function
  | Pending { attempts } ->
      if attempts = 0 then Format.fprintf fmt "pending"
      else Format.fprintf fmt "pending (retry after %d attempt%s)" attempts
             (if attempts = 1 then "" else "s")
  | Running { attempt } -> Format.fprintf fmt "running (attempt %d)" attempt
  | Interrupted { attempt } -> Format.fprintf fmt "interrupted (attempt %d)" attempt
  | Completed { attempt; makespan; budget_used; fuel; cached } ->
      Format.fprintf fmt "done (attempt %d, makespan %d, budget %d, fuel %d%s)" attempt makespan
        budget_used fuel
        (if cached then ", cache hit" else "")
  | Dead { attempts; error_class } ->
      Format.fprintf fmt "failed permanently (%s after %d attempt%s)" error_class attempts
        (if attempts = 1 then "" else "s")
