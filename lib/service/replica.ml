type follower = {
  journal : Journal.t;
  spool : string;
  mutable watermark : int;
  mutable states : (string * Journal.status) list;
}

let open_follower ~spool =
  (* Journal.open_ seals, so replay after it sees exactly the committed
     prefix the watermark counts. *)
  let journal = Journal.open_ ~spool in
  let lines, _bytes = Journal.replay_wire ~spool in
  let records = List.filter_map Journal.decode lines in
  { journal; spool; watermark = List.length lines; states = Journal.fold records }

let close_follower f = Journal.close f.journal

let apply_line f ~seq ~line =
  if seq < f.watermark then `Stale
  else if seq > f.watermark then `Gap
  else
    match Journal.decode line with
    | None -> `Bad
    | Some r ->
        Journal.append_line f.journal line;
        f.states <- Journal.apply f.states r;
        f.watermark <- f.watermark + 1;
        `Applied r

let lines_from ~spool from =
  let lines, _ = Journal.replay_wire ~spool in
  List.filteri (fun seq _ -> seq >= from) lines |> List.mapi (fun i line -> (from + i, line))

let write_blob ~path body =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.of_string body in
      let len = Bytes.length b in
      let written = ref 0 in
      while !written < len do
        match Unix.write fd b !written (len - !written) with
        | n -> written := !written + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Unix.fsync fd);
  Unix.rename tmp path

(* ------------------------------------------------------------------ *)
(* sync-replicas gate                                                  *)

module Sync = struct
  type 'a t = { replicas : int; mutable held : (int * 'a) list }

  let create ~replicas = { replicas = max 0 replicas; held = [] }
  let replicas t = t.replicas

  let hold t ~seq v = t.held <- t.held @ [ (seq, v) ]

  (* a watermark of w covers record seq iff w > seq: the follower has
     durably applied records 0..w-1 *)
  let release t ~watermarks =
    let covered seq =
      t.replicas = 0
      || List.length (List.filter (fun w -> w > seq) watermarks) >= t.replicas
    in
    let rel, keep = List.partition (fun (seq, _) -> covered seq) t.held in
    t.held <- keep;
    List.map snd rel

  let pending t = List.length t.held

  let drain t =
    let h = t.held in
    t.held <- [];
    List.map snd h
end

(* ------------------------------------------------------------------ *)
(* status                                                              *)

let stats_json ~role ~records ~sync_replicas ~held ~followers =
  let quote = Rtt_engine.Jsonout.quote in
  let follower_json (peer, sent, acked) =
    Printf.sprintf "{\"peer\":%s,\"sent\":%d,\"acked\":%d,\"lag\":%d}" (quote peer) sent acked
      (max 0 (records - acked))
  in
  Printf.sprintf
    "{\"role\":%s,\"records\":%d,\"sync_replicas\":%d,\"held\":%d,\"followers\":[%s]}"
    (quote role) records sync_replicas held
    (String.concat "," (List.map follower_json followers))
