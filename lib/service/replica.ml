type follower = {
  journal : Journal.t;
  spool : string;
  mutable watermark : int;
  mutable states : (string * Journal.status) list;
}

let open_follower ~spool =
  (* Journal.open_ seals, so replay after it sees exactly the committed
     prefix the watermark counts. *)
  let journal = Journal.open_ ~spool in
  let lines, _bytes = Journal.replay_wire ~spool in
  let records = List.filter_map Journal.decode lines in
  { journal; spool; watermark = List.length lines; states = Journal.fold records }

let close_follower f = Journal.close f.journal

let apply_line f ~seq ~line =
  if seq < f.watermark then `Stale
  else if seq > f.watermark then `Gap
  else
    match Journal.decode line with
    | None -> `Bad
    | Some r ->
        Journal.append_line f.journal line;
        f.states <- Journal.apply f.states r;
        f.watermark <- f.watermark + 1;
        `Applied r

let lines_from ~spool from =
  let lines, _ = Journal.replay_wire ~spool in
  List.filteri (fun seq _ -> seq >= from) lines |> List.mapi (fun i line -> (from + i, line))

let write_blob ~path body = Rtt_diskio.Diskio.atomic_write ~path body

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* Attachments ship before their frame so the receiver's journal never
   leads its spool — the same durability order the primary itself
   observes (instance before Queued, result before Done). Transport-
   free: the net layer maps each spec onto its Protocol response. *)
let attachment_specs ~spool ~cache_dir (r : Journal.record) =
  let job = r.Journal.job in
  let key =
    if Filename.check_suffix job Work.instance_suffix then
      Filename.chop_suffix job Work.instance_suffix
    else job
  in
  match r.Journal.event with
  | Journal.Queued -> (
      match read_file (Filename.concat spool job) with
      | Some body -> [ `Instance (job, body) ]
      | None -> [])
  | Journal.Done _ ->
      (match read_file (Work.result_path ~spool ~job) with
      | Some body -> [ `Result (job, body) ]
      | None -> [])
      @ (match cache_dir with
        | Some dir -> (
            match Rtt_engine.Cache.read_raw ~dir ~key with
            | Some body -> [ `Cache (key, body) ]
            | None -> [])
        | None -> [])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* sync-replicas gate                                                  *)

module Sync = struct
  type 'a t = { replicas : int; mutable held : (int * 'a) list }

  let create ~replicas = { replicas = max 0 replicas; held = [] }
  let replicas t = t.replicas

  let hold t ~seq v = t.held <- t.held @ [ (seq, v) ]

  (* a watermark of w covers record seq iff w > seq: the follower has
     durably applied records 0..w-1 *)
  let release t ~watermarks =
    let covered seq =
      t.replicas = 0
      || List.length (List.filter (fun w -> w > seq) watermarks) >= t.replicas
    in
    let rel, keep = List.partition (fun (seq, _) -> covered seq) t.held in
    t.held <- keep;
    List.map snd rel

  let pending t = List.length t.held

  let drain t =
    let h = t.held in
    t.held <- [];
    List.map snd h
end

(* ------------------------------------------------------------------ *)
(* status                                                              *)

let stats_json ?lp ~role ~records ~sync_replicas ~held ~followers () =
  let quote = Rtt_engine.Jsonout.quote in
  let follower_json (peer, sent, acked) =
    Printf.sprintf "{\"peer\":%s,\"sent\":%d,\"acked\":%d,\"lag\":%d}" (quote peer) sent acked
      (max 0 (records - acked))
  in
  Printf.sprintf
    "{\"role\":%s,\"records\":%d,\"sync_replicas\":%d,\"held\":%d,\"followers\":[%s]%s}"
    (quote role) records sync_replicas held
    (String.concat "," (List.map follower_json followers))
    (match lp with None -> "" | Some j -> Printf.sprintf ",\"lp\":%s" j)
