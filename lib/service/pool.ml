open Rtt_engine

(* ------------------------------------------------------------------ *)
(* wire protocol: one {!Frame}d line per message. Pipes do not corrupt
   bytes, but the CRC turns any protocol bug into an ignorable line
   instead of a silently misparsed result. The payload grammar below
   (assignments down, reports up) is shared with the network daemon,
   whose workers speak the same protocol over the same kind of pipe. *)

let send = Frame.write

let assignment ~job ~attempt = Printf.sprintf "solve %s %d" (Journal.encode_job job) attempt
let quit_payload = "quit"

type report =
  | Solved of { attempt : int; makespan : int; budget_used : int; fuel : int; cached : bool }
  | Failed of { attempt : int; error_class : string; transient : bool; backoff : int }
  | Abandoned of { attempt : int }

let report_payload = function
  | Solved { attempt; makespan; budget_used; fuel; cached } ->
      Printf.sprintf "ok %d %d %d %d %d" attempt makespan budget_used fuel (if cached then 1 else 0)
  | Failed { attempt; error_class; transient; backoff } ->
      Printf.sprintf "fail %d %s %d %d" attempt (Journal.encode_job error_class)
        (if transient then 1 else 0)
        backoff
  | Abandoned { attempt } -> Printf.sprintf "abandoned %d" attempt

let parse_report payload =
  let int = int_of_string_opt in
  match String.split_on_char ' ' payload with
  | [ "ok"; a; ms; bu; fu; c ] -> (
      match (int a, int ms, int bu, int fu) with
      | Some attempt, Some makespan, Some budget_used, Some fuel when c = "0" || c = "1" ->
          Some (Solved { attempt; makespan; budget_used; fuel; cached = c = "1" })
      | _ -> None)
  | [ "fail"; a; cls; tr; bo ] -> (
      match (int a, Journal.decode_job cls, int bo) with
      | Some attempt, Some error_class, Some backoff when tr = "0" || tr = "1" ->
          Some (Failed { attempt; error_class; transient = tr = "1"; backoff })
      | _ -> None)
  | [ "abandoned"; a ] -> Option.map (fun attempt -> Abandoned { attempt }) (int a)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* worker side                                                         *)

(* Blocking byte-at-a-time line read; assignments are a few dozen bytes
   and arrive at job granularity, so simplicity beats buffering. This
   is the one read that must NOT go through {!Eintr}'s blind restart:
   the signal that interrupts it is exactly the SIGTERM that set [stop],
   and restarting without the [stop ()] re-check would leave an idle
   worker blocked in [read] until the parent happens to close the pipe.
   A partial line survives the interruption in [buf], so the assignment
   still can't tear. *)
let read_assignment ~stop fd =
  let buf = Buffer.create 64 in
  let byte = Bytes.create 1 in
  let rec go () =
    if stop () then None
    else
      match Unix.read fd byte 0 1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | 0 -> None
      | _ -> if Bytes.get byte 0 = '\n' then Some (Buffer.contents buf) else (Buffer.add_bytes buf byte; go ())
  in
  go ()

(* The worker body run in the forked child: read one assignment, run
   the shared Work.attempt, report the outcome, repeat. Exits with
   [Unix._exit] so the child never unwinds into the parent's at_exit
   handlers or flushes duplicated stdio buffers. *)
let worker_loop (cfg : Work.config) ~from_parent ~to_parent : 'a =
  let stop = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let log s =
    if cfg.Work.verbose then Printf.eprintf "[worker %d] %s\n%!" (Unix.getpid ()) s
  in
  let reply payload =
    try send to_parent payload with Unix.Unix_error _ -> stop := true
  in
  let rec loop () =
    if !stop then Unix._exit 0;
    match read_assignment ~stop:(fun () -> !stop) from_parent with
    | None -> Unix._exit 0
    | Some line ->
        (match Option.map (String.split_on_char ' ') (Frame.unframe line) with
        | Some [ "quit" ] -> Unix._exit 0
        | Some [ "solve"; j; a ] -> (
            match (Journal.decode_job j, int_of_string_opt a) with
            | Some job, Some attempt -> (
                match Work.attempt cfg ~stop:(fun () -> !stop) ~log ~job ~attempt with
                | Work.Solved (s, cached) ->
                    reply
                      (report_payload
                         (Solved
                            {
                              attempt;
                              makespan = s.Engine.makespan;
                              budget_used = s.Engine.budget_used;
                              fuel = s.Engine.fuel_spent;
                              cached;
                            }))
                | Work.Failed { error_class; transient; backoff } ->
                    reply (report_payload (Failed { attempt; error_class; transient; backoff }))
                | exception Work.Interrupted ->
                    reply (report_payload (Abandoned { attempt }));
                    Unix._exit 0)
            | _ -> log "undecodable assignment ignored")
        | Some _ | None -> log "undecodable assignment ignored");
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* parent side                                                         *)

type worker = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  mutable acc : string;  (* partial line read from the worker *)
  mutable current : (string * int) option;  (* claimed (job, attempt) *)
}

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | _ -> ()
  in
  go ()

let now () = Unix.gettimeofday ()

let drain (cfg : Work.config) ~(record : Journal.event -> string -> unit)
    ~(jobs : (string * int) list) ~(stop : bool ref) ~(log : string -> unit) =
  let pending = ref jobs in
  let deferred = ref ([] : (float * string * int) list) in
  let workers = ref ([] : worker list) in
  let saved_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let spawn () =
    let ar, aw = Unix.pipe () (* parent -> worker *) in
    let br, bw = Unix.pipe () (* worker -> parent *) in
    match Unix.fork () with
    | 0 ->
        Unix.close aw;
        Unix.close br;
        List.iter
          (fun w ->
            Unix.close w.to_w;
            Unix.close w.from_w)
          !workers;
        worker_loop cfg ~from_parent:ar ~to_parent:bw
    | pid ->
        Unix.close ar;
        Unix.close bw;
        let w = { pid; to_w = aw; from_w = br; acc = ""; current = None } in
        workers := !workers @ [ w ];
        log (Printf.sprintf "spawned worker %d" pid);
        w
  in
  (* duplicate-instance coalescing: when the cache is on, two jobs with
     the same digest are never in flight together — the second waits
     and is then served from the entry the first published. *)
  let digest_memo : (string, string option) Hashtbl.t = Hashtbl.create 16 in
  let digest_of job =
    match cfg.Work.cache_dir with
    | None -> None
    | Some _ -> (
        match Hashtbl.find_opt digest_memo job with
        | Some d -> d
        | None ->
            let d =
              match Engine.load (Filename.concat cfg.Work.spool job) with
              | Ok p -> Some (Work.digest_of cfg p)
              | Error _ -> None
            in
            Hashtbl.replace digest_memo job d;
            d)
  in
  let inflight_digests : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let release w =
    (match w.current with
    | Some (job, _) -> (
        match digest_of job with Some d -> Hashtbl.remove inflight_digests d | None -> ())
    | None -> ());
    w.current <- None
  in
  let requeue job next_attempt =
    if next_attempt > cfg.Work.max_attempts then
      record
        (Journal.Failed
           {
             attempt = cfg.Work.max_attempts;
             error_class = "retries-exhausted";
             transient = false;
             backoff = 0;
           })
        job
    else pending := !pending @ [ (job, next_attempt) ]
  in
  (* a worker died without reporting: its claim is replayed — the
     attempt is consumed, exactly like a whole-process crash in the
     sequential path, and the job is retried from its checkpoint *)
  let handle_death w =
    Unix.close w.to_w;
    Unix.close w.from_w;
    reap w.pid;
    workers := List.filter (fun x -> x.pid <> w.pid) !workers;
    match w.current with
    | None -> ()
    | Some (job, attempt) ->
        log (Printf.sprintf "worker %d died holding %s (attempt %d)" w.pid job attempt);
        release w;
        if not !stop then requeue job (attempt + 1)
  in
  let handle_message w payload =
    match (w.current, parse_report payload) with
    | Some (job, attempt), Some (Solved r) when r.attempt = attempt ->
        record
          (Journal.Done
             {
               attempt;
               makespan = r.makespan;
               budget_used = r.budget_used;
               fuel = r.fuel;
               cached = r.cached;
             })
          job;
        release w
    | Some (job, attempt), Some (Failed { error_class; transient; backoff; attempt = a })
      when a = attempt ->
        if transient && attempt < cfg.Work.max_attempts then begin
          record (Journal.Failed { attempt; error_class; transient = true; backoff }) job;
          if cfg.Work.sleep then
            deferred :=
              !deferred @ [ (now () +. (float_of_int backoff /. 1000.), job, attempt + 1) ]
          else pending := !pending @ [ (job, attempt + 1) ]
        end
        else
          record (Journal.Failed { attempt; error_class; transient = false; backoff = 0 }) job;
        release w
    | Some (job, attempt), Some (Abandoned { attempt = a }) when a = attempt ->
        record (Journal.Abandoned { attempt }) job;
        release w;
        (* an externally signalled worker abandons and exits; if the
           pool itself is not shutting down the claim is replayed *)
        if not !stop then requeue job (attempt + 1)
    | _, _ -> log (Printf.sprintf "unexpected message %S from worker %d ignored" payload w.pid)
  in
  let handle_readable w =
    (* {!Eintr.read}: select already reported the fd readable, so a
       restart never blocks and a signal can't tear the report frame *)
    let chunk = Bytes.create 4096 in
    match Eintr.read w.from_w chunk 0 4096 with
    | 0 -> handle_death w
    | n ->
        w.acc <- w.acc ^ Bytes.sub_string chunk 0 n;
        let rec split () =
          match String.index_opt w.acc '\n' with
          | None -> ()
          | Some i ->
              let line = String.sub w.acc 0 i in
              w.acc <- String.sub w.acc (i + 1) (String.length w.acc - i - 1);
              (match Frame.unframe line with
              | Some payload -> handle_message w payload
              | None -> log (Printf.sprintf "unframed line from worker %d ignored" w.pid));
              split ()
        in
        split ()
  in
  let promote_deferred () =
    let t = now () in
    let ready, still = List.partition (fun (at, _, _) -> at <= t) !deferred in
    deferred := still;
    List.iter (fun (_, job, attempt) -> pending := !pending @ [ (job, attempt) ]) ready
  in
  let assign () =
    let idle = List.filter (fun w -> w.current = None) !workers in
    List.iter
      (fun w ->
        if not !stop then begin
          let assignable (job, _) =
            match digest_of job with
            | None -> true
            | Some d -> not (Hashtbl.mem inflight_digests d)
          in
          match List.find_opt assignable !pending with
          | None -> ()
          | Some ((job, attempt) as pick) ->
              pending := List.filter (fun x -> x != pick) !pending;
              (match digest_of job with
              | Some d -> Hashtbl.replace inflight_digests d ()
              | None -> ());
              w.current <- Some (job, attempt);
              record (Journal.Started { attempt }) job;
              log (Printf.sprintf "assign %s (attempt %d) to worker %d" job attempt w.pid);
              (try send w.to_w (assignment ~job ~attempt)
               with Unix.Unix_error _ -> handle_death w)
        end)
      idle
  in
  let busy () = List.exists (fun w -> w.current <> None) !workers in
  let select_step timeout =
    let fds = List.map (fun w -> w.from_w) !workers in
    let readable, _, _ = Eintr.select fds [] [] timeout in
    List.iter
      (fun fd ->
        match List.find_opt (fun w -> w.from_w = fd) !workers with
        | Some w -> handle_readable w
        | None -> ())
      readable
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.signal Sys.sigpipe saved_pipe);
      (* graceful teardown of whatever is left: in-flight workers are
         asked to abandon (they checkpoint first), then everything is
         closed and reaped *)
      if busy () then begin
        List.iter
          (fun w -> if w.current <> None then try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ())
          !workers;
        let deadline = now () +. 60.0 in
        while busy () && now () < deadline do
          select_step 0.1
        done;
        List.iter
          (fun w ->
            match w.current with
            | Some (_, attempt) when !stop ->
                (* unresponsive after the grace period: record the
                   abandonment on its behalf and kill it *)
                record (Journal.Abandoned { attempt }) (fst (Option.get w.current));
                release w;
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
            | _ -> ())
          !workers
      end;
      List.iter
        (fun w ->
          (try Unix.close w.to_w with Unix.Unix_error _ -> ());
          (try Unix.close w.from_w with Unix.Unix_error _ -> ());
          reap w.pid)
        !workers;
      workers := [])
    (fun () ->
      let width = max 1 (min cfg.Work.workers (List.length jobs)) in
      for _ = 1 to width do
        ignore (spawn ())
      done;
      while (not !stop) && (!pending <> [] || !deferred <> [] || busy ()) do
        promote_deferred ();
        assign ();
        if !workers = [] && (!pending <> [] || !deferred <> []) then ignore (spawn ())
        else begin
          let timeout =
            match !deferred with
            | [] -> 0.2
            | ds ->
                let soonest = List.fold_left (fun acc (at, _, _) -> min acc at) infinity ds in
                max 0.01 (min 0.2 (soonest -. now ()))
          in
          if !workers <> [] then select_step timeout
        end;
        (* replace crashed workers while there is still work to hand out *)
        if
          (not !stop)
          && List.length !workers < width
          && List.length !pending + List.length !deferred > 0
        then ignore (spawn ())
      done)
