(** Replication bookkeeping shared by the primary and its followers.

    The replicated unit is the journal line: a primary ships each
    committed frame verbatim, tagged with its 0-based sequence number
    (its index in the journal), and a follower appends the identical
    bytes with {!Rtt_service.Journal.append_line} — so at quiescence
    the two journals are byte-for-byte equal, and the follower's
    recovery path is {e literally} the crash-recovery path: seal the
    tail, fold the committed prefix.

    The follower's durable position is its {e watermark}: the number of
    records it has applied and fsync'd. Acknowledgements carry the
    watermark (not a per-frame id), so acks are idempotent and a
    delayed or dropped ack only inflates observed lag, never
    correctness. On reconnect the follower offers its watermark and the
    primary re-ships from there — no full re-ship, and re-shipped
    records the follower already has are recognized as stale and
    skipped.

    This module is transport-free; the socket loops live in [Rtt_net]
    ([Daemon] for the primary side, [Standby] for the follower). *)

(** {1 Follower state} *)

type follower = {
  journal : Journal.t;  (** Open for verbatim appends. *)
  spool : string;
  mutable watermark : int;  (** Records durably applied. *)
  mutable states : (string * Journal.status) list;
      (** {!Journal.fold} of the applied prefix — kept in lockstep with
          [watermark] so local reads are consistent with durability. *)
}

val open_follower : spool:string -> follower
(** Seal the spool's journal tail (crash recovery) and rebuild
    watermark + states from the committed prefix. *)

val close_follower : follower -> unit

val apply_line :
  follower -> seq:int -> line:string -> [ `Applied of Journal.record | `Stale | `Gap | `Bad ]
(** Apply one shipped frame. [`Applied r]: [seq] was exactly the
    watermark and the line decoded — it is now appended, fsync'd, and
    folded into [states]. [`Stale]: [seq < watermark], a re-ship of a
    record we already hold (normal after reconnect). [`Gap]:
    [seq > watermark], at least one frame was lost in transit — the
    follower must reconnect and resume from its watermark. [`Bad]: the
    line failed CRC or grammar; nothing was applied. *)

(** {1 Catch-up (primary side)} *)

val lines_from : spool:string -> int -> (int * string) list
(** [(seq, line)] for every committed journal record with
    [seq >= from], read from disk — how a primary catches a follower up
    after [repl.hello] before switching to live forwarding. *)

val write_blob : path:string -> string -> unit
(** Atomically (tmp + fsync + rename) materialize a shipped attachment
    — an instance or result file — so the follower's spool never holds
    a torn file. *)

val attachment_specs :
  spool:string ->
  cache_dir:string option ->
  Journal.record ->
  [ `Instance of string * string | `Result of string * string | `Cache of string * string ] list
(** The spool files a shipped record references, read from disk:
    the instance body for a [Queued] record, the result file (and
    cache entry, when a cache directory is configured) for a [Done].
    Shipped {e before} the frame itself so the receiver's journal
    never leads its spool. Shared by the primary's replication path
    and a follower serving catch-up to [rtt fsck --repair]. *)

(** {1 Sync-replicas gate (primary side)} *)

module Sync : sig
  (** Holds [submit --wait] acknowledgements until [K] followers have
      durably applied the record that made the submission real. Tokens
      are released in hold order. *)

  type 'a t

  val create : replicas:int -> 'a t
  (** [replicas = 0] never holds: {!hold} returns the token via the
      next {!release} immediately. *)

  val replicas : 'a t -> int

  val hold : 'a t -> seq:int -> 'a -> unit
  (** Hold [token] until the record at index [seq] is covered. *)

  val release : 'a t -> watermarks:int list -> 'a list
  (** Given every live follower's acked watermark, the tokens whose
      record is now durable on at least [replicas] followers, in hold
      order. Call after each ack and after follower membership
      changes. *)

  val pending : 'a t -> int

  val drain : 'a t -> 'a list
  (** Give back everything still held (shutdown: answer rather than
      leak the clients). *)
end

(** {1 Status} *)

val stats_json :
  ?lp:string ->
  role:string ->
  records:int ->
  sync_replicas:int ->
  held:int ->
  followers:(string * int * int) list ->
  unit ->
  string
(** The [stats] verb's JSON: role, journal length, per-follower
    [(peer, sent, acked)] with lag [records - acked], and the sync
    gate's depth. [?lp] is a pre-rendered JSON object with the LP
    engine's counters (see {!Rtt_lp.Simplex.lp_stats_json}) appended as
    an ["lp"] field when provided. *)
