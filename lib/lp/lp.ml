open Rtt_num

type var = int

type stored = { expr : Linexpr.t; relation : Simplex.relation; bound : Rat.t }

type t = { mutable names : string list; mutable n : int; mutable constrs : stored list }

let create () = { names = []; n = 0; constrs = [] }

let var lp name =
  let v = lp.n in
  lp.n <- lp.n + 1;
  lp.names <- name :: lp.names;
  v

let var_index v = v
let expr_of_var v = Linexpr.var v
let n_vars lp = lp.n

let add lp relation a b =
  (* a R b  <=>  (a - b without constant) R (const b - const a) *)
  let diff = Linexpr.sub a b in
  let bound = Rat.neg (Linexpr.constant diff) in
  let expr = Linexpr.sub diff (Linexpr.const (Linexpr.constant diff)) in
  lp.constrs <- { expr; relation; bound } :: lp.constrs

let add_le lp a b = add lp Simplex.Le a b
let add_ge lp a b = add lp Simplex.Ge a b
let add_eq lp a b = add lp Simplex.Eq a b
let n_constraints lp = List.length lp.constrs

type solution = { objective : Rat.t; value : var -> Rat.t; expr_value : Linexpr.t -> Rat.t }
type outcome = Optimal of solution | Infeasible | Unbounded

(* Fill a preallocated row straight from the sparse map — no
   intermediate bindings list per constraint. *)
let fill_dense arr n e = Linexpr.iter_terms (fun v c -> if v < n then arr.(v) <- c) e

let to_dense n e =
  let arr = Array.make n Rat.zero in
  fill_dense arr n e;
  arr

(* Already ascending, nonzero, and (after the guard) in range — exactly
   the shape Simplex.sparse_constr requires. *)
let to_sparse n e = List.filter (fun (v, _) -> v < n) (Linexpr.terms e)

let solve direction lp obj =
  let n = lp.n in
  (* constraints are stored newest-first; rev_map restores build order *)
  let constraints =
    List.rev_map
      (fun { expr; relation; bound } ->
        { Simplex.sp_terms = to_sparse n expr; sp_relation = relation; sp_rhs = bound })
      lp.constrs
  in
  let obj_dense = to_dense n obj in
  let obj_const = Linexpr.constant obj in
  let result =
    match direction with
    | `Min -> Simplex.minimize_sparse ~n_vars:n constraints ~objective:obj_dense
    | `Max -> Simplex.maximize_sparse ~n_vars:n constraints ~objective:obj_dense
  in
  match result with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal { objective; solution } ->
      let value v = solution.(v) in
      Optimal
        {
          objective = Rat.add objective obj_const;
          value;
          expr_value = (fun e -> Linexpr.eval e value);
        }

let minimize lp obj = solve `Min lp obj
let maximize lp obj = solve `Max lp obj

let pp_outcome fmt = function
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Unbounded -> Format.pp_print_string fmt "unbounded"
  | Optimal { objective; _ } -> Format.fprintf fmt "optimal %a" Rat.pp objective
