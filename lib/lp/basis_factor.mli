(** Sparse basis factorization for the revised simplex.

    Maintains [T = B⁻¹] as a product of elementary (eta) matrices in
    exact rational arithmetic: the etas of the last full
    refactorization, an optional row permutation chosen by that
    refactorization, and one update eta per simplex pivot since
    ({e product form of the inverse}). {!ftran} and {!btran} apply [T]
    and [Tᵀ] to dense vectors in time proportional to the nonzeros of
    the eta file — never touching an m×n tableau — which is what makes
    {!Simplex}'s revised engine do work proportional to the nonzeros of
    the LP. Because every entry is an exact rational, a vector pushed
    through this factorization equals the corresponding dense-tableau
    column or row {e bit for bit}; the revised engine's pivot-sequence
    guarantee rests on that. *)

open Rtt_num

type svec = (int * Rat.t) array
(** Sparse column: (row, value) pairs, ascending rows, values nonzero. *)

type t
(** Mutable factorization of one m×m basis. *)

val create : int -> t
(** [create m] is the identity factorization (basis [B = I], as at the
    start of phase 1 where every basic variable is artificial). *)

val size : t -> int
(** Number of rows [m]. *)

val ftran : t -> Rat.t array -> unit
(** [ftran t x] replaces [x] with [T x = B⁻¹ x] in place. Used to bring
    an entering column (or the right-hand side) into the current basis
    frame. O(m + eta-file nonzeros). *)

val btran : t -> Rat.t array -> unit
(** [btran t y] replaces [y] with [Tᵀ y] in place. With [y = c_B] this
    yields the duals used for pricing; with [y = e_i] it reads row [i]
    of the implied tableau without materializing it. *)

val pivot : t -> w:Rat.t array -> row:int -> unit
(** [pivot t ~w ~row] appends the update eta for a simplex pivot at
    [row] whose FTRANed entering column is the dense [w]
    ([w.(row) <> 0]). The dense vector is copied into sparse form; the
    caller may reuse it. *)

val eta_length : t -> int
(** Current eta-file length (refactorization etas + update etas). *)

val should_refactor : t -> bool
(** Whether the update-eta file has outgrown
    [max !eta_limit (m / 4)] and a {!refactor} would pay for itself. *)

val eta_limit : int ref
(** Update-eta threshold floor for {!should_refactor}. Defaults to 32;
    initialized from the environment variable [RTT_LP_ETA_MAX] when
    set. Tests drop it to 0 to force a refactorization after (almost)
    every pivot. *)

val refactor : t -> col_of:(int -> svec) -> basis:int array -> bool
(** [refactor t ~col_of ~basis] discards the eta file and rebuilds a
    fresh factorization of the basis whose [i]-th column is
    [col_of basis.(i)], by sparse Gauss–Jordan elimination with free
    pivot-row choice (recorded as the permutation [P]). Returns [false]
    — leaving [t] unusable — iff the basis is singular; the revised
    engine only refactors bases it has already pivoted on, so there it
    always returns [true]. [T] is unchanged as a matrix: [B⁻¹] is
    unique, and exact arithmetic keeps every subsequent FTRAN/BTRAN
    result identical whichever elimination order produced it. *)

(** {1 Cumulative counters}

    Process-global observability, reported through
    {!Simplex.factor_stats} into [bench --json] and daemon [stats];
    {!Simplex.reset_stats} resets them at fork points. *)

val refactor_count : unit -> int
val eta_appends : unit -> int

val eta_peak : unit -> int
(** Longest eta file seen since the last reset. *)

val reset_stats : unit -> unit
