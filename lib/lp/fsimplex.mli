(** Float simplex used only to guess a starting basis for {!Simplex}.

    The exact solver converts its standard-form rows to doubles, lets
    this module run a capped two-phase simplex on them — with the same
    Bland pivot rule and tie-breaks as the exact solver's default, so a
    well-tracked float run lands on the very basis the exact solve
    would reach — and crash-starts from the reported basis after
    re-validating it in rational arithmetic. Every answer here is advisory; [None] means
    "no usable hint" and simply routes the exact solver through its
    ordinary two-phase path. *)

val solve :
  rows:float array array -> n_real:int -> objective:float array -> (int * int) array option
(** [solve ~rows ~n_real ~objective] minimizes [objective] over the
    standard-form system [rows] (each row [n_real] coefficients followed
    by a non-negative right-hand side, all variables non-negative).
    Returns [(row, column)] pairs describing the final basis — columns
    are all [< n_real]; rows missing from the array were judged
    redundant — or [None] when the float run was inconclusive
    (iteration cap, apparent infeasibility or unboundedness, or an
    artificial variable left in the basis). *)

val solve_cols :
  m:int ->
  n_real:int ->
  col:(int -> (int * Rtt_num.Rat.t) array) ->
  rhs:Rtt_num.Rat.t array ->
  objective:(int -> float) ->
  (int * int) array option
(** [solve_cols] is {!solve} fed from column-wise sparse standard form
    ([col j] lists column [j]'s (row, value) nonzeros): it converts the
    exact rationals to the same doubles the dense path would produce,
    so both exact engines receive identical advice. *)
