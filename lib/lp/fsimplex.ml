(* Float-guided basis discovery for the exact simplex.

   Runs an ordinary dense two-phase primal simplex in IEEE doubles over
   the same standard-form rows the exact solver uses, and reports the
   final basis as (row, column) pairs. The result is purely advisory:
   {!Simplex} re-derives the tableau for that basis in exact rational
   arithmetic and falls back to the full two-phase solve whenever the
   float answer does not check out, so no correctness ever rests on a
   tolerance chosen here. Anything inconclusive — iteration cap hit,
   float infeasibility or unboundedness, an artificial variable stuck in
   the basis — yields [None] rather than a guess. *)

let eps = 1e-9
let infeasibility_tol = 1e-7

(* classic Gauss-Jordan pivot over rows plus the objective row [z] *)
let pivot tableau z basis ~row ~col ~width =
  let m = Array.length tableau in
  let prow = tableau.(row) in
  let p = prow.(col) in
  for j = 0 to width - 1 do
    prow.(j) <- prow.(j) /. p
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = tableau.(i).(col) in
      if Float.abs f > 0.0 then
        for j = 0 to width - 1 do
          tableau.(i).(j) <- tableau.(i).(j) -. (f *. prow.(j))
        done
    end
  done;
  let f = z.(col) in
  if Float.abs f > 0.0 then
    for j = 0 to width - 1 do
      z.(j) <- z.(j) -. (f *. prow.(j))
    done;
  basis.(row) <- col

(* Bland pricing (lowest index with negative reduced cost), mirroring
   the exact solver's seed rule pivot for pivot: when the floats track
   the exact signs — the common case on the paper's small integral
   instances — the final basis here is exactly the basis the exact
   Bland solve would reach, so the crash start reproduces the seed's
   canonical answer instead of some other optimal vertex. [allowed]
   masks columns that may enter. Returns [`Optimal], [`Unbounded], or
   [`GaveUp] when [fuel] runs dry. *)
let run_phase tableau z basis ~width ~allowed ~fuel =
  let m = Array.length tableau in
  let rhs = width - 1 in
  let rec loop fuel =
    if fuel <= 0 then `GaveUp
    else begin
      let entering = ref (-1) in
      (try
         for j = 0 to width - 2 do
           if allowed j && z.(j) < -.eps then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !entering < 0 then `Optimal
      else begin
        let col = !entering in
        let best_row = ref (-1) and best_ratio = ref infinity in
        for i = 0 to m - 1 do
          let a = tableau.(i).(col) in
          if a > eps then begin
            let ratio = tableau.(i).(rhs) /. a in
            if
              !best_row < 0
              || ratio < !best_ratio -. eps
              || (Float.abs (ratio -. !best_ratio) <= eps && basis.(i) < basis.(!best_row))
            then begin
              best_row := i;
              best_ratio := ratio
            end
          end
        done;
        if !best_row < 0 then `Unbounded
        else begin
          pivot tableau z basis ~row:!best_row ~col ~width;
          loop (fuel - 1)
        end
      end
    end
  in
  loop fuel

let solve ~rows ~n_real ~objective =
  let m = Array.length rows in
  if m = 0 then Some [||]
  else begin
    let n_total = n_real + m in
    let width = n_total + 1 in
    let rhs = n_total in
    let tableau = Array.make_matrix m width 0.0 in
    let basis = Array.make m 0 in
    Array.iteri
      (fun i row ->
        Array.blit row 0 tableau.(i) 0 n_real;
        tableau.(i).(rhs) <- row.(n_real);
        tableau.(i).(n_real + i) <- 1.0;
        basis.(i) <- n_real + i)
      rows;
    let is_artificial j = j >= n_real && j < n_total in
    (* phase 1: minimize the sum of artificials *)
    let z = Array.make width 0.0 in
    for j = 0 to width - 1 do
      let colsum = Array.fold_left (fun acc row -> acc +. row.(j)) 0.0 tableau in
      let cj = if is_artificial j then 1.0 else 0.0 in
      z.(j) <- (if j = rhs then 0.0 else cj) -. colsum
    done;
    let fuel = 200 + (40 * (m + n_real)) in
    match run_phase tableau z basis ~width ~allowed:(fun _ -> true) ~fuel with
    | `Unbounded | `GaveUp -> None
    | `Optimal ->
        if Float.abs z.(rhs) > infeasibility_tol then None (* looks infeasible: let the exact path decide *)
        else begin
          (* pivot leftover artificials onto any usable real column *)
          for i = 0 to m - 1 do
            if is_artificial basis.(i) then begin
              let found = ref (-1) in
              (try
                 for j = 0 to n_real - 1 do
                   if Float.abs tableau.(i).(j) > eps then begin
                     found := j;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !found >= 0 then pivot tableau z basis ~row:i ~col:!found ~width
            end
          done;
          (* phase 2 on the same tableau; artificials may not re-enter *)
          let z2 = Array.make width 0.0 in
          Array.blit objective 0 z2 0 (Array.length objective);
          Array.iteri
            (fun i b ->
              let cb = if b < Array.length objective then objective.(b) else 0.0 in
              if Float.abs cb > 0.0 then
                for j = 0 to width - 1 do
                  z2.(j) <- z2.(j) -. (cb *. tableau.(i).(j))
                done)
            basis;
          match run_phase tableau z2 basis ~width ~allowed:(fun j -> not (is_artificial j)) ~fuel with
          | `Unbounded | `GaveUp -> None
          | `Optimal ->
              (* rows still basic in an artificial are (per the floats)
                 redundant; report only the real assignments and let the
                 exact verifier prove the leftovers vanish *)
              let pairs = ref [] in
              for i = m - 1 downto 0 do
                if basis.(i) < n_real then pairs := (i, basis.(i)) :: !pairs
              done;
              Some (Array.of_list !pairs)
        end
  end

(* Sparse-input entry for the revised exact engine: build the same
   dense float matrix the dense engine would hand to [solve] — the
   rationals are identical, so the doubles are identical and the two
   engines receive the same advice — from column-wise standard form. *)
let solve_cols ~m ~n_real ~col ~rhs ~objective =
  let rows = Array.make_matrix m (n_real + 1) 0.0 in
  for j = 0 to n_real - 1 do
    Array.iter (fun (i, v) -> rows.(i).(j) <- Rtt_num.Rat.to_float v) (col j : (int * Rtt_num.Rat.t) array)
  done;
  for i = 0 to m - 1 do
    rows.(i).(n_real) <- Rtt_num.Rat.to_float rhs.(i)
  done;
  solve ~rows ~n_real ~objective:(Array.init n_real objective)
