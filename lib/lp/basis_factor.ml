open Rtt_num

type svec = (int * Rat.t) array

(* One elementary (eta) matrix: the identity with column [e_row]
   replaced by the FTRANed entering column w. [e_diag] is w's pivot
   entry w_r, [e_off] its remaining nonzeros (row, value), ascending.
   FTRAN applies E: x_r' = x_r / w_r, x_i' = x_i - w_i * x_r'.
   BTRAN applies Eᵀ: y_r' = (y_r - Σ_{i≠r} w_i y_i) / w_r. *)
type eta = { e_row : int; e_diag : Rat.t; e_off : (int * Rat.t) array }

let dummy_eta = { e_row = 0; e_diag = Rat.one; e_off = [||] }

(* The factorization represents T = B⁻¹ as a product
     T = U_k · … · U_1 · P · L_j · … · L_1
   where the L are the etas of the last refactorization, P the row
   permutation that refactorization chose, and the U the per-pivot
   update etas appended since. FTRAN applies left-to-right from L_1;
   BTRAN applies the transposes in the opposite order. *)
type t = {
  m : int;
  mutable base : eta array; (* refactorization etas, application order *)
  mutable perm : int array option; (* rho: FTRAN position i reads row rho.(i) *)
  mutable upd : eta array; (* update etas, upd.(0 .. n_upd-1) in application order *)
  mutable n_upd : int;
  scratch : Rat.t array; (* for applying the permutation in place *)
}

(* cumulative, process-global — reset alongside Simplex.reset_stats *)
let refactors = ref 0
let appended = ref 0
let peak = ref 0
let refactor_count () = !refactors
let eta_appends () = !appended
let eta_peak () = !peak

let reset_stats () =
  refactors := 0;
  appended := 0;
  peak := 0

let eta_limit =
  ref
    (match Sys.getenv_opt "RTT_LP_ETA_MAX" with
    | Some s -> ( match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 32)
    | None -> 32)

let create m =
  { m; base = [||]; perm = None; upd = [||]; n_upd = 0; scratch = Array.make m Rat.zero }

let size t = t.m
let eta_length t = Array.length t.base + t.n_upd
let should_refactor t = t.n_upd >= max !eta_limit (t.m / 4)

let apply_eta x e =
  let xr = x.(e.e_row) in
  if not (Rat.is_zero xr) then begin
    let xr = Rat.div xr e.e_diag in
    x.(e.e_row) <- xr;
    Array.iter (fun (i, wi) -> x.(i) <- Rat.sub x.(i) (Rat.mul wi xr)) e.e_off
  end

let apply_eta_t y e =
  let s = ref y.(e.e_row) in
  Array.iter
    (fun (i, wi) -> if not (Rat.is_zero y.(i)) then s := Rat.sub !s (Rat.mul wi y.(i)))
    e.e_off;
  y.(e.e_row) <- (if Rat.is_zero !s then Rat.zero else Rat.div !s e.e_diag)

let ftran t x =
  Array.iter (fun e -> apply_eta x e) t.base;
  (match t.perm with
  | None -> ()
  | Some rho ->
      let s = t.scratch in
      for i = 0 to t.m - 1 do
        s.(i) <- x.(rho.(i))
      done;
      Array.blit s 0 x 0 t.m);
  for k = 0 to t.n_upd - 1 do
    apply_eta x t.upd.(k)
  done

let btran t y =
  for k = t.n_upd - 1 downto 0 do
    apply_eta_t y t.upd.(k)
  done;
  (match t.perm with
  | None -> ()
  | Some rho ->
      let s = t.scratch in
      for i = 0 to t.m - 1 do
        s.(rho.(i)) <- y.(i)
      done;
      Array.blit s 0 y 0 t.m);
  for k = Array.length t.base - 1 downto 0 do
    apply_eta_t y t.base.(k)
  done

(* eta from a dense FTRANed column with pivot row [row]; w.(row) <> 0 *)
let eta_of_dense w ~row =
  let off = ref [] in
  for i = Array.length w - 1 downto 0 do
    if i <> row && not (Rat.is_zero w.(i)) then off := (i, w.(i)) :: !off
  done;
  { e_row = row; e_diag = w.(row); e_off = Array.of_list !off }

let note_append t =
  incr appended;
  let len = eta_length t in
  if len > !peak then peak := len

let pivot t ~w ~row =
  assert (not (Rat.is_zero w.(row)));
  if t.n_upd = Array.length t.upd then begin
    let cap = max 8 (2 * Array.length t.upd) in
    let fresh = Array.make cap dummy_eta in
    Array.blit t.upd 0 fresh 0 t.n_upd;
    t.upd <- fresh
  end;
  t.upd.(t.n_upd) <- eta_of_dense w ~row;
  t.n_upd <- t.n_upd + 1;
  note_append t

exception Singular

let refactor t ~col_of ~basis =
  let m = t.m in
  let etas = Array.make m dummy_eta in
  let used = Array.make m false in
  let rho = Array.make m 0 in
  let identity = ref true in
  let w = Array.make m Rat.zero in
  try
    for i = 0 to m - 1 do
      Array.fill w 0 m Rat.zero;
      Array.iter (fun (r, v) -> w.(r) <- v) (col_of basis.(i));
      for k = 0 to i - 1 do
        apply_eta w etas.(k)
      done;
      (* Prefer the natural pairing so P is usually the identity; any
         unused row with a nonzero entry keeps the elimination going,
         and if none exists the basis is singular (the column lies in
         the span of the ones already processed). *)
      let r =
        if (not used.(i)) && not (Rat.is_zero w.(i)) then i
        else begin
          let found = ref (-1) in
          (try
             for c = 0 to m - 1 do
               if (not used.(c)) && not (Rat.is_zero w.(c)) then begin
                 found := c;
                 raise Exit
               end
             done
           with Exit -> ());
          if !found < 0 then raise Singular;
          !found
        end
      in
      if r <> i then identity := false;
      used.(r) <- true;
      rho.(i) <- r;
      etas.(i) <- eta_of_dense w ~row:r
    done;
    t.base <- etas;
    t.perm <- (if !identity then None else Some rho);
    t.n_upd <- 0;
    incr refactors;
    let len = eta_length t in
    if len > !peak then peak := len;
    true
  with Singular -> false
