(** Named-variable linear-program builder on top of {!Simplex}.

    All variables are non-negative (the only kind the paper's LPs need).
    Typical use: create variables, add constraints as {!Linexpr}
    (in)equalities, then {!minimize} or {!maximize} an expression. *)

open Rtt_num

type t
type var

val create : unit -> t

val var : t -> string -> var
(** A fresh non-negative variable. Names are for diagnostics only and
    need not be unique. *)

val var_index : var -> int
(** Index usable with {!Linexpr}. *)

val expr_of_var : var -> Linexpr.t
val n_vars : t -> int

val add_le : t -> Linexpr.t -> Linexpr.t -> unit
(** [add_le lp a b] constrains [a <= b]; constants on both sides are
    folded into the right-hand side. *)

val add_ge : t -> Linexpr.t -> Linexpr.t -> unit
val add_eq : t -> Linexpr.t -> Linexpr.t -> unit
val n_constraints : t -> int

val to_dense : int -> Linexpr.t -> Rat.t array
(** [to_dense n e] is [e]'s coefficients over variables [0..n-1] as a
    dense array (used for objectives, which {!Simplex} takes dense). *)

val to_sparse : int -> Linexpr.t -> (int * Rat.t) list
(** [to_sparse n e] is [e]'s nonzero terms over variables [0..n-1],
    ascending — the sparse row shape {!Simplex.minimize_sparse} takes.
    Solves go through this path, so the constraint matrix is never
    materialized densely. *)

type solution = { objective : Rat.t; value : var -> Rat.t; expr_value : Linexpr.t -> Rat.t }

type outcome = Optimal of solution | Infeasible | Unbounded

val minimize : t -> Linexpr.t -> outcome
val maximize : t -> Linexpr.t -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
