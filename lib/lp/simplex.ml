open Rtt_num
open Rtt_budget

type relation = Le | Ge | Eq
type constr = { coeffs : Rat.t array; relation : relation; rhs : Rat.t }

type outcome =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

(* The tableau holds m rows of length [width]; column [width - 1] is the
   right-hand side. [z] is the objective row maintained alongside, with
   z.(width - 1) = -(current objective value). Basic columns always read
   as a unit column, and b >= 0 is an invariant of every pivot. *)

let pivot tableau z basis ~row ~col ~width =
  let m = Array.length tableau in
  let prow = tableau.(row) in
  let p = prow.(col) in
  for j = 0 to width - 1 do
    if not (Rat.is_zero prow.(j)) then prow.(j) <- Rat.div prow.(j) p
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = tableau.(i).(col) in
      if not (Rat.is_zero f) then
        for j = 0 to width - 1 do
          tableau.(i).(j) <- Rat.sub tableau.(i).(j) (Rat.mul f prow.(j))
        done
    end
  done;
  let f = z.(col) in
  if not (Rat.is_zero f) then
    for j = 0 to width - 1 do
      z.(j) <- Rat.sub z.(j) (Rat.mul f prow.(j))
    done;
  basis.(row) <- col

(* Bland's rule: entering = lowest-index column with negative reduced
   cost; leaving = lowest basis index among ratio-test ties. Returns
   [`Optimal], or [`Unbounded] with the offending column. *)
let run_phase tableau z basis ~width ~allowed =
  let m = Array.length tableau in
  let rhs = width - 1 in
  let rec loop () =
    Budget.tick ~stage:"simplex";
    (* entering column *)
    let entering = ref (-1) in
    (try
       for j = 0 to width - 2 do
         if allowed j && Rat.(z.(j) < Rat.zero) then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = tableau.(i).(col) in
        if Rat.(a > Rat.zero) then begin
          let ratio = Rat.div tableau.(i).(rhs) a in
          if !best_row < 0
             || Rat.(ratio < !best_ratio)
             || (Rat.equal ratio !best_ratio && basis.(i) < basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot tableau z basis ~row:!best_row ~col ~width;
        loop ()
      end
    end
  in
  loop ()

let infeasible_site = "lp.infeasible"

let minimize_tableau ~n_vars constraints ~objective =
  if Array.length objective <> n_vars then invalid_arg "Simplex.minimize: objective size";
  List.iter
    (fun c -> if Array.length c.coeffs <> n_vars then invalid_arg "Simplex.minimize: constraint size")
    constraints;
  let constraints = Array.of_list constraints in
  let m = Array.length constraints in
  (* columns: n_vars originals, then one slack/surplus per inequality,
     then m artificials, then rhs *)
  let n_slack = Array.fold_left (fun acc c -> match c.relation with Eq -> acc | Le | Ge -> acc + 1) 0 constraints in
  let n_total = n_vars + n_slack + m in
  let width = n_total + 1 in
  let rhs = n_total in
  let tableau = Array.make_matrix m width Rat.zero in
  let basis = Array.make m 0 in
  let slack_idx = ref n_vars in
  Array.iteri
    (fun i c ->
      let row = tableau.(i) in
      (* normalize to rhs >= 0 *)
      let flip = Rat.(c.rhs < Rat.zero) in
      let sgn x = if flip then Rat.neg x else x in
      Array.iteri (fun j v -> row.(j) <- sgn v) c.coeffs;
      row.(rhs) <- sgn c.rhs;
      (match c.relation with
      | Eq -> ()
      | Le ->
          row.(!slack_idx) <- sgn Rat.one;
          incr slack_idx
      | Ge ->
          row.(!slack_idx) <- sgn Rat.minus_one;
          incr slack_idx);
      (* artificial variable for this row *)
      let art = n_vars + n_slack + i in
      row.(art) <- Rat.one;
      basis.(i) <- art)
    constraints;
  let is_artificial j = j >= n_vars + n_slack && j < n_total in
  (* Phase 1 objective row: minimize sum of artificials. Reduced costs:
     c_j - sum of rows (c over artificials = 1, basis = artificials). *)
  let z = Array.make width Rat.zero in
  for j = 0 to width - 1 do
    let colsum = Array.fold_left (fun acc row -> Rat.add acc row.(j)) Rat.zero tableau in
    let cj = if is_artificial j then Rat.one else Rat.zero in
    z.(j) <- Rat.sub (if j = rhs then Rat.zero else cj) colsum
  done;
  (match run_phase tableau z basis ~width ~allowed:(fun _ -> true) with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal -> ());
  let phase1_value = Rat.neg z.(rhs) in
  if Rat.(phase1_value > Rat.zero) then Infeasible
  else begin
    (* Drive remaining artificials out of the basis where possible. *)
    for i = 0 to m - 1 do
      if is_artificial basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to n_vars + n_slack - 1 do
             if not (Rat.is_zero tableau.(i).(j)) then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot tableau z basis ~row:i ~col:!found ~width
        (* else: the row is all zeros over real columns — redundant; the
           artificial stays basic at value 0, harmless if never entering *)
      end
    done;
    (* Compact for phase 2: rows whose basic variable is still artificial
       are redundant (all-zero over real columns after the drive-out
       loop) and can be dropped; the artificial columns themselves are
       dead weight in every subsequent pivot. *)
    let keep_rows =
      List.filter (fun i -> not (is_artificial basis.(i))) (List.init m (fun i -> i))
    in
    let n_real = n_vars + n_slack in
    let width2 = n_real + 1 in
    let rhs2 = n_real in
    let tableau2 =
      Array.of_list
        (List.map
           (fun i ->
             Array.init width2 (fun j -> if j = rhs2 then tableau.(i).(rhs) else tableau.(i).(j)))
           keep_rows)
    in
    let basis2 = Array.of_list (List.map (fun i -> basis.(i)) keep_rows) in
    (* Phase 2 objective row. *)
    let z2 = Array.make width2 Rat.zero in
    for j = 0 to n_vars - 1 do
      z2.(j) <- objective.(j)
    done;
    (* subtract multiples of rows to zero the reduced costs of basics *)
    Array.iteri
      (fun i b ->
        let cb = if b < n_vars then objective.(b) else Rat.zero in
        if not (Rat.is_zero cb) then
          for j = 0 to width2 - 1 do
            z2.(j) <- Rat.sub z2.(j) (Rat.mul cb tableau2.(i).(j))
          done)
      basis2;
    match run_phase tableau2 z2 basis2 ~width:width2 ~allowed:(fun _ -> true) with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make n_vars Rat.zero in
        Array.iteri (fun i b -> if b < n_vars then solution.(b) <- tableau2.(i).(rhs2)) basis2;
        Optimal { objective = Rat.neg z2.(rhs2); solution }
  end

let minimize ~n_vars constraints ~objective =
  if Budget.probe ~site:infeasible_site then Infeasible
  else minimize_tableau ~n_vars constraints ~objective

let maximize ~n_vars constraints ~objective =
  match minimize ~n_vars constraints ~objective:(Array.map Rat.neg objective) with
  | Optimal { objective; solution } -> Optimal { objective = Rat.neg objective; solution }
  | (Infeasible | Unbounded) as o -> o
