open Rtt_num
open Rtt_budget

type relation = Le | Ge | Eq
type constr = { coeffs : Rat.t array; relation : relation; rhs : Rat.t }

type outcome =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

let infeasible_site = "lp.infeasible"
let warmstart_reject_site = "lp.warmstart.reject"

let warmstart_enabled =
  ref
    (match Sys.getenv_opt "RTT_LP_WARMSTART" with
    | Some ("0" | "false" | "no" | "off") -> false
    | _ -> true)

type pricing = Dantzig | Bland

(* Bland is the default because it reproduces the seed solver's pivot
   sequence exactly — on LPs with several optimal vertices, Dantzig can
   (correctly) answer with a different one, and downstream consumers
   treat the Bland vertex as the canonical result. On the paper's small
   dense instances Dantzig also measures no faster (its full pricing
   scan costs as much as the pivots it saves), so the default trades
   nothing; see EXPERIMENTS.md. *)
let pricing =
  ref (match Sys.getenv_opt "RTT_LP_PRICING" with Some "dantzig" -> Dantzig | _ -> Bland)

(* Two interchangeable engines compute every solve: the original dense
   tableau, and the revised simplex over sparse columns with an
   eta-file basis factorization ({!Basis_factor}). Both price with the
   same rule over the same exact rationals, so they make identical
   pivot decisions and return bit-identical outcomes — the dense
   engine is kept as the differential oracle (RTT_LP_ENGINE=dense). *)
type engine = Dense | Sparse

let engine = ref (match Sys.getenv_opt "RTT_LP_ENGINE" with Some "dense" -> Dense | _ -> Sparse)
let engine_name () = match !engine with Dense -> "dense" | Sparse -> "sparse"

(* cumulative observability counters, read by the bench harness *)
let pivots = ref 0
let warm_accepted = ref 0
let warm_rejected = ref 0
let sparse_nnz = ref 0
let sparse_cells = ref 0
let pivot_count () = !pivots
let warm_stats () = (!warm_accepted, !warm_rejected)

type factor_stats = { refactorizations : int; etas : int; eta_peak : int; nnz : int; cells : int }

let factor_stats () =
  {
    refactorizations = Basis_factor.refactor_count ();
    etas = Basis_factor.eta_appends ();
    eta_peak = Basis_factor.eta_peak ();
    nnz = !sparse_nnz;
    cells = !sparse_cells;
  }

let lp_stats_json () =
  let f = factor_stats () in
  Printf.sprintf
    "{\"engine\":\"%s\",\"pivots\":%d,\"warm_accepted\":%d,\"warm_rejected\":%d,\"refactors\":%d,\"etas\":%d,\"eta_peak\":%d,\"nnz\":%d,\"cells\":%d}"
    (engine_name ()) !pivots !warm_accepted !warm_rejected f.refactorizations f.etas f.eta_peak
    f.nnz f.cells

(* The counters are plain process-global refs, so a forked child (a
   pool worker, a daemon shard) inherits whatever the parent had
   accumulated. Every fork point calls this so per-process stats start
   at zero instead of double-counting the parent's history. *)
let reset_stats () =
  pivots := 0;
  warm_accepted := 0;
  warm_rejected := 0;
  sparse_nnz := 0;
  sparse_cells := 0;
  Basis_factor.reset_stats ()

(* Test instrumentation: when [trace_pivots] is on, every pivot logs a
   pair identifying the decision in engine-independent coordinates —
   (entering column, leaving column) for pricing and drive-out pivots,
   (column, -(row+1)) for warm-start crash pivots (a crash pivot has no
   leaving variable; the standard-form row pins it down instead). The
   differential suite runs both engines with tracing on and demands the
   logs match entry for entry. *)
let trace_pivots = ref false
let pivot_log : (int * int) list ref = ref []
let log_pivot a b = if !trace_pivots then pivot_log := (a, b) :: !pivot_log

let take_pivot_log () =
  let l = List.rev !pivot_log in
  pivot_log := [];
  l

(* A reusable basis: the (standard-form row, column) pairs of the last
   optimal solve, in exactly the shape {!crash_basis} consumes, plus
   the standard form's dimensions so a hint is only ever tried against
   an LP of the same shape. Abstract outside this module. *)
type basis = { b_rows : int; b_cols : int; b_pairs : (int * int) array }

let captured_basis : basis option ref = ref None
let basis_hint : basis option ref = ref None
let last_basis () = !captured_basis
let set_basis_hint b = basis_hint := Some b
let clear_basis_hint () = basis_hint := None

(* debug/test representation; both engines capture pairs in ascending
   standard-form row order, so equal bases print equal strings *)
let basis_repr b =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%dx%d:" b.b_rows b.b_cols);
  Array.iter (fun (i, c) -> Buffer.add_string buf (Printf.sprintf "(%d,%d)" i c)) b.b_pairs;
  Buffer.contents buf

(* The tableau holds m rows of length [width]; column [width - 1] is the
   right-hand side. [z] is the objective row maintained alongside, with
   z.(width - 1) = -(current objective value). Basic columns always read
   as a unit column, and b >= 0 is an invariant of every pivot. *)

(* Gauss-Jordan step over the constraint rows only (no objective row);
   also the unit of work of the warm-start crash, so it ticks fuel and
   counts as a pivot *)
let pivot_rows tableau ~row ~col ~width =
  incr pivots;
  let m = Array.length tableau in
  let prow = tableau.(row) in
  let p = prow.(col) in
  for j = 0 to width - 1 do
    if not (Rat.is_zero prow.(j)) then prow.(j) <- Rat.div prow.(j) p
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = tableau.(i).(col) in
      if not (Rat.is_zero f) then
        for j = 0 to width - 1 do
          tableau.(i).(j) <- Rat.sub tableau.(i).(j) (Rat.mul f prow.(j))
        done
    end
  done

let pivot tableau z basis ~row ~col ~width =
  pivot_rows tableau ~row ~col ~width;
  let prow = tableau.(row) in
  let f = z.(col) in
  if not (Rat.is_zero f) then
    for j = 0 to width - 1 do
      z.(j) <- Rat.sub z.(j) (Rat.mul f prow.(j))
    done;
  basis.(row) <- col

(* Dantzig pricing (most negative reduced cost, lowest index on ties)
   with Bland's rule as the anti-cycling fallback: after [stall_limit]
   consecutive degenerate pivots the loop switches to Bland's rule —
   which provably escapes any degenerate vertex in finitely many pivots
   — and switches back on the next strict objective improvement. Each
   Bland segment terminates and each strict improvement reaches a basis
   no earlier iteration visited, so termination stays guaranteed. *)
let stall_limit = 24

let run_phase tableau z basis ~width =
  let m = Array.length tableau in
  let rhs = width - 1 in
  let degen = ref 0 in
  let rec loop () =
    Budget.tick ~stage:"simplex";
    let entering = ref (-1) in
    if !pricing = Bland || !degen > stall_limit then begin
      (* Bland: lowest-index column with negative reduced cost *)
      try
        for j = 0 to width - 2 do
          if Rat.(z.(j) < Rat.zero) then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ()
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to width - 2 do
        if Rat.(z.(j) < !best) then begin
          entering := j;
          best := z.(j)
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = tableau.(i).(col) in
        if Rat.(a > Rat.zero) then begin
          let ratio = Rat.div tableau.(i).(rhs) a in
          if
            !best_row < 0
            || Rat.(ratio < !best_ratio)
            || (Rat.equal ratio !best_ratio && basis.(i) < basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        log_pivot col basis.(!best_row);
        pivot tableau z basis ~row:!best_row ~col ~width;
        if Rat.is_zero !best_ratio then incr degen else degen := 0;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Standard form, shared by the exact paths and the float warm start:
   m rows of [n_vars] originals then one slack/surplus per inequality,
   right-hand side (>= 0 after sign normalization) in the last column.
   Artificial columns are NOT part of the standard form — the two-phase
   path adds them privately and drops them again after phase 1.         *)

type std = { n_vars : int; n_slack : int; rows : Rat.t array array }

let build_std ~n_vars constraints =
  let constraints = Array.of_list constraints in
  let m = Array.length constraints in
  let n_slack =
    Array.fold_left (fun acc c -> match c.relation with Eq -> acc | Le | Ge -> acc + 1) 0 constraints
  in
  let n_real = n_vars + n_slack in
  let rows = Array.make_matrix m (n_real + 1) Rat.zero in
  let slack_idx = ref n_vars in
  Array.iteri
    (fun i c ->
      let row = rows.(i) in
      (* normalize to rhs >= 0 *)
      let flip = Rat.(c.rhs < Rat.zero) in
      let sgn x = if flip then Rat.neg x else x in
      Array.iteri (fun j v -> if not (Rat.is_zero v) then row.(j) <- sgn v) c.coeffs;
      row.(n_real) <- sgn c.rhs;
      match c.relation with
      | Eq -> ()
      | Le ->
          row.(!slack_idx) <- sgn Rat.one;
          incr slack_idx
      | Ge ->
          row.(!slack_idx) <- sgn Rat.minus_one;
          incr slack_idx)
    constraints;
  { n_vars; n_slack; rows }

(* Phase 2 from a feasible tableau over real columns only: price the
   objective out of the basic columns and run the pivot loop.
   [orig_rows] maps each (compacted) tableau row back to its row in the
   standard form and [std_rows] is the standard form's row count — on
   an optimal exit the final basis is recorded in those coordinates so
   a later solve of a same-shaped LP can crash from it. *)
let solve_phase2 tableau basis ~n_vars ~width ~objective ~orig_rows ~std_rows =
  let rhs = width - 1 in
  let z = Array.make width Rat.zero in
  for j = 0 to n_vars - 1 do
    z.(j) <- objective.(j)
  done;
  Array.iteri
    (fun i b ->
      let cb = if b < n_vars then objective.(b) else Rat.zero in
      if not (Rat.is_zero cb) then
        for j = 0 to width - 1 do
          z.(j) <- Rat.sub z.(j) (Rat.mul cb tableau.(i).(j))
        done)
    basis;
  match run_phase tableau z basis ~width with
  | `Unbounded -> Unbounded
  | `Optimal ->
      captured_basis :=
        Some
          {
            b_rows = std_rows;
            b_cols = width - 1;
            b_pairs = Array.mapi (fun i b -> (orig_rows.(i), b)) basis;
          };
      let solution = Array.make n_vars Rat.zero in
      Array.iteri (fun i b -> if b < n_vars then solution.(b) <- tableau.(i).(rhs)) basis;
      Optimal { objective = Rat.neg z.(rhs); solution }

(* ------------------------------------------------------------------ *)
(* Full two-phase solve.                                               *)

let solve_two_phase std ~objective =
  let m = Array.length std.rows in
  let n_real = std.n_vars + std.n_slack in
  let n_total = n_real + m in
  let width = n_total + 1 in
  let rhs = n_total in
  let tableau = Array.make_matrix m width Rat.zero in
  let basis = Array.make m 0 in
  Array.iteri
    (fun i row ->
      Array.blit row 0 tableau.(i) 0 n_real;
      tableau.(i).(rhs) <- row.(n_real);
      (* artificial variable for this row *)
      tableau.(i).(n_real + i) <- Rat.one;
      basis.(i) <- n_real + i)
    std.rows;
  let is_artificial j = j >= n_real && j < n_total in
  (* Phase 1 objective row: minimize sum of artificials. Reduced costs:
     c_j - sum of rows (c over artificials = 1, basis = artificials). *)
  let z = Array.make width Rat.zero in
  for j = 0 to width - 1 do
    let colsum = Array.fold_left (fun acc row -> Rat.add acc row.(j)) Rat.zero tableau in
    let cj = if is_artificial j then Rat.one else Rat.zero in
    z.(j) <- Rat.sub (if j = rhs then Rat.zero else cj) colsum
  done;
  (match run_phase tableau z basis ~width with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal -> ());
  let phase1_value = Rat.neg z.(rhs) in
  if Rat.(phase1_value > Rat.zero) then Infeasible
  else begin
    (* Drive remaining artificials out of the basis where possible. *)
    for i = 0 to m - 1 do
      if is_artificial basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to n_real - 1 do
             if not (Rat.is_zero tableau.(i).(j)) then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then begin
          log_pivot !found basis.(i);
          pivot tableau z basis ~row:i ~col:!found ~width
        end
        (* else: the row is all zeros over real columns — redundant; the
           artificial stays basic at value 0, harmless if never entering *)
      end
    done;
    (* Compact for phase 2: rows whose basic variable is still artificial
       are redundant (all-zero over real columns after the drive-out
       loop) and are dropped, and so are the artificial columns — they
       would be dead weight in every subsequent pivot. *)
    let keep_rows = List.filter (fun i -> not (is_artificial basis.(i))) (List.init m (fun i -> i)) in
    let width2 = n_real + 1 in
    let rhs2 = n_real in
    let tableau2 =
      Array.of_list
        (List.map
           (fun i -> Array.init width2 (fun j -> if j = rhs2 then tableau.(i).(rhs) else tableau.(i).(j)))
           keep_rows)
    in
    let basis2 = Array.of_list (List.map (fun i -> basis.(i)) keep_rows) in
    solve_phase2 tableau2 basis2 ~n_vars:std.n_vars ~width:width2 ~objective
      ~orig_rows:(Array.of_list keep_rows) ~std_rows:m
  end

(* ------------------------------------------------------------------ *)
(* Warm start: verify/repair a float-guessed basis in exact arithmetic.

   [pairs] maps row index -> candidate basic column. The tableau for
   that basis is rebuilt from the standard form by exact Gauss-Jordan
   pivots on precisely those entries. The guess is REJECTED (returning
   [None], which routes the caller through the ordinary two-phase
   solve) whenever a pivot entry is exactly zero, a row the floats
   called redundant is not identically zero, or the crashed basic
   solution is not primal feasible. A surviving basis is a proven
   basic feasible solution, so phase 2 from it is exact regardless of
   what the floats did. *)

let crash_basis std ~objective pairs =
  if Budget.probe ~site:warmstart_reject_site then None
  else begin
    let m = Array.length std.rows in
    let n_real = std.n_vars + std.n_slack in
    let width = n_real + 1 in
    let rhs = width - 1 in
    let tableau = Array.map Array.copy std.rows in
    let assigned = Array.make m (-1) in
    let in_basis = Array.make n_real false in
    let used = Array.make n_real false in
    let ok = ref true in
    Array.iter
      (fun (i, col) ->
        if i < 0 || i >= m || col < 0 || col >= n_real || assigned.(i) >= 0 || in_basis.(col) then
          ok := false
        else begin
          assigned.(i) <- col;
          in_basis.(col) <- true
        end)
      pairs;
    (* The basic solution is determined by the basis column SET, not by
       which column the float tableau happened to pair with which row —
       and that pairing need not be a valid Gauss-Jordan pivot order on
       the original rows anyway. So eliminate row by row, preferring the
       float's pairing when its entry is nonzero and falling back to any
       unused basis column otherwise; for a nonsingular basis the Schur
       complement stays nonsingular after every pivot, so a usable
       column always exists and a dead end means the guess was bad. *)
    if !ok then
      Array.iter
        (fun (i, _) ->
          if !ok then begin
            Budget.tick ~stage:"simplex";
            let col = ref assigned.(i) in
            if Rat.is_zero tableau.(i).(!col) then begin
              col := -1;
              (try
                 for c = 0 to n_real - 1 do
                   if in_basis.(c) && (not used.(c)) && not (Rat.is_zero tableau.(i).(c)) then begin
                     col := c;
                     raise Exit
                   end
                 done
               with Exit -> ())
            end;
            if !col < 0 then ok := false
            else begin
              assigned.(i) <- !col;
              used.(!col) <- true;
              log_pivot !col (-(i + 1));
              pivot_rows tableau ~row:i ~col:!col ~width
            end
          end)
        pairs;
    if not !ok then None
    else begin
      (* rows the floats dropped must vanish exactly, and the basic
         solution must be feasible — both checked with zero tolerance *)
      let keep = ref [] in
      for i = m - 1 downto 0 do
        if assigned.(i) >= 0 then begin
          if Rat.(tableau.(i).(rhs) < Rat.zero) then ok := false;
          keep := i :: !keep
        end
        else if not (Array.for_all Rat.is_zero tableau.(i)) then ok := false
      done;
      if not !ok then None
      else begin
        let rows = Array.of_list (List.map (fun i -> tableau.(i)) !keep) in
        let basis = Array.of_list (List.map (fun i -> assigned.(i)) !keep) in
        Some
          (solve_phase2 rows basis ~n_vars:std.n_vars ~width ~objective
             ~orig_rows:(Array.of_list !keep) ~std_rows:m)
      end
    end
  end

let try_warm_start std ~objective =
  let n_real = std.n_vars + std.n_slack in
  let frows = Array.map (Array.map Rat.to_float) std.rows in
  let fobj =
    Array.init n_real (fun j -> if j < std.n_vars then Rat.to_float objective.(j) else 0.0)
  in
  match Fsimplex.solve ~rows:frows ~n_real ~objective:fobj with
  | None -> None
  | Some pairs -> crash_basis std ~objective pairs

(* ------------------------------------------------------------------ *)

let minimize_tableau ~n_vars constraints ~objective =
  if Array.length objective <> n_vars then invalid_arg "Simplex.minimize: objective size";
  List.iter
    (fun c -> if Array.length c.coeffs <> n_vars then invalid_arg "Simplex.minimize: constraint size")
    constraints;
  let std = build_std ~n_vars constraints in
  (* An explicitly installed basis hint (a previous optimal basis of a
     same-shaped LP — set by the session layer and the Pareto sweep) is
     consumed one-shot and tried before the float advisor. It goes
     through the same exact crash/verify discipline, so like the float
     basis it can only save pivots, never change the outcome. *)
  let hint =
    match !basis_hint with
    | None -> None
    | Some b ->
        basis_hint := None;
        if b.b_rows = Array.length std.rows && b.b_cols = std.n_vars + std.n_slack then
          Some b.b_pairs
        else None
  in
  match (match hint with Some pairs -> crash_basis std ~objective pairs | None -> None) with
  | Some outcome ->
      incr warm_accepted;
      outcome
  | None ->
      if Option.is_some hint then incr warm_rejected;
      if !warmstart_enabled then begin
        match try_warm_start std ~objective with
        | Some outcome ->
            incr warm_accepted;
            outcome
        | None ->
            incr warm_rejected;
            solve_two_phase std ~objective
      end
      else solve_two_phase std ~objective

(* ------------------------------------------------------------------ *)
(* Revised simplex: the same decisions over sparse data structures.

   The dense engine above materializes the full tableau and rewrites it
   on every pivot — O(m · width) per pivot no matter how sparse the LP.
   The revised engine keeps the standard form as sparse columns and
   maintains only a factorization of the basis inverse
   ({!Basis_factor}): one BTRAN prices every column, one FTRAN produces
   the entering column for the ratio test, and a pivot appends a single
   eta — work proportional to nonzeros. In exact rational arithmetic
   the FTRANed/BTRANed vectors equal the dense tableau's columns and
   rows bit for bit, so pricing, ratio tests, tie-breaks and the
   degenerate-stall switch make identical choices and the two engines
   produce identical pivot sequences, bases, and outcomes.

   One deliberate representational difference: after phase 1 the dense
   engine compacts away redundant rows (rows whose artificial stays
   basic at 0, identically zero over real columns). The revised engine
   keeps them, pinned: such a row has w_i = 0 for every real column, so
   it never wins a ratio test, contributes nothing to pricing (its
   basic cost is 0), and stays zero under every later eta — the same
   pivots happen either way. *)

type sparse_constr = { sp_terms : (int * Rat.t) list; sp_relation : relation; sp_rhs : Rat.t }

(* Standard form with the constraint matrix held column-wise and
   sparse; identical content to {!std} (same sign normalization, same
   slack-column order), different representation. *)
type sstd = {
  s_vars : int;
  s_slack : int;
  s_m : int;
  s_cols : Basis_factor.svec array; (* n_vars + n_slack columns, ascending rows *)
  s_rhs : Rat.t array; (* >= 0 after sign normalization *)
}

let build_sstd ~n_vars sconstrs =
  let cs = Array.of_list sconstrs in
  let m = Array.length cs in
  let n_slack =
    Array.fold_left (fun acc c -> match c.sp_relation with Eq -> acc | Le | Ge -> acc + 1) 0 cs
  in
  let n_real = n_vars + n_slack in
  let rev_cols = Array.make n_real [] in
  let rhs = Array.make m Rat.zero in
  let slack_idx = ref n_vars in
  Array.iteri
    (fun i c ->
      (* normalize to rhs >= 0, exactly as build_std does *)
      let flip = Rat.(c.sp_rhs < Rat.zero) in
      let sgn x = if flip then Rat.neg x else x in
      List.iter
        (fun (v, coef) ->
          if not (Rat.is_zero coef) then rev_cols.(v) <- (i, sgn coef) :: rev_cols.(v))
        c.sp_terms;
      rhs.(i) <- sgn c.sp_rhs;
      match c.sp_relation with
      | Eq -> ()
      | Le ->
          rev_cols.(!slack_idx) <- [ (i, sgn Rat.one) ];
          incr slack_idx
      | Ge ->
          rev_cols.(!slack_idx) <- [ (i, sgn Rat.minus_one) ];
          incr slack_idx)
    cs;
  let cols = Array.map (fun l -> Array.of_list (List.rev l)) rev_cols in
  sparse_nnz := !sparse_nnz + Array.fold_left (fun acc c -> acc + Array.length c) 0 cols;
  sparse_cells := !sparse_cells + (m * n_real);
  { s_vars = n_vars; s_slack = n_slack; s_m = m; s_cols = cols; s_rhs = rhs }

(* column j of the phase-1 system: a real column, or e_{j - n_real} for
   the artificial attached to that row *)
let s_col_of sstd j =
  let n_real = sstd.s_vars + sstd.s_slack in
  if j < n_real then sstd.s_cols.(j) else [| (j - n_real, Rat.one) |]

let dot_col y (col : Basis_factor.svec) =
  Array.fold_left
    (fun acc (i, v) -> if Rat.is_zero y.(i) then acc else Rat.add acc (Rat.mul y.(i) v))
    Rat.zero col

let load_col w (col : Basis_factor.svec) =
  Array.fill w 0 (Array.length w) Rat.zero;
  Array.iter (fun (i, v) -> w.(i) <- v) col

let maybe_refactor bf sstd basis =
  if Basis_factor.should_refactor bf then begin
    let ok = Basis_factor.refactor bf ~col_of:(s_col_of sstd) ~basis in
    (* the engine only refactors bases it has already pivoted on *)
    assert ok
  end

(* The pricing/ratio/pivot loop, mirroring {!run_phase} decision for
   decision. [cost j] is the per-column objective coefficient
   (artificials included during phase 1); [n_price] bounds the pricing
   scan — n_total in phase 1 (the dense engine scans artificial columns
   too, and a driven-out artificial can legally re-enter), n_real in
   phase 2. Basic columns are skipped rather than priced: their reduced
   cost is exactly 0, which neither rule ever selects. *)
let rsolve_phase bf sstd ~basis ~in_basis ~x ~cost ~n_price =
  let m = sstd.s_m in
  let n_real = sstd.s_vars + sstd.s_slack in
  let y = Array.make m Rat.zero in
  let w = Array.make m Rat.zero in
  let degen = ref 0 in
  let rec loop () =
    Budget.tick ~stage:"simplex";
    (* y = Tᵀ c_B: one BTRAN prices every column *)
    for i = 0 to m - 1 do
      y.(i) <- cost basis.(i)
    done;
    Basis_factor.btran bf y;
    (* the dense engine's z.(j), computed on demand *)
    let reduced j =
      if j < n_real then Rat.sub (cost j) (dot_col y sstd.s_cols.(j))
      else Rat.sub (cost j) y.(j - n_real)
    in
    let entering = ref (-1) in
    if !pricing = Bland || !degen > stall_limit then begin
      try
        for j = 0 to n_price - 1 do
          if (not in_basis.(j)) && Rat.(reduced j < Rat.zero) then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ()
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to n_price - 1 do
        if not in_basis.(j) then begin
          let d = reduced j in
          if Rat.(d < !best) then begin
            entering := j;
            best := d
          end
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      load_col w (s_col_of sstd col);
      Basis_factor.ftran bf w;
      let best_row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = w.(i) in
        if Rat.(a > Rat.zero) then begin
          let ratio = Rat.div x.(i) a in
          if
            !best_row < 0
            || Rat.(ratio < !best_ratio)
            || (Rat.equal ratio !best_ratio && basis.(i) < basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        let r = !best_row in
        let theta = !best_ratio in
        log_pivot col basis.(r);
        incr pivots;
        (* what the dense pivot does to the rhs column *)
        for i = 0 to m - 1 do
          if i <> r && not (Rat.is_zero w.(i)) then x.(i) <- Rat.sub x.(i) (Rat.mul w.(i) theta)
        done;
        x.(r) <- theta;
        Basis_factor.pivot bf ~w ~row:r;
        in_basis.(basis.(r)) <- false;
        in_basis.(col) <- true;
        basis.(r) <- col;
        maybe_refactor bf sstd basis;
        if Rat.is_zero theta then incr degen else degen := 0;
        loop ()
      end
    end
  in
  loop ()

(* On an optimal exit, capture the basis (same coordinates as the dense
   engine: standard-form rows and columns, so hints flow freely between
   engines) and assemble the outcome. The objective is c_B · x_B, which
   the dense engine's maintained -z.(rhs) equals exactly. *)
let roptimal sstd ~objective ~basis ~x =
  let m = sstd.s_m in
  let n_real = sstd.s_vars + sstd.s_slack in
  let pairs = ref [] in
  for i = m - 1 downto 0 do
    if basis.(i) < n_real then pairs := (i, basis.(i)) :: !pairs
  done;
  captured_basis := Some { b_rows = m; b_cols = n_real; b_pairs = Array.of_list !pairs };
  let solution = Array.make sstd.s_vars Rat.zero in
  let obj = ref Rat.zero in
  for i = 0 to m - 1 do
    if basis.(i) < sstd.s_vars then begin
      solution.(basis.(i)) <- x.(i);
      obj := Rat.add !obj (Rat.mul objective.(basis.(i)) x.(i))
    end
  done;
  Optimal { objective = !obj; solution }

let rphase2 bf sstd ~objective ~basis ~in_basis ~x =
  let cost j = if j < sstd.s_vars then objective.(j) else Rat.zero in
  let n_real = sstd.s_vars + sstd.s_slack in
  match rsolve_phase bf sstd ~basis ~in_basis ~x ~cost ~n_price:n_real with
  | `Unbounded -> Unbounded
  | `Optimal -> roptimal sstd ~objective ~basis ~x

let rsolve_two_phase sstd ~objective =
  let m = sstd.s_m in
  let n_real = sstd.s_vars + sstd.s_slack in
  let n_total = n_real + m in
  let basis = Array.init m (fun i -> n_real + i) in
  let in_basis = Array.make n_total false in
  for i = 0 to m - 1 do
    in_basis.(n_real + i) <- true
  done;
  let x = Array.copy sstd.s_rhs in
  let bf = Basis_factor.create m in
  let cost1 j = if j < n_real then Rat.zero else Rat.one in
  (match rsolve_phase bf sstd ~basis ~in_basis ~x ~cost:cost1 ~n_price:n_total with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal -> ());
  let phase1_value = ref Rat.zero in
  for i = 0 to m - 1 do
    if basis.(i) >= n_real then phase1_value := Rat.add !phase1_value x.(i)
  done;
  if Rat.(!phase1_value > Rat.zero) then Infeasible
  else begin
    (* Drive remaining artificials out of the basis where possible,
       reading tableau row i through the factorization: rho = Tᵀ e_i,
       entry (i, j) = rho · A_j. A column basic in another row reads 0
       there, so skipping basic columns changes nothing. *)
    let rho = Array.make m Rat.zero in
    let w = Array.make m Rat.zero in
    for i = 0 to m - 1 do
      if basis.(i) >= n_real then begin
        Array.fill rho 0 m Rat.zero;
        rho.(i) <- Rat.one;
        Basis_factor.btran bf rho;
        let found = ref (-1) in
        (try
           for j = 0 to n_real - 1 do
             if (not in_basis.(j)) && not (Rat.is_zero (dot_col rho sstd.s_cols.(j))) then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then begin
          let j = !found in
          log_pivot j basis.(i);
          incr pivots;
          load_col w sstd.s_cols.(j);
          Basis_factor.ftran bf w;
          (* x.(i) = 0 on an artificial-basic row after a feasible
             phase 1, so the basic values are unchanged *)
          Basis_factor.pivot bf ~w ~row:i;
          in_basis.(basis.(i)) <- false;
          in_basis.(j) <- true;
          basis.(i) <- j;
          maybe_refactor bf sstd basis
        end
        (* else: redundant row; the artificial stays basic at 0 *)
      end
    done;
    rphase2 bf sstd ~objective ~basis ~in_basis ~x
  end

(* Warm-start crash, revised: the same verify/repair discipline as
   {!crash_basis}, but each Gauss-Jordan pivot becomes an eta append
   and tableau entries are read through the factorization on demand. *)
let rcrash sstd ~objective pairs =
  if Budget.probe ~site:warmstart_reject_site then None
  else begin
    let m = sstd.s_m in
    let n_real = sstd.s_vars + sstd.s_slack in
    let assigned = Array.make m (-1) in
    let in_basis = Array.make (n_real + m) false in
    let used = Array.make n_real false in
    let ok = ref true in
    Array.iter
      (fun (i, col) ->
        if i < 0 || i >= m || col < 0 || col >= n_real || assigned.(i) >= 0 || in_basis.(col)
        then ok := false
        else begin
          assigned.(i) <- col;
          in_basis.(col) <- true
        end)
      pairs;
    let bf = Basis_factor.create m in
    let rho = Array.make m Rat.zero in
    let w = Array.make m Rat.zero in
    if !ok then
      Array.iter
        (fun (i, _) ->
          if !ok then begin
            Budget.tick ~stage:"simplex";
            Array.fill rho 0 m Rat.zero;
            rho.(i) <- Rat.one;
            Basis_factor.btran bf rho;
            let entry c = dot_col rho sstd.s_cols.(c) in
            let col = ref assigned.(i) in
            if Rat.is_zero (entry !col) then begin
              col := -1;
              (try
                 for c = 0 to n_real - 1 do
                   if in_basis.(c) && (not used.(c)) && not (Rat.is_zero (entry c)) then begin
                     col := c;
                     raise Exit
                   end
                 done
               with Exit -> ())
            end;
            if !col < 0 then ok := false
            else begin
              assigned.(i) <- !col;
              used.(!col) <- true;
              log_pivot !col (-(i + 1));
              incr pivots;
              load_col w sstd.s_cols.(!col);
              Basis_factor.ftran bf w;
              Basis_factor.pivot bf ~w ~row:i
            end
          end)
        pairs;
    if not !ok then None
    else begin
      let x = Array.copy sstd.s_rhs in
      Basis_factor.ftran bf x;
      (* the dense checks, zero tolerance: assigned rows must be primal
         feasible, unassigned rows identically zero (rhs and every real
         column) *)
      for i = m - 1 downto 0 do
        if assigned.(i) >= 0 then begin
          if Rat.(x.(i) < Rat.zero) then ok := false
        end
        else if not (Rat.is_zero x.(i)) then ok := false
        else begin
          Array.fill rho 0 m Rat.zero;
          rho.(i) <- Rat.one;
          Basis_factor.btran bf rho;
          try
            for c = 0 to n_real - 1 do
              if not (Rat.is_zero (dot_col rho sstd.s_cols.(c))) then begin
                ok := false;
                raise Exit
              end
            done
          with Exit -> ()
        end
      done;
      if not !ok then None
      else begin
        let basis =
          Array.init m (fun i -> if assigned.(i) >= 0 then assigned.(i) else n_real + i)
        in
        for i = 0 to m - 1 do
          if assigned.(i) < 0 then in_basis.(n_real + i) <- true
        done;
        Some (rphase2 bf sstd ~objective ~basis ~in_basis ~x)
      end
    end
  end

let rtry_warm_start sstd ~objective =
  let n_real = sstd.s_vars + sstd.s_slack in
  match
    Fsimplex.solve_cols ~m:sstd.s_m ~n_real
      ~col:(fun j -> sstd.s_cols.(j))
      ~rhs:sstd.s_rhs
      ~objective:(fun j -> if j < sstd.s_vars then Rat.to_float objective.(j) else 0.0)
  with
  | None -> None
  | Some pairs -> rcrash sstd ~objective pairs

let minimize_sstd sstd ~objective =
  let n_real = sstd.s_vars + sstd.s_slack in
  let hint =
    match !basis_hint with
    | None -> None
    | Some b ->
        basis_hint := None;
        if b.b_rows = sstd.s_m && b.b_cols = n_real then Some b.b_pairs else None
  in
  match (match hint with Some pairs -> rcrash sstd ~objective pairs | None -> None) with
  | Some outcome ->
      incr warm_accepted;
      outcome
  | None ->
      if Option.is_some hint then incr warm_rejected;
      if !warmstart_enabled then begin
        match rtry_warm_start sstd ~objective with
        | Some outcome ->
            incr warm_accepted;
            outcome
        | None ->
            incr warm_rejected;
            rsolve_two_phase sstd ~objective
      end
      else rsolve_two_phase sstd ~objective

(* ------------------------------------------------------------------ *)
(* Entry points: representation conversion + engine dispatch.          *)

let check_sparse ~n_vars sconstrs =
  List.iter
    (fun c ->
      let last = ref (-1) in
      List.iter
        (fun (v, _) ->
          if v < 0 || v >= n_vars then invalid_arg "Simplex.minimize_sparse: variable index";
          if v <= !last then
            invalid_arg "Simplex.minimize_sparse: terms must be sorted by variable";
          last := v)
        c.sp_terms)
    sconstrs

let dense_of_sparse ~n_vars sconstrs =
  List.map
    (fun c ->
      let coeffs = Array.make n_vars Rat.zero in
      List.iter (fun (v, x) -> coeffs.(v) <- x) c.sp_terms;
      { coeffs; relation = c.sp_relation; rhs = c.sp_rhs })
    sconstrs

let sparse_of_dense constraints =
  List.map
    (fun c ->
      let terms = ref [] in
      for v = Array.length c.coeffs - 1 downto 0 do
        if not (Rat.is_zero c.coeffs.(v)) then terms := (v, c.coeffs.(v)) :: !terms
      done;
      { sp_terms = !terms; sp_relation = c.relation; sp_rhs = c.rhs })
    constraints

let minimize ~n_vars constraints ~objective =
  if Budget.probe ~site:infeasible_site then Infeasible
  else
    match !engine with
    | Dense -> minimize_tableau ~n_vars constraints ~objective
    | Sparse ->
        if Array.length objective <> n_vars then invalid_arg "Simplex.minimize: objective size";
        List.iter
          (fun c ->
            if Array.length c.coeffs <> n_vars then invalid_arg "Simplex.minimize: constraint size")
          constraints;
        minimize_sstd (build_sstd ~n_vars (sparse_of_dense constraints)) ~objective

let minimize_sparse ~n_vars sconstrs ~objective =
  if Budget.probe ~site:infeasible_site then Infeasible
  else begin
    if Array.length objective <> n_vars then
      invalid_arg "Simplex.minimize_sparse: objective size";
    check_sparse ~n_vars sconstrs;
    match !engine with
    | Dense -> minimize_tableau ~n_vars (dense_of_sparse ~n_vars sconstrs) ~objective
    | Sparse -> minimize_sstd (build_sstd ~n_vars sconstrs) ~objective
  end

let negate_max = function
  | Optimal { objective; solution } -> Optimal { objective = Rat.neg objective; solution }
  | (Infeasible | Unbounded) as o -> o

let maximize ~n_vars constraints ~objective =
  negate_max (minimize ~n_vars constraints ~objective:(Array.map Rat.neg objective))

let maximize_sparse ~n_vars sconstrs ~objective =
  negate_max (minimize_sparse ~n_vars sconstrs ~objective:(Array.map Rat.neg objective))
