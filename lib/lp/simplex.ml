open Rtt_num
open Rtt_budget

type relation = Le | Ge | Eq
type constr = { coeffs : Rat.t array; relation : relation; rhs : Rat.t }

type outcome =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

let infeasible_site = "lp.infeasible"
let warmstart_reject_site = "lp.warmstart.reject"

let warmstart_enabled =
  ref
    (match Sys.getenv_opt "RTT_LP_WARMSTART" with
    | Some ("0" | "false" | "no" | "off") -> false
    | _ -> true)

type pricing = Dantzig | Bland

(* Bland is the default because it reproduces the seed solver's pivot
   sequence exactly — on LPs with several optimal vertices, Dantzig can
   (correctly) answer with a different one, and downstream consumers
   treat the Bland vertex as the canonical result. On the paper's small
   dense instances Dantzig also measures no faster (its full pricing
   scan costs as much as the pivots it saves), so the default trades
   nothing; see EXPERIMENTS.md. *)
let pricing =
  ref (match Sys.getenv_opt "RTT_LP_PRICING" with Some "dantzig" -> Dantzig | _ -> Bland)

(* cumulative observability counters, read by the bench harness *)
let pivots = ref 0
let warm_accepted = ref 0
let warm_rejected = ref 0
let pivot_count () = !pivots
let warm_stats () = (!warm_accepted, !warm_rejected)

(* The counters are plain process-global refs, so a forked child (a
   pool worker, a daemon shard) inherits whatever the parent had
   accumulated. Every fork point calls this so per-process stats start
   at zero instead of double-counting the parent's history. *)
let reset_stats () =
  pivots := 0;
  warm_accepted := 0;
  warm_rejected := 0

(* A reusable basis: the (standard-form row, column) pairs of the last
   optimal solve, in exactly the shape {!crash_basis} consumes, plus
   the standard form's dimensions so a hint is only ever tried against
   an LP of the same shape. Abstract outside this module. *)
type basis = { b_rows : int; b_cols : int; b_pairs : (int * int) array }

let captured_basis : basis option ref = ref None
let basis_hint : basis option ref = ref None
let last_basis () = !captured_basis
let set_basis_hint b = basis_hint := Some b
let clear_basis_hint () = basis_hint := None

(* The tableau holds m rows of length [width]; column [width - 1] is the
   right-hand side. [z] is the objective row maintained alongside, with
   z.(width - 1) = -(current objective value). Basic columns always read
   as a unit column, and b >= 0 is an invariant of every pivot. *)

(* Gauss-Jordan step over the constraint rows only (no objective row);
   also the unit of work of the warm-start crash, so it ticks fuel and
   counts as a pivot *)
let pivot_rows tableau ~row ~col ~width =
  incr pivots;
  let m = Array.length tableau in
  let prow = tableau.(row) in
  let p = prow.(col) in
  for j = 0 to width - 1 do
    if not (Rat.is_zero prow.(j)) then prow.(j) <- Rat.div prow.(j) p
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = tableau.(i).(col) in
      if not (Rat.is_zero f) then
        for j = 0 to width - 1 do
          tableau.(i).(j) <- Rat.sub tableau.(i).(j) (Rat.mul f prow.(j))
        done
    end
  done

let pivot tableau z basis ~row ~col ~width =
  pivot_rows tableau ~row ~col ~width;
  let prow = tableau.(row) in
  let f = z.(col) in
  if not (Rat.is_zero f) then
    for j = 0 to width - 1 do
      z.(j) <- Rat.sub z.(j) (Rat.mul f prow.(j))
    done;
  basis.(row) <- col

(* Dantzig pricing (most negative reduced cost, lowest index on ties)
   with Bland's rule as the anti-cycling fallback: after [stall_limit]
   consecutive degenerate pivots the loop switches to Bland's rule —
   which provably escapes any degenerate vertex in finitely many pivots
   — and switches back on the next strict objective improvement. Each
   Bland segment terminates and each strict improvement reaches a basis
   no earlier iteration visited, so termination stays guaranteed. *)
let stall_limit = 24

let run_phase tableau z basis ~width =
  let m = Array.length tableau in
  let rhs = width - 1 in
  let degen = ref 0 in
  let rec loop () =
    Budget.tick ~stage:"simplex";
    let entering = ref (-1) in
    if !pricing = Bland || !degen > stall_limit then begin
      (* Bland: lowest-index column with negative reduced cost *)
      try
        for j = 0 to width - 2 do
          if Rat.(z.(j) < Rat.zero) then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ()
    end
    else begin
      let best = ref Rat.zero in
      for j = 0 to width - 2 do
        if Rat.(z.(j) < !best) then begin
          entering := j;
          best := z.(j)
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        let a = tableau.(i).(col) in
        if Rat.(a > Rat.zero) then begin
          let ratio = Rat.div tableau.(i).(rhs) a in
          if
            !best_row < 0
            || Rat.(ratio < !best_ratio)
            || (Rat.equal ratio !best_ratio && basis.(i) < basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot tableau z basis ~row:!best_row ~col ~width;
        if Rat.is_zero !best_ratio then incr degen else degen := 0;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Standard form, shared by the exact paths and the float warm start:
   m rows of [n_vars] originals then one slack/surplus per inequality,
   right-hand side (>= 0 after sign normalization) in the last column.
   Artificial columns are NOT part of the standard form — the two-phase
   path adds them privately and drops them again after phase 1.         *)

type std = { n_vars : int; n_slack : int; rows : Rat.t array array }

let build_std ~n_vars constraints =
  let constraints = Array.of_list constraints in
  let m = Array.length constraints in
  let n_slack =
    Array.fold_left (fun acc c -> match c.relation with Eq -> acc | Le | Ge -> acc + 1) 0 constraints
  in
  let n_real = n_vars + n_slack in
  let rows = Array.make_matrix m (n_real + 1) Rat.zero in
  let slack_idx = ref n_vars in
  Array.iteri
    (fun i c ->
      let row = rows.(i) in
      (* normalize to rhs >= 0 *)
      let flip = Rat.(c.rhs < Rat.zero) in
      let sgn x = if flip then Rat.neg x else x in
      Array.iteri (fun j v -> if not (Rat.is_zero v) then row.(j) <- sgn v) c.coeffs;
      row.(n_real) <- sgn c.rhs;
      match c.relation with
      | Eq -> ()
      | Le ->
          row.(!slack_idx) <- sgn Rat.one;
          incr slack_idx
      | Ge ->
          row.(!slack_idx) <- sgn Rat.minus_one;
          incr slack_idx)
    constraints;
  { n_vars; n_slack; rows }

(* Phase 2 from a feasible tableau over real columns only: price the
   objective out of the basic columns and run the pivot loop.
   [orig_rows] maps each (compacted) tableau row back to its row in the
   standard form and [std_rows] is the standard form's row count — on
   an optimal exit the final basis is recorded in those coordinates so
   a later solve of a same-shaped LP can crash from it. *)
let solve_phase2 tableau basis ~n_vars ~width ~objective ~orig_rows ~std_rows =
  let rhs = width - 1 in
  let z = Array.make width Rat.zero in
  for j = 0 to n_vars - 1 do
    z.(j) <- objective.(j)
  done;
  Array.iteri
    (fun i b ->
      let cb = if b < n_vars then objective.(b) else Rat.zero in
      if not (Rat.is_zero cb) then
        for j = 0 to width - 1 do
          z.(j) <- Rat.sub z.(j) (Rat.mul cb tableau.(i).(j))
        done)
    basis;
  match run_phase tableau z basis ~width with
  | `Unbounded -> Unbounded
  | `Optimal ->
      captured_basis :=
        Some
          {
            b_rows = std_rows;
            b_cols = width - 1;
            b_pairs = Array.mapi (fun i b -> (orig_rows.(i), b)) basis;
          };
      let solution = Array.make n_vars Rat.zero in
      Array.iteri (fun i b -> if b < n_vars then solution.(b) <- tableau.(i).(rhs)) basis;
      Optimal { objective = Rat.neg z.(rhs); solution }

(* ------------------------------------------------------------------ *)
(* Full two-phase solve.                                               *)

let solve_two_phase std ~objective =
  let m = Array.length std.rows in
  let n_real = std.n_vars + std.n_slack in
  let n_total = n_real + m in
  let width = n_total + 1 in
  let rhs = n_total in
  let tableau = Array.make_matrix m width Rat.zero in
  let basis = Array.make m 0 in
  Array.iteri
    (fun i row ->
      Array.blit row 0 tableau.(i) 0 n_real;
      tableau.(i).(rhs) <- row.(n_real);
      (* artificial variable for this row *)
      tableau.(i).(n_real + i) <- Rat.one;
      basis.(i) <- n_real + i)
    std.rows;
  let is_artificial j = j >= n_real && j < n_total in
  (* Phase 1 objective row: minimize sum of artificials. Reduced costs:
     c_j - sum of rows (c over artificials = 1, basis = artificials). *)
  let z = Array.make width Rat.zero in
  for j = 0 to width - 1 do
    let colsum = Array.fold_left (fun acc row -> Rat.add acc row.(j)) Rat.zero tableau in
    let cj = if is_artificial j then Rat.one else Rat.zero in
    z.(j) <- Rat.sub (if j = rhs then Rat.zero else cj) colsum
  done;
  (match run_phase tableau z basis ~width with
  | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal -> ());
  let phase1_value = Rat.neg z.(rhs) in
  if Rat.(phase1_value > Rat.zero) then Infeasible
  else begin
    (* Drive remaining artificials out of the basis where possible. *)
    for i = 0 to m - 1 do
      if is_artificial basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to n_real - 1 do
             if not (Rat.is_zero tableau.(i).(j)) then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot tableau z basis ~row:i ~col:!found ~width
        (* else: the row is all zeros over real columns — redundant; the
           artificial stays basic at value 0, harmless if never entering *)
      end
    done;
    (* Compact for phase 2: rows whose basic variable is still artificial
       are redundant (all-zero over real columns after the drive-out
       loop) and are dropped, and so are the artificial columns — they
       would be dead weight in every subsequent pivot. *)
    let keep_rows = List.filter (fun i -> not (is_artificial basis.(i))) (List.init m (fun i -> i)) in
    let width2 = n_real + 1 in
    let rhs2 = n_real in
    let tableau2 =
      Array.of_list
        (List.map
           (fun i -> Array.init width2 (fun j -> if j = rhs2 then tableau.(i).(rhs) else tableau.(i).(j)))
           keep_rows)
    in
    let basis2 = Array.of_list (List.map (fun i -> basis.(i)) keep_rows) in
    solve_phase2 tableau2 basis2 ~n_vars:std.n_vars ~width:width2 ~objective
      ~orig_rows:(Array.of_list keep_rows) ~std_rows:m
  end

(* ------------------------------------------------------------------ *)
(* Warm start: verify/repair a float-guessed basis in exact arithmetic.

   [pairs] maps row index -> candidate basic column. The tableau for
   that basis is rebuilt from the standard form by exact Gauss-Jordan
   pivots on precisely those entries. The guess is REJECTED (returning
   [None], which routes the caller through the ordinary two-phase
   solve) whenever a pivot entry is exactly zero, a row the floats
   called redundant is not identically zero, or the crashed basic
   solution is not primal feasible. A surviving basis is a proven
   basic feasible solution, so phase 2 from it is exact regardless of
   what the floats did. *)

let crash_basis std ~objective pairs =
  if Budget.probe ~site:warmstart_reject_site then None
  else begin
    let m = Array.length std.rows in
    let n_real = std.n_vars + std.n_slack in
    let width = n_real + 1 in
    let rhs = width - 1 in
    let tableau = Array.map Array.copy std.rows in
    let assigned = Array.make m (-1) in
    let in_basis = Array.make n_real false in
    let used = Array.make n_real false in
    let ok = ref true in
    Array.iter
      (fun (i, col) ->
        if i < 0 || i >= m || col < 0 || col >= n_real || assigned.(i) >= 0 || in_basis.(col) then
          ok := false
        else begin
          assigned.(i) <- col;
          in_basis.(col) <- true
        end)
      pairs;
    (* The basic solution is determined by the basis column SET, not by
       which column the float tableau happened to pair with which row —
       and that pairing need not be a valid Gauss-Jordan pivot order on
       the original rows anyway. So eliminate row by row, preferring the
       float's pairing when its entry is nonzero and falling back to any
       unused basis column otherwise; for a nonsingular basis the Schur
       complement stays nonsingular after every pivot, so a usable
       column always exists and a dead end means the guess was bad. *)
    if !ok then
      Array.iter
        (fun (i, _) ->
          if !ok then begin
            Budget.tick ~stage:"simplex";
            let col = ref assigned.(i) in
            if Rat.is_zero tableau.(i).(!col) then begin
              col := -1;
              (try
                 for c = 0 to n_real - 1 do
                   if in_basis.(c) && (not used.(c)) && not (Rat.is_zero tableau.(i).(c)) then begin
                     col := c;
                     raise Exit
                   end
                 done
               with Exit -> ())
            end;
            if !col < 0 then ok := false
            else begin
              assigned.(i) <- !col;
              used.(!col) <- true;
              pivot_rows tableau ~row:i ~col:!col ~width
            end
          end)
        pairs;
    if not !ok then None
    else begin
      (* rows the floats dropped must vanish exactly, and the basic
         solution must be feasible — both checked with zero tolerance *)
      let keep = ref [] in
      for i = m - 1 downto 0 do
        if assigned.(i) >= 0 then begin
          if Rat.(tableau.(i).(rhs) < Rat.zero) then ok := false;
          keep := i :: !keep
        end
        else if not (Array.for_all Rat.is_zero tableau.(i)) then ok := false
      done;
      if not !ok then None
      else begin
        let rows = Array.of_list (List.map (fun i -> tableau.(i)) !keep) in
        let basis = Array.of_list (List.map (fun i -> assigned.(i)) !keep) in
        Some
          (solve_phase2 rows basis ~n_vars:std.n_vars ~width ~objective
             ~orig_rows:(Array.of_list !keep) ~std_rows:m)
      end
    end
  end

let try_warm_start std ~objective =
  let n_real = std.n_vars + std.n_slack in
  let frows = Array.map (Array.map Rat.to_float) std.rows in
  let fobj =
    Array.init n_real (fun j -> if j < std.n_vars then Rat.to_float objective.(j) else 0.0)
  in
  match Fsimplex.solve ~rows:frows ~n_real ~objective:fobj with
  | None -> None
  | Some pairs -> crash_basis std ~objective pairs

(* ------------------------------------------------------------------ *)

let minimize_tableau ~n_vars constraints ~objective =
  if Array.length objective <> n_vars then invalid_arg "Simplex.minimize: objective size";
  List.iter
    (fun c -> if Array.length c.coeffs <> n_vars then invalid_arg "Simplex.minimize: constraint size")
    constraints;
  let std = build_std ~n_vars constraints in
  (* An explicitly installed basis hint (a previous optimal basis of a
     same-shaped LP — set by the session layer and the Pareto sweep) is
     consumed one-shot and tried before the float advisor. It goes
     through the same exact crash/verify discipline, so like the float
     basis it can only save pivots, never change the outcome. *)
  let hint =
    match !basis_hint with
    | None -> None
    | Some b ->
        basis_hint := None;
        if b.b_rows = Array.length std.rows && b.b_cols = std.n_vars + std.n_slack then
          Some b.b_pairs
        else None
  in
  match (match hint with Some pairs -> crash_basis std ~objective pairs | None -> None) with
  | Some outcome ->
      incr warm_accepted;
      outcome
  | None ->
      if Option.is_some hint then incr warm_rejected;
      if !warmstart_enabled then begin
        match try_warm_start std ~objective with
        | Some outcome ->
            incr warm_accepted;
            outcome
        | None ->
            incr warm_rejected;
            solve_two_phase std ~objective
      end
      else solve_two_phase std ~objective

let minimize ~n_vars constraints ~objective =
  if Budget.probe ~site:infeasible_site then Infeasible
  else minimize_tableau ~n_vars constraints ~objective

let maximize ~n_vars constraints ~objective =
  match minimize ~n_vars constraints ~objective:(Array.map Rat.neg objective) with
  | Optimal { objective; solution } -> Optimal { objective = Rat.neg objective; solution }
  | (Infeasible | Unbounded) as o -> o
