(** Exact two-phase primal simplex over rationals.

    Solves [minimize c·x subject to A x {<=,=,>=} b, x >= 0] with Bland's
    anti-cycling rule, so termination is guaranteed and results are exact
    — no tolerances. This is the engine behind the LP relaxation of
    Section 3.1 ({!Rtt_core.Lp_relax}). Dense tableau; intended for the
    small/medium instances the paper's constructions produce. *)

open Rtt_num

type relation = Le | Ge | Eq

type constr = { coeffs : Rat.t array; relation : relation; rhs : Rat.t }
(** One row: [coeffs · x relation rhs]. [coeffs] must have length equal
    to the number of variables. *)

type outcome =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

val infeasible_site : string
(** Fault-injection site (["lp.infeasible"]): when armed through
    {!Rtt_budget.Budget.arm}, the triggering {!minimize} call reports
    [Infeasible] without touching the tableau. Every pivot also consumes
    one unit of ambient fuel (stage ["simplex"]). *)

val minimize : n_vars:int -> constr list -> objective:Rat.t array -> outcome
(** All variables implicitly satisfy [x >= 0].
    @raise Invalid_argument on dimension mismatches.
    @raise Rtt_budget.Budget.Fuel_exhausted when an ambient fuel budget
    runs out mid-solve. *)

val maximize : n_vars:int -> constr list -> objective:Rat.t array -> outcome
(** [maximize] negates the objective and delegates to {!minimize}; the
    reported [objective] is the maximum. *)
