(** Exact two-phase primal simplex over rationals.

    Solves [minimize c·x subject to A x {<=,=,>=} b, x >= 0] exactly —
    no tolerances. Entering columns are priced by Bland's anti-cycling
    rule by default (reproducing the seed solver's canonical pivot
    sequence), or by Dantzig's most-negative-reduced-cost rule with a
    degenerate-stall fallback to Bland when {!pricing} selects it.
    Before the two-phase solve, a float simplex ({!Fsimplex}) may
    suggest a starting basis, which is re-validated in exact arithmetic
    and discarded on any mismatch — results never depend on floating
    point. This is the engine behind the LP relaxation of Section 3.1
    ({!Rtt_core.Lp_relax}).

    Two interchangeable engines execute every solve ({!engine}): the
    default {e revised} simplex over sparse columns with an eta-file
    basis factorization ({!Basis_factor}), whose per-pivot work is
    proportional to nonzeros; and the original dense tableau, kept as
    the differential oracle. Exact arithmetic makes every priced
    reduced cost and every ratio identical between them, so the two
    engines pivot identically and return bit-identical outcomes. *)

open Rtt_num

type relation = Le | Ge | Eq

type constr = { coeffs : Rat.t array; relation : relation; rhs : Rat.t }
(** One row: [coeffs · x relation rhs]. [coeffs] must have length equal
    to the number of variables. *)

type sparse_constr = { sp_terms : (int * Rat.t) list; sp_relation : relation; sp_rhs : Rat.t }
(** One row in sparse form: [sp_terms] are (variable, coefficient)
    pairs sorted by strictly ascending variable index (zero
    coefficients are permitted and ignored). The preferred input for
    the LPs this project builds — {!Rtt_lp.Lp} feeds {!minimize_sparse}
    straight from its {!Rtt_lp.Linexpr} terms. *)

type outcome =
  | Optimal of { objective : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

val infeasible_site : string
(** Fault-injection site (["lp.infeasible"]): when armed through
    {!Rtt_budget.Budget.arm}, the triggering {!minimize} call reports
    [Infeasible] without touching the tableau. Every pivot also consumes
    one unit of ambient fuel (stage ["simplex"]). *)

val warmstart_reject_site : string
(** Fault-injection site (["lp.warmstart.reject"]): when armed, the
    triggering solve discards the float-suggested basis before crashing
    it and falls through to the ordinary two-phase path — exercising the
    fallback without having to construct a float-hostile instance. *)

type pricing = Dantzig | Bland

val pricing : pricing ref
(** Entering-column rule. [Bland] (the default) is the seed's pure
    lowest-index rule, reproducing its pivot sequence — and therefore
    its exact answers — bit for bit. [Dantzig] picks the most negative
    reduced cost and falls back to Bland's rule only while stalled on
    degenerate pivots (so termination stays guaranteed); it reaches the
    same optimal {e value} but, on LPs with several optimal vertices,
    possibly a different (equally optimal) solution, which is why it is
    opt-in: set the environment variable [RTT_LP_PRICING=dantzig] or
    flip this ref. *)

val warmstart_enabled : bool ref
(** Whether solves may consult the float simplex for a starting basis.
    Defaults to [true]; initialized to [false] when the environment
    variable [RTT_LP_WARMSTART] is ["0"], ["false"], ["no"] or ["off"].
    Purely a performance toggle — outcomes are identical either way. *)

type engine = Dense | Sparse

val engine : engine ref
(** Which implementation executes solves. [Sparse] (the default) is the
    revised simplex over sparse columns with an eta-file basis
    factorization; [Dense] is the original full-tableau code, kept as
    the differential oracle. Initialized to [Dense] when the
    environment variable [RTT_LP_ENGINE] is ["dense"]. The engines
    pivot identically and return bit-identical outcomes — switching is
    purely a performance choice. *)

val engine_name : unit -> string
(** ["sparse"] or ["dense"], for stats output. *)

val pivot_count : unit -> int
(** Cumulative exact pivots (including warm-start crash pivots) since
    program start. Observability for the bench harness. Identical
    under both engines by construction. *)

val warm_stats : unit -> int * int
(** [(accepted, rejected)] warm-start attempts since program start.
    Solves with warm start disabled count in neither bucket. *)

type factor_stats = { refactorizations : int; etas : int; eta_peak : int; nnz : int; cells : int }
(** Sparse-engine observability since the last {!reset_stats}:
    refactorization count and eta-file traffic from {!Basis_factor},
    plus the structural nonzeros ([nnz]) out of total constraint-matrix
    cells ([cells]) of every standard form built — [nnz /. cells] is
    the aggregate density the revised engine exploited. All zero while
    the dense engine is selected. *)

val factor_stats : unit -> factor_stats

val lp_stats_json : unit -> string
(** One-line JSON object with the engine name and every counter above
    (pivots, warm stats, factorization stats) — embedded by the daemon
    in its [stats] response. *)

val reset_stats : unit -> unit
(** Zero {!pivot_count}, {!warm_stats} and {!factor_stats}. The
    counters are process-global refs, so forked children (pool workers,
    daemon shards) inherit the parent's totals — every fork point calls
    this so per-process stats are actually per-process. *)

(** {1 Test instrumentation} *)

val trace_pivots : bool ref
(** When [true], every pivot appends an engine-independent record to
    the log read by {!take_pivot_log}: (entering column, leaving
    column) for pricing and drive-out pivots, (column, [-(row+1)]) for
    warm-start crash pivots. The differential qcheck suite runs both
    engines under tracing and requires the logs to match entry for
    entry. Off by default; tracing allocates per pivot. *)

val take_pivot_log : unit -> (int * int) list
(** The trace since the last call, oldest first; clears the log. *)

type basis
(** An optimal basis in standard-form coordinates, reusable as a warm
    start for a later solve of a same-shaped LP. Opaque: the only
    things to do with one are capture it ({!last_basis}) and offer it
    back ({!set_basis_hint}). *)

val last_basis : unit -> basis option
(** The final basis of the most recent optimal solve in this process
    ([None] before the first). The session layer snapshots this right
    after a solve so the next re-solve of the (possibly mutated)
    instance can start from it. *)

val set_basis_hint : basis -> unit
(** Install a one-shot starting-basis hint: the next {!minimize} (or
    {!maximize}) consumes it and, if its LP has the same standard-form
    shape, crashes the basis in exact arithmetic — accepted only if it
    re-derives to a proven basic feasible solution, discarded on any
    mismatch (the same verify-or-discard discipline as the float
    advisor, counted in {!warm_stats}). A hint for a different shape
    (the instance gained or lost columns/rows) is discarded silently.
    Outcomes are identical with or without a hint. *)

val clear_basis_hint : unit -> unit

val basis_repr : basis -> string
(** Debug/test representation ("RxC:(row,col)(row,col)…", pairs in
    ascending row order). Both engines print equal strings for equal
    bases, which is what the differential suite compares. *)

val minimize : n_vars:int -> constr list -> objective:Rat.t array -> outcome
(** All variables implicitly satisfy [x >= 0].
    @raise Invalid_argument on dimension mismatches.
    @raise Rtt_budget.Budget.Fuel_exhausted when an ambient fuel budget
    runs out mid-solve. *)

val maximize : n_vars:int -> constr list -> objective:Rat.t array -> outcome
(** [maximize] negates the objective and delegates to {!minimize}; the
    reported [objective] is the maximum. *)

val minimize_sparse : n_vars:int -> sparse_constr list -> objective:Rat.t array -> outcome
(** {!minimize} over sparse rows. Under the sparse engine the columns
    are used directly (no dense materialization); under the dense
    engine they are expanded to the exact arrays {!minimize} would have
    received, so answers are independent of which entry was called.
    @raise Invalid_argument on out-of-range or unsorted variables. *)

val maximize_sparse : n_vars:int -> sparse_constr list -> objective:Rat.t array -> outcome
