(** Sparse linear expressions over integer-indexed variables, with exact
    rational coefficients. Building block for {!Lp} models. *)

open Rtt_num

type t

val zero : t
val term : Rat.t -> int -> t
(** [term c v] is the expression [c * x_v]. *)

val var : int -> t
(** [var v] is [x_v]. *)

val const : Rat.t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val of_terms : ?const:Rat.t -> (Rat.t * int) list -> t
val coeff : t -> int -> Rat.t
val constant : t -> Rat.t
val terms : t -> (int * Rat.t) list
(** Nonzero terms, ascending variable index. *)

val iter_terms : (int -> Rat.t -> unit) -> t -> unit
(** [iter_terms f e] applies [f var coeff] to each nonzero term in
    ascending variable order, without materializing the {!terms} list. *)

val eval : t -> (int -> Rat.t) -> Rat.t
val max_var : t -> int
(** Largest variable index mentioned; [-1] if none. *)

val pp : Format.formatter -> t -> unit
