open Rtt_num

module IMap = Map.Make (Int)

type t = { coeffs : Rat.t IMap.t; const : Rat.t }

let zero = { coeffs = IMap.empty; const = Rat.zero }

let norm m = IMap.filter (fun _ c -> not (Rat.is_zero c)) m

let term c v = { coeffs = norm (IMap.singleton v c); const = Rat.zero }
let var v = term Rat.one v
let const c = { coeffs = IMap.empty; const = c }

let add a b =
  {
    coeffs = norm (IMap.union (fun _ x y -> Some (Rat.add x y)) a.coeffs b.coeffs);
    const = Rat.add a.const b.const;
  }

let scale k e =
  if Rat.is_zero k then zero
  else { coeffs = IMap.map (fun c -> Rat.mul k c) e.coeffs; const = Rat.mul k e.const }

let sub a b = add a (scale Rat.minus_one b)

let of_terms ?(const = Rat.zero) ts =
  List.fold_left (fun acc (c, v) -> add acc (term c v)) { zero with const } ts

let coeff e v = try IMap.find v e.coeffs with Not_found -> Rat.zero
let constant e = e.const
let terms e = IMap.bindings e.coeffs
let iter_terms f e = IMap.iter f e.coeffs
let eval e f = IMap.fold (fun v c acc -> Rat.add acc (Rat.mul c (f v))) e.coeffs e.const
let max_var e = IMap.fold (fun v _ acc -> max v acc) e.coeffs (-1)

let pp fmt e =
  let ts = terms e in
  if ts = [] && Rat.is_zero e.const then Format.pp_print_string fmt "0"
  else begin
    List.iteri
      (fun i (v, c) ->
        if i > 0 then Format.pp_print_string fmt " + ";
        Format.fprintf fmt "%a*x%d" Rat.pp c v)
      ts;
    if not (Rat.is_zero e.const) then Format.fprintf fmt " + %a" Rat.pp e.const
  end
