open Rtt_service

let version = 1

type request =
  | Hello of { version : int }
  | Submit of { name : string; body : string }
  | Submit_many of { name : string; bodies : string list }
  | Status of { id : string }
  | Wait of { id : string }
  | Ping
  | Bye
  | Repl_hello of { version : int; watermark : int }
  | Repl_ack of { watermark : int }
  | Promote
  | Stats
  | Session_open of { sid : string; body : string option }
  | Session_mutate of { sid : string; op : string }
  | Session_solve of { sid : string }
  | Session_close of { sid : string }

type response =
  | Welcome of { version : int; max_frame : int }
  | Accepted of { id : string }
  | Shed of { retry_after_ms : int }
  | Status_is of { id : string; json : string }
  | Result of { id : string; rendered : string }
  | Failed of { id : string; error_class : string; attempts : int }
  | Errored of { code : string; msg : string }
  | Pong
  | Repl_welcome of { version : int; records : int }
  | Repl_frame of { seq : int; line : string }
  | Repl_instance of { job : string; body : string }
  | Repl_result of { job : string; body : string }
  | Repl_cache of { key : string; body : string }
  | Stats_is of { json : string }
  | Promoting
  | Session_ok of { sid : string; revision : int }
  | Session_result of { sid : string; fuel : int; warm : bool; rendered : string }

let esc = Frame.escape

let encode_request = function
  | Hello { version } -> Printf.sprintf "hello %d" version
  | Submit { name; body } ->
      (* the length is of the unescaped body: the receiver re-checks it
         after unescaping, so a torn or spliced frame that still passes
         the CRC (a client bug, not line noise) cannot silently submit
         a truncated instance *)
      Printf.sprintf "submit %s %d %s" (esc name) (String.length body) (esc body)
  | Submit_many { name; bodies } ->
      (* one frame, many instances: [<len_i> <body_i>] pairs after the
         count, each length-checked like submit's so a spliced frame
         cannot silently truncate one entry of a batch *)
      let entries =
        List.map (fun b -> Printf.sprintf "%d %s" (String.length b) (esc b)) bodies
      in
      String.concat " "
        (Printf.sprintf "submit-many %s %d" (esc name) (List.length bodies) :: entries)
  | Status { id } -> Printf.sprintf "status %s" (esc id)
  | Wait { id } -> Printf.sprintf "wait %s" (esc id)
  | Ping -> "ping"
  | Bye -> "bye"
  | Repl_hello { version; watermark } -> Printf.sprintf "repl.hello %d %d" version watermark
  | Repl_ack { watermark } -> Printf.sprintf "repl.ack %d" watermark
  | Promote -> "promote"
  | Stats -> "stats"
  (* the optional seed body carries its unescaped byte length exactly
     like submit's, and for the same reason *)
  | Session_open { sid; body = None } -> Printf.sprintf "session.open %s" (esc sid)
  | Session_open { sid; body = Some body } ->
      Printf.sprintf "session.open %s %d %s" (esc sid) (String.length body) (esc body)
  | Session_mutate { sid; op } -> Printf.sprintf "session.mutate %s %s" (esc sid) (esc op)
  | Session_solve { sid } -> Printf.sprintf "session.solve %s" (esc sid)
  | Session_close { sid } -> Printf.sprintf "session.close %s" (esc sid)

let encode_response = function
  | Welcome { version; max_frame } -> Printf.sprintf "welcome %d %d" version max_frame
  | Accepted { id } -> Printf.sprintf "accepted %s" (esc id)
  | Shed { retry_after_ms } -> Printf.sprintf "shed %d" retry_after_ms
  | Status_is { id; json } -> Printf.sprintf "status-is %s %s" (esc id) (esc json)
  | Result { id; rendered } -> Printf.sprintf "result %s %s" (esc id) (esc rendered)
  | Failed { id; error_class; attempts } ->
      Printf.sprintf "failed %s %s %d" (esc id) (esc error_class) attempts
  | Errored { code; msg } -> Printf.sprintf "error %s %s" (esc code) (esc msg)
  | Pong -> "pong"
  | Repl_welcome { version; records } -> Printf.sprintf "repl.welcome %d %d" version records
  | Repl_frame { seq; line } -> Printf.sprintf "repl.frame %d %s" seq (esc line)
  (* attachments carry the unescaped byte length like submit, and for
     the same reason: a spliced frame that still passes the CRC must
     not materialize a truncated spool file on the follower *)
  | Repl_instance { job; body } ->
      Printf.sprintf "repl.instance %s %d %s" (esc job) (String.length body) (esc body)
  | Repl_result { job; body } ->
      Printf.sprintf "repl.result %s %d %s" (esc job) (String.length body) (esc body)
  | Repl_cache { key; body } ->
      Printf.sprintf "repl.cache %s %d %s" (esc key) (String.length body) (esc body)
  | Stats_is { json } -> Printf.sprintf "stats-is %s" (esc json)
  | Promoting -> "promoting"
  | Session_ok { sid; revision } -> Printf.sprintf "session-ok %s %d" (esc sid) revision
  | Session_result { sid; fuel; warm; rendered } ->
      Printf.sprintf "session-result %s %d %d %s" (esc sid) fuel (if warm then 1 else 0)
        (esc rendered)

(* ------------------------------------------------------------------ *)
(* parsing *)

let unesc what s =
  match Frame.unescape s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "malformed escape in %s" what)

let int_field what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "bad %s %S" what s)

let ( let* ) = Result.bind

let parse_request payload =
  match String.split_on_char ' ' payload with
  | [ "hello"; v ] ->
      let* version = int_field "version" v in
      Ok (Hello { version })
  | [ "submit"; name; len; body ] ->
      let* name = unesc "name" name in
      let* len = int_field "length" len in
      let* body = unesc "body" body in
      if String.length body <> len then
        Error
          (Printf.sprintf "length mismatch: declared %d bytes, body has %d" len
             (String.length body))
      else Ok (Submit { name; body })
  | "submit-many" :: name :: n :: rest ->
      let* name = unesc "name" name in
      let* n = int_field "count" n in
      if List.length rest <> 2 * n then
        Error
          (Printf.sprintf "batch arity mismatch: declared %d entries, found %d tokens" n
             (List.length rest))
      else
        let rec entries acc = function
          | [] -> Ok (List.rev acc)
          | len :: body :: tl ->
              let* len = int_field "length" len in
              let* body = unesc "body" body in
              if String.length body <> len then
                Error
                  (Printf.sprintf "length mismatch: declared %d bytes, body has %d" len
                     (String.length body))
              else entries (body :: acc) tl
          | [ _ ] -> Error "batch entry missing its body"
        in
        let* bodies = entries [] rest in
        Ok (Submit_many { name; bodies })
  | [ "status"; id ] ->
      let* id = unesc "id" id in
      Ok (Status { id })
  | [ "wait"; id ] ->
      let* id = unesc "id" id in
      Ok (Wait { id })
  | [ "ping" ] -> Ok Ping
  | [ "bye" ] -> Ok Bye
  | [ "repl.hello"; v; w ] ->
      let* version = int_field "version" v in
      let* watermark = int_field "watermark" w in
      Ok (Repl_hello { version; watermark })
  | [ "repl.ack"; w ] ->
      let* watermark = int_field "watermark" w in
      Ok (Repl_ack { watermark })
  | [ "promote" ] -> Ok Promote
  | [ "stats" ] -> Ok Stats
  | [ "session.open"; sid ] ->
      let* sid = unesc "sid" sid in
      Ok (Session_open { sid; body = None })
  | [ "session.open"; sid; len; body ] ->
      let* sid = unesc "sid" sid in
      let* len = int_field "length" len in
      let* body = unesc "body" body in
      if String.length body <> len then
        Error
          (Printf.sprintf "length mismatch: declared %d bytes, body has %d" len
             (String.length body))
      else Ok (Session_open { sid; body = Some body })
  | [ "session.mutate"; sid; op ] ->
      let* sid = unesc "sid" sid in
      let* op = unesc "op" op in
      Ok (Session_mutate { sid; op })
  | [ "session.solve"; sid ] ->
      let* sid = unesc "sid" sid in
      Ok (Session_solve { sid })
  | [ "session.close"; sid ] ->
      let* sid = unesc "sid" sid in
      Ok (Session_close { sid })
  | verb :: _ -> Error (Printf.sprintf "unknown or malformed request %S" verb)
  | [] -> Error "empty request"

let parse_response payload =
  match String.split_on_char ' ' payload with
  | [ "welcome"; v; mf ] ->
      let* version = int_field "version" v in
      let* max_frame = int_field "max-frame" mf in
      Ok (Welcome { version; max_frame })
  | [ "accepted"; id ] ->
      let* id = unesc "id" id in
      Ok (Accepted { id })
  | [ "shed"; ms ] ->
      let* retry_after_ms = int_field "retry-after" ms in
      Ok (Shed { retry_after_ms })
  | [ "status-is"; id; json ] ->
      let* id = unesc "id" id in
      let* json = unesc "json" json in
      Ok (Status_is { id; json })
  | [ "result"; id; rendered ] ->
      let* id = unesc "id" id in
      let* rendered = unesc "rendered" rendered in
      Ok (Result { id; rendered })
  | [ "failed"; id; cls; a ] ->
      let* id = unesc "id" id in
      let* error_class = unesc "class" cls in
      let* attempts = int_field "attempts" a in
      Ok (Failed { id; error_class; attempts })
  | [ "error"; code; msg ] ->
      let* code = unesc "code" code in
      let* msg = unesc "message" msg in
      Ok (Errored { code; msg })
  | [ "pong" ] -> Ok Pong
  | [ "repl.welcome"; v; r ] ->
      let* version = int_field "version" v in
      let* records = int_field "records" r in
      Ok (Repl_welcome { version; records })
  | [ "repl.frame"; s; line ] ->
      let* seq = int_field "seq" s in
      let* line = unesc "line" line in
      Ok (Repl_frame { seq; line })
  | [ "repl.instance"; job; len; body ] ->
      let* job = unesc "job" job in
      let* len = int_field "length" len in
      let* body = unesc "body" body in
      if String.length body <> len then
        Error
          (Printf.sprintf "length mismatch: declared %d bytes, body has %d" len
             (String.length body))
      else Ok (Repl_instance { job; body })
  | [ "repl.result"; job; len; body ] ->
      let* job = unesc "job" job in
      let* len = int_field "length" len in
      let* body = unesc "body" body in
      if String.length body <> len then
        Error
          (Printf.sprintf "length mismatch: declared %d bytes, body has %d" len
             (String.length body))
      else Ok (Repl_result { job; body })
  | [ "repl.cache"; key; len; body ] ->
      let* key = unesc "key" key in
      let* len = int_field "length" len in
      let* body = unesc "body" body in
      if String.length body <> len then
        Error
          (Printf.sprintf "length mismatch: declared %d bytes, body has %d" len
             (String.length body))
      else Ok (Repl_cache { key; body })
  | [ "stats-is"; json ] ->
      let* json = unesc "json" json in
      Ok (Stats_is { json })
  | [ "promoting" ] -> Ok Promoting
  | [ "session-ok"; sid; rev ] ->
      let* sid = unesc "sid" sid in
      let* revision = int_field "revision" rev in
      Ok (Session_ok { sid; revision })
  | [ "session-result"; sid; fuel; warm; rendered ] ->
      let* sid = unesc "sid" sid in
      let* fuel = int_field "fuel" fuel in
      let* rendered = unesc "rendered" rendered in
      if warm <> "0" && warm <> "1" then Error (Printf.sprintf "bad warm flag %S" warm)
      else Ok (Session_result { sid; fuel; warm = warm = "1"; rendered })
  | verb :: _ -> Error (Printf.sprintf "unknown or malformed response %S" verb)
  | [] -> Error "empty response"
