open Rtt_service

let version = 1

type request =
  | Hello of { version : int }
  | Submit of { name : string; body : string }
  | Status of { id : string }
  | Wait of { id : string }
  | Ping
  | Bye

type response =
  | Welcome of { version : int; max_frame : int }
  | Accepted of { id : string }
  | Shed of { retry_after_ms : int }
  | Status_is of { id : string; json : string }
  | Result of { id : string; rendered : string }
  | Failed of { id : string; error_class : string; attempts : int }
  | Errored of { code : string; msg : string }
  | Pong

let esc = Frame.escape

let encode_request = function
  | Hello { version } -> Printf.sprintf "hello %d" version
  | Submit { name; body } ->
      (* the length is of the unescaped body: the receiver re-checks it
         after unescaping, so a torn or spliced frame that still passes
         the CRC (a client bug, not line noise) cannot silently submit
         a truncated instance *)
      Printf.sprintf "submit %s %d %s" (esc name) (String.length body) (esc body)
  | Status { id } -> Printf.sprintf "status %s" (esc id)
  | Wait { id } -> Printf.sprintf "wait %s" (esc id)
  | Ping -> "ping"
  | Bye -> "bye"

let encode_response = function
  | Welcome { version; max_frame } -> Printf.sprintf "welcome %d %d" version max_frame
  | Accepted { id } -> Printf.sprintf "accepted %s" (esc id)
  | Shed { retry_after_ms } -> Printf.sprintf "shed %d" retry_after_ms
  | Status_is { id; json } -> Printf.sprintf "status-is %s %s" (esc id) (esc json)
  | Result { id; rendered } -> Printf.sprintf "result %s %s" (esc id) (esc rendered)
  | Failed { id; error_class; attempts } ->
      Printf.sprintf "failed %s %s %d" (esc id) (esc error_class) attempts
  | Errored { code; msg } -> Printf.sprintf "error %s %s" (esc code) (esc msg)
  | Pong -> "pong"

(* ------------------------------------------------------------------ *)
(* parsing *)

let unesc what s =
  match Frame.unescape s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "malformed escape in %s" what)

let int_field what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "bad %s %S" what s)

let ( let* ) = Result.bind

let parse_request payload =
  match String.split_on_char ' ' payload with
  | [ "hello"; v ] ->
      let* version = int_field "version" v in
      Ok (Hello { version })
  | [ "submit"; name; len; body ] ->
      let* name = unesc "name" name in
      let* len = int_field "length" len in
      let* body = unesc "body" body in
      if String.length body <> len then
        Error
          (Printf.sprintf "length mismatch: declared %d bytes, body has %d" len
             (String.length body))
      else Ok (Submit { name; body })
  | [ "status"; id ] ->
      let* id = unesc "id" id in
      Ok (Status { id })
  | [ "wait"; id ] ->
      let* id = unesc "id" id in
      Ok (Wait { id })
  | [ "ping" ] -> Ok Ping
  | [ "bye" ] -> Ok Bye
  | verb :: _ -> Error (Printf.sprintf "unknown or malformed request %S" verb)
  | [] -> Error "empty request"

let parse_response payload =
  match String.split_on_char ' ' payload with
  | [ "welcome"; v; mf ] ->
      let* version = int_field "version" v in
      let* max_frame = int_field "max-frame" mf in
      Ok (Welcome { version; max_frame })
  | [ "accepted"; id ] ->
      let* id = unesc "id" id in
      Ok (Accepted { id })
  | [ "shed"; ms ] ->
      let* retry_after_ms = int_field "retry-after" ms in
      Ok (Shed { retry_after_ms })
  | [ "status-is"; id; json ] ->
      let* id = unesc "id" id in
      let* json = unesc "json" json in
      Ok (Status_is { id; json })
  | [ "result"; id; rendered ] ->
      let* id = unesc "id" id in
      let* rendered = unesc "rendered" rendered in
      Ok (Result { id; rendered })
  | [ "failed"; id; cls; a ] ->
      let* id = unesc "id" id in
      let* error_class = unesc "class" cls in
      let* attempts = int_field "attempts" a in
      Ok (Failed { id; error_class; attempts })
  | [ "error"; code; msg ] ->
      let* code = unesc "code" code in
      let* msg = unesc "message" msg in
      Ok (Errored { code; msg })
  | [ "pong" ] -> Ok Pong
  | verb :: _ -> Error (Printf.sprintf "unknown or malformed response %S" verb)
  | [] -> Error "empty response"
