open Rtt_service

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_of_string s =
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad endpoint %S (expected HOST:PORT or a socket path)" s))
  | _ -> if s = "" then Error "empty endpoint" else Ok (Unix_socket s)

type t = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  (* responses already reassembled but not yet returned: one socket
     read can surface several frames when requests are pipelined, and
     dropping the tail would desynchronize every later exchange *)
  mutable pending : string Queue.t;
}

type error = Timeout | Closed of string | Bad_frame of string

let error_to_string = function
  | Timeout -> "timed out waiting for the daemon"
  | Closed msg -> msg
  | Bad_frame msg -> Printf.sprintf "protocol failure: %s" msg

let exit_connect = 40
let exit_shed = 41
let exit_timeout = 42
let exit_unknown_job = 43

let connect ep =
  let domain, addr =
    match ep with
    | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
        let a =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> Unix.inet_addr_loopback)
        in
        (Unix.PF_INET, Unix.ADDR_INET (a, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Eintr.connect fd addr with
  | () -> Ok { fd; reader = Frame.reader (); pending = Queue.create () }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Closed (Printf.sprintf "cannot connect: %s" (Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let fd t = t.fd

(* Capped exponential backoff with the service layer's deterministic
   jitter, so a client can ride out the window where the old primary is
   dead and the follower has not finished promoting yet. Backoff units
   are milliseconds, same scale as Retry.backoff's use elsewhere. *)
let connect_retry ?(attempts = 8) ?(seed = 0) ep =
  let rec go n last =
    if n > attempts then Error last
    else
      match connect ep with
      | Ok t -> Ok t
      | Error e ->
          if n = attempts then Error e
          else begin
            let ms = Rtt_service.Retry.backoff ~seed ~job:"connect" ~attempt:n in
            Unix.sleepf (float_of_int ms /. 1000.);
            go (n + 1) e
          end
  in
  go 1 (Closed "cannot connect")

let parse_payload payload =
  match Protocol.parse_response payload with
  | Ok resp -> Ok resp
  | Error msg -> Error (Bad_frame msg)

(* enqueue a whole feed batch; a corrupt or oversized frame poisons the
   stream (framing sync cannot be trusted past it), reported once the
   queue drains down to it *)
let enqueue_frames t items =
  let rec go = function
    | [] -> Ok ()
    | `Frame payload :: tl ->
        Queue.push payload t.pending;
        go tl
    | `Corrupt line :: _ -> Error (Bad_frame (Printf.sprintf "corrupt frame %S" line))
    | `Overflow :: _ -> Error (Bad_frame "oversized response frame")
  in
  go items

let recv ~deadline t =
  let buf = Bytes.create 8192 in
  let rec go () =
    match Queue.take_opt t.pending with
    | Some payload -> parse_payload payload
    | None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then Error Timeout
        else
          match Unix.select [ t.fd ] [] [] remaining with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> Error Timeout
          | _ -> (
              match Unix.read t.fd buf 0 (Bytes.length buf) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Closed (Unix.error_message e))
              | 0 -> Error (Closed "the daemon closed the connection")
              | n -> (
                  match enqueue_frames t (Frame.feed t.reader (Bytes.sub_string buf 0 n)) with
                  | Ok () -> go ()
                  | Error _ as e -> if Queue.is_empty t.pending then e else go ())))
  in
  go ()

let send t req =
  match Frame.write t.fd (Protocol.encode_request req) with
  | exception Unix.Unix_error (e, _, _) -> Error (Closed (Unix.error_message e))
  | () -> Ok ()

let request ?(timeout = 30.) t req =
  match send t req with
  | Error e -> Error e
  | Ok () -> recv ~deadline:(Unix.gettimeofday () +. timeout) t
