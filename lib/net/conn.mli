(** One accepted client connection: incremental frame reassembly in,
    buffered non-blocking writes out, a read deadline, and the set of
    jobs the client is waiting on.

    The daemon's event loop owns the socket; this module owns the
    bookkeeping between [select] wakeups. Writes never block the loop:
    {!send} only appends to the output buffer, {!flush} drains as much
    as the socket accepts ([EAGAIN] is a normal outcome), and
    {!wants_write} tells the loop whether to watch the descriptor for
    writability. *)

type t

val create : ?max_frame:int -> peer:string -> now:float -> Unix.file_descr -> t
(** Wrap an accepted descriptor (already set non-blocking). [peer] is
    a display name for logs; [max_frame] bounds one inbound line
    ({!Rtt_service.Frame.reader}). *)

val fd : t -> Unix.file_descr
val peer : t -> string

val read : t -> now:float -> [ `Frames of [ `Frame of string | `Corrupt of string | `Overflow ] list | `Eof | `Again ]
(** Pull whatever the socket has and run it through the frame reader.
    [`Eof] means the client closed its end. Resets the read deadline
    when bytes arrive. *)

val send : t -> Protocol.response -> unit
(** Frame and buffer one response; {!flush} moves it to the socket. *)

val wants_write : t -> bool

val flush : t -> [ `Done | `Again | `Closed ]
(** Write buffered bytes without blocking. [`Done]: buffer empty.
    [`Again]: the socket stopped accepting ([EAGAIN]); watch for
    writability. [`Closed]: the peer is gone ([EPIPE]/reset). *)

val close_after_flush : t -> unit
(** Mark the connection for closing once the output buffer drains
    ([bye], protocol errors). *)

val closing : t -> bool

val add_wait : t -> string -> unit
(** Record that this client waits on a job id. *)

val remove_wait : t -> string -> unit
(** The wait was answered; the read deadline applies again. *)

val waits : t -> string list

val idle_for : t -> now:float -> float
(** Seconds since the last inbound byte. The daemon exempts
    connections with non-empty {!waits} from the read deadline — they
    are waiting on us, not the other way around. *)
