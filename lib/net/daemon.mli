(** The network daemon: the batch service behind a socket.

    [run] listens on a Unix-domain socket (and optionally TCP), speaks
    the {!Protocol} over {!Rtt_service.Frame}d lines, and bridges
    accepted submissions into the same spool + journal + worker + cache
    machinery as [rtt serve] — a submission becomes a spool instance
    file named [<digest>.rtt] plus a journaled [Queued] record
    {e before} the client hears [accepted], so an accepted job survives
    a daemon [kill -9] and is adopted (and solved) by the next daemon
    started on the same spool. Duplicate submissions coalesce onto one
    job by construction: the job id {e is} the instance's
    {!Rtt_engine.Fingerprint} digest.

    Concurrency is a single-threaded [select] loop over the listeners,
    the client connections, and the pipes of forked workers — the
    workers run {!Rtt_service.Pool.worker_loop} and speak the pool's
    wire protocol verbatim; the daemon process is the sole journal
    writer, so exactly-once and claim-replay are inherited from the
    pool's discipline, not re-implemented.

    Admission is bounded ({!Admission}): a submission past capacity is
    answered [shed <retry-after-ms>], never queued unboundedly and
    never silently dropped. Per-connection defenses: a read deadline
    ([idle_timeout], connections with unanswered waits are exempt) and
    a maximum frame size ([max_frame], an overlong line poisons only
    that connection).

    Shutdown: the first SIGTERM/SIGINT starts a drain — no new
    submissions (they shed), the admitted backlog finishes, in-flight
    clients get their answers, then exit with
    {!Rtt_service.Supervisor.drained_exit_code} (or
    [failed_jobs_exit_code] if any job died). A second signal forces:
    workers are told to checkpoint and abandon, and the exit code is
    {!Rtt_service.Supervisor.shutdown_exit_code}. *)

type config = {
  service : Rtt_service.Work.config;
      (** Spool, budget, policy, workers, cache — exactly [rtt serve]'s
          knobs; the daemon is the same service with a socket in
          front. *)
  socket_path : string;  (** Unix-domain listening socket. *)
  tcp : (string * int) option;  (** Optional additional TCP listener. *)
  queue_capacity : int;  (** Admission bound (queued + in flight). *)
  max_frame : int;  (** Per-connection inbound line limit, bytes. *)
  idle_timeout : float;  (** Read deadline, seconds. *)
  sync_replicas : int;
      (** Hold each [submit]'s accepted reply until this many followers
          have durably applied its [Queued] record; [0] (the default)
          acknowledges as soon as the local journal append returns.
          Incompatible with [shards > 1]. *)
  shards : int;
      (** Fork this many acceptor shards over the shared listening
          socket(s). [1] (the default) keeps the flat single-process
          topology. See {!section-sharding}. *)
}

val default_config : spool:string -> socket_path:string -> config
(** [rtt serve] service defaults; no TCP, capacity 64, 16 MiB frames,
    30 s read deadline, [sync_replicas = 0], [shards = 1]. *)

(** {1:sharding Sharding}

    With [shards = N > 1], [run] binds the listener(s) once, forks [N]
    shard processes that inherit the shared descriptors (the kernel
    distributes accepts among them), and supervises: SIGTERM/SIGINT are
    forwarded to every shard, children are reaped, and the exit code is
    the worst child verdict. Each shard is a complete daemon over its
    own sub-spool [<spool>/shard-<k>/] — own journal, own workers, own
    admission queue — so the single-writer discipline (and with it
    exactly-once) is preserved per shard.

    Jobs are partitioned by {!shard_of_id} over the instance
    fingerprint, so duplicate submissions still coalesce fleet-wide: a
    request that arrives at a non-owner shard is relayed over a
    persistent internal link ([<socket_path>.shard<k>]) to the owner
    and the response relayed back; the accept-side shard never touches
    the job's journal. Sheds are answered with a fleet-wide retry hint
    ({!Admission.aggregate} over per-shard stat files in the root
    spool). A sharded daemon refuses [repl.hello] ([bad-role]):
    replication composes with [shards = 1] only. *)

val shard_of_id : shards:int -> string -> int
(** The shard that owns a job id: deterministic, stable across
    processes (leading fingerprint hex, with a polynomial-hash fallback
    for ids that are not hex). [shard_of_id ~shards:1 id = 0]. *)

(** {1 Replication}

    Followers ([rtt replica], {!Standby}) connect to either listener
    and send [repl.hello]; from then on every committed journal record
    is forwarded to them as a verbatim [repl.frame] (preceded by the
    instance/result/cache attachments it references), and their
    [repl.ack] watermarks are tracked per connection. [stats] exposes
    the per-follower sent/acked watermarks and lag as JSON — this is
    what [rtt status] with no job id prints. *)

val run : config -> int
(** Serve until signalled. Returns an exit code (see above); the
    listening socket file is removed on the way out. *)

val listen_unix : string -> Unix.file_descr
(** Bind + listen (non-blocking) on a Unix-domain socket path,
    evicting a stale socket file only after probing that no live
    daemon answers on it. Shared with {!Standby}'s local listener.
    @raise Failure if a live daemon already listens there. *)

val listen_tcp : string * int -> Unix.file_descr
