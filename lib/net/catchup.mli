(** One-shot catch-up pull over the [repl.*] protocol — the transport
    behind [rtt fsck --repair --from].

    Where {!Standby} maintains a persistent link and tails the primary
    forever, [pull] wants a snapshot: offer a watermark, drain the
    welcome + attachments + frames the peer ships in response, and hang
    up once the last catch-up frame has landed. The peer can be a
    primary daemon (whose replication path serves this natively) or a
    standing-by follower (which serves the same catch-up statically) —
    so a spool can be repaired from whichever side of a failover is
    still alive.

    Offering watermark 0 instead of the local committed count forces a
    full re-ship: every frame below the local watermark applies as
    stale, but its attachments (instance, result, cache entry) are
    re-materialized on the way past — which is how a spool whose
    journal is intact but whose {e files} are missing gets them back
    ({!Rtt_service.Fsck.offer_zero}). *)

type progress = {
  records : int;  (** The peer's committed record count at hello time. *)
  applied : int;  (** Frames newly appended to the local journal. *)
  attachments : int;  (** Instance/result/cache blobs (re)materialized. *)
}

val pull :
  spool:string ->
  ?cache_dir:string ->
  ?offer:int ->
  ?timeout:float ->
  Client.endpoint ->
  (progress, string) result
(** Seal the local journal tail, offer [offer] (default: the local
    committed record count) to the peer at [endpoint], and apply
    everything it ships until the catch-up is complete. Cache
    attachments are dropped unless [cache_dir] is given. Fails on
    connection errors, a sequence gap, an undecodable frame, or the
    [timeout] (default 30 s) expiring first; the journal holds
    whatever prefix was applied before the failure, so a retry
    resumes rather than restarts. *)
