(** The daemon's wire protocol: every frame type, both directions.

    Transport: one {!Rtt_service.Frame} per message — a single line
    ["<crc-8-hex> <payload>\n"] whose CRC-32 covers the payload alone.
    Payloads are space-tokenized; any field that can carry arbitrary
    bytes (names, instance bodies, rendered results, error messages) is
    percent-encoded with {!Rtt_service.Frame.escape}. A line that fails
    the CRC is a [`Corrupt] frame and ends the conversation (the daemon
    replies [error bad-frame] and closes — stream sync cannot be
    trusted past a torn frame); a line longer than the daemon's
    [--max-frame] poisons the connection ([error frame-overflow],
    close).

    Connections are pipelined: a client may write several request
    frames back-to-back and the daemon answers each in arrival order —
    except [wait], whose answer is deferred until the job is terminal
    and may be overtaken by answers to later requests (wait answers
    carry the job id, so a pipelining client matches them by id).

    {1 Requests (client -> daemon)}

    - [hello <version>] — handshake; the daemon answers {!Welcome}.
      Optional but recommended: it is how a client learns the daemon's
      frame-size limit before submitting a large instance.
    - [submit <name> <length> <body>] — submit an instance. [name] is a
      client-chosen label (logging only, escaped); [body] is the
      instance text (escaped); [length] is the byte length of the
      {e unescaped} body and must match exactly — a mismatch means the
      frame was torn or the client is buggy, and parses as an error
      rather than a shorter instance. Answered by {!Accepted} (the
      durable job id — the instance's {!Rtt_engine.Fingerprint}
      digest, so duplicate submissions coalesce onto one job),
      {!Shed} (admission queue full, retry later) or {!Errored}
      (unparseable instance; the code is the
      {!Rtt_engine.Error.class_name}).
    - [submit-many <name> <n> <len_1> <body_1> ... <len_n> <body_n>] —
      a batch of [n] instances in one frame, each entry length-checked
      exactly like [submit]'s. Answered by [n] per-entry responses
      ({!Accepted}, {!Shed} or {!Errored}), one frame each, {e in entry
      order} — so one round trip can carry hundreds of jobs while the
      per-job durability contract (and any [--sync-replicas] hold) is
      unchanged. Entries that are duplicates of each other coalesce
      onto the same id, like repeated [submit]s would.
    - [status <job-id>] — answered by {!Status_is} with the job's
      {!Rtt_service.Jobview} JSON (state ["unknown"] for a job the
      daemon has never seen).
    - [wait <job-id>] — answered by {!Result} or {!Failed} once the job
      reaches a terminal state (immediately if it already has);
      {!Errored} with code [unknown-job] if the daemon has no trace of
      it. A connection may wait on several jobs; answers carry the id.
    - [ping] — liveness probe, answered by {!Pong}. Also resets the
      connection's read deadline.
    - [bye] — polite close; the daemon flushes pending replies and
      closes the connection.

    {1 Responses (daemon -> client)}

    - [welcome <version> <max-frame>] — handshake answer.
    - [accepted <job-id>] — the submission is durable: instance file
      and journal record survive a daemon crash from this frame on.
    - [shed <retry-after-ms>] — admission queue full (or the daemon is
      draining after SIGTERM); nothing was recorded. The hint is the
      daemon's estimate of when a slot frees up.
    - [status-is <job-id> <json>] — one {!Rtt_service.Jobview} object,
      escaped.
    - [result <job-id> <rendered>] — terminal success. [rendered]
      (escaped) is byte-identical to what [rtt solve] prints for the
      same instance and configuration.
    - [failed <job-id> <class> <attempts>] — terminal failure with the
      journaled error class.
    - [error <code> <message>] — request-level failure; [code] is a
      stable kebab-case token ([bad-frame], [frame-overflow],
      [unknown-job], [bad-request], or an engine
      {!Rtt_engine.Error.class_name}).
    - [pong] — answer to [ping].

    {1 Replication ([repl.*]) and administration}

    A follower ([rtt replica]) speaks the same framed protocol over the
    same listener; the daemon treats a connection as a replication link
    from its first [repl.hello] on.

    - [repl.hello <version> <watermark>] (follower -> primary) — join
      as a follower, offering the number of records already durably
      applied. The primary answers [repl.welcome <version> <records>]
      and then catches the follower up from [watermark]: each shipped
      record is [repl.frame <seq> <line>] where [seq] is the record's
      0-based index in the journal and [line] the {e verbatim} framed
      journal line (escaped) — the follower appends the identical
      bytes, so the journals converge byte-for-byte. Attachments ship
      {e before} the frame that references them, preserving the
      invariant that the journal never leads the spool:
      [repl.instance <job> <len> <body>] before a [queued] record,
      [repl.result <job> <len> <body>] and [repl.cache <key> <len>
      <body>] (the raw content-addressed cache entry) before a [done]
      record. All three carry the unescaped byte length, checked like
      [submit]'s.
    - [repl.ack <watermark>] (follower -> primary) — the follower's
      records are durable through [watermark]. Acks are cumulative and
      idempotent; followers send one per applied frame and a heartbeat
      ack (~1 s) when idle so a [--sync-replicas] gate can never
      deadlock on a lost ack. A follower that observes a sequence gap
      (a [repl.frame] whose [seq] exceeds its watermark — e.g. under
      the [repl.frame-drop] fault) reconnects and re-offers its
      watermark rather than applying out of order.
    - [promote] (operator -> follower) — seal the journal tail and take
      over as primary; answered by [promoting]. Sent to a primary it is
      a no-op [error bad-role].
    - [stats] — answered by [stats-is <json>]: role, journal length,
      per-follower sent/acked watermarks and lag, and the depth of the
      sync-replicas gate. This is what [rtt status] (no job id)
      prints.

    {1 Sessions ([session.*])}

    A session is a live mutable instance the daemon re-solves
    incrementally ({!Rtt_session.Session}). Sessions are owned by the
    shard their id hashes to ({!Daemon.shard_of_id}), exactly like
    jobs: any shard accepts the verbs and relays to the owner.

    - [session.open <sid> [<length> <body>]] — create or reattach the
      session named [sid] (1–64 chars from [A-Za-z0-9._-]). The
      optional [body] (length-checked like [submit]'s) seeds a fresh
      session with an instance; a reattach (the session already has
      journaled mutations) ignores the seed, so retrying an [open]
      after a daemon restart is safe. Answered by [session-ok] carrying
      the replayed revision, or [error].
    - [session.mutate <sid> <op>] — apply one mutation ([op] escaped,
      e.g. [add-edge 0 3]; see {!Rtt_session.Session.op_of_string}).
      The mutation is validated (cycle/duplicate-edge rejections name
      their witness), journaled and fsync'd {e before} the [session-ok]
      answer, so an acknowledged mutation survives [kill -9]. A
      rejected mutation answers [error bad-request] and changes
      nothing.
    - [session.solve <sid>] — re-solve the current instance, warm from
      the previous answer when there is one. Answered by
      [session-result].
    - [session.close <sid>] — discard the session and its journal;
      answered by [session-ok].

    Session responses:

    - [session-ok <sid> <revision>] — the session exists and has
      [revision] committed mutations.
    - [session-result <sid> <fuel> <warm> <rendered>] — the re-solve's
      answer: [rendered] (escaped) is the canonical answer text, byte
      identical to a cold solve of the same instance; [fuel] the steps
      this solve actually spent; [warm] ([0]/[1]) whether a previous
      answer primed it. *)

val version : int
(** Protocol version, currently 1. *)

type request =
  | Hello of { version : int }
  | Submit of { name : string; body : string }
  | Submit_many of { name : string; bodies : string list }
  | Status of { id : string }
  | Wait of { id : string }
  | Ping
  | Bye
  | Repl_hello of { version : int; watermark : int }
  | Repl_ack of { watermark : int }
  | Promote
  | Stats
  | Session_open of { sid : string; body : string option }
  | Session_mutate of { sid : string; op : string }
  | Session_solve of { sid : string }
  | Session_close of { sid : string }

type response =
  | Welcome of { version : int; max_frame : int }
  | Accepted of { id : string }
  | Shed of { retry_after_ms : int }
  | Status_is of { id : string; json : string }
  | Result of { id : string; rendered : string }
  | Failed of { id : string; error_class : string; attempts : int }
  | Errored of { code : string; msg : string }
  | Pong
  | Repl_welcome of { version : int; records : int }
  | Repl_frame of { seq : int; line : string }
  | Repl_instance of { job : string; body : string }
  | Repl_result of { job : string; body : string }
  | Repl_cache of { key : string; body : string }
  | Stats_is of { json : string }
  | Promoting
  | Session_ok of { sid : string; revision : int }
  | Session_result of { sid : string; fuel : int; warm : bool; rendered : string }

val encode_request : request -> string
(** The frame payload (not yet framed — pass to
    {!Rtt_service.Frame.write}). *)

val parse_request : string -> (request, string) result
(** Inverse of {!encode_request} on a frame payload. [Error] carries a
    human-readable reason (unknown verb, arity, length mismatch,
    malformed escape). *)

val encode_response : response -> string
val parse_response : string -> (response, string) result
