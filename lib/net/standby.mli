(** The follower process behind [rtt replica]: a warm standby that
    replays the primary's journal stream and can take over.

    [run] connects to the primary, offers its durable watermark with
    [repl.hello], and applies the stream: attachments
    ([repl.instance]/[repl.result]/[repl.cache]) are materialized
    atomically into the local spool/cache {e before} the journal frame
    that references them is appended — the same "journal never leads
    the spool" order the primary observes — and every applied frame is
    fsync'd and acknowledged with the new watermark. A sequence gap
    (dropped frame) or an undecodable line tears the link down and
    reconnects from the watermark rather than applying out of order;
    an idle link still heartbeats its watermark (~1 s) so the
    primary's [--sync-replicas] gate cannot deadlock on a lost ack.

    While standing by it serves read-only traffic on its own socket:
    [status], [stats] (role ["follower"]), [ping], and [wait] — a wait
    on a job the replayed journal shows terminal is answered from the
    replicated result file immediately, one on a known in-flight job is
    parked and answered when its terminal frame arrives, and [submit]
    is refused with [error read-only].

    Failover: a [promote] request — or the primary link staying dead
    past [takeover_after] — seals the journal tail (fsync), tears the
    standby down, and returns {!Promote}; the caller then starts
    {!Daemon.run} on the same spool and socket, whose startup replay
    {e is} the claim replay: a job the dead primary had [started] is
    [Running] in the fold, so the new primary re-attempts it at
    [attempt + 1] — exactly once, never zero or twice. *)

type config = {
  spool : string;
  socket_path : string;  (** Local read-only listener. *)
  primary : Client.endpoint;
  cache_dir : string option;  (** Where shipped cache entries land. *)
  max_frame : int;
  takeover_after : float option;
      (** Auto-promote after the primary link has been down this many
          seconds; [None] = only an explicit [promote] fails over. *)
  seed : int;  (** Reconnect backoff jitter ({!Rtt_service.Retry.backoff}). *)
  verbose : bool;
}

val default_config : spool:string -> socket_path:string -> primary:Client.endpoint -> config
(** No auto-takeover, no cache dir, 16 MiB frames, seed 0. *)

type outcome =
  | Promote  (** Sealed and ready: start a {!Daemon} on this spool. *)
  | Exit of int  (** Clean shutdown (SIGTERM/SIGINT), or a setup failure. *)

val run : config -> outcome
