open Rtt_service
module E = Rtt_engine

type progress = { records : int; applied : int; attachments : int }

let pull ~spool ?cache_dir ?offer ?(timeout = 30.0) endpoint =
  let f = Replica.open_follower ~spool in
  Fun.protect
    ~finally:(fun () -> Replica.close_follower f)
    (fun () ->
      match Client.connect endpoint with
      | Error e -> Error (Client.error_to_string e)
      | Ok c ->
          let fd = Client.fd c in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let offered = Option.value ~default:f.Replica.watermark offer in
              Frame.write fd
                (Protocol.encode_request
                   (Protocol.Repl_hello { version = Protocol.version; watermark = offered }));
              let reader = Frame.reader ~max_frame:(16 * 1024 * 1024) () in
              let deadline = Unix.gettimeofday () +. timeout in
              let records = ref None in
              let applied = ref 0 in
              let attachments = ref 0 in
              (* the catch-up is complete when we have seen the frame
                 just below the peer's record count — not when our own
                 watermark reaches it, because a full re-ship (offer 0)
                 delivers mostly stale frames whose attachments are the
                 whole point *)
              let seen = ref (offered - 1) in
              let finished () =
                match !records with Some r -> !seen >= r - 1 | None -> false
              in
              let failure = ref None in
              let fail msg = if !failure = None then failure := Some msg in
              let handle = function
                | Protocol.Repl_welcome { version = _; records = r } -> records := Some r
                | Protocol.Repl_instance { job; body } ->
                    Replica.write_blob ~path:(Filename.concat spool job) body;
                    incr attachments
                | Protocol.Repl_result { job; body } ->
                    Replica.write_blob ~path:(Work.result_path ~spool ~job) body;
                    incr attachments
                | Protocol.Repl_cache { key; body } -> (
                    match cache_dir with
                    | Some dir ->
                        E.Cache.store_raw ~dir ~key body;
                        incr attachments
                    | None -> ())
                | Protocol.Repl_frame { seq; line } -> (
                    seen := max !seen seq;
                    match Replica.apply_line f ~seq ~line with
                    | `Applied _ -> incr applied
                    | `Stale -> ()
                    | `Gap -> fail (Printf.sprintf "sequence gap at frame %d" seq)
                    | `Bad -> fail (Printf.sprintf "undecodable frame at seq %d" seq))
                | Protocol.Errored { code; msg } ->
                    fail (Printf.sprintf "peer error %s: %s" code msg)
                | _ -> ()
              in
              let buf = Bytes.create 8192 in
              (try
                 while (not (finished ())) && !failure = None do
                   let left = deadline -. Unix.gettimeofday () in
                   if left <= 0.0 then fail "catch-up timed out"
                   else
                     match Eintr.select [ fd ] [] [] left with
                     | [], _, _ -> ()
                     | _ -> (
                         match Eintr.read fd buf 0 (Bytes.length buf) with
                         | 0 -> fail "peer closed before catch-up completed"
                         | n ->
                             List.iter
                               (fun item ->
                                 if !failure = None then
                                   match item with
                                   | `Frame payload -> (
                                       match Protocol.parse_response payload with
                                       | Ok resp -> handle resp
                                       | Error msg -> fail ("unparseable frame: " ^ msg))
                                   | `Corrupt _ -> fail "corrupt frame from peer"
                                   | `Overflow -> fail "frame overflow from peer")
                               (Frame.feed reader (Bytes.sub_string buf 0 n)))
                 done
               with Unix.Unix_error (e, fn, _) ->
                 fail (Printf.sprintf "%s: %s" fn (Unix.error_message e)));
              match !failure with
              | Some msg -> Error msg
              | None ->
                  Ok
                    {
                      records = Option.value ~default:0 !records;
                      applied = !applied;
                      attachments = !attachments;
                    }))
