open Rtt_service
module E = Rtt_engine

type config = {
  spool : string;
  socket_path : string;
  primary : Client.endpoint;
  cache_dir : string option;
  max_frame : int;
  takeover_after : float option;
  seed : int;
  verbose : bool;
}

let default_config ~spool ~socket_path ~primary =
  {
    spool;
    socket_path;
    primary;
    cache_dir = None;
    max_frame = 16 * 1024 * 1024;
    takeover_after = None;
    seed = 0;
    verbose = false;
  }

type outcome = Promote | Exit of int

type link = { fd : Unix.file_descr; reader : Frame.reader }

let now () = Unix.gettimeofday ()

let run cfg =
  let spool = cfg.spool in
  let log fmt =
    Printf.ksprintf (fun s -> if cfg.verbose then Printf.eprintf "[replica] %s\n%!" s) fmt
  in
  let f = Replica.open_follower ~spool in
  log "standing by at watermark %d" f.Replica.watermark;
  let status_of job = List.assoc_opt job f.Replica.states in
  let terminal job =
    match status_of job with
    | Some (Journal.Completed _) | Some (Journal.Dead _) -> true
    | _ -> false
  in
  let id_of_job job =
    if Filename.check_suffix job Work.instance_suffix then
      Filename.chop_suffix job Work.instance_suffix
    else job
  in
  let job_of_id id = id ^ Work.instance_suffix in
  let rendered_of job =
    match Work.read_result ~spool ~job with
    | None -> "(result file missing)\n"
    | Some kvs -> (
        match Option.bind (List.assoc_opt "rendered" kvs) Frame.unescape with
        | Some r -> r
        | None ->
            let get k = Option.value ~default:"?" (List.assoc_opt k kvs) in
            Printf.sprintf "rung:     %s\nmakespan: %s\nbudget:   %s\nallocation: %s\n"
              (get "rung") (get "makespan") (get "budget_used") (get "allocation"))
  in
  let terminal_response job =
    let id = id_of_job job in
    match status_of job with
    | Some (Journal.Completed _) -> Protocol.Result { id; rendered = rendered_of job }
    | Some (Journal.Dead { attempts; error_class }) ->
        Protocol.Failed { id; error_class; attempts }
    | _ -> Protocol.Errored { code = "internal"; msg = "job not terminal" }
  in
  (* ---------------------------------------------------------------- *)
  (* local read-only serving                                           *)
  let conns = ref ([] : Conn.t list) in
  let waiters : (string, Conn.t list) Hashtbl.t = Hashtbl.create 16 in
  let promote_via : Conn.t option ref = ref None in
  let stop = ref false in
  let drop_conn c =
    (try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ());
    conns := List.filter (fun x -> x != c) !conns
  in
  let notify_waiters job =
    match Hashtbl.find_opt waiters job with
    | None -> ()
    | Some cs ->
        Hashtbl.remove waiters job;
        let resp = terminal_response job in
        List.iter
          (fun c ->
            if List.memq c !conns then begin
              Conn.send c resp;
              Conn.remove_wait c (id_of_job job)
            end)
          cs
  in
  let stats_json () =
    Replica.stats_json ~lp:(Rtt_lp.Simplex.lp_stats_json ()) ~role:"follower"
      ~records:f.Replica.watermark ~sync_replicas:0 ~held:0 ~followers:[] ()
  in
  let handle_request c = function
    | Protocol.Hello _ ->
        Conn.send c (Protocol.Welcome { version = Protocol.version; max_frame = cfg.max_frame })
    | Protocol.Ping -> Conn.send c Protocol.Pong
    | Protocol.Bye -> Conn.close_after_flush c
    | Protocol.Status { id } ->
        Conn.send c
          (Protocol.Status_is { id; json = Jobview.json_of ~id (status_of (job_of_id id)) })
    | Protocol.Stats -> Conn.send c (Protocol.Stats_is { json = stats_json () })
    | Protocol.Wait { id } ->
        let job = job_of_id id in
        if terminal job then Conn.send c (terminal_response job)
        else if status_of job <> None then begin
          Conn.add_wait c id;
          Hashtbl.replace waiters job
            (c :: Option.value ~default:[] (Hashtbl.find_opt waiters job))
        end
        else Conn.send c (Protocol.Errored { code = "unknown-job"; msg = id })
    | Protocol.Submit _ ->
        Conn.send c
          (Protocol.Errored { code = "read-only"; msg = "this is a follower; submit to the primary" })
    | Protocol.Submit_many { bodies; _ } ->
        (* one error per entry, preserving the batch's answer-count
           contract for a client that did not check the role first *)
        List.iter
          (fun _ ->
            Conn.send c
              (Protocol.Errored
                 { code = "read-only"; msg = "this is a follower; submit to the primary" }))
          bodies
    | Protocol.Promote ->
        log "promotion requested by %s" (Conn.peer c);
        Conn.send c Protocol.Promoting;
        promote_via := Some c
    | Protocol.Repl_hello { version = _; watermark } ->
        (* static catch-up serving: [rtt fsck --repair] can pull records
           and attachments from a live follower while the primary is
           dead. Unlike the primary's replication path this is a
           snapshot — we ship the committed prefix as of now and do not
           stream frames that arrive later. *)
        let records = f.Replica.watermark in
        let from = max 0 (min watermark records) in
        log "serving catch-up to %s from record %d of %d" (Conn.peer c) from records;
        Conn.send c (Protocol.Repl_welcome { version = Protocol.version; records });
        List.iter
          (fun (seq, line) ->
            (match Journal.decode line with
            | Some r ->
                List.iter
                  (fun spec ->
                    Conn.send c
                      (match spec with
                      | `Instance (job, body) -> Protocol.Repl_instance { job; body }
                      | `Result (job, body) -> Protocol.Repl_result { job; body }
                      | `Cache (key, body) -> Protocol.Repl_cache { key; body }))
                  (Replica.attachment_specs ~spool ~cache_dir:cfg.cache_dir r)
            | None -> ());
            Conn.send c (Protocol.Repl_frame { seq; line }))
          (Replica.lines_from ~spool from)
    | Protocol.Repl_ack _ ->
        (* a puller has no business acking a snapshot; ignore *)
        ()
    | Protocol.Session_open _ | Protocol.Session_mutate _ | Protocol.Session_solve _
    | Protocol.Session_close _ ->
        Conn.send c
          (Protocol.Errored
             { code = "read-only"; msg = "this is a follower; sessions live on the primary" })
  in
  let conn_readable c =
    match Conn.read c ~now:(now ()) with
    | `Again -> ()
    | `Eof -> drop_conn c
    | `Frames items ->
        List.iter
          (fun item ->
            if not (Conn.closing c) then
              match item with
              | `Frame payload -> (
                  match Protocol.parse_request payload with
                  | Ok req -> handle_request c req
                  | Error msg -> Conn.send c (Protocol.Errored { code = "bad-request"; msg }))
              | `Corrupt _ ->
                  Conn.send c
                    (Protocol.Errored { code = "bad-frame"; msg = "CRC or framing failure" });
                  Conn.close_after_flush c
              | `Overflow ->
                  Conn.send c
                    (Protocol.Errored
                       {
                         code = "frame-overflow";
                         msg = Printf.sprintf "line exceeds %d bytes" cfg.max_frame;
                       });
                  Conn.close_after_flush c)
          items
  in
  let conn_flush c =
    match Conn.flush c with
    | `Closed -> drop_conn c
    | `Done -> if Conn.closing c then drop_conn c
    | `Again -> ()
  in
  (* ---------------------------------------------------------------- *)
  (* the primary link                                                  *)
  let link = ref (None : link option) in
  let down_since = ref (now ()) in
  let attempt = ref 0 in
  let next_try = ref 0.0 in
  let last_ack = ref 0.0 in
  let send_ack l =
    if Rtt_budget.Budget.probe ~site:E.Faults.repl_ack_delay_site then
      (* fault: swallow this ack; the heartbeat below re-sends the
         watermark, so lag inflates but nothing deadlocks *)
      log "fault: delaying ack at watermark %d" f.Replica.watermark
    else begin
      (try Frame.write l.fd (Protocol.encode_request (Protocol.Repl_ack { watermark = f.Replica.watermark }))
       with Unix.Unix_error _ -> ());
      last_ack := now ()
    end
  in
  let drop_link reason =
    match !link with
    | None -> ()
    | Some l ->
        (try Unix.close l.fd with Unix.Unix_error _ -> ());
        link := None;
        down_since := now ();
        next_try := 0.0;
        log "primary link down (%s); will reconnect from watermark %d" reason f.Replica.watermark
  in
  let try_connect () =
    incr attempt;
    match Client.connect cfg.primary with
    | Ok c ->
        let fd = Client.fd c in
        attempt := 0;
        link := Some { fd; reader = Frame.reader ~max_frame:cfg.max_frame () };
        (try
           Frame.write fd
             (Protocol.encode_request
                (Protocol.Repl_hello
                   { version = Protocol.version; watermark = f.Replica.watermark }))
         with Unix.Unix_error _ -> drop_link "hello write failed");
        last_ack := now ();
        log "connected to primary, offering watermark %d" f.Replica.watermark
    | Error e ->
        let ms = Retry.backoff ~seed:cfg.seed ~job:"repl" ~attempt:(max 1 !attempt) in
        next_try := now () +. (float_of_int ms /. 1000.);
        log "primary unreachable (%s); retry in %d ms" (Client.error_to_string e) ms
  in
  let handle_repl l = function
    | Protocol.Repl_welcome { version = _; records } ->
        log "primary has %d records (we hold %d)" records f.Replica.watermark
    | Protocol.Repl_instance { job; body } ->
        Replica.write_blob ~path:(Filename.concat spool job) body
    | Protocol.Repl_result { job; body } ->
        Replica.write_blob ~path:(Work.result_path ~spool ~job) body
    | Protocol.Repl_cache { key; body } -> (
        match cfg.cache_dir with
        | Some dir -> E.Cache.store_raw ~dir ~key body
        | None -> ())
    | Protocol.Repl_frame { seq; line } -> (
        match Replica.apply_line f ~seq ~line with
        | `Applied r ->
            (match r.Journal.event with
            | Journal.Done _ | Journal.Failed { transient = false; _ } ->
                notify_waiters r.Journal.job
            | Journal.Failed _ | Journal.Queued | Journal.Started _ | Journal.Abandoned _ -> ());
            (* retries-exhausted arrives as a non-transient Failed, so
               the Dead fold is covered above; anything else waits *)
            send_ack l
        | `Stale -> ()
        | `Gap ->
            log "sequence gap at %d (watermark %d)" seq f.Replica.watermark;
            drop_link "sequence gap"
        | `Bad ->
            log "undecodable frame at seq %d" seq;
            drop_link "bad frame")
    | Protocol.Errored { code; msg } -> log "primary error %s: %s" code msg
    | _ -> ()
  in
  let link_readable l =
    let buf = Bytes.create 8192 in
    match Eintr.read l.fd buf 0 8192 with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> drop_link "read error"
    | 0 -> drop_link "primary closed"
    | n ->
        List.iter
          (fun item ->
            if !link != None then
              match item with
              | `Frame payload -> (
                  match Protocol.parse_response payload with
                  | Ok resp -> handle_repl l resp
                  | Error msg -> log "unparseable frame from primary: %s" msg)
              | `Corrupt _ -> drop_link "corrupt frame"
              | `Overflow -> drop_link "frame overflow")
          (Frame.feed l.reader (Bytes.sub_string buf 0 n))
  in
  (* ---------------------------------------------------------------- *)
  (* event loop                                                        *)
  let on_signal _ = stop := true in
  let saved_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let saved_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let saved_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let cleanup () =
    List.iter (fun c -> ignore (Conn.flush c)) !conns;
    List.iter (fun c -> try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ()) !conns;
    conns := [];
    (match !link with Some l -> (try Unix.close l.fd with Unix.Unix_error _ -> ()) | None -> ());
    link := None;
    Replica.close_follower f
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm saved_term;
      Sys.set_signal Sys.sigint saved_int;
      Sys.set_signal Sys.sigpipe saved_pipe)
    (fun () ->
      match Daemon.listen_unix cfg.socket_path with
      | exception Failure msg ->
          Printf.eprintf "rtt: %s\n%!" msg;
          cleanup ();
          Exit 124
      | listener ->
          let promote = ref false in
          while (not !stop) && not !promote do
            if !link = None && now () >= !next_try then try_connect ();
            (* auto-takeover: the link has been continuously dead past
               the deadline *)
            (match cfg.takeover_after with
            | Some d when !link = None && now () -. !down_since >= d ->
                log "primary dead for %.1fs; taking over" (now () -. !down_since);
                promote := true
            | _ -> ());
            if not !promote then begin
              (match !promote_via with
              | Some c -> if not (List.memq c !conns) || not (Conn.wants_write c) then promote := true
              | None -> ());
              if not !promote then begin
                let reads =
                  (listener :: (match !link with Some l -> [ l.fd ] | None -> []))
                  @ List.filter_map
                      (fun c -> if Conn.closing c then None else Some (Conn.fd c))
                      !conns
                in
                let writes =
                  List.filter_map
                    (fun c -> if Conn.wants_write c then Some (Conn.fd c) else None)
                    !conns
                in
                let r, wr, _ = Eintr.select reads writes [] 0.25 in
                List.iter
                  (fun fd ->
                    if fd = listener then (
                      match Unix.accept listener with
                      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                        -> ()
                      | cfd, _ ->
                          Unix.set_nonblock cfd;
                          conns := Conn.create ~max_frame:cfg.max_frame ~peer:"local" ~now:(now ()) cfd :: !conns)
                    else
                      match !link with
                      | Some l when l.fd = fd -> link_readable l
                      | _ -> (
                          match List.find_opt (fun c -> Conn.fd c = fd) !conns with
                          | Some c -> conn_readable c
                          | None -> ()))
                  r;
                List.iter
                  (fun fd ->
                    match List.find_opt (fun c -> Conn.fd c = fd) !conns with
                    | Some c -> conn_flush c
                    | None -> ())
                  wr;
                List.iter
                  (fun c -> if Conn.wants_write c || Conn.closing c then conn_flush c)
                  !conns;
                (* heartbeat: an idle link still proves liveness and
                   re-offers the watermark, covering any ack the
                   ack-delay fault swallowed *)
                (match !link with
                | Some l when now () -. !last_ack >= 1.0 -> send_ack l
                | _ -> ())
              end
            end
          done;
          (try Unix.close listener with Unix.Unix_error _ -> ());
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
          cleanup ();
          if !promote then begin
            (* fsync-seal the tail; the committed prefix is what the
               successor daemon replays (and replays claims from) *)
            let records = Journal.seal ~spool in
            log "promoting with %d committed records" records;
            Promote
          end
          else Exit 0)
