open Rtt_service

type config = {
  endpoint : Client.endpoint;
  clients : int;
  rate : float; (* jobs/sec fleet-wide; 0 = closed-loop saturation *)
  depth : int; (* in-flight bound per connection (saturation mode) *)
  duration : float; (* measured seconds, after warmup *)
  warmup : float; (* seconds whose samples are discarded *)
  bodies : string array; (* instance texts, cycled round-robin *)
}

type report = {
  clients : int;
  rate : float;
  duration_s : float;
  wall_s : float;
  sent : int;
  acked : int;
  shed : int;
  errors : int;
  jobs_per_sec : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  histogram : (float * int) list; (* (bucket upper bound in ms, count) *)
}

(* ------------------------------------------------------------------ *)
(* HDR-style histogram: log-spaced octaves of 8 linear sub-buckets
   over microseconds — ~12% relative precision from 1 µs to ~4.7 min
   in 176 fixed slots, constant-time record, no per-sample storage *)

module Hist = struct
  let octaves = 22
  let subs = 8
  let slots = octaves * subs

  type t = { counts : int array; mutable total : int; mutable max_us : int }

  let create () = { counts = Array.make slots 0; total = 0; max_us = 0 }

  let index_of_us us =
    let us = max 1 us in
    let octave =
      let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
      bits us 0
    in
    if octave < 3 then min (subs - 1) us
    else
      let o = min (octaves - 1) (octave - 2) in
      let sub = (us lsr (octave - 3)) land (subs - 1) in
      (o * subs) + sub

  (* slot (o, sub) with o >= 1 covers values in
     [2^(o+2) + sub * 2^(o-1), 2^(o+2) + (sub+1) * 2^(o-1)), i.e. upper
     bound (9 + sub) * 2^(o-1); o = 0 slots are exact (us < 8) *)
  let upper_us_of_index i =
    let o = i / subs and sub = i mod subs in
    if o = 0 then max sub 1 else (9 + sub) lsl (o - 1)

  let record t ~us =
    t.counts.(index_of_us us) <- t.counts.(index_of_us us) + 1;
    t.total <- t.total + 1;
    if us > t.max_us then t.max_us <- us

  let percentile t q =
    if t.total = 0 then 0.
    else begin
      let target = int_of_float (ceil (q *. float_of_int t.total)) in
      let seen = ref 0 and answer = ref 0. in
      (try
         for i = 0 to slots - 1 do
           seen := !seen + t.counts.(i);
           if !seen >= target then begin
             answer := float_of_int (upper_us_of_index i) /. 1000.;
             raise Exit
           end
         done
       with Exit -> ());
      !answer
    end

  let nonempty_buckets t =
    let acc = ref [] in
    for i = slots - 1 downto 0 do
      if t.counts.(i) > 0 then
        acc := (float_of_int (upper_us_of_index i) /. 1000., t.counts.(i)) :: !acc
    done;
    !acc
end

(* ------------------------------------------------------------------ *)
(* one generator connection: its own socket, frame reader, out-buffer,
   and the FIFO of send timestamps its pipelined submits will be
   answered in (the daemon answers submits in arrival order) *)

type gconn = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  mutable out : string; (* unwritten wire bytes *)
  inflight : float Queue.t; (* send timestamp per unanswered submit *)
  mutable gsent : int;
}

let connect_gconn endpoint =
  match Client.connect endpoint with
  | Error e -> Error (Client.error_to_string e)
  | Ok c ->
      let fd = Client.fd c in
      Unix.set_nonblock fd;
      Ok { fd; reader = Frame.reader (); out = ""; inflight = Queue.create (); gsent = 0 }

let now () = Unix.gettimeofday ()

let run (cfg : config) =
  if cfg.clients <= 0 then Error "clients must be positive"
  else if Array.length cfg.bodies = 0 then Error "no instance bodies to submit"
  else if cfg.duration <= 0. then Error "duration must be positive"
  else begin
    let conns_r =
      let rec go acc k =
        if k = 0 then Ok (Array.of_list (List.rev acc))
        else
          match connect_gconn cfg.endpoint with
          | Error _ as e -> e
          | Ok g -> go (g :: acc) (k - 1)
      in
      go [] cfg.clients
    in
    match conns_r with
    | Error msg ->
        Error (Printf.sprintf "connect: %s" msg)
    | Ok conns ->
        let hist = Hist.create () in
        let sent = ref 0 and acked = ref 0 and shed = ref 0 and errors = ref 0 in
        let t0 = now () in
        let measure_from = t0 +. cfg.warmup in
        let stop_sending_at = measure_from +. cfg.duration in
        let body_i = ref 0 in
        let next_body () =
          let b = cfg.bodies.(!body_i mod Array.length cfg.bodies) in
          incr body_i;
          b
        in
        let enqueue_submit g t =
          let body = next_body () in
          let req =
            Protocol.Submit { name = Printf.sprintf "loadgen-%d" !sent; body }
          in
          g.out <- g.out ^ Frame.frame (Protocol.encode_request req) ^ "\n";
          Queue.push t g.inflight;
          g.gsent <- g.gsent + 1;
          incr sent
        in
        let account g resp t =
          match Queue.take_opt g.inflight with
          | None -> incr errors (* a reply with no question: protocol bug *)
          | Some t_sent ->
              if t_sent >= measure_from then
                Hist.record hist ~us:(int_of_float ((t -. t_sent) *. 1e6));
              (match resp with
              | Protocol.Accepted _ -> incr acked
              | Protocol.Shed _ -> incr shed
              | _ -> incr errors)
        in
        let dead = ref 0 in
        let closed = Array.make (Array.length conns) false in
        let close_g i =
          if not closed.(i) then begin
            closed.(i) <- true;
            incr dead;
            errors := !errors + Queue.length conns.(i).inflight;
            Queue.clear conns.(i).inflight;
            try Unix.close conns.(i).fd with Unix.Unix_error _ -> ()
          end
        in
        let readable i t =
          let g = conns.(i) in
          let buf = Bytes.create 16384 in
          match Unix.read g.fd buf 0 16384 with
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
          | exception Unix.Unix_error _ -> close_g i
          | 0 -> close_g i
          | n ->
              List.iter
                (function
                  | `Frame payload -> (
                      match Protocol.parse_response payload with
                      | Ok resp -> account g resp t
                      | Error _ -> incr errors)
                  | `Corrupt _ | `Overflow -> close_g i)
                (Frame.feed g.reader (Bytes.sub_string buf 0 n))
        in
        let writable i =
          let g = conns.(i) in
          if g.out <> "" then
            match Unix.write_substring g.fd g.out 0 (String.length g.out) with
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
            | exception Unix.Unix_error _ -> close_g i
            | n -> g.out <- String.sub g.out n (String.length g.out - n)
        in
        (* open loop: job k is due at t0 + k/rate, round-robin over the
           connections — the schedule does not slow down because the
           daemon is slow; that is the point *)
        let scheduled = ref 0 in
        let rr = ref 0 in
        let pump t =
          if t < stop_sending_at then begin
            if cfg.rate > 0. then begin
              let due = int_of_float ((t -. t0) *. cfg.rate) in
              while !scheduled < due do
                let due_at = t0 +. (float_of_int !scheduled /. cfg.rate) in
                let i = !rr mod Array.length conns in
                incr rr;
                if not closed.(i) then enqueue_submit conns.(i) due_at;
                incr scheduled
              done
            end
            else
              (* saturation: keep every connection topped up to depth *)
              Array.iteri
                (fun i g ->
                  if not closed.(i) then
                    while Queue.length g.inflight < cfg.depth do
                      enqueue_submit g t
                    done)
                conns
          end
        in
        let outstanding () =
          Array.fold_left (fun acc g -> acc + Queue.length g.inflight) 0 conns
        in
        let live_indices () =
          let acc = ref [] in
          Array.iteri (fun i _ -> if not closed.(i) then acc := i :: !acc) conns;
          !acc
        in
        let grace = stop_sending_at +. 10. in
        let rec loop () =
          let t = now () in
          if !dead = Array.length conns then ()
          else if t >= stop_sending_at && outstanding () = 0 then ()
          else if t >= grace then ()
          else begin
            pump t;
            let idx = live_indices () in
            let reads = List.map (fun i -> conns.(i).fd) idx in
            let writes =
              List.filter_map (fun i -> if conns.(i).out <> "" then Some conns.(i).fd else None) idx
            in
            (match Unix.select reads writes [] 0.05 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | r, w, _ ->
                let t = now () in
                List.iter (fun i -> if List.mem conns.(i).fd w then writable i) idx;
                List.iter (fun i -> if List.mem conns.(i).fd r then readable i t) idx);
            loop ()
          end
        in
        loop ();
        Array.iteri (fun i _ -> close_g i) conns;
        (* unanswered submits at the grace cutoff were already rolled
           into errors by close_g; the wall clock covers the measured
           window only *)
        let wall = Float.max 0.001 (Float.min (now () -. measure_from) cfg.duration) in
        Ok
          {
            clients = cfg.clients;
            rate = cfg.rate;
            duration_s = cfg.duration;
            wall_s = wall;
            sent = !sent;
            acked = !acked;
            shed = !shed;
            errors = !errors;
            jobs_per_sec = float_of_int hist.Hist.total /. wall;
            p50_ms = Hist.percentile hist 0.50;
            p95_ms = Hist.percentile hist 0.95;
            p99_ms = Hist.percentile hist 0.99;
            max_ms = float_of_int hist.Hist.max_us /. 1000.;
            histogram = Hist.nonempty_buckets hist;
          }
  end

let to_json r =
  let hist =
    String.concat ","
      (List.map (fun (ub, n) -> Printf.sprintf "[%.3f,%d]" ub n) r.histogram)
  in
  Printf.sprintf
    {|{"schema":"rtt-loadgen/1","clients":%d,"rate":%.1f,"duration_s":%.1f,"wall_s":%.3f,"sent":%d,"acked":%d,"shed":%d,"errors":%d,"jobs_per_sec":%.1f,"latency_ms":{"p50":%.3f,"p95":%.3f,"p99":%.3f,"max":%.3f},"histogram":[%s]}|}
    r.clients r.rate r.duration_s r.wall_s r.sent r.acked r.shed r.errors r.jobs_per_sec
    r.p50_ms r.p95_ms r.p99_ms r.max_ms hist
