(** Load generator for the daemon — the engine behind [rtt loadgen].

    Drives [clients] concurrent pipelined connections from one
    single-threaded select loop (the generator must be cheaper than the
    thing it measures). Two arrival disciplines:

    - {b open loop} ([rate > 0]): job [k] is due at [t0 + k/rate],
      round-robin over the connections, and the schedule does {e not}
      slow down when the daemon does — latency under a fixed offered
      load is exactly what an SLO speaks about, and closed-loop
      generators famously hide it (coordinated omission).
    - {b saturation} ([rate = 0]): every connection is kept topped up
      to [depth] in-flight submits, measuring peak throughput.

    Latencies are measured from each submit's {e scheduled} time to its
    ack and recorded in an HDR-style histogram (log-spaced octaves of
    linear sub-buckets, ~12% relative precision, no per-sample
    storage); samples before [warmup] elapses are discarded. Sheds and
    errors are counted per class, never silently dropped. *)

type config = {
  endpoint : Client.endpoint;
  clients : int;  (** Concurrent connections. *)
  rate : float;  (** Fleet-wide jobs/sec; [0.] = saturation mode. *)
  depth : int;  (** Per-connection in-flight bound (saturation mode). *)
  duration : float;  (** Measured seconds, after warmup. *)
  warmup : float;  (** Leading seconds excluded from the statistics. *)
  bodies : string array;  (** Instance texts, cycled round-robin. *)
}

type report = {
  clients : int;
  rate : float;
  duration_s : float;
  wall_s : float;  (** Measured-window wall clock actually covered. *)
  sent : int;
  acked : int;
  shed : int;
  errors : int;
  jobs_per_sec : float;  (** Measured responses over [wall_s]. *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  histogram : (float * int) list;
      (** Occupied buckets only: (upper bound in ms, count). *)
}

val run : config -> (report, string) result
(** Run one generation; blocks for [warmup + duration] plus up to 10 s
    of drain grace for still-unanswered submits (those count as
    errors). [Error] only on setup failure (connect refused, empty
    body set). *)

val to_json : report -> string
(** One-line JSON ([rtt-loadgen/1] schema) — what
    [scripts/loadgen_gate.sh] parses and [BENCH_LOADGEN.json]
    stores. *)
