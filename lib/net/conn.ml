open Rtt_service

type t = {
  fd : Unix.file_descr;
  peer : string;
  reader : Frame.reader;
  mutable out : string;  (* bytes not yet accepted by the socket *)
  mutable last_read : float;
  mutable wait_ids : string list;
  mutable close_pending : bool;
}

let create ?max_frame ~peer ~now fd =
  {
    fd;
    peer;
    reader = Frame.reader ?max_frame ();
    out = "";
    last_read = now;
    wait_ids = [];
    close_pending = false;
  }

let fd t = t.fd
let peer t = t.peer
let chunk = 8192

let read t ~now =
  let buf = Bytes.create chunk in
  match Eintr.read t.fd buf 0 chunk with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Again
  | exception Unix.Unix_error (_, _, _) -> `Eof
  | 0 -> `Eof
  | n ->
      t.last_read <- now;
      `Frames (Frame.feed t.reader (Bytes.sub_string buf 0 n))

let send t resp = t.out <- t.out ^ Frame.frame (Protocol.encode_response resp) ^ "\n"
let wants_write t = t.out <> ""

let flush t =
  let rec go () =
    if t.out = "" then `Done
    else
      match Eintr.write t.fd (Bytes.unsafe_of_string t.out) 0 (String.length t.out) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Again
      | exception Unix.Unix_error (_, _, _) -> `Closed
      | n ->
          t.out <- String.sub t.out n (String.length t.out - n);
          go ()
  in
  go ()

let close_after_flush t = t.close_pending <- true
let closing t = t.close_pending
let add_wait t id = if not (List.mem id t.wait_ids) then t.wait_ids <- id :: t.wait_ids
let remove_wait t id = t.wait_ids <- List.filter (fun x -> x <> id) t.wait_ids
let waits t = t.wait_ids
let idle_for t ~now = now -. t.last_read
