(** Bounded admission queue: the daemon's only backpressure mechanism.

    A submission is either admitted (and then durably journaled before
    the client hears [accepted]) or shed with a retry-after hint —
    never silently dropped, never queued unboundedly. The hint is an
    EWMA of recent per-job service times scaled by the current
    occupancy, so a client that honors it re-arrives roughly when a
    slot has drained.

    The queue tracks jobs from admission to terminal completion
    ([offer] -> [take] -> [finish]), so duplicate submissions of an
    in-flight job are recognized ([`Duplicate]) instead of consuming a
    second slot. All functions take [now]/[elapsed_ms] explicitly —
    the module never reads the clock, which keeps the retry-hint
    arithmetic deterministic under test. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64) bounds jobs admitted but not yet finished
    (queued + in flight). *)

val capacity : t -> int

val offer : t -> id:string -> [ `Admitted | `Duplicate | `Shed of int ]
(** Try to admit [id]. [`Duplicate] if it is already queued or in
    flight (not an error: the caller coalesces). [`Shed ms] carries
    the retry-after hint. *)

val force : t -> id:string -> unit
(** Admit ignoring capacity — for adopting a restart backlog that was
    already journaled (refusing it would lose accepted jobs). No-op if
    already tracked. *)

val take : t -> string option
(** Dequeue the next job for assignment; it stays tracked (in flight)
    until {!finish}. *)

val requeue : t -> id:string -> unit
(** Put an in-flight job back at the queue tail (worker died, transient
    retry). No-op unless the job is tracked and not already queued. *)

val finish : t -> id:string -> elapsed_ms:int -> unit
(** The job reached a terminal state: release its slot and feed the
    service-time EWMA. *)

val queued : t -> int
val in_flight : t -> int

val retry_after_ms : t -> int
(** Occupancy times the smoothed service time, clamped to
    [[100 ms, 60 s]]. *)

(** {1 Cross-shard aggregation}

    A sharded daemon has one admission queue per shard; a shed answered
    from one shard's occupancy alone would overestimate how long the
    {e fleet} needs to free a slot. Each shard periodically writes its
    {!snapshot} to a stat file, and the shedding shard feeds every
    sibling's snapshot to {!aggregate} for the fleet-wide hint. *)

val snapshot : t -> string
(** This queue's [tracked] count and smoothed service time, in the
    textual form {!aggregate} parses. Stable across processes. *)

val aggregate : string list -> int
(** Fleet-wide retry-after hint from one {!snapshot} per shard: total
    occupancy times the mean smoothed service time, divided by the
    shard count (the fleet drains that many jobs concurrently), clamped
    like {!retry_after_ms}. Unparseable snapshots (a torn stat file)
    are skipped; [aggregate [snapshot t]] equals {!retry_after_ms}[ t]
    up to rounding. *)
