open Rtt_service
module E = Rtt_engine
module Session = Rtt_session.Session

type config = {
  service : Work.config;
  socket_path : string;
  tcp : (string * int) option;
  queue_capacity : int;
  max_frame : int;
  idle_timeout : float;
  sync_replicas : int;
  shards : int;
}

let default_config ~spool ~socket_path =
  {
    service = Supervisor.default_config ~spool;
    socket_path;
    tcp = None;
    queue_capacity = 64;
    max_frame = 16 * 1024 * 1024;
    idle_timeout = 30.0;
    sync_replicas = 0;
    shards = 1;
  }

type repl_peer = { conn : Conn.t; mutable sent : int; mutable acked : int }

type worker = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  reader : Frame.reader;
  mutable current : (string * int) option;
}

(* a request relayed to the shard that owns its job id, waiting for the
   owner's response to come back over the link *)
type relay = { relay_id : string; deliver : Protocol.response -> unit }

type link = {
  peer_shard : int;
  lfd : Unix.file_descr;
  lreader : Frame.reader;
  mutable relays : relay list; (* FIFO *)
  mutable last_ping : float;
}

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | _ -> ()
  in
  go ()

let now () = Unix.gettimeofday ()

let listen_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      (* a socket file is already there: probe it — refuse to evict a
         live daemon, but clean up after a crashed one *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let alive =
        try
          Unix.connect probe (Unix.ADDR_UNIX path);
          true
        with Unix.Unix_error _ -> false
      in
      Unix.close probe;
      if alive then begin
        Unix.close fd;
        failwith (Printf.sprintf "%s: a daemon is already listening" path)
      end
      else begin
        Unix.unlink path;
        Unix.bind fd (Unix.ADDR_UNIX path)
      end);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let listen_tcp (host, port) =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith (Printf.sprintf "%s: unknown host" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (* shards share one bound descriptor inherited across fork, but
     SO_REUSEPORT additionally lets an operator run independently bound
     acceptors behind the same port during a rolling restart *)
  (try Unix.setsockopt fd Unix.SO_REUSEPORT true with Unix.Unix_error _ | Invalid_argument _ -> ());
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

(* deterministic digest -> shard routing, stable across processes and
   OCaml versions (no Hashtbl.hash): job ids are fingerprint digests,
   so the leading 28 bits of hex are already uniform; anything else
   (a client probing a made-up id) falls back to a polynomial hash so
   every id still routes somewhere fixed *)
let shard_of_id ~shards id =
  if shards <= 1 then 0
  else
    let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false in
    let hex_prefix =
      if String.length id >= 7 then begin
        let ok = ref true in
        for i = 0 to 6 do
          if not (is_hex id.[i]) then ok := false
        done;
        if !ok then int_of_string_opt ("0x" ^ String.sub id 0 7) else None
      end
      else None
    in
    let h =
      match hex_prefix with
      | Some h -> h
      | None ->
          let acc = ref 0 in
          String.iter (fun ch -> acc := ((!acc * 131) + Char.code ch) land 0xFFFFFFF) id;
          !acc
    in
    h mod shards

let shard_spool ~spool k = Filename.concat spool (Printf.sprintf "shard-%d" k)
let intern_socket cfg k = Printf.sprintf "%s.shard%d" cfg.socket_path k
let stat_file ~root k = Filename.concat root (Printf.sprintf "admission-%d.stat" k)

let read_small_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (min 256 (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* one shard's serve loop (shards = 1 is the whole daemon)             *)

let serve cfg ~shard ~shards ~own_socket ls =
  let spool = cfg.service.Work.spool in
  let log fmt =
    Printf.ksprintf
      (fun s ->
        if cfg.service.Work.verbose then
          Printf.eprintf "[daemon%s] %s\n%!"
            (if shards > 1 then Printf.sprintf ".%d" shard else "")
            s)
      fmt
  in
  (* open first: it seals a torn tail, so the replay below sees exactly
     the committed prefix that replication sequence numbers count *)
  let journal = Journal.open_ ~spool in
  let replayed = Journal.replay ~spool in
  let states = ref (Journal.fold replayed) in
  let nrecords = ref (List.length replayed) in
  let after_append : (int -> string -> unit) ref = ref (fun _ _ -> ()) in
  let record event job =
    let r = { Journal.job; event } in
    let line = Journal.encode r in
    Journal.append_line journal line;
    states := Journal.apply !states r;
    let seq = !nrecords in
    nrecords := seq + 1;
    !after_append seq line
  in
  let status_of job = List.assoc_opt job !states in
  let terminal job =
    match status_of job with
    | Some (Journal.Completed _) | Some (Journal.Dead _) -> true
    | _ -> false
  in
  let id_of_job job =
    if Filename.check_suffix job Work.instance_suffix then
      Filename.chop_suffix job Work.instance_suffix
    else job
  in
  let job_of_id id = id ^ Work.instance_suffix in
  let next_attempt job =
    match status_of job with
    | Some (Journal.Completed _) | Some (Journal.Dead _) -> None
    | Some (Journal.Pending { attempts }) -> Some (attempts + 1)
    | Some (Journal.Running { attempt }) | Some (Journal.Interrupted { attempt }) ->
        Some (attempt + 1)
    | None -> Some 1
  in
  let admission = Admission.create ~capacity:cfg.queue_capacity () in
  let sessions = Session.create_store ~spool in
  let started_at : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let conns = ref ([] : Conn.t list) in
  let waiters : (string, Conn.t list) Hashtbl.t = Hashtbl.create 16 in
  let workers = ref ([] : worker list) in
  let listeners = ref ([] : Unix.file_descr list) in
  let links : (int, link) Hashtbl.t = Hashtbl.create 8 in
  let drain = ref false in
  let force = ref false in
  let followers = ref ([] : repl_peer list) in
  (* a sharded daemon does not replicate (each shard is its own journal
     writer; replication composes with shards = 1 only) *)
  let sync = Replica.Sync.create ~replicas:(if shards > 1 then 0 else cfg.sync_replicas) in
  let is_follower c = List.exists (fun p -> p.conn == c) !followers in
  let find_follower c = List.find_opt (fun p -> p.conn == c) !followers in
  let release_sync () =
    let watermarks = List.map (fun p -> p.acked) !followers in
    List.iter (fun (reply, resp) -> reply resp) (Replica.Sync.release sync ~watermarks)
  in
  let drop_conn c =
    (try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ());
    conns := List.filter (fun x -> x != c) !conns;
    if is_follower c then begin
      followers := List.filter (fun p -> p.conn != c) !followers;
      log "follower %s disconnected" (Conn.peer c)
    end
  in
  (* ---------------------------------------------------------------- *)
  (* cross-shard load figures: each shard publishes its admission
     snapshot ~1 Hz; a shed is answered with the fleet-wide hint       *)
  let stats_root = if shards > 1 then Filename.dirname spool else spool in
  let last_stat = ref 0.0 in
  let publish_stats () =
    if shards > 1 && now () -. !last_stat > 1.0 then begin
      last_stat := now ();
      try
        Rtt_diskio.Diskio.atomic_write
          ~path:(stat_file ~root:stats_root shard)
          (Admission.snapshot admission)
      with Sys_error _ | Unix.Unix_error _ -> ()
    end
  in
  let shed_hint () =
    if shards <= 1 then Admission.retry_after_ms admission
    else
      Admission.aggregate
        (List.filter_map
           (fun k ->
             if k = shard then Some (Admission.snapshot admission)
             else
               try Some (read_small_file (stat_file ~root:stats_root k))
               with Sys_error _ | Unix.Unix_error _ -> None)
           (List.init shards Fun.id))
  in
  (* ---------------------------------------------------------------- *)
  (* answering terminal jobs                                           *)
  let rendered_of job =
    match Work.read_result ~spool ~job with
    | None -> "(result file missing)\n"
    | Some kvs -> (
        match Option.bind (List.assoc_opt "rendered" kvs) Frame.unescape with
        | Some r -> r
        | None ->
            (* a result file from before the rendered blob existed:
               reconstruct the essentials rather than fail the wait *)
            let get k = Option.value ~default:"?" (List.assoc_opt k kvs) in
            Printf.sprintf "rung:     %s\nmakespan: %s\nbudget:   %s\nallocation: %s\n"
              (get "rung") (get "makespan") (get "budget_used") (get "allocation"))
  in
  let terminal_response job =
    let id = id_of_job job in
    match status_of job with
    | Some (Journal.Completed _) -> Protocol.Result { id; rendered = rendered_of job }
    | Some (Journal.Dead { attempts; error_class }) ->
        Protocol.Failed { id; error_class; attempts }
    | _ -> Protocol.Errored { code = "internal"; msg = "job not terminal" }
  in
  let notify_waiters job =
    match Hashtbl.find_opt waiters job with
    | None -> ()
    | Some cs ->
        Hashtbl.remove waiters job;
        let resp = terminal_response job in
        List.iter
          (fun c ->
            if List.memq c !conns then begin
              Conn.send c resp;
              Conn.remove_wait c (id_of_job job)
            end)
          cs
  in
  let complete job =
    let elapsed_ms =
      match Hashtbl.find_opt started_at job with
      | Some t0 ->
          Hashtbl.remove started_at job;
          int_of_float ((now () -. t0) *. 1000.)
      | None -> 0
    in
    Admission.finish admission ~id:job ~elapsed_ms;
    notify_waiters job
  in
  (* ---------------------------------------------------------------- *)
  (* workers: forked Pool.worker_loop children, pool wire protocol     *)
  let spawn () =
    let ar, aw = Unix.pipe () in
    let br, bw = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        Unix.close aw;
        Unix.close br;
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
        List.iter (fun c -> try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ()) !conns;
        Hashtbl.iter (fun _ l -> try Unix.close l.lfd with Unix.Unix_error _ -> ()) links;
        List.iter
          (fun w ->
            Unix.close w.to_w;
            Unix.close w.from_w)
          !workers;
        (try Unix.close (Journal.fd journal) with Unix.Unix_error _ -> ());
        (* the parent's LP counters (warm-start stats, pivot counts) are
           inherited across fork; zero them so the worker's figures are
           its own *)
        Rtt_lp.Simplex.reset_stats ();
        Pool.worker_loop cfg.service ~from_parent:ar ~to_parent:bw
    | pid ->
        Unix.close ar;
        Unix.close bw;
        let w = { pid; to_w = aw; from_w = br; reader = Frame.reader (); current = None } in
        workers := !workers @ [ w ];
        log "spawned worker %d" pid
  in
  let handle_death w =
    (try Unix.close w.to_w with Unix.Unix_error _ -> ());
    (try Unix.close w.from_w with Unix.Unix_error _ -> ());
    reap w.pid;
    workers := List.filter (fun x -> x.pid <> w.pid) !workers;
    match w.current with
    | None -> ()
    | Some (job, attempt) ->
        (* claim replay: the attempt is consumed (states still Running),
           the job goes back in line and resumes from its checkpoint *)
        log "worker %d died holding %s (attempt %d)" w.pid job attempt;
        w.current <- None;
        if not !force then Admission.requeue admission ~id:job
  in
  let max_attempts = cfg.service.Work.max_attempts in
  let handle_report w payload =
    match (w.current, Pool.parse_report payload) with
    | ( Some (job, attempt),
        Some (Pool.Solved { attempt = a; makespan; budget_used; fuel; cached }) )
      when a = attempt ->
        record (Journal.Done { attempt; makespan; budget_used; fuel; cached }) job;
        w.current <- None;
        complete job
    | ( Some (job, attempt),
        Some (Pool.Failed { attempt = a; error_class; transient; backoff }) )
      when a = attempt ->
        w.current <- None;
        if transient && attempt < max_attempts then begin
          (* the deterministic backoff is journaled for forensics, but a
             serving daemon never idles a slot waiting for it *)
          record (Journal.Failed { attempt; error_class; transient = true; backoff }) job;
          Admission.requeue admission ~id:job
        end
        else begin
          record (Journal.Failed { attempt; error_class; transient = false; backoff = 0 }) job;
          complete job
        end
    | Some (job, attempt), Some (Pool.Abandoned { attempt = a }) when a = attempt ->
        record (Journal.Abandoned { attempt }) job;
        w.current <- None;
        if not !force then Admission.requeue admission ~id:job
    | _, _ -> log "unexpected worker message %S ignored" payload
  in
  let worker_readable w =
    let buf = Bytes.create 4096 in
    match Eintr.read w.from_w buf 0 4096 with
    | 0 -> handle_death w
    | n ->
        List.iter
          (function
            | `Frame payload -> handle_report w payload
            | `Corrupt line -> log "unframed line from worker %d ignored: %S" w.pid line
            | `Overflow -> handle_death w)
          (Frame.feed w.reader (Bytes.sub_string buf 0 n))
  in
  let rec assign_idle () =
    match List.find_opt (fun w -> w.current = None) !workers with
    | None -> ()
    | Some w -> (
        match Admission.take admission with
        | None -> ()
        | Some job -> (
            match next_attempt job with
            | None ->
                (* adopted twice or completed while queued *)
                complete job;
                assign_idle ()
            | Some attempt when attempt > max_attempts ->
                record
                  (Journal.Failed
                     {
                       attempt = max_attempts;
                       error_class = "retries-exhausted";
                       transient = false;
                       backoff = 0;
                     })
                  job;
                complete job;
                assign_idle ()
            | Some attempt ->
                record (Journal.Started { attempt }) job;
                Hashtbl.replace started_at job (now ());
                w.current <- Some (job, attempt);
                log "assign %s (attempt %d) to worker %d" job attempt w.pid;
                (try Pool.send w.to_w (Pool.assignment ~job ~attempt)
                 with Unix.Unix_error _ -> handle_death w);
                assign_idle ()))
  in
  (* ---------------------------------------------------------------- *)
  (* replication: ship committed journal lines (plus the spool files
     they reference) to followers, verbatim                            *)
  let attachments_for r =
    List.map
      (function
        | `Instance (job, body) -> Protocol.Repl_instance { job; body }
        | `Result (job, body) -> Protocol.Repl_result { job; body }
        | `Cache (key, body) -> Protocol.Repl_cache { key; body })
      (Replica.attachment_specs ~spool ~cache_dir:cfg.service.Work.cache_dir r)
  in
  let ship_line p (seq, line) =
    if Rtt_budget.Budget.probe ~site:E.Faults.repl_frame_drop_site then
      (* the frame is dropped but [sent] still advances: the follower
         sees the next frame's sequence gap and reconnects from its
         watermark — the failure mode the fault exists to exercise *)
      log "fault: dropped repl frame %d to %s" seq (Conn.peer p.conn)
    else begin
      (match Journal.decode line with
      | Some r -> List.iter (Conn.send p.conn) (attachments_for r)
      | None -> ());
      Conn.send p.conn (Protocol.Repl_frame { seq; line })
    end;
    p.sent <- max p.sent (seq + 1)
  in
  (after_append :=
     fun seq line ->
       List.iter (fun p -> if p.sent = seq then ship_line p (seq, line)) !followers);
  let repl_stats () =
    let fws = List.map (fun p -> (Conn.peer p.conn, p.sent, p.acked)) !followers in
    Replica.stats_json ~lp:(Rtt_lp.Simplex.lp_stats_json ()) ~role:"primary" ~records:!nrecords
      ~sync_replicas:(Replica.Sync.replicas sync) ~held:(Replica.Sync.pending sync)
      ~followers:fws ()
  in
  (* ---------------------------------------------------------------- *)
  (* cross-shard forwarding: a request whose job id routes elsewhere is
     relayed over a persistent link to the owner's internal socket.
     Immediate answers come back in request order (FIFO); deferred wait
     answers carry the job id and may overtake, so id-bearing responses
     match the first relay holding that id.                            *)
  let drop_link ?(code = "shard-unavailable") l reason =
    Hashtbl.remove links l.peer_shard;
    (try Unix.close l.lfd with Unix.Unix_error _ -> ());
    let pend = l.relays in
    l.relays <- [];
    if pend <> [] then log "link to shard %d down (%s): %d relays errored" l.peer_shard reason (List.length pend);
    List.iter (fun r -> r.deliver (Protocol.Errored { code; msg = reason })) pend
  in
  let link_to owner =
    match Hashtbl.find_opt links owner with
    | Some l -> Some l
    | None -> (
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Eintr.connect fd (Unix.ADDR_UNIX (intern_socket cfg owner)) with
        | () ->
            let l =
              { peer_shard = owner; lfd = fd; lreader = Frame.reader (); relays = [];
                last_ping = now () }
            in
            Hashtbl.replace links owner l;
            log "linked to shard %d" owner;
            Some l
        | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            None)
  in
  let forward ~owner ~id req ~deliver =
    match link_to owner with
    | None ->
        deliver
          (Protocol.Errored
             { code = "shard-unavailable"; msg = Printf.sprintf "shard %d is not answering" owner })
    | Some l -> (
        match Frame.write l.lfd (Protocol.encode_request req) with
        | () -> l.relays <- l.relays @ [ { relay_id = id; deliver } ]
        | exception Unix.Unix_error _ ->
            drop_link l "link write failed";
            deliver
              (Protocol.Errored
                 {
                   code = "shard-unavailable";
                   msg = Printf.sprintf "shard %d is not answering" owner;
                 }))
  in
  let relay_deliver l resp =
    let take pred =
      let rec go acc = function
        | [] -> None
        | r :: tl when pred r ->
            l.relays <- List.rev_append acc tl;
            Some r
        | r :: tl -> go (r :: acc) tl
      in
      go [] l.relays
    in
    let by_id id = match take (fun r -> r.relay_id = id) with Some r -> Some r | None -> take (fun _ -> true) in
    let taken =
      match resp with
      | Protocol.Pong -> None (* keepalive answer, not a relay *)
      | Protocol.Accepted { id }
      | Protocol.Status_is { id; _ }
      | Protocol.Result { id; _ }
      | Protocol.Failed { id; _ } ->
          by_id id
      | Protocol.Session_ok { sid; _ } | Protocol.Session_result { sid; _ } -> by_id sid
      | Protocol.Errored { code = "unknown-job" | "unknown-session"; msg } -> by_id msg
      | _ -> take (fun _ -> true)
    in
    match (taken, resp) with
    | Some r, _ -> r.deliver resp
    | None, Protocol.Pong -> ()
    | None, _ -> log "unmatched relay response from shard %d ignored" l.peer_shard
  in
  let link_readable l =
    let buf = Bytes.create 8192 in
    match Eintr.read l.lfd buf 0 8192 with
    | exception Unix.Unix_error _ -> drop_link l "link read failed"
    | 0 -> drop_link l "peer shard closed the link"
    | n ->
        List.iter
          (function
            | `Frame payload -> (
                match Protocol.parse_response payload with
                | Ok resp -> relay_deliver l resp
                | Error _ -> log "unparseable relay response ignored")
            | `Corrupt _ | `Overflow -> drop_link l "bad relay frame")
          (Frame.feed l.lreader (Bytes.sub_string buf 0 n))
  in
  let relays_pending () = Hashtbl.fold (fun _ l acc -> acc + List.length l.relays) links 0 in
  let ping_links () =
    (* the owner's idle sweep must not reap a quiet link while relays
       could still need it; pings well inside the idle timeout keep it
       warm, and pongs are filtered out of relay matching *)
    let dead =
      Hashtbl.fold
        (fun _ l acc ->
          if now () -. l.last_ping > 10.0 then begin
            l.last_ping <- now ();
            match Frame.write l.lfd (Protocol.encode_request Protocol.Ping) with
            | () -> acc
            | exception Unix.Unix_error _ -> l :: acc
          end
          else acc)
        links []
    in
    List.iter (fun l -> drop_link l "keepalive write failed") dead
  in
  (* ---------------------------------------------------------------- *)
  (* requests                                                          *)
  let write_instance ~job text =
    Rtt_diskio.Diskio.atomic_write ~path:(Filename.concat spool job) text
  in
  let submit_local ~reply ~name ~id p =
    let job = job_of_id id in
    if status_of job <> None then begin
      log "submit %s: coalesced onto %s" name id;
      reply (Protocol.Accepted { id })
    end
    else
      match Admission.offer admission ~id:job with
      | `Shed _ ->
          log "submit %s: shed (queue full)" name;
          reply (Protocol.Shed { retry_after_ms = shed_hint () })
      | `Duplicate -> reply (Protocol.Accepted { id })
      | `Admitted ->
          (* durability order: instance file, then journal record, then
             the accepted reply — a crash between any two steps leaves
             either an adoptable spool file or a fully journaled job,
             never an accepted ghost *)
          write_instance ~job (Rtt_core.Io.to_string p);
          record Journal.Queued job;
          log "submit %s: accepted as %s" name id;
          if Replica.Sync.replicas sync = 0 then reply (Protocol.Accepted { id })
          else
            (* --sync-replicas K: the accepted reply waits until K
               followers have durably applied the Queued record
               (coalesced duplicates above answered immediately — their
               record was already held or released) *)
            Replica.Sync.hold sync ~seq:(!nrecords - 1) (reply, Protocol.Accepted { id })
  in
  let submit_entry ~reply ~name ~body =
    if !drain then reply (Protocol.Shed { retry_after_ms = shed_hint () })
    else
      match E.Engine.load_string body with
      | Error e ->
          reply (Protocol.Errored { code = E.Error.class_name e; msg = E.Error.to_string e })
      | Ok p ->
          let id = Work.digest_of cfg.service p in
          let owner = shard_of_id ~shards id in
          if owner = shard then submit_local ~reply ~name ~id p
          else forward ~owner ~id (Protocol.Submit { name; body }) ~deliver:reply
  in
  (* sessions: a session journaled before a restart (or by a previous
     connection) reattaches lazily — but only if its journal exists, so
     a mutate against a typo'd id cannot conjure an empty session *)
  let find_session sid =
    match Session.find sessions sid with
    | Some t -> Some t
    | None ->
        if List.mem sid (Session.list_sids ~spool) then
          match Session.open_ sessions sid with Ok t -> Some t | Error _ -> None
        else None
  in
  let handle_request c =
    let reply_to_c resp = if List.memq c !conns then Conn.send c resp in
    (* session verbs route to the shard owning the sid, like jobs *)
    let session_owned sid req k =
      if not (Session.valid_sid sid) then
        Conn.send c
          (Protocol.Errored
             {
               code = "bad-request";
               msg = "bad session id (want 1-64 characters from [A-Za-z0-9._-])";
             })
      else
        let owner = shard_of_id ~shards sid in
        if owner <> shard then forward ~owner ~id:sid req ~deliver:reply_to_c else k ()
    in
    function
    | Protocol.Hello _ ->
        Conn.send c (Protocol.Welcome { version = Protocol.version; max_frame = cfg.max_frame })
    | Protocol.Ping -> Conn.send c Protocol.Pong
    | Protocol.Bye -> Conn.close_after_flush c
    | Protocol.Status { id } ->
        let owner = shard_of_id ~shards id in
        if owner <> shard then forward ~owner ~id (Protocol.Status { id }) ~deliver:reply_to_c
        else
          let json = Jobview.json_of ~id (status_of (job_of_id id)) in
          Conn.send c (Protocol.Status_is { id; json })
    | Protocol.Wait { id } ->
        let owner = shard_of_id ~shards id in
        if owner <> shard then begin
          (* the wait is relayed; mark the conn so the idle sweep keeps
             it alive until the owner answers *)
          Conn.add_wait c id;
          forward ~owner ~id (Protocol.Wait { id })
            ~deliver:(fun resp ->
              Conn.remove_wait c id;
              reply_to_c resp)
        end
        else
          let job = job_of_id id in
          if terminal job then Conn.send c (terminal_response job)
          else if status_of job <> None then begin
            Conn.add_wait c id;
            Hashtbl.replace waiters job
              (c :: Option.value ~default:[] (Hashtbl.find_opt waiters job))
          end
          else Conn.send c (Protocol.Errored { code = "unknown-job"; msg = id })
    | Protocol.Submit { name; body } -> submit_entry ~reply:reply_to_c ~name ~body
    | Protocol.Submit_many { name; bodies } ->
        (* per-entry acks in entry order: answers for local entries are
           synchronous, cross-shard and sync-held ones arrive later, so
           a reorder buffer releases the reply prefix as it fills *)
        let slots = Array.make (List.length bodies) None in
        let next = ref 0 in
        let fill i resp =
          if slots.(i) = None then begin
            slots.(i) <- Some resp;
            while !next < Array.length slots && slots.(!next) <> None do
              (match slots.(!next) with Some r -> reply_to_c r | None -> ());
              incr next
            done
          end
        in
        List.iteri
          (fun i body ->
            submit_entry ~reply:(fill i) ~name:(Printf.sprintf "%s[%d]" name i) ~body)
          bodies
    | Protocol.Repl_hello _ when shards > 1 ->
        Conn.send c
          (Protocol.Errored
             { code = "bad-role"; msg = "a sharded daemon does not replicate; run --shards 1" })
    | Protocol.Repl_ack _ when shards > 1 ->
        Conn.send c
          (Protocol.Errored
             { code = "bad-role"; msg = "a sharded daemon does not replicate; run --shards 1" })
    | Protocol.Repl_hello { version = _; watermark } ->
        let watermark = min watermark !nrecords in
        (match find_follower c with
        | Some p ->
            p.sent <- watermark;
            p.acked <- min p.acked watermark
        | None -> followers := { conn = c; sent = watermark; acked = watermark } :: !followers);
        Conn.send c (Protocol.Repl_welcome { version = Protocol.version; records = !nrecords });
        let p = Option.get (find_follower c) in
        (* catch-up from disk, then the live after_append forwarding
           keeps [sent] in lockstep with the journal *)
        List.iter (ship_line p) (Replica.lines_from ~spool watermark);
        log "follower %s joined at watermark %d of %d" (Conn.peer c) watermark !nrecords
    | Protocol.Repl_ack { watermark } -> (
        match find_follower c with
        | Some p ->
            p.acked <- max p.acked (min watermark !nrecords);
            release_sync ()
        | None -> Conn.send c (Protocol.Errored { code = "bad-role"; msg = "not a follower" }))
    | Protocol.Promote ->
        Conn.send c (Protocol.Errored { code = "bad-role"; msg = "already primary" })
    | Protocol.Stats -> Conn.send c (Protocol.Stats_is { json = repl_stats () })
    | Protocol.Session_open { sid; body } as req ->
        session_owned sid req (fun () ->
            match Session.open_ sessions sid with
            | Error msg -> Conn.send c (Protocol.Errored { code = "bad-request"; msg })
            | Ok t -> (
                match body with
                | Some text when Session.revision t = 0 -> (
                    (* the seed only lands in a fresh session: a reattach
                       keeps its journaled history, so retrying an open
                       after a crash is safe *)
                    match Session.mutate t (Session.Seed text) with
                    | Ok revision -> Conn.send c (Protocol.Session_ok { sid; revision })
                    | Error msg ->
                        Conn.send c (Protocol.Errored { code = "bad-request"; msg }))
                | _ ->
                    Conn.send c
                      (Protocol.Session_ok { sid; revision = Session.revision t })))
    | Protocol.Session_mutate { sid; op } as req ->
        session_owned sid req (fun () ->
            if Rtt_budget.Budget.probe ~site:E.Faults.session_mutate_drop_site then
              (* dropped before journaling or applying: the client sees
                 the error and the session is exactly as it was *)
              Conn.send c
                (Protocol.Errored { code = "fault-injected"; msg = "session.mutate.drop" })
            else
              match find_session sid with
              | None -> Conn.send c (Protocol.Errored { code = "unknown-session"; msg = sid })
              | Some t -> (
                  match Session.op_of_string op with
                  | Error msg -> Conn.send c (Protocol.Errored { code = "bad-request"; msg })
                  | Ok op -> (
                      match Session.mutate t op with
                      | Ok revision -> Conn.send c (Protocol.Session_ok { sid; revision })
                      | Error msg ->
                          Conn.send c (Protocol.Errored { code = "bad-request"; msg }))))
    | Protocol.Session_solve { sid } as req ->
        session_owned sid req (fun () ->
            match find_session sid with
            | None -> Conn.send c (Protocol.Errored { code = "unknown-session"; msg = sid })
            | Some t -> (
                match
                  Session.solve ?fuel:cfg.service.Work.deadline_fuel
                    ~policy:cfg.service.Work.policy t
                with
                | Ok s ->
                    Conn.send c
                      (Protocol.Session_result
                         {
                           sid;
                           fuel = s.Session.success.E.Engine.fuel_spent;
                           warm = s.Session.warm;
                           rendered = s.Session.rendered;
                         })
                | Error e ->
                    Conn.send c
                      (Protocol.Errored
                         { code = E.Error.class_name e; msg = E.Error.to_string e })))
    | Protocol.Session_close { sid } as req ->
        session_owned sid req (fun () ->
            match find_session sid with
            | None -> Conn.send c (Protocol.Errored { code = "unknown-session"; msg = sid })
            | Some t ->
                let revision = Session.revision t in
                Session.close sessions t;
                Conn.send c (Protocol.Session_ok { sid; revision }))
  in
  let conn_readable c =
    match Conn.read c ~now:(now ()) with
    | `Again -> ()
    | `Eof -> drop_conn c
    | `Frames items ->
        List.iter
          (fun item ->
            if not (Conn.closing c) then
              match item with
              | `Frame payload -> (
                  match Protocol.parse_request payload with
                  | Ok req -> handle_request c req
                  | Error msg -> Conn.send c (Protocol.Errored { code = "bad-request"; msg }))
              | `Corrupt _ ->
                  (* past a torn frame, stream sync cannot be trusted *)
                  Conn.send c
                    (Protocol.Errored { code = "bad-frame"; msg = "CRC or framing failure" });
                  Conn.close_after_flush c
              | `Overflow ->
                  Conn.send c
                    (Protocol.Errored
                       {
                         code = "frame-overflow";
                         msg = Printf.sprintf "line exceeds %d bytes" cfg.max_frame;
                       });
                  Conn.close_after_flush c)
          items
  in
  let conn_flush c =
    match Conn.flush c with
    | `Closed -> drop_conn c
    | `Done -> if Conn.closing c then drop_conn c
    | `Again -> ()
  in
  let accept_conn lfd =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | fd, sa ->
        Unix.set_nonblock fd;
        let peer =
          match sa with
          | Unix.ADDR_UNIX _ -> "unix"
          | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        in
        conns := Conn.create ~max_frame:cfg.max_frame ~peer ~now:(now ()) fd :: !conns;
        log "accepted connection (%s)" peer
  in
  (* ---------------------------------------------------------------- *)
  (* shutdown                                                          *)
  let finish_workers () =
    if !force then
      List.iter
        (fun w -> try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ())
        !workers
    else
      List.iter
        (fun w -> try Pool.send w.to_w Pool.quit_payload with Unix.Unix_error _ -> ())
        !workers;
    let busy () = List.exists (fun w -> w.current <> None) !workers in
    let deadline = now () +. 30.0 in
    while busy () && now () < deadline do
      let fds = List.map (fun w -> w.from_w) !workers in
      let r, _, _ = Eintr.select fds [] [] 0.1 in
      List.iter
        (fun fd ->
          match List.find_opt (fun w -> w.from_w = fd) !workers with
          | Some w -> worker_readable w
          | None -> ())
        r
    done;
    List.iter
      (fun w ->
        (match w.current with
        | Some (job, attempt) ->
            (* unresponsive after the grace period: record the
               abandonment on its behalf and kill it *)
            record (Journal.Abandoned { attempt }) job;
            w.current <- None;
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
        | None -> ());
        (try Unix.close w.to_w with Unix.Unix_error _ -> ());
        (try Unix.close w.from_w with Unix.Unix_error _ -> ());
        reap w.pid)
      !workers;
    workers := []
  in
  let exit_code () =
    if !force then Supervisor.shutdown_exit_code
    else if List.exists (function _, Journal.Dead _ -> true | _ -> false) !states then
      Supervisor.failed_jobs_exit_code
    else Supervisor.drained_exit_code
  in
  (* ---------------------------------------------------------------- *)
  (* the event loop                                                    *)
  let on_signal _ = if !drain then force := true else drain := true in
  let saved_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let saved_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let saved_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm saved_term;
      Sys.set_signal Sys.sigint saved_int;
      Sys.set_signal Sys.sigpipe saved_pipe;
      Journal.close journal)
    (fun () ->
      match
        if shards > 1 then [ listen_unix (intern_socket cfg shard) ] else []
      with
      | exception Failure msg ->
          Printf.eprintf "rtt: %s\n%!" msg;
          124
      | intern ->
          listeners := ls @ intern;
          (* adopt the startup backlog: every spool instance file is
             journaled and every non-terminal one re-admitted — the
             accepted jobs of a crashed daemon are solved, not lost *)
          let backlog = Work.jobs_in ~spool in
          List.iter (fun job -> if status_of job = None then record Journal.Queued job) backlog;
          List.iter
            (fun job -> if not (terminal job) then Admission.force admission ~id:job)
            backlog;
          for _ = 1 to max 1 cfg.service.Work.workers do
            spawn ()
          done;
          log "listening on %s (%d jobs adopted)" cfg.socket_path (Admission.queued admission);
          let running = ref true in
          while !running do
            if !force then running := false
            else begin
              assign_idle ();
              let workers_idle = List.for_all (fun w -> w.current = None) !workers in
              if
                !drain
                && Admission.queued admission = 0
                && Admission.in_flight admission = 0
                && workers_idle
                && relays_pending () = 0
              then running := false
              else begin
                let link_fds = Hashtbl.fold (fun _ l acc -> l.lfd :: acc) links [] in
                let reads =
                  !listeners
                  @ List.filter_map
                      (fun c -> if Conn.closing c then None else Some (Conn.fd c))
                      !conns
                  @ List.map (fun w -> w.from_w) !workers
                  @ link_fds
                in
                let writes =
                  List.filter_map
                    (fun c -> if Conn.wants_write c then Some (Conn.fd c) else None)
                    !conns
                in
                (match Unix.select reads writes [] 0.25 with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | r, wr, _ ->
                    List.iter
                      (fun fd ->
                        if List.mem fd !listeners then accept_conn fd
                        else
                          match List.find_opt (fun w -> w.from_w = fd) !workers with
                          | Some w -> worker_readable w
                          | None -> (
                              match List.find_opt (fun c -> Conn.fd c = fd) !conns with
                              | Some c -> conn_readable c
                              | None -> (
                                  match
                                    Hashtbl.fold
                                      (fun _ l acc -> if l.lfd = fd then Some l else acc)
                                      links None
                                  with
                                  | Some l -> link_readable l
                                  | None -> ())))
                      r;
                    List.iter
                      (fun fd ->
                        match List.find_opt (fun c -> Conn.fd c = fd) !conns with
                        | Some c -> conn_flush c
                        | None -> ())
                      wr);
                (* opportunistic flush of freshly queued replies *)
                List.iter
                  (fun c -> if Conn.wants_write c || Conn.closing c then conn_flush c)
                  !conns;
                (* read-deadline sweep; unanswered waiters are exempt *)
                let t = now () in
                List.iter
                  (fun c ->
                    if
                      Conn.waits c = []
                      && (not (is_follower c))
                      && Conn.idle_for c ~now:t > cfg.idle_timeout
                    then begin
                      log "closing idle connection (%s)" (Conn.peer c);
                      drop_conn c
                    end)
                  !conns;
                if shards > 1 then begin
                  ping_links ();
                  publish_stats ()
                end;
                (* keep the worker complement up while there is work *)
                if (not !drain) || Admission.queued admission > 0 then begin
                  let width = max 1 cfg.service.Work.workers in
                  while List.length !workers < width do
                    spawn ()
                  done
                end
              end
            end
          done;
          log "%s" (if !force then "forced shutdown" else "drained; shutting down");
          finish_workers ();
          (* answer anything still waiting: terminal jobs truthfully, the
             rest (forced shutdown) with a shutdown error so the client
             knows to resubmit or re-wait against the next daemon *)
          Hashtbl.iter
            (fun job cs ->
              List.iter
                (fun c ->
                  if List.memq c !conns then
                    Conn.send c
                      (if terminal job then terminal_response job
                       else Protocol.Errored { code = "shutdown"; msg = id_of_job job }))
                cs)
            waiters;
          Hashtbl.reset waiters;
          (* relays still in flight (forced shutdown, or a wedged peer):
             an honest error beats a silent hang *)
          let open_links = Hashtbl.fold (fun _ l acc -> l :: acc) links [] in
          List.iter (fun l -> drop_link ~code:"shutdown" l "shutting down") open_links;
          (* held sync-replicas acks: the job is durable here but not
             yet on K followers — an honest error beats a ghost ack *)
          List.iter
            (fun (reply, _) ->
              reply
                (Protocol.Errored { code = "shutdown"; msg = "sync-replicas not satisfied" }))
            (Replica.Sync.drain sync);
          List.iter (fun c -> ignore (Conn.flush c)) !conns;
          List.iter (fun c -> try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ()) !conns;
          conns := [];
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
          listeners := [];
          if shards > 1 then begin
            (try Unix.unlink (intern_socket cfg shard) with Unix.Unix_error _ -> ());
            (try Unix.unlink (stat_file ~root:stats_root shard) with Unix.Unix_error _ -> ())
          end;
          if own_socket then (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
          exit_code ())

(* ------------------------------------------------------------------ *)
(* entry points                                                        *)

let bind_listeners cfg =
  match
    let l = listen_unix cfg.socket_path in
    l :: (match cfg.tcp with Some hp -> [ listen_tcp hp ] | None -> [])
  with
  | exception Failure msg ->
      Printf.eprintf "rtt: %s\n%!" msg;
      Error 124
  | ls -> Ok ls

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (Unix.ENOENT, _, _) ->
      failwith (Printf.sprintf "%s: parent directory missing" dir)

(* the sharded front-end: the parent binds the listeners once, forks
   one acceptor per shard over the shared descriptors (the kernel
   distributes accepts), then supervises — forwarding SIGTERM/SIGINT
   and reaping. Each shard serves its own sub-spool and journal. *)
let run_sharded cfg =
  let n = cfg.shards in
  let spool = cfg.service.Work.spool in
  match bind_listeners cfg with
  | Error code -> code
  | Ok ls -> (
      match
        for k = 0 to n - 1 do
          mkdir_p (shard_spool ~spool k)
        done
      with
      | exception Failure msg ->
          Printf.eprintf "rtt: %s\n%!" msg;
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) ls;
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
          124
      | () ->
          let children = ref [] in
          for k = 0 to n - 1 do
            match Unix.fork () with
            | 0 ->
                let cfg_k =
                  { cfg with service = { cfg.service with Work.spool = shard_spool ~spool k } }
                in
                (* each shard's LP counters start from zero, not from
                   whatever the parent accumulated before forking *)
                Rtt_lp.Simplex.reset_stats ();
                Stdlib.exit (serve cfg_k ~shard:k ~shards:n ~own_socket:false ls)
            | pid -> children := (k, pid) :: !children
          done;
          (* the parent only supervises: its copies of the listeners
             close so the shards alone own the accept queue *)
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) ls;
          let signalled = ref false in
          let forward s =
            List.iter (fun (_, pid) -> try Unix.kill pid s with Unix.Unix_error _ -> ()) !children
          in
          let on_signal s _ =
            signalled := true;
            forward s
          in
          let saved_term = Sys.signal Sys.sigterm (Sys.Signal_handle (on_signal Sys.sigterm)) in
          let saved_int = Sys.signal Sys.sigint (Sys.Signal_handle (on_signal Sys.sigint)) in
          Fun.protect
            ~finally:(fun () ->
              Sys.set_signal Sys.sigterm saved_term;
              Sys.set_signal Sys.sigint saved_int;
              try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
            (fun () ->
              let codes = Hashtbl.create n in
              let rec reap_all () =
                if Hashtbl.length codes < List.length !children then begin
                  match Unix.wait () with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap_all ()
                  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
                  | pid, status ->
                      (match List.find_opt (fun (_, p) -> p = pid) !children with
                      | Some (k, _) ->
                          let code =
                            match status with
                            | Unix.WEXITED c -> c
                            | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
                                Supervisor.shutdown_exit_code
                          in
                          Hashtbl.replace codes k code;
                          (* a shard dying before any drain was requested
                             is a fleet failure: stop the others rather
                             than serve a partial keyspace *)
                          if not !signalled then begin
                            Printf.eprintf "rtt: shard %d exited %d unexpectedly; stopping\n%!" k
                              code;
                            signalled := true;
                            forward Sys.sigterm
                          end
                      | None -> ());
                      reap_all ()
                end
              in
              reap_all ();
              (* worst child verdict wins: 31 (failed jobs) over 30
                 (forced) over 0 (clean drain) *)
              Hashtbl.fold (fun _ c acc -> max c acc) codes 0))

let run cfg =
  if cfg.shards > 1 then run_sharded cfg
  else
    match bind_listeners cfg with
    | Error code -> code
    | Ok ls -> serve cfg ~shard:0 ~shards:1 ~own_socket:true ls
