open Rtt_service
module E = Rtt_engine

type config = {
  service : Work.config;
  socket_path : string;
  tcp : (string * int) option;
  queue_capacity : int;
  max_frame : int;
  idle_timeout : float;
  sync_replicas : int;
}

let default_config ~spool ~socket_path =
  {
    service = Supervisor.default_config ~spool;
    socket_path;
    tcp = None;
    queue_capacity = 64;
    max_frame = 16 * 1024 * 1024;
    idle_timeout = 30.0;
    sync_replicas = 0;
  }

type repl_peer = { conn : Conn.t; mutable sent : int; mutable acked : int }

type worker = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  reader : Frame.reader;
  mutable current : (string * int) option;
}

let reap pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | _ -> ()
  in
  go ()

let now () = Unix.gettimeofday ()

let listen_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      (* a socket file is already there: probe it — refuse to evict a
         live daemon, but clean up after a crashed one *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let alive =
        try
          Unix.connect probe (Unix.ADDR_UNIX path);
          true
        with Unix.Unix_error _ -> false
      in
      Unix.close probe;
      if alive then begin
        Unix.close fd;
        failwith (Printf.sprintf "%s: a daemon is already listening" path)
      end
      else begin
        Unix.unlink path;
        Unix.bind fd (Unix.ADDR_UNIX path)
      end);
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  fd

let listen_tcp (host, port) =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith (Printf.sprintf "%s: unknown host" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  fd

let run cfg =
  let spool = cfg.service.Work.spool in
  let log fmt =
    Printf.ksprintf
      (fun s -> if cfg.service.Work.verbose then Printf.eprintf "[daemon] %s\n%!" s)
      fmt
  in
  (* open first: it seals a torn tail, so the replay below sees exactly
     the committed prefix that replication sequence numbers count *)
  let journal = Journal.open_ ~spool in
  let replayed = Journal.replay ~spool in
  let states = ref (Journal.fold replayed) in
  let nrecords = ref (List.length replayed) in
  let after_append : (int -> string -> unit) ref = ref (fun _ _ -> ()) in
  let record event job =
    let r = { Journal.job; event } in
    let line = Journal.encode r in
    Journal.append_line journal line;
    states := Journal.apply !states r;
    let seq = !nrecords in
    nrecords := seq + 1;
    !after_append seq line
  in
  let status_of job = List.assoc_opt job !states in
  let terminal job =
    match status_of job with
    | Some (Journal.Completed _) | Some (Journal.Dead _) -> true
    | _ -> false
  in
  let id_of_job job =
    if Filename.check_suffix job Work.instance_suffix then
      Filename.chop_suffix job Work.instance_suffix
    else job
  in
  let job_of_id id = id ^ Work.instance_suffix in
  let next_attempt job =
    match status_of job with
    | Some (Journal.Completed _) | Some (Journal.Dead _) -> None
    | Some (Journal.Pending { attempts }) -> Some (attempts + 1)
    | Some (Journal.Running { attempt }) | Some (Journal.Interrupted { attempt }) ->
        Some (attempt + 1)
    | None -> Some 1
  in
  let admission = Admission.create ~capacity:cfg.queue_capacity () in
  let started_at : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let conns = ref ([] : Conn.t list) in
  let waiters : (string, Conn.t list) Hashtbl.t = Hashtbl.create 16 in
  let workers = ref ([] : worker list) in
  let listeners = ref ([] : Unix.file_descr list) in
  let drain = ref false in
  let force = ref false in
  let followers = ref ([] : repl_peer list) in
  let sync = Replica.Sync.create ~replicas:cfg.sync_replicas in
  let is_follower c = List.exists (fun p -> p.conn == c) !followers in
  let find_follower c = List.find_opt (fun p -> p.conn == c) !followers in
  let release_sync () =
    let watermarks = List.map (fun p -> p.acked) !followers in
    List.iter
      (fun (c, resp) -> if List.memq c !conns then Conn.send c resp)
      (Replica.Sync.release sync ~watermarks)
  in
  let drop_conn c =
    (try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ());
    conns := List.filter (fun x -> x != c) !conns;
    if is_follower c then begin
      followers := List.filter (fun p -> p.conn != c) !followers;
      log "follower %s disconnected" (Conn.peer c)
    end
  in
  (* ---------------------------------------------------------------- *)
  (* answering terminal jobs                                           *)
  let rendered_of job =
    match Work.read_result ~spool ~job with
    | None -> "(result file missing)\n"
    | Some kvs -> (
        match Option.bind (List.assoc_opt "rendered" kvs) Frame.unescape with
        | Some r -> r
        | None ->
            (* a result file from before the rendered blob existed:
               reconstruct the essentials rather than fail the wait *)
            let get k = Option.value ~default:"?" (List.assoc_opt k kvs) in
            Printf.sprintf "rung:     %s\nmakespan: %s\nbudget:   %s\nallocation: %s\n"
              (get "rung") (get "makespan") (get "budget_used") (get "allocation"))
  in
  let terminal_response job =
    let id = id_of_job job in
    match status_of job with
    | Some (Journal.Completed _) -> Protocol.Result { id; rendered = rendered_of job }
    | Some (Journal.Dead { attempts; error_class }) ->
        Protocol.Failed { id; error_class; attempts }
    | _ -> Protocol.Errored { code = "internal"; msg = "job not terminal" }
  in
  let notify_waiters job =
    match Hashtbl.find_opt waiters job with
    | None -> ()
    | Some cs ->
        Hashtbl.remove waiters job;
        let resp = terminal_response job in
        List.iter
          (fun c ->
            if List.memq c !conns then begin
              Conn.send c resp;
              Conn.remove_wait c (id_of_job job)
            end)
          cs
  in
  let complete job =
    let elapsed_ms =
      match Hashtbl.find_opt started_at job with
      | Some t0 ->
          Hashtbl.remove started_at job;
          int_of_float ((now () -. t0) *. 1000.)
      | None -> 0
    in
    Admission.finish admission ~id:job ~elapsed_ms;
    notify_waiters job
  in
  (* ---------------------------------------------------------------- *)
  (* workers: forked Pool.worker_loop children, pool wire protocol     *)
  let spawn () =
    let ar, aw = Unix.pipe () in
    let br, bw = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        Unix.close aw;
        Unix.close br;
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
        List.iter (fun c -> try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ()) !conns;
        List.iter
          (fun w ->
            Unix.close w.to_w;
            Unix.close w.from_w)
          !workers;
        (try Unix.close (Journal.fd journal) with Unix.Unix_error _ -> ());
        Pool.worker_loop cfg.service ~from_parent:ar ~to_parent:bw
    | pid ->
        Unix.close ar;
        Unix.close bw;
        let w = { pid; to_w = aw; from_w = br; reader = Frame.reader (); current = None } in
        workers := !workers @ [ w ];
        log "spawned worker %d" pid
  in
  let handle_death w =
    (try Unix.close w.to_w with Unix.Unix_error _ -> ());
    (try Unix.close w.from_w with Unix.Unix_error _ -> ());
    reap w.pid;
    workers := List.filter (fun x -> x.pid <> w.pid) !workers;
    match w.current with
    | None -> ()
    | Some (job, attempt) ->
        (* claim replay: the attempt is consumed (states still Running),
           the job goes back in line and resumes from its checkpoint *)
        log "worker %d died holding %s (attempt %d)" w.pid job attempt;
        w.current <- None;
        if not !force then Admission.requeue admission ~id:job
  in
  let max_attempts = cfg.service.Work.max_attempts in
  let handle_report w payload =
    match (w.current, Pool.parse_report payload) with
    | ( Some (job, attempt),
        Some (Pool.Solved { attempt = a; makespan; budget_used; fuel; cached }) )
      when a = attempt ->
        record (Journal.Done { attempt; makespan; budget_used; fuel; cached }) job;
        w.current <- None;
        complete job
    | ( Some (job, attempt),
        Some (Pool.Failed { attempt = a; error_class; transient; backoff }) )
      when a = attempt ->
        w.current <- None;
        if transient && attempt < max_attempts then begin
          (* the deterministic backoff is journaled for forensics, but a
             serving daemon never idles a slot waiting for it *)
          record (Journal.Failed { attempt; error_class; transient = true; backoff }) job;
          Admission.requeue admission ~id:job
        end
        else begin
          record (Journal.Failed { attempt; error_class; transient = false; backoff = 0 }) job;
          complete job
        end
    | Some (job, attempt), Some (Pool.Abandoned { attempt = a }) when a = attempt ->
        record (Journal.Abandoned { attempt }) job;
        w.current <- None;
        if not !force then Admission.requeue admission ~id:job
    | _, _ -> log "unexpected worker message %S ignored" payload
  in
  let worker_readable w =
    let buf = Bytes.create 4096 in
    match Eintr.read w.from_w buf 0 4096 with
    | 0 -> handle_death w
    | n ->
        List.iter
          (function
            | `Frame payload -> handle_report w payload
            | `Corrupt line -> log "unframed line from worker %d ignored: %S" w.pid line
            | `Overflow -> handle_death w)
          (Frame.feed w.reader (Bytes.sub_string buf 0 n))
  in
  let rec assign_idle () =
    match List.find_opt (fun w -> w.current = None) !workers with
    | None -> ()
    | Some w -> (
        match Admission.take admission with
        | None -> ()
        | Some job -> (
            match next_attempt job with
            | None ->
                (* adopted twice or completed while queued *)
                complete job;
                assign_idle ()
            | Some attempt when attempt > max_attempts ->
                record
                  (Journal.Failed
                     {
                       attempt = max_attempts;
                       error_class = "retries-exhausted";
                       transient = false;
                       backoff = 0;
                     })
                  job;
                complete job;
                assign_idle ()
            | Some attempt ->
                record (Journal.Started { attempt }) job;
                Hashtbl.replace started_at job (now ());
                w.current <- Some (job, attempt);
                log "assign %s (attempt %d) to worker %d" job attempt w.pid;
                (try Pool.send w.to_w (Pool.assignment ~job ~attempt)
                 with Unix.Unix_error _ -> handle_death w);
                assign_idle ()))
  in
  (* ---------------------------------------------------------------- *)
  (* replication: ship committed journal lines (plus the spool files
     they reference) to followers, verbatim                            *)
  let attachments_for r =
    List.map
      (function
        | `Instance (job, body) -> Protocol.Repl_instance { job; body }
        | `Result (job, body) -> Protocol.Repl_result { job; body }
        | `Cache (key, body) -> Protocol.Repl_cache { key; body })
      (Replica.attachment_specs ~spool ~cache_dir:cfg.service.Work.cache_dir r)
  in
  let ship_line p (seq, line) =
    if Rtt_budget.Budget.probe ~site:E.Faults.repl_frame_drop_site then
      (* the frame is dropped but [sent] still advances: the follower
         sees the next frame's sequence gap and reconnects from its
         watermark — the failure mode the fault exists to exercise *)
      log "fault: dropped repl frame %d to %s" seq (Conn.peer p.conn)
    else begin
      (match Journal.decode line with
      | Some r -> List.iter (Conn.send p.conn) (attachments_for r)
      | None -> ());
      Conn.send p.conn (Protocol.Repl_frame { seq; line })
    end;
    p.sent <- max p.sent (seq + 1)
  in
  (after_append :=
     fun seq line ->
       List.iter (fun p -> if p.sent = seq then ship_line p (seq, line)) !followers);
  let repl_stats () =
    let fws = List.map (fun p -> (Conn.peer p.conn, p.sent, p.acked)) !followers in
    Replica.stats_json ~role:"primary" ~records:!nrecords
      ~sync_replicas:(Replica.Sync.replicas sync) ~held:(Replica.Sync.pending sync)
      ~followers:fws
  in
  (* ---------------------------------------------------------------- *)
  (* requests                                                          *)
  let write_instance ~job text =
    Rtt_diskio.Diskio.atomic_write ~path:(Filename.concat spool job) text
  in
  let handle_request c = function
    | Protocol.Hello _ ->
        Conn.send c (Protocol.Welcome { version = Protocol.version; max_frame = cfg.max_frame })
    | Protocol.Ping -> Conn.send c Protocol.Pong
    | Protocol.Bye -> Conn.close_after_flush c
    | Protocol.Status { id } ->
        let json = Jobview.json_of ~id (status_of (job_of_id id)) in
        Conn.send c (Protocol.Status_is { id; json })
    | Protocol.Wait { id } ->
        let job = job_of_id id in
        if terminal job then Conn.send c (terminal_response job)
        else if status_of job <> None then begin
          Conn.add_wait c id;
          Hashtbl.replace waiters job
            (c :: Option.value ~default:[] (Hashtbl.find_opt waiters job))
        end
        else Conn.send c (Protocol.Errored { code = "unknown-job"; msg = id })
    | Protocol.Submit { name; body } ->
        if !drain then
          Conn.send c (Protocol.Shed { retry_after_ms = Admission.retry_after_ms admission })
        else begin
          match E.Engine.load_string body with
          | Error e ->
              Conn.send c
                (Protocol.Errored { code = E.Error.class_name e; msg = E.Error.to_string e })
          | Ok p -> (
              let id = Work.digest_of cfg.service p in
              let job = job_of_id id in
              if status_of job <> None then begin
                log "submit %s: coalesced onto %s" name id;
                Conn.send c (Protocol.Accepted { id })
              end
              else
                match Admission.offer admission ~id:job with
                | `Shed ms ->
                    log "submit %s: shed (queue full)" name;
                    Conn.send c (Protocol.Shed { retry_after_ms = ms })
                | `Duplicate -> Conn.send c (Protocol.Accepted { id })
                | `Admitted ->
                    (* durability order: instance file, then journal
                       record, then the accepted reply — a crash between
                       any two steps leaves either an adoptable spool
                       file or a fully journaled job, never an accepted
                       ghost *)
                    write_instance ~job (Rtt_core.Io.to_string p);
                    record Journal.Queued job;
                    log "submit %s: accepted as %s" name id;
                    if Replica.Sync.replicas sync = 0 then
                      Conn.send c (Protocol.Accepted { id })
                    else
                      (* --sync-replicas K: the accepted reply waits
                         until K followers have durably applied the
                         Queued record (coalesced duplicates above
                         answered immediately — their record was
                         already held or released) *)
                      Replica.Sync.hold sync ~seq:(!nrecords - 1)
                        (c, Protocol.Accepted { id }))
        end
    | Protocol.Repl_hello { version = _; watermark } ->
        let watermark = min watermark !nrecords in
        (match find_follower c with
        | Some p ->
            p.sent <- watermark;
            p.acked <- min p.acked watermark
        | None -> followers := { conn = c; sent = watermark; acked = watermark } :: !followers);
        Conn.send c (Protocol.Repl_welcome { version = Protocol.version; records = !nrecords });
        let p = Option.get (find_follower c) in
        (* catch-up from disk, then the live after_append forwarding
           keeps [sent] in lockstep with the journal *)
        List.iter (ship_line p) (Replica.lines_from ~spool watermark);
        log "follower %s joined at watermark %d of %d" (Conn.peer c) watermark !nrecords
    | Protocol.Repl_ack { watermark } -> (
        match find_follower c with
        | Some p ->
            p.acked <- max p.acked (min watermark !nrecords);
            release_sync ()
        | None -> Conn.send c (Protocol.Errored { code = "bad-role"; msg = "not a follower" }))
    | Protocol.Promote ->
        Conn.send c (Protocol.Errored { code = "bad-role"; msg = "already primary" })
    | Protocol.Stats -> Conn.send c (Protocol.Stats_is { json = repl_stats () })
  in
  let conn_readable c =
    match Conn.read c ~now:(now ()) with
    | `Again -> ()
    | `Eof -> drop_conn c
    | `Frames items ->
        List.iter
          (fun item ->
            if not (Conn.closing c) then
              match item with
              | `Frame payload -> (
                  match Protocol.parse_request payload with
                  | Ok req -> handle_request c req
                  | Error msg -> Conn.send c (Protocol.Errored { code = "bad-request"; msg }))
              | `Corrupt _ ->
                  (* past a torn frame, stream sync cannot be trusted *)
                  Conn.send c
                    (Protocol.Errored { code = "bad-frame"; msg = "CRC or framing failure" });
                  Conn.close_after_flush c
              | `Overflow ->
                  Conn.send c
                    (Protocol.Errored
                       {
                         code = "frame-overflow";
                         msg = Printf.sprintf "line exceeds %d bytes" cfg.max_frame;
                       });
                  Conn.close_after_flush c)
          items
  in
  let conn_flush c =
    match Conn.flush c with
    | `Closed -> drop_conn c
    | `Done -> if Conn.closing c then drop_conn c
    | `Again -> ()
  in
  let accept_conn lfd =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | fd, sa ->
        Unix.set_nonblock fd;
        let peer =
          match sa with
          | Unix.ADDR_UNIX _ -> "unix"
          | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        in
        conns := Conn.create ~max_frame:cfg.max_frame ~peer ~now:(now ()) fd :: !conns;
        log "accepted connection (%s)" peer
  in
  (* ---------------------------------------------------------------- *)
  (* shutdown                                                          *)
  let finish_workers () =
    if !force then
      List.iter
        (fun w -> try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ())
        !workers
    else
      List.iter
        (fun w -> try Pool.send w.to_w Pool.quit_payload with Unix.Unix_error _ -> ())
        !workers;
    let busy () = List.exists (fun w -> w.current <> None) !workers in
    let deadline = now () +. 30.0 in
    while busy () && now () < deadline do
      let fds = List.map (fun w -> w.from_w) !workers in
      let r, _, _ = Eintr.select fds [] [] 0.1 in
      List.iter
        (fun fd ->
          match List.find_opt (fun w -> w.from_w = fd) !workers with
          | Some w -> worker_readable w
          | None -> ())
        r
    done;
    List.iter
      (fun w ->
        (match w.current with
        | Some (job, attempt) ->
            (* unresponsive after the grace period: record the
               abandonment on its behalf and kill it *)
            record (Journal.Abandoned { attempt }) job;
            w.current <- None;
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
        | None -> ());
        (try Unix.close w.to_w with Unix.Unix_error _ -> ());
        (try Unix.close w.from_w with Unix.Unix_error _ -> ());
        reap w.pid)
      !workers;
    workers := []
  in
  let exit_code () =
    if !force then Supervisor.shutdown_exit_code
    else if List.exists (function _, Journal.Dead _ -> true | _ -> false) !states then
      Supervisor.failed_jobs_exit_code
    else Supervisor.drained_exit_code
  in
  (* ---------------------------------------------------------------- *)
  (* the event loop                                                    *)
  let on_signal _ = if !drain then force := true else drain := true in
  let saved_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let saved_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let saved_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm saved_term;
      Sys.set_signal Sys.sigint saved_int;
      Sys.set_signal Sys.sigpipe saved_pipe;
      Journal.close journal)
    (fun () ->
      match
        let l = listen_unix cfg.socket_path in
        l :: (match cfg.tcp with Some hp -> [ listen_tcp hp ] | None -> [])
      with
      | exception Failure msg ->
          Printf.eprintf "rtt: %s\n%!" msg;
          124
      | ls ->
          listeners := ls;
          (* adopt the startup backlog: every spool instance file is
             journaled and every non-terminal one re-admitted — the
             accepted jobs of a crashed daemon are solved, not lost *)
          let backlog = Work.jobs_in ~spool in
          List.iter (fun job -> if status_of job = None then record Journal.Queued job) backlog;
          List.iter
            (fun job -> if not (terminal job) then Admission.force admission ~id:job)
            backlog;
          for _ = 1 to max 1 cfg.service.Work.workers do
            spawn ()
          done;
          log "listening on %s (%d jobs adopted)" cfg.socket_path (Admission.queued admission);
          let running = ref true in
          while !running do
            if !force then running := false
            else begin
              assign_idle ();
              let workers_idle = List.for_all (fun w -> w.current = None) !workers in
              if
                !drain
                && Admission.queued admission = 0
                && Admission.in_flight admission = 0
                && workers_idle
              then running := false
              else begin
                let reads =
                  !listeners
                  @ List.filter_map
                      (fun c -> if Conn.closing c then None else Some (Conn.fd c))
                      !conns
                  @ List.map (fun w -> w.from_w) !workers
                in
                let writes =
                  List.filter_map
                    (fun c -> if Conn.wants_write c then Some (Conn.fd c) else None)
                    !conns
                in
                (match Unix.select reads writes [] 0.25 with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | r, wr, _ ->
                    List.iter
                      (fun fd ->
                        if List.mem fd !listeners then accept_conn fd
                        else
                          match List.find_opt (fun w -> w.from_w = fd) !workers with
                          | Some w -> worker_readable w
                          | None -> (
                              match List.find_opt (fun c -> Conn.fd c = fd) !conns with
                              | Some c -> conn_readable c
                              | None -> ()))
                      r;
                    List.iter
                      (fun fd ->
                        match List.find_opt (fun c -> Conn.fd c = fd) !conns with
                        | Some c -> conn_flush c
                        | None -> ())
                      wr);
                (* opportunistic flush of freshly queued replies *)
                List.iter
                  (fun c -> if Conn.wants_write c || Conn.closing c then conn_flush c)
                  !conns;
                (* read-deadline sweep; unanswered waiters are exempt *)
                let t = now () in
                List.iter
                  (fun c ->
                    if
                      Conn.waits c = []
                      && (not (is_follower c))
                      && Conn.idle_for c ~now:t > cfg.idle_timeout
                    then begin
                      log "closing idle connection (%s)" (Conn.peer c);
                      drop_conn c
                    end)
                  !conns;
                (* keep the worker complement up while there is work *)
                if (not !drain) || Admission.queued admission > 0 then begin
                  let width = max 1 cfg.service.Work.workers in
                  while List.length !workers < width do
                    spawn ()
                  done
                end
              end
            end
          done;
          log "%s" (if !force then "forced shutdown" else "drained; shutting down");
          finish_workers ();
          (* answer anything still waiting: terminal jobs truthfully, the
             rest (forced shutdown) with a shutdown error so the client
             knows to resubmit or re-wait against the next daemon *)
          Hashtbl.iter
            (fun job cs ->
              List.iter
                (fun c ->
                  if List.memq c !conns then
                    Conn.send c
                      (if terminal job then terminal_response job
                       else Protocol.Errored { code = "shutdown"; msg = id_of_job job }))
                cs)
            waiters;
          Hashtbl.reset waiters;
          (* held sync-replicas acks: the job is durable here but not
             yet on K followers — an honest error beats a ghost ack *)
          List.iter
            (fun (c, _) ->
              if List.memq c !conns then
                Conn.send c
                  (Protocol.Errored { code = "shutdown"; msg = "sync-replicas not satisfied" }))
            (Replica.Sync.drain sync);
          List.iter (fun c -> ignore (Conn.flush c)) !conns;
          List.iter (fun c -> try Unix.close (Conn.fd c) with Unix.Unix_error _ -> ()) !conns;
          conns := [];
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
          listeners := [];
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
          exit_code ())
