type t = {
  capacity : int;
  queue : string Queue.t;
  tracked : (string, unit) Hashtbl.t;  (* queued or in flight *)
  mutable ewma_ms : float;  (* smoothed per-job service time *)
}

let create ?(capacity = 64) () =
  { capacity; queue = Queue.create (); tracked = Hashtbl.create 64; ewma_ms = 250. }

let capacity t = t.capacity
let queued t = Queue.length t.queue
let in_flight t = Hashtbl.length t.tracked - Queue.length t.queue

let retry_after_ms t =
  let occupancy = Hashtbl.length t.tracked + 1 in
  let ms = t.ewma_ms *. float_of_int occupancy in
  int_of_float (Float.min 60_000. (Float.max 100. ms))

let offer t ~id =
  if Hashtbl.mem t.tracked id then `Duplicate
  else if Hashtbl.length t.tracked >= t.capacity then `Shed (retry_after_ms t)
  else begin
    Hashtbl.replace t.tracked id ();
    Queue.push id t.queue;
    `Admitted
  end

let force t ~id =
  if not (Hashtbl.mem t.tracked id) then begin
    Hashtbl.replace t.tracked id ();
    Queue.push id t.queue
  end

let take t = Queue.take_opt t.queue

let requeue t ~id =
  if Hashtbl.mem t.tracked id && not (Queue.fold (fun acc j -> acc || j = id) false t.queue)
  then Queue.push id t.queue

(* one queue's load figures, in a stable textual form a sharded daemon
   can drop in a stat file for its siblings to read *)
let snapshot t = Printf.sprintf "%d %.3f" (Hashtbl.length t.tracked) t.ewma_ms

let clamp_hint ms = int_of_float (Float.min 60_000. (Float.max 100. ms))

let aggregate snapshots =
  let parsed =
    List.filter_map
      (fun s ->
        match String.split_on_char ' ' (String.trim s) with
        | [ tr; ew ] -> (
            match (int_of_string_opt tr, float_of_string_opt ew) with
            | Some tr, Some ew when tr >= 0 && ew >= 0. -> Some (tr, ew)
            | _ -> None)
        | _ -> None)
      snapshots
  in
  match parsed with
  | [] -> clamp_hint 0.
  | _ ->
      (* the fleet drains [shards] jobs per smoothed service time, so a
         client that honors [total occupancy * ewma / shards] re-arrives
         roughly when some shard has a free slot — the same estimate
         retry_after_ms makes for a single queue *)
      let shards = float_of_int (List.length parsed) in
      let occupancy = List.fold_left (fun acc (tr, _) -> acc + tr) 0 parsed + 1 in
      let ewma = List.fold_left (fun acc (_, ew) -> acc +. ew) 0. parsed /. shards in
      clamp_hint (ewma *. float_of_int occupancy /. shards)

let finish t ~id ~elapsed_ms =
  if Hashtbl.mem t.tracked id then begin
    Hashtbl.remove t.tracked id;
    t.ewma_ms <- (0.8 *. t.ewma_ms) +. (0.2 *. float_of_int (max 0 elapsed_ms))
  end
