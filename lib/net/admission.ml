type t = {
  capacity : int;
  queue : string Queue.t;
  tracked : (string, unit) Hashtbl.t;  (* queued or in flight *)
  mutable ewma_ms : float;  (* smoothed per-job service time *)
}

let create ?(capacity = 64) () =
  { capacity; queue = Queue.create (); tracked = Hashtbl.create 64; ewma_ms = 250. }

let capacity t = t.capacity
let queued t = Queue.length t.queue
let in_flight t = Hashtbl.length t.tracked - Queue.length t.queue

let retry_after_ms t =
  let occupancy = Hashtbl.length t.tracked + 1 in
  let ms = t.ewma_ms *. float_of_int occupancy in
  int_of_float (Float.min 60_000. (Float.max 100. ms))

let offer t ~id =
  if Hashtbl.mem t.tracked id then `Duplicate
  else if Hashtbl.length t.tracked >= t.capacity then `Shed (retry_after_ms t)
  else begin
    Hashtbl.replace t.tracked id ();
    Queue.push id t.queue;
    `Admitted
  end

let force t ~id =
  if not (Hashtbl.mem t.tracked id) then begin
    Hashtbl.replace t.tracked id ();
    Queue.push id t.queue
  end

let take t = Queue.take_opt t.queue

let requeue t ~id =
  if Hashtbl.mem t.tracked id && not (Queue.fold (fun acc j -> acc || j = id) false t.queue)
  then Queue.push id t.queue

let finish t ~id ~elapsed_ms =
  if Hashtbl.mem t.tracked id then begin
    Hashtbl.remove t.tracked id;
    t.ewma_ms <- (0.8 *. t.ewma_ms) +. (0.2 *. float_of_int (max 0 elapsed_ms))
  end
