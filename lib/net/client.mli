(** Blocking client for the daemon's {!Protocol} — the engine behind
    [rtt submit] and [rtt status].

    One {!request} is one round trip: frame and send, then read frames
    until a response arrives (for [wait], that read blocks until the
    job reaches a terminal state or [timeout] elapses). Errors are
    typed so the CLI can map them onto its exit-code contract. *)

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

val endpoint_of_string : string -> (endpoint, string) result
(** ["HOST:PORT"] parses as TCP, anything else as a Unix-socket
    path. *)

type t

type error =
  | Timeout  (** The deadline passed with no response. *)
  | Closed of string  (** Connect refused, or the daemon hung up. *)
  | Bad_frame of string  (** A response failed the CRC or the grammar. *)

val error_to_string : error -> string

val connect : endpoint -> (t, error) result
val close : t -> unit

val fd : t -> Unix.file_descr
(** The connected socket, for callers that multiplex it into their own
    [select] loop (the standby's link to its primary). *)

val connect_retry : ?attempts:int -> ?seed:int -> endpoint -> (t, error) result
(** {!connect} with a bounded reconnect policy: up to [attempts]
    (default 8) tries, sleeping {!Rtt_service.Retry.backoff} — capped
    exponential with deterministic jitter, in milliseconds — between
    them. This is what lets [rtt submit --wait] and [rtt status] ride
    out a failover window instead of failing on the first refused
    connection. *)

val request : ?timeout:float -> t -> Protocol.request -> (Protocol.response, error) result
(** Send one request, block (default 30 s) for its response. *)

(** {1 Pipelining}

    The daemon answers pipelined requests in order (waits excepted —
    see {!Protocol}), so a client may {!send} several frames
    back-to-back and then {!recv} each response: one round trip per
    {e batch}, not per request. Responses that arrive while an earlier
    one is being read are queued internally, never dropped. *)

val send : t -> Protocol.request -> (unit, error) result
(** Frame and write one request without waiting for its response. *)

val recv : deadline:float -> t -> (Protocol.response, error) result
(** Next response — from the internal queue if one is already
    buffered, otherwise read from the socket until [deadline]
    (absolute, {!Unix.gettimeofday} scale). *)

(** {1 CLI exit codes}

    The client-side contract, disjoint from the engine's 2–13 and the
    supervisor's 0/30/31/124: *)

val exit_connect : int  (** 40 — could not connect / protocol failure. *)

val exit_shed : int  (** 41 — the daemon shed the submission. *)

val exit_timeout : int  (** 42 — [--wait] timed out. *)

val exit_unknown_job : int  (** 43 — the daemon has no trace of the job. *)
