(** Exact rational numbers with a small-integer fast path.

    Values are kept normalized: the denominator is strictly positive and
    coprime with the numerator; zero is [0/1]. Used throughout the LP
    relaxation pipeline (Section 3.1 of the paper) so that rounding
    decisions and ratio checks are exact.

    Internally a value lives on one of two arms: a native-[int]
    numerator/denominator pair (both below [2^30], so every cross
    product stays inside the 63-bit native range) or a {!Bigint} pair.
    Arithmetic runs on the fast arm whenever both operands fit and
    promotes on overflow; results that shrink back are demoted, so the
    representation is canonical and observable behaviour is identical to
    a pure-bigint implementation — only faster. *)

type t

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Construction} *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_ints : int -> int -> t
(** [of_ints a b = a/b].
    @raise Division_by_zero if [b = 0]. *)

val of_string : string -> t
(** Parses ["a"], ["a/b"] or ["-a/b"] decimal forms. *)

(** {1 Observation} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val is_small_repr : t -> bool
(** Whether the value currently lives on the native-[int] fast arm.
    Representation introspection for tests and benchmarks only — the
    two arms are observably identical. *)

val to_float : t -> float

val to_bigint_floor : t -> Bigint.t
val to_bigint_ceil : t -> Bigint.t

val to_int_floor : t -> int
(** @raise Failure on native-int overflow. *)

val to_int_ceil : t -> int
(** @raise Failure on native-int overflow. *)

val to_string : t -> string

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val mul_int : t -> int -> t
val floor : t -> t
val ceil : t -> t

(** {1 Infix operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
