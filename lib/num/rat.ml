(* Exact rationals with a small-integer fast path.

   A value is either [S (n, d)] — native-int numerator/denominator with
   |n| < 2^30, 0 < d < 2^30 and gcd (|n|, d) = 1 — or [B (n, d)], the
   bigint arm with the same normalization invariants (d > 0, coprime).
   The representation is canonical: every value whose reduced form fits
   the [S] bounds is stored as [S], so a [B] value never equals an [S]
   value and structural equality coincides with numeric equality.

   The bound 2^30 keeps every cross product of the fast arm (n1*d2,
   n1*n2, d1*d2, ...) below 2^60 and two-term sums below 2^61, inside
   the 63-bit native range, so the fast arm never overflows silently:
   results whose reduced form outgrows the bound promote to [B], and
   [B] results that shrink back demote to [S]. *)

let small_lim = 1 lsl 30

type t = S of int * int | B of Bigint.t * Bigint.t

let fits n = n > -small_lim && n < small_lim

(* gcd on non-negative native ints *)
let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* Euclidean floor division for d > 0 *)
let ediv n d = if n >= 0 then n / d else -((-n + d - 1) / d)

let zero = S (0, 1)
let one = S (1, 1)
let two = S (2, 1)
let half = S (1, 2)
let minus_one = S (-1, 1)

(* [n], [d] native ints with d > 0, both bounded well inside the native
   range (call sites keep them below ~2^61); returns the canonical arm *)
let norm_small n d =
  if n = 0 then zero
  else begin
    let g = gcd_int (Stdlib.abs n) d in
    let n = n / g and d = d / g in
    if fits n && fits d then S (n, d) else B (Bigint.of_int n, Bigint.of_int d)
  end

(* reduced bigint pair (d > 0, coprime): demote to the fast arm if it fits *)
let demote n d =
  match (Bigint.to_int_opt n, Bigint.to_int_opt d) with
  | Some sn, Some sd when fits sn && fits sd -> S (sn, sd)
  | _ -> B (n, d)

let norm_big n d =
  if Bigint.is_zero d then raise Division_by_zero;
  let n, d = if Stdlib.( < ) (Bigint.sign d) 0 then (Bigint.neg n, Bigint.neg d) else (n, d) in
  if Bigint.is_zero n then zero
  else begin
    let g = Bigint.gcd n d in
    demote (Bigint.div n g) (Bigint.div d g)
  end

let of_bigint n = demote n Bigint.one
let of_int i = if fits i then S (i, 1) else B (Bigint.of_int i, Bigint.one)
let make = norm_big

let of_ints a b =
  if b = 0 then raise Division_by_zero;
  if a = Stdlib.min_int || b = Stdlib.min_int then norm_big (Bigint.of_int a) (Bigint.of_int b)
  else if b < 0 then norm_small (-a) (-b)
  else norm_small a b

let num = function S (n, _) -> Bigint.of_int n | B (n, _) -> n
let den = function S (_, d) -> Bigint.of_int d | B (_, d) -> d
let sign = function S (n, _) -> Stdlib.compare n 0 | B (n, _) -> Bigint.sign n
let is_zero = function S (n, _) -> n = 0 | B _ -> false
let is_integer = function S (_, d) -> d = 1 | B (_, d) -> Bigint.equal d Bigint.one
let is_small_repr = function S _ -> true | B _ -> false

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | B (n, d) -> Bigint.to_float n /. Bigint.to_float d

let to_bigint_floor = function
  | S (n, d) -> Bigint.of_int (ediv n d)
  | B (n, d) ->
      (* Bigint.divmod is Euclidean (remainder >= 0), which is exactly
         floor division for positive denominators *)
      Bigint.div n d

let to_bigint_ceil = function
  | S (n, d) -> Bigint.of_int (-ediv (-n) d)
  | B (n, d) -> Bigint.neg (Bigint.div (Bigint.neg n) d)

let to_int_floor = function S (n, d) -> ediv n d | B (n, d) -> Bigint.to_int (Bigint.div n d)

let to_int_ceil = function
  | S (n, d) -> -ediv (-n) d
  | B (n, d) -> Bigint.to_int (Bigint.neg (Bigint.div (Bigint.neg n) d))

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | B (n, d) ->
      if Bigint.equal d Bigint.one then Bigint.to_string n
      else Bigint.to_string n ^ "/" ^ Bigint.to_string d

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
      let a = Bigint.of_string (String.sub s 0 i) in
      let b = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      norm_big a b

let compare a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) -> Stdlib.compare (n1 * d2) (n2 * d1)
  | _ -> Bigint.compare (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a))

(* canonical representation: structural equality per arm, never across *)
let equal a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) -> n1 = n2 && d1 = d2
  | B (n1, d1), B (n2, d2) -> Bigint.equal n1 n2 && Bigint.equal d1 d2
  | S _, B _ | B _, S _ -> false

let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let neg = function S (n, d) -> S (-n, d) | B (n, d) -> B (Bigint.neg n, d)
let abs = function S (n, d) -> S (Stdlib.abs n, d) | B (n, d) -> B (Bigint.abs n, d)

let add a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) ->
      if d1 = d2 then norm_small (n1 + n2) d1 else norm_small ((n1 * d2) + (n2 * d1)) (d1 * d2)
  | _ ->
      norm_big
        (Bigint.add (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a)))
        (Bigint.mul (den a) (den b))

let sub a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) ->
      if d1 = d2 then norm_small (n1 - n2) d1 else norm_small ((n1 * d2) - (n2 * d1)) (d1 * d2)
  | _ ->
      norm_big
        (Bigint.sub (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a)))
        (Bigint.mul (den a) (den b))

let mul a b =
  match (a, b) with
  | S (n1, d1), S (n2, d2) -> norm_small (n1 * n2) (d1 * d2)
  | _ -> norm_big (Bigint.mul (num a) (num b)) (Bigint.mul (den a) (den b))

let div a b =
  if is_zero b then raise Division_by_zero;
  match (a, b) with
  | S (n1, d1), S (n2, d2) ->
      let n = n1 * d2 and d = d1 * n2 in
      if d < 0 then norm_small (-n) (-d) else norm_small n d
  | _ -> norm_big (Bigint.mul (num a) (den b)) (Bigint.mul (den a) (num b))

(* inverting swaps the (coprime) components, so both arms stay canonical *)
let inv = function
  | S (n, d) -> if n = 0 then raise Division_by_zero else if n > 0 then S (d, n) else S (-d, -n)
  | B (n, d) ->
      if Stdlib.( < ) (Bigint.sign n) 0 then B (Bigint.neg d, Bigint.neg n) else B (d, n)

let mul_int x k =
  match x with
  | S (n, d) when fits k -> norm_small (n * k) d
  | _ -> norm_big (Bigint.mul_int (num x) k) (den x)

let floor = function S (n, d) -> S (ediv n d, 1) | B (n, d) -> of_bigint (Bigint.div n d)

let ceil = function
  | S (n, d) -> S (-ediv (-n) d, 1)
  | B (n, d) -> of_bigint (Bigint.neg (Bigint.div (Bigint.neg n) d))

let pp fmt x = Format.pp_print_string fmt (to_string x)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
