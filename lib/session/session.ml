open Rtt_num
open Rtt_dag
open Rtt_duration
open Rtt_core
open Rtt_engine
open Rtt_service

(* ------------------------------------------------------------------ *)
(* mutation language                                                   *)

type op =
  | Seed of string
  | Add_job of (int * int) list
  | Add_edge of int * int
  | Set_duration of int * (int * int) list
  | Set_budget of int
  | Set_alpha of Rat.t
  | Remove_job of int

let tuples_to_string tuples =
  String.concat " " (List.map (fun (r, t) -> Printf.sprintf "%d:%d" r t) tuples)

let op_to_string = function
  | Seed text -> Printf.sprintf "seed %s" (Frame.escape text)
  | Add_job tuples -> Printf.sprintf "add-job %s" (tuples_to_string tuples)
  | Add_edge (u, v) -> Printf.sprintf "add-edge %d %d" u v
  | Set_duration (v, tuples) ->
      Printf.sprintf "set-duration-option %d %s" v (tuples_to_string tuples)
  | Set_budget b -> Printf.sprintf "set-budget %d" b
  | Set_alpha a -> Printf.sprintf "set-alpha %s" (Rat.to_string a)
  | Remove_job v -> Printf.sprintf "remove-job %d" v

let parse_tuples words =
  let tuple w =
    match String.split_on_char ':' w with
    | [ r; t ] -> (
        match (int_of_string_opt r, int_of_string_opt t) with
        | Some r, Some t -> Ok (r, t)
        | _ -> Error (Printf.sprintf "bad resource:time tuple %S" w))
    | _ -> Error (Printf.sprintf "bad resource:time tuple %S" w)
  in
  List.fold_left
    (fun acc w ->
      match (acc, tuple w) with
      | Ok l, Ok t -> Ok (l @ [ t ])
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    (Ok []) words

let op_of_string line =
  let words = String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "") in
  let int what s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad %s %S" what s)
  in
  let ( let* ) = Result.bind in
  match words with
  | [ "seed"; body ] -> (
      match Frame.unescape body with
      | Some text -> Ok (Seed text)
      | None -> Error "seed: malformed escape")
  | "add-job" :: ((_ :: _) as tuples) ->
      let* tuples = parse_tuples tuples in
      Ok (Add_job tuples)
  | [ "add-edge"; u; v ] ->
      let* u = int "vertex" u in
      let* v = int "vertex" v in
      Ok (Add_edge (u, v))
  | "set-duration-option" :: v :: ((_ :: _) as tuples) ->
      let* v = int "vertex" v in
      let* tuples = parse_tuples tuples in
      Ok (Set_duration (v, tuples))
  | [ "set-budget"; b ] ->
      let* b = int "budget" b in
      Ok (Set_budget b)
  | [ "set-alpha"; a ] -> (
      match Rat.of_string a with
      | r -> Ok (Set_alpha r)
      | exception _ -> Error (Printf.sprintf "bad alpha %S (want p/q)" a))
  | [ "remove-job"; v ] ->
      let* v = int "vertex" v in
      Ok (Remove_job v)
  | verb :: _ -> Error (Printf.sprintf "unknown mutation %S" verb)
  | [] -> Error "empty mutation"

(* ------------------------------------------------------------------ *)
(* instance state: a text-faithful representation of the evolving
   instance. Kept as sorted/ordered lists (not a hashtable) so the
   rendered instance text — and through it the validation messages and
   the solver answers — is a deterministic function of the mutation
   history. *)

type state = {
  n : int;
  durs : (int * (int * int) list) list;  (* sorted by vertex *)
  edges : (int * int) list;  (* insertion order *)
  budget : int;
  alpha : Rat.t;
}

let empty_state = { n = 0; durs = []; edges = []; budget = 0; alpha = Rat.half }

let to_text st =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "vertices %d\n" st.n);
  List.iter
    (fun (v, tuples) ->
      Buffer.add_string buf (Printf.sprintf "duration %d %s\n" v (tuples_to_string tuples)))
    st.durs;
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v)) st.edges;
  Buffer.contents buf

let state_of_problem ~budget ~alpha p =
  let durs = ref [] in
  Array.iteri
    (fun v d ->
      if not (Duration.is_constant d) || Duration.base_time d <> 0 then
        durs := (v, Duration.tuples d) :: !durs)
    p.Problem.durations;
  {
    n = Problem.n_jobs p;
    durs = List.rev !durs;
    edges = Dag.edges p.Problem.dag;
    budget;
    alpha;
  }

let check_tuples tuples =
  match Duration.make tuples with
  | _ -> Ok ()
  | exception Invalid_argument m -> Error (Printf.sprintf "invalid duration (%s)" m)

let check_vertex st v = if v < 0 || v >= st.n then Error (Printf.sprintf "vertex %d out of range [0, %d)" v st.n) else Ok ()

(* Apply one mutation to a state, without validation of the DAG shape
   (that is [validate]'s job, which sees the whole rendered text). *)
let apply st op =
  let ( let* ) = Result.bind in
  match op with
  | Seed text -> (
      match Engine.load_string text with
      | Ok p -> Ok (state_of_problem ~budget:st.budget ~alpha:st.alpha p)
      | Error e -> Error (Error.to_string e))
  | Add_job tuples ->
      let* () = check_tuples tuples in
      Ok { st with n = st.n + 1; durs = st.durs @ [ (st.n, tuples) ] }
  | Add_edge (u, v) ->
      let* () = check_vertex st u in
      let* () = check_vertex st v in
      if u = v then Error (Printf.sprintf "self-loop on vertex %d" u)
      else if List.mem (u, v) st.edges then
        Error (Printf.sprintf "duplicate edge %d -> %d" u v)
      else Ok { st with edges = st.edges @ [ (u, v) ] }
  | Set_duration (v, tuples) ->
      let* () = check_vertex st v in
      let* () = check_tuples tuples in
      let durs = List.filter (fun (u, _) -> u <> v) st.durs @ [ (v, tuples) ] in
      Ok { st with durs = List.sort (fun (a, _) (b, _) -> compare a b) durs }
  | Set_budget b ->
      if b < 0 then Error "budget must be non-negative" else Ok { st with budget = b }
  | Set_alpha a ->
      if Rat.(a <= Rat.zero) || Rat.(a >= Rat.one) then
        Error "alpha must lie strictly inside (0, 1)"
      else Ok { st with alpha = a }
  | Remove_job v ->
      let* () = check_vertex st v in
      if st.n = 1 then Error "cannot remove the last job"
      else begin
        let shift u = if u > v then u - 1 else u in
        Ok
          {
            st with
            n = st.n - 1;
            durs =
              List.filter_map
                (fun (u, tuples) -> if u = v then None else Some (shift u, tuples))
                st.durs;
            edges =
              List.filter_map
                (fun (a, b) -> if a = v || b = v then None else Some (shift a, shift b))
                st.edges;
          }
      end

(* Engine-grade validation of the whole mutated instance: the rendered
   text goes through the same loader a submission does, so a duplicate
   edge is rejected naming the edge and a cycle is rejected naming a
   witness vertex. An empty state has no instance yet and is valid. *)
let validate st =
  if st.n = 0 then Ok None
  else
    match Engine.load_string (to_text st) with
    | Ok p -> Ok (Some p)
    | Error e -> Error (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* per-session journal: one CRC-framed line per committed mutation,
   fsync'd before the mutation is acknowledged. The grammar is [mut
   <escaped-op>]; the committed prefix is the longest run of lines that
   frame-decode, parse, and carry their terminating newline — exactly
   {!Rtt_service.Journal.replay_wire}'s discipline, restated here
   because that reader insists on the job-event grammar. *)

let record_of_op op = Frame.frame ("mut " ^ Frame.escape (op_to_string op))

let op_of_record line =
  match Frame.unframe line with
  | None -> None
  | Some payload -> (
      match String.index_opt payload ' ' with
      | Some i when String.sub payload 0 i = "mut" -> (
          let rest = String.sub payload (i + 1) (String.length payload - i - 1) in
          match Frame.unescape rest with
          | None -> None
          | Some op_line -> (
              match op_of_string op_line with Ok op -> Some op | Error _ -> None))
      | _ -> None)

let read_whole path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let committed_ops path =
  match read_whole path with
  | None -> ([], 0)
  | Some s ->
      let n = String.length s in
      let ops = ref [] in
      let ok = ref 0 in
      let start = ref 0 in
      let stop = ref false in
      while (not !stop) && !start < n do
        match String.index_from_opt s !start '\n' with
        | None -> stop := true
        | Some nl -> (
            let line = String.sub s !start (nl - !start) in
            match op_of_record line with
            | Some op ->
                ops := op :: !ops;
                ok := nl + 1;
                start := nl + 1
            | None -> stop := true)
      done;
      (List.rev !ops, !ok)

let seal_journal path =
  let ops, ok = committed_ops path in
  (match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | st ->
      if st.Unix.st_size > ok then begin
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Rtt_diskio.Diskio.ftruncate fd ok;
            Rtt_diskio.Diskio.fsync fd)
      end);
  List.length ops

(* ------------------------------------------------------------------ *)
(* the store                                                           *)

type t = {
  sid : string;
  dir : string;
  fd : Unix.file_descr;
  mutable state : state;
  mutable revision : int;
  mutable problem : Problem.t option;
  mutable warm : int array option;  (* last answer, remapped across mutations *)
  mutable basis : Rtt_lp.Simplex.basis option;
}

type store = { spool : string; sessions : (string, t) Hashtbl.t }

let create_store ~spool = { spool; sessions = Hashtbl.create 8 }
let sessions_root spool = Filename.concat spool "sessions"

let valid_sid sid =
  let ok_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false in
  String.length sid > 0 && String.length sid <= 64 && sid <> "." && sid <> ".."
  && String.for_all ok_char sid

let ensure_dir path =
  match Unix.mkdir path 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let sid t = t.sid
let revision t = t.revision
let find store sid = Hashtbl.find_opt store.sessions sid

let open_ store sid =
  match Hashtbl.find_opt store.sessions sid with
  | Some t -> Ok t
  | None ->
      if not (valid_sid sid) then
        Error "bad session id (want 1-64 characters from [A-Za-z0-9._-])"
      else begin
        let dir = Filename.concat (sessions_root store.spool) sid in
        ensure_dir (sessions_root store.spool);
        ensure_dir dir;
        let journal = Filename.concat dir "journal.log" in
        (* seal a torn tail so the next append starts on a newline
           boundary, then replay the committed mutations *)
        ignore (seal_journal journal);
        let ops, _ = committed_ops journal in
        let rec replay st rev problem = function
          | [] -> Ok (st, rev, problem)
          | op :: rest -> (
              match apply st op with
              | Error msg ->
                  Error (Printf.sprintf "replay failed at mutation %d: %s" (rev + 1) msg)
              | Ok st' -> (
                  match validate st' with
                  | Error msg ->
                      Error (Printf.sprintf "replay failed at mutation %d: %s" (rev + 1) msg)
                  | Ok problem' -> replay st' (rev + 1) problem' rest))
        in
        match replay empty_state 0 None ops with
        | Error _ as e -> e
        | Ok (state, revision, problem) ->
            let fd = Unix.openfile journal [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
            let t = { sid; dir; fd; state; revision; problem; warm = None; basis = None } in
            Hashtbl.replace store.sessions sid t;
            Ok t
      end

let append_op t op =
  let bytes = Bytes.of_string (record_of_op op ^ "\n") in
  Rtt_diskio.Diskio.write_all t.fd bytes 0 (Bytes.length bytes);
  Rtt_diskio.Diskio.fsync t.fd

(* Remap the remembered answer across the mutation so the next
   re-solve can still use it as a phantom bound. Only shape changes
   need work: a new job starts at 0 units, a removed job drops its
   entry, a reseed retires the answer entirely. Everything else is
   revalidated against the current instance at solve time anyway. *)
let remap_warm warm = function
  | Seed _ -> None
  | Add_job _ -> Option.map (fun a -> Array.append a [| 0 |]) warm
  | Remove_job v ->
      Option.map
        (fun a -> Array.init (Array.length a - 1) (fun i -> if i < v then a.(i) else a.(i + 1)))
        warm
  | Add_edge _ | Set_duration _ | Set_budget _ | Set_alpha _ -> warm

let mutate t op =
  match apply t.state op with
  | Error _ as e -> e
  | Ok st' -> (
      match validate st' with
      | Error _ as e -> e
      | Ok problem ->
          (* durability before acknowledgement: journal first (fsync'd),
             then apply in memory — a crash between the two replays the
             mutation on reopen *)
          append_op t op;
          t.state <- st';
          t.problem <- problem;
          t.warm <- remap_warm t.warm op;
          t.revision <- t.revision + 1;
          Ok t.revision)

(* ------------------------------------------------------------------ *)
(* solving                                                             *)

(* The canonical answer text: what the session serves and what a cold
   solve of the same instance renders — deliberately without the fuel
   line ([Engine.pp_success] prints one), because fuel is exactly what
   a warm re-solve changes. *)
let cold_render p (s : Engine.success) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "rung:     %s\n" (Policy.rung_name s.Engine.rung));
  Buffer.add_string buf (Printf.sprintf "makespan: %d\n" s.Engine.makespan);
  Buffer.add_string buf (Printf.sprintf "budget:   %d\n" s.Engine.budget_used);
  (match s.Engine.lp_makespan with
  | Some lp -> Buffer.add_string buf (Printf.sprintf "LP bound: %s\n" (Rat.to_string lp))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "allocation: %s\n" (Engine.render_allocation p s.Engine.allocation));
  Buffer.contents buf

type solved = { success : Engine.success; rendered : string; warm : bool }

let solve ?fuel ?policy ?max_states t =
  match t.problem with
  | None -> Error (Error.Invalid_request "empty session: seed it or add a job first")
  | Some p ->
      let warm = t.warm in
      let basis_before = Rtt_lp.Simplex.last_basis () in
      Option.iter Rtt_lp.Simplex.set_basis_hint t.basis;
      let result =
        Fun.protect
          ~finally:Rtt_lp.Simplex.clear_basis_hint
          (fun () ->
            Engine.solve ?fuel ?policy ?max_states ~alpha:t.state.alpha ?warm_hint:warm p
              ~budget:t.state.budget)
      in
      (match result with
      | Ok s ->
          t.warm <- Some (Array.copy s.Engine.allocation);
          (* keep the previous basis unless this solve actually ran an
             LP — [last_basis] is process-global, and adopting another
             solve's basis would just waste crash pivots next time *)
          let basis_after = Rtt_lp.Simplex.last_basis () in
          if not (basis_after == basis_before) then t.basis <- basis_after;
          Ok { success = s; rendered = cold_render p s; warm = Option.is_some warm }
      | Error _ as e -> e)

let close store t =
  Hashtbl.remove store.sessions t.sid;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (try Sys.remove (Filename.concat t.dir "journal.log") with Sys_error _ -> ());
  try Unix.rmdir t.dir with Unix.Unix_error _ -> ()

let list_sids ~spool =
  match Sys.readdir (sessions_root spool) with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter (fun sid ->
             Sys.file_exists (Filename.concat (Filename.concat (sessions_root spool) sid) "journal.log"))
      |> List.sort compare
