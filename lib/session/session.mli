(** Live mutable instances with warm-started re-solve — the serving
    mode the batch API cannot express.

    A session holds one evolving instance: the client opens it, streams
    mutations ([add-job], [add-edge], [set-duration-option],
    [set-budget], [set-alpha], [remove-job], [seed]), and asks for a
    re-solve whenever it wants the updated schedule. Three invariants:

    - {b Validated like a submission.} Every mutation passes through
      the same {!Rtt_engine.Engine.load_string}-grade validation as a
      submitted instance — a duplicate edge is rejected naming the
      edge, a cycle is rejected naming a witness vertex — and a
      rejected mutation leaves the session untouched.
    - {b Durable like a job.} Every accepted mutation is appended to a
      per-session CRC-framed journal ([<spool>/sessions/<sid>/journal.log])
      and fsync'd {e before} the caller learns the new revision, so a
      session survives [kill -9]: reopening replays the committed
      prefix (sealing a torn tail) to the identical state.
    - {b Warm but byte-identical.} A re-solve reuses the previous
      answer two ways — the last allocation becomes the exact rung's
      answer-preserving exploration cap ({!Rtt_core.Exact.min_makespan}
      [warm_hint]) and the last optimal simplex basis is offered back
      through {!Rtt_lp.Simplex.set_basis_hint}, where it is re-derived
      in exact arithmetic and discarded on any mismatch. Both reuses
      only prune work, so the answer is what a cold solve of the
      current instance returns, byte for byte, for strictly less
      fuel. Basis hints are held in standard-form coordinates
      ([(row, column)] pairs over the constraint rows and real
      variables), which both simplex engines share — a hint captured
      under the dense tableau warm-starts the revised sparse engine
      and vice versa, so warm re-solves are indifferent to the
      [RTT_LP_ENGINE] setting (the differential suite in
      [test/test_lp.ml] asserts this on random hinted LPs). *)

open Rtt_num

type op =
  | Seed of string
      (** Replace the whole instance with this instance text (the
          {!Rtt_core.Io} format) — how a session starts from an
          existing file instead of building up from [add-job]. *)
  | Add_job of (int * int) list
      (** Append one job with the given duration tuples; its index is
          the previous job count. *)
  | Add_edge of int * int
  | Set_duration of int * (int * int) list
  | Set_budget of int
  | Set_alpha of Rat.t
  | Remove_job of int
      (** Delete the vertex, cascade-delete its incident edges, and
          renumber the vertices above it down by one. *)

val op_to_string : op -> string
(** One line, space-tokenized; fields that can carry arbitrary bytes
    are percent-escaped. Inverse of {!op_of_string}. *)

val op_of_string : string -> (op, string) result

type t
(** One open session. *)

type store
(** The sessions of one spool, keyed by session id; sessions live
    under [<spool>/sessions/<sid>/]. *)

val create_store : spool:string -> store

val valid_sid : string -> bool
(** Session ids name directories, so they are restricted to 1–64
    characters from [A-Za-z0-9._-] and must not be ["."] or [".."]. *)

val open_ : store -> string -> (t, string) result
(** Open (creating, or reattaching to a journaled session — replaying
    its committed mutations) the session named by this id. Idempotent:
    reopening an already-open session returns it unchanged. *)

val find : store -> string -> t option
val sid : t -> string

val revision : t -> int
(** Committed (journaled and applied) mutations so far. *)

val mutate : t -> op -> (int, string) result
(** Validate, journal (fsync), then apply one mutation; returns the
    new revision. On [Error] the session state and journal are
    untouched and the message names the reason (out-of-range vertex,
    duplicate edge, cycle witness, ...). *)

type solved = {
  success : Rtt_engine.Engine.success;
  rendered : string;
      (** The canonical answer text ([rung]/[makespan]/[budget]/LP
          bound/[allocation]) — deliberately excludes fuel, so a warm
          re-solve renders byte-identically to a cold solve of the same
          instance. *)
  warm : bool;  (** Whether a previous answer primed this solve. *)
}

val solve :
  ?fuel:int -> ?policy:Rtt_engine.Policy.t -> ?max_states:int -> t ->
  (solved, Rtt_engine.Error.t) result
(** Re-solve the current instance under the session's budget and
    alpha, warm-started from the previous answer when there is one.
    The session remembers the answer (allocation + simplex basis) for
    the next re-solve; mutations remap or retire it as needed. *)

val close : store -> t -> unit
(** Drop the session: close its journal and delete its directory. A
    closed id can be reopened later as a fresh session. *)

val cold_render : Rtt_core.Problem.t -> Rtt_engine.Engine.success -> string
(** The same canonical rendering {!solve} puts in [rendered], exposed
    so tests and the bench can compare a cold solve's text against a
    session's byte for byte. *)

val seal_journal : string -> int
(** Truncate a session journal (path to the [journal.log]) to its
    committed frame prefix; returns the committed record count. What
    [rtt fsck --repair] applies to a torn session journal. *)

val list_sids : spool:string -> string list
(** The session ids journaled under [<spool>/sessions], sorted. *)
