(** Content-addressed on-disk result cache, keyed by
    {!Fingerprint.digest}.

    One entry per solved request, written atomically (tmp + fsync +
    rename) so a crash — or two pool workers racing to publish the same
    digest — can never leave a torn entry. Each entry carries an
    integrity checksum over its payload; a corrupt, truncated, or
    unparseable entry reads back as a miss, never as a wrong answer.
    Callers are still expected to re-validate a hit against the
    instance ({!Validate.check}) before serving it: the checksum
    detects torn writes, validation detects a forged or stale entry
    whose bytes are internally consistent.

    A cached hit deliberately reports [fuel_spent = 0] and
    [degraded = []]: no solver ran. *)

val path : dir:string -> key:string -> string
(** [dir ^ "/" ^ key ^ ".rttc"]. *)

val store : dir:string -> key:string -> Engine.success -> unit
(** Durably publish a result under [key], creating [dir] if needed.
    Degradation reports are not persisted — a cache hit has no solver
    history. *)

val lookup : dir:string -> key:string -> Engine.success option
(** The entry stored under [key]; [None] when absent, torn, or
    corrupt. The returned success has [fuel_spent = 0]. *)

val read_raw : dir:string -> key:string -> string option
(** The entry's on-disk bytes (checksum line included), for shipping
    to a replication follower verbatim; [None] when absent. *)

val store_raw : dir:string -> key:string -> string -> unit
(** Atomically write entry bytes previously obtained from
    {!read_raw}. The bytes are not validated here — a corrupt ship
    reads back as a miss via {!lookup}'s checksum, never as a wrong
    answer. *)

val keys : dir:string -> string list
(** The keys of every entry currently in the cache directory, sorted —
    what [rtt fsck] iterates. *)

val entries : dir:string -> int
(** Number of entries currently in the cache directory. *)

val audit : dir:string -> key:string -> (unit, string) result
(** Why the entry under [key] would {e not} be served: [Error] with a
    reason for an unreadable, truncated, checksum-failing, or
    unparseable entry; [Ok ()] for one {!lookup} would accept. Never
    mutates the entry. *)
