open Rtt_num

let path ~dir ~key = Filename.concat dir (key ^ ".rttc")

let opt_rat_to_string = function None -> "-" | Some r -> Rat.to_string r

let opt_rat_of_string = function
  | "-" -> Some None
  | s -> ( match Rat.of_string s with r -> Some (Some r) | exception _ -> None)

let payload_of (s : Engine.success) =
  let alloc =
    if Array.length s.Engine.allocation = 0 then "-"
    else String.concat "," (Array.to_list (Array.map string_of_int s.Engine.allocation))
  in
  Printf.sprintf "rttc1 %s %d %d %s %s %s"
    (Policy.rung_name s.Engine.rung)
    s.Engine.makespan s.Engine.budget_used
    (opt_rat_to_string s.Engine.lp_makespan)
    (opt_rat_to_string s.Engine.lp_budget)
    alloc

let success_of_payload payload =
  match String.split_on_char ' ' payload with
  | [ "rttc1"; rung; ms; bu; lp_ms; lp_b; alloc ] -> (
      let ints l = List.map int_of_string_opt l in
      let alloc =
        if alloc = "-" then Some [||]
        else
          match ints (String.split_on_char ',' alloc) with
          | parts when List.for_all Option.is_some parts ->
              Some (Array.of_list (List.map Option.get parts))
          | _ -> None
      in
      match
        ( Policy.rung_of_string rung,
          int_of_string_opt ms,
          int_of_string_opt bu,
          opt_rat_of_string lp_ms,
          opt_rat_of_string lp_b,
          alloc )
      with
      | Some rung, Some makespan, Some budget_used, Some lp_makespan, Some lp_budget, Some allocation
        ->
          Some
            {
              Engine.rung;
              allocation;
              makespan;
              budget_used;
              lp_makespan;
              lp_budget;
              degraded = [];
              fuel_spent = 0;
            }
      | _ -> None)
  | _ -> None

(* tmp + fsync + rename, like every other durable artifact in the
   system: a crashed or concurrent writer can never leave a torn entry
   behind, and two workers racing to store the same digest both rename
   identical bytes, so last-writer-wins is harmless. *)
let store ~dir ~key (s : Engine.success) =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  let payload = payload_of s in
  let line = Printf.sprintf "%s %s" (Stdlib.Digest.to_hex (Stdlib.Digest.string payload)) payload in
  Rtt_diskio.Diskio.atomic_write ~path:(path ~dir ~key) line

let lookup ~dir ~key =
  match open_in_bin (path ~dir ~key) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          if len < 33 then None
          else
            let line = really_input_string ic len in
            if line.[32] <> ' ' then None
            else
              let payload = String.sub line 33 (len - 33) in
              if Stdlib.Digest.to_hex (Stdlib.Digest.string payload) <> String.sub line 0 32 then
                None
              else success_of_payload payload)

(* Raw entry transport for replication: followers warm their cache by
   copying the entry bytes verbatim. Reconstructing a success from a
   result file would lose the LP bounds (result files don't carry
   them), so shipping the checksummed line is both simpler and safer —
   a hit is still re-validated against the instance on lookup. *)
let read_raw ~dir ~key =
  match open_in_bin (path ~dir ~key) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let store_raw ~dir ~key bytes =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  Rtt_diskio.Diskio.atomic_write ~path:(path ~dir ~key) bytes

let keys ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if Filename.check_suffix name ".rttc" then Some (Filename.chop_suffix name ".rttc")
             else None)
      |> List.sort compare

let entries ~dir = List.length (keys ~dir)

(* The audit mirrors [lookup] but names the reason an entry would read
   as a miss — what fsck reports (and deletes under --repair), since a
   silently ignored corrupt entry is litter that hides real damage. *)
let audit ~dir ~key =
  match open_in_bin (path ~dir ~key) with
  | exception Sys_error _ -> Error "unreadable"
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          if len < 33 then Error (Printf.sprintf "truncated (%d bytes)" len)
          else
            let line = really_input_string ic len in
            if line.[32] <> ' ' then Error "malformed checksum line"
            else
              let payload = String.sub line 33 (len - 33) in
              if Stdlib.Digest.to_hex (Stdlib.Digest.string payload) <> String.sub line 0 32 then
                Error "checksum mismatch"
              else
                match success_of_payload payload with
                | Some _ -> Ok ()
                | None -> Error "unparseable payload")
