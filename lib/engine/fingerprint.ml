open Rtt_core
open Rtt_num
open Rtt_dag
open Rtt_duration

(* The canonical text is what the digest is computed over, so it must be
   a pure function of the *instance*, not of how its file spelled it:
   duration lines are emitted in vertex order (the file may declare them
   in any order), edges are sorted (the file may declare them in any
   order), and nothing position-dependent — file name, comments,
   whitespace — survives. Vertex identities themselves are part of the
   instance (the format addresses vertices by index), so no graph
   canonization is attempted. *)
let canonical (p : Problem.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "rtt-instance-v1\n";
  Buffer.add_string buf (Printf.sprintf "jobs %d\n" (Problem.n_jobs p));
  Array.iteri
    (fun v d ->
      Buffer.add_string buf (Printf.sprintf "duration %d" v);
      List.iter (fun (r, t) -> Buffer.add_string buf (Printf.sprintf " %d:%d" r t)) (Duration.tuples d);
      Buffer.add_char buf '\n')
    p.Problem.durations;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v))
    (List.sort compare (Dag.edges p.Problem.dag));
  Buffer.contents buf

let digest ?(policy = Policy.default) ?(alpha = Rat.half) (p : Problem.t) ~budget =
  let text =
    Printf.sprintf "%sbudget %d\npolicy %s\nalpha %s\n" (canonical p) budget
      (Policy.to_string policy) (Rat.to_string alpha)
  in
  Stdlib.Digest.to_hex (Stdlib.Digest.string text)

let is_digest s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s
