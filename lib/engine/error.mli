(** The engine's structured error taxonomy.

    Every failure the serving layer can see is one of these values —
    raw exceptions from the solver kernels are caught at the engine
    boundary and converted, so callers can pattern-match on the class,
    log it, and pick a degradation strategy. Each class also owns a
    stable nonzero process exit code for the CLI. *)

type t =
  | Parse_error of { line : int; msg : string }
      (** Malformed instance text; [line] is 1-based, 0 for whole-file
          problems such as a missing [vertices] directive. *)
  | Io_error of string  (** The instance file could not be read. *)
  | Invalid_instance of string
      (** Structurally invalid problem (cycle, empty graph, bad
          durations) discovered past parsing. *)
  | Invalid_request of string
      (** Bad query parameters: negative budget, alpha outside (0,1),
          empty fallback policy, … *)
  | Too_large of { states : int }
      (** The exact search refused the instance: its candidate state
          space exceeds the configured cap. *)
  | Fuel_exhausted of { stage : string; spent : int }
      (** The deterministic step budget ran out inside [stage]
          (["simplex"], ["flow"] or ["exact"]) after [spent] steps. *)
  | Lp_failure of string
      (** The LP relaxation reported an outcome that is impossible for
          a well-formed instance (infeasible/unbounded). *)
  | Flow_failure of string
      (** A min-flow computation failed or was aborted mid-augmentation. *)
  | Fault_injected of { site : string }
      (** An armed {!Faults} site fired and was not absorbed into a more
          specific class. *)
  | Certificate_mismatch of { what : string; expected : string; got : string }
      (** Independent re-validation of a returned allocation disagreed
          with the claim ([what] is e.g. ["makespan"], ["budget"],
          ["approximation bound"]). *)
  | All_rungs_failed of (string * t) list
      (** Every rung of the fallback chain failed; the payload records
          each rung name with its error, in attempt order. *)
  | Internal of string

val class_name : t -> string
(** Short stable kebab-case identifier of the class. *)

val exit_code : t -> int
(** CLI exit code: 2–13, one per class (0 is success; 1, 124, 125 are
    cmdliner's). *)

val exit_code_of_class : string -> int option
(** {!exit_code} looked up by {!class_name} — for consumers that only
    hold the journaled class string, such as a network client mapping
    a dead job to a process exit code. [None] for unknown classes
    (e.g. the service-level ["retries-exhausted"]). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
