open Rtt_core
open Rtt_num
open Rtt_budget

type claim = {
  rung : Policy.rung;
  allocation : int array;
  makespan : int;
  budget_used : int;
  budget : int;
  alpha : Rat.t option;
  lp_makespan : Rat.t option;
  lp_budget : Rat.t option;
}

let mismatch what expected got =
  Error (Error.Certificate_mismatch { what; expected; got })

let mismatch_int what expected got = mismatch what (string_of_int expected) (string_of_int got)

(* Re-derive everything the claim asserts from the allocation alone:
   makespan by longest path, resource cost by min-flow, and — when an
   LP lower bound is part of the claim — the rung's proven
   approximation factor. Runs unmetered so validation can neither
   exhaust the caller's fuel nor trip an armed fault. *)
let check (p : Problem.t) (c : claim) =
  Budget.unmetered (fun () ->
      let n = Problem.n_jobs p in
      if Array.length c.allocation <> n then
        mismatch_int "allocation length" n (Array.length c.allocation)
      else if Array.exists (fun r -> r < 0) c.allocation then
        mismatch "allocation sign" "non-negative units" "a negative entry"
      else begin
        let makespan = Schedule.makespan p c.allocation in
        let budget_used = Schedule.min_budget p c.allocation in
        if makespan <> c.makespan then mismatch_int "makespan" c.makespan makespan
        else if budget_used <> c.budget_used then mismatch_int "budget" c.budget_used budget_used
        else begin
          (* Resource-side certificate: single-criteria rungs must fit
             the requested budget; the bi-criteria rung may exceed it up
             to its proven 1/(1-alpha) factor. *)
          let rat_budget_bound bound what =
            if Rat.(Rat.of_int budget_used <= bound) then Ok ()
            else mismatch "budget bound" (Rat.to_string bound ^ what) (string_of_int budget_used)
          in
          let budget_ok =
            match (c.rung, c.alpha, c.lp_budget) with
            | Policy.Bicriteria, Some alpha, Some lp_budget ->
                rat_budget_bound (Rat.div lp_budget (Rat.sub Rat.one alpha)) " (LP/(1-alpha))"
            | Policy.Binary_bicriteria, _, Some lp_budget ->
                rat_budget_bound (Rat.mul (Rat.of_ints 4 3) lp_budget) " (4/3 LP)"
            | _ ->
                if budget_used <= c.budget then Ok ()
                else mismatch_int "budget cap" c.budget budget_used
          in
          match budget_ok with
          | Error _ as e -> e
          | Ok () -> (
              (* Time-side certificate: claimed approximation factor
                 against the LP lower bound (Thms 3.4, 3.9, 3.10). *)
              let factor =
                match (c.rung, c.alpha) with
                | Policy.Binary, _ -> Some (Rat.of_int 4)
                | Policy.Kway, _ -> Some (Rat.of_int 5)
                | Policy.Bicriteria, Some alpha -> Some (Rat.inv alpha)
                | Policy.Binary_bicriteria, _ -> Some (Rat.of_ints 14 5)
                | _ -> None
              in
              match (factor, c.lp_makespan) with
              | Some f, Some lp ->
                  let bound = Rat.mul f lp in
                  if Rat.(Rat.of_int makespan <= bound) then Ok ()
                  else
                    mismatch "approximation bound"
                      (Printf.sprintf "makespan <= %s (%sx LP)" (Rat.to_string bound)
                         (Rat.to_string f))
                      (string_of_int makespan)
              | _ -> Ok ())
        end
      end)

let corrupt allocation ~vertex ~delta =
  let a = Array.copy allocation in
  a.(vertex) <- a.(vertex) + delta;
  a
