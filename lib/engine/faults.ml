open Rtt_budget

type site =
  | Lp_infeasible
  | Flow_abort
  | Fuel_zero
  | Repl_frame_drop
  | Repl_ack_delay
  | Disk_fsync_fail
  | Disk_short_write
  | Disk_enospc
  | Disk_eio
  | Disk_rename_fail
  | Session_mutate_drop

(* The replication and session sites live in layers this library
   cannot see; the probe sides use the same literal strings. *)
let repl_frame_drop_site = "repl.frame-drop"
let repl_ack_delay_site = "repl.ack-delay"
let session_mutate_drop_site = "session.mutate.drop"

let key = function
  | Lp_infeasible -> Rtt_lp.Simplex.infeasible_site
  | Flow_abort -> Rtt_flow.Maxflow.augment_site
  | Fuel_zero -> Budget.fuel_zero
  | Repl_frame_drop -> repl_frame_drop_site
  | Repl_ack_delay -> repl_ack_delay_site
  | Disk_fsync_fail -> Rtt_diskio.Diskio.fsync_fail_site
  | Disk_short_write -> Rtt_diskio.Diskio.short_write_site
  | Disk_enospc -> Rtt_diskio.Diskio.enospc_site
  | Disk_eio -> Rtt_diskio.Diskio.eio_site
  | Disk_rename_fail -> Rtt_diskio.Diskio.rename_fail_site
  | Session_mutate_drop -> session_mutate_drop_site

let name = function
  | Lp_infeasible -> "lp-infeasible"
  | Flow_abort -> "flow-abort"
  | Fuel_zero -> "fuel-zero"
  | Repl_frame_drop -> "repl.frame-drop"
  | Repl_ack_delay -> "repl.ack-delay"
  (* the disk sites' CLI names are their Diskio site strings, like the
     repl pair above *)
  | Disk_fsync_fail -> Rtt_diskio.Diskio.fsync_fail_site
  | Disk_short_write -> Rtt_diskio.Diskio.short_write_site
  | Disk_enospc -> Rtt_diskio.Diskio.enospc_site
  | Disk_eio -> Rtt_diskio.Diskio.eio_site
  | Disk_rename_fail -> Rtt_diskio.Diskio.rename_fail_site
  | Session_mutate_drop -> session_mutate_drop_site

let all =
  [
    Lp_infeasible;
    Flow_abort;
    Fuel_zero;
    Repl_frame_drop;
    Repl_ack_delay;
    Disk_fsync_fail;
    Disk_short_write;
    Disk_enospc;
    Disk_eio;
    Disk_rename_fail;
    Session_mutate_drop;
  ]
let of_string s = List.find_opt (fun f -> name f = String.lowercase_ascii (String.trim s)) all

let arm ?(after = 0) site = Budget.arm ~site:(key site) ~after
let disarm site = Budget.disarm ~site:(key site)
let reset () = Budget.disarm_all ()
let armed site = Budget.armed ~site:(key site)

let with_fault ?after site f =
  arm ?after site;
  Fun.protect ~finally:reset f
