open Rtt_budget

type site = Lp_infeasible | Flow_abort | Fuel_zero

let key = function
  | Lp_infeasible -> Rtt_lp.Simplex.infeasible_site
  | Flow_abort -> Rtt_flow.Maxflow.augment_site
  | Fuel_zero -> Budget.fuel_zero

let name = function
  | Lp_infeasible -> "lp-infeasible"
  | Flow_abort -> "flow-abort"
  | Fuel_zero -> "fuel-zero"

let all = [ Lp_infeasible; Flow_abort; Fuel_zero ]
let of_string s = List.find_opt (fun f -> name f = String.lowercase_ascii (String.trim s)) all

let arm ?(after = 0) site = Budget.arm ~site:(key site) ~after
let disarm site = Budget.disarm ~site:(key site)
let reset () = Budget.disarm_all ()
let armed site = Budget.armed ~site:(key site)

let with_fault ?after site f =
  arm ?after site;
  Fun.protect ~finally:reset f
