(** Typed fault-injection registry over {!Rtt_budget.Budget}'s string
    sites.

    Arming a site makes the corresponding kernel misbehave once, at a
    chosen trigger count — the tool the test suite uses to prove that
    the fallback chain actually engages and that the certificate
    validator catches corrupted answers, without patching solver code. *)

type site =
  | Lp_infeasible
      (** The triggering simplex solve reports [Infeasible], which the
          LP relaxation surfaces as a structured LP failure. *)
  | Flow_abort
      (** The triggering max-flow augmentation raises
          [Rtt_budget.Budget.Injected_fault]. *)
  | Fuel_zero
      (** The triggering fuel tick zeroes the remaining budget, so the
          next tick raises [Fuel_exhausted]. No-op without a fuel
          context. *)
  | Repl_frame_drop
      (** The replicating primary silently drops the triggering
          journal frame before shipping it; the follower sees a
          sequence gap and must reconnect from its watermark. *)
  | Repl_ack_delay
      (** The follower skips the triggering per-frame acknowledgement;
          its watermark reaches the primary only on the next frame or
          heartbeat, inflating observed replication lag. *)
  | Disk_fsync_fail
      (** The triggering {!Rtt_diskio.Diskio.fsync} raises [EIO]; the
          preceding writes may or may not be durable. *)
  | Disk_short_write
      (** The triggering {!Rtt_diskio.Diskio.write_all} lands only a
          prefix of its bytes, then raises [EIO] — a torn write. *)
  | Disk_enospc
      (** The triggering {!Rtt_diskio.Diskio.write_all} raises
          [ENOSPC] before writing anything. *)
  | Disk_eio
      (** The triggering {!Rtt_diskio.Diskio.write_all} or
          [ftruncate] raises [EIO] before touching the file. *)
  | Disk_rename_fail
      (** The triggering {!Rtt_diskio.Diskio.rename} raises [EIO]
          without renaming; the temp file stays behind as litter. *)
  | Session_mutate_drop
      (** The daemon drops the triggering [session.mutate] before
          journaling or applying it, answering [error fault-injected]
          — the deterministic stand-in for a mutation lost in flight,
          used by the session crash tests. *)

val key : site -> string
(** The underlying {!Rtt_budget.Budget} site string. *)

val repl_frame_drop_site : string
val repl_ack_delay_site : string
val session_mutate_drop_site : string
(** The site strings probed from layers this library cannot depend on
    (service, session); kept here so {!key} and the probes agree. *)

val name : site -> string
val all : site list
val of_string : string -> site option

val arm : ?after:int -> site -> unit
(** [arm ~after site]: the first [after] probes of the site pass, the
    next fires (default [after = 0]: fire on first probe). Faults are
    one-shot. *)

val disarm : site -> unit
val reset : unit -> unit
(** Disarm every site (including ones armed directly on [Budget]). *)

val armed : site -> bool

val with_fault : ?after:int -> site -> (unit -> 'a) -> 'a
(** Run with the fault armed; all sites are reset afterwards. *)
