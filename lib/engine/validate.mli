(** Independent certificate validation of solver answers.

    A rung's answer is never trusted: its allocation is re-checked from
    scratch — makespan by longest path, resource cost by the min-flow
    feasibility oracle ({!Rtt_core.Schedule.min_budget}), and, when an
    LP lower bound is available, the rung's proven approximation factor.
    Any disagreement is an {!Error.Certificate_mismatch}, never a
    silently wrong answer. *)

open Rtt_core
open Rtt_num

type claim = {
  rung : Policy.rung;
  allocation : int array;
  makespan : int;  (** Claimed makespan. *)
  budget_used : int;  (** Claimed min-flow resource cost. *)
  budget : int;  (** The budget the query asked for. *)
  alpha : Rat.t option;  (** Rounding threshold (bicriteria rung). *)
  lp_makespan : Rat.t option;  (** LP makespan lower bound, if an LP ran. *)
  lp_budget : Rat.t option;  (** LP resource usage, if an LP ran. *)
}

val check : Problem.t -> claim -> (unit, Error.t) result
(** Runs unmetered: validation can neither exhaust fuel nor trip an
    armed fault. *)

val corrupt : int array -> vertex:int -> delta:int -> int array
(** A copy of the allocation with [delta] added at [vertex] — the
    canonical way tests forge a broken certificate. *)
