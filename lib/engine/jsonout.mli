(** Shared JSON string escaping for the repo's hand-rolled emitters
    ([rtt jobs --json], [bench --json]). One escaper, one behaviour —
    call sites print the fixed object shells themselves. *)

val escape : string -> string
(** JSON string-body escaping: double quotes, backslashes and control
    characters become their two-character or [\uXXXX] escapes. Does not
    add the surrounding quotes. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes — a complete JSON
    string literal. *)

val unescape : string -> string option
(** Inverse of {!escape} (also accepts the standard [\/], [\b], [\f]
    and [\uXXXX] for code points below 256). [None] on malformed input
    or escapes outside the byte range. Exists so tests can assert the
    round trip; production code only emits. *)
