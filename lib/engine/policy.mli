(** Fallback policies: ordered chains of solver rungs.

    {!Engine.solve} walks the chain left to right, stepping down on any
    structured failure (fuel exhaustion, LP failure, injected fault,
    certificate mismatch) until a rung answers. *)

type rung =
  | Exact  (** Branch-and-bound optimum ({!Rtt_core.Exact}); exponential. *)
  | Bicriteria
      (** LP relaxation + alpha-rounding, (1/α, 1/(1-α)) bi-criteria
          guarantee (Thm 3.4). May exceed the requested budget by the
          proven factor. *)
  | Binary_bicriteria
      (** Power-of-two rounding, (4/3, 14/5) bi-criteria guarantee
          (Thm 3.16). May exceed the requested budget by 4/3. *)
  | Binary  (** 4-approximation for binary reducers (Thm 3.9). *)
  | Kway  (** 5-approximation for k-way reducers (Thm 3.10). *)
  | Greedy  (** Polynomial greedy upgrades; no proven guarantee. *)
  | Baseline
      (** The zero allocation: always feasible at budget 0, never
          consumes fuel — the chain's guaranteed last resort. *)

type t = rung list

val default : t
(** [exact → bicriteria → greedy → baseline]. *)

val all_rungs : rung list

val rung_name : rung -> string
val rung_of_string : string -> rung option

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses a comma-separated chain, e.g. ["exact,bicriteria,greedy"]. *)

val pp_rung : Format.formatter -> rung -> unit
