type t =
  | Parse_error of { line : int; msg : string }
  | Io_error of string
  | Invalid_instance of string
  | Invalid_request of string
  | Too_large of { states : int }
  | Fuel_exhausted of { stage : string; spent : int }
  | Lp_failure of string
  | Flow_failure of string
  | Fault_injected of { site : string }
  | Certificate_mismatch of { what : string; expected : string; got : string }
  | All_rungs_failed of (string * t) list
  | Internal of string

let class_name = function
  | Parse_error _ -> "parse-error"
  | Io_error _ -> "io-error"
  | Invalid_instance _ -> "invalid-instance"
  | Invalid_request _ -> "invalid-request"
  | Too_large _ -> "too-large"
  | Fuel_exhausted _ -> "fuel-exhausted"
  | Lp_failure _ -> "lp-failure"
  | Flow_failure _ -> "flow-failure"
  | Fault_injected _ -> "fault-injected"
  | Certificate_mismatch _ -> "certificate-mismatch"
  | All_rungs_failed _ -> "all-rungs-failed"
  | Internal _ -> "internal"

(* Stable process exit codes, one per error class. 0 is success and
   1/124/125 are left to cmdliner's own conventions. *)
let exit_code = function
  | Parse_error _ -> 2
  | Io_error _ -> 3
  | Invalid_instance _ -> 4
  | Invalid_request _ -> 5
  | Too_large _ -> 6
  | Fuel_exhausted _ -> 7
  | Lp_failure _ -> 8
  | Flow_failure _ -> 9
  | Fault_injected _ -> 10
  | Certificate_mismatch _ -> 11
  | All_rungs_failed _ -> 12
  | Internal _ -> 13

(* The inverse mapping by class name, for consumers that only have the
   journaled class string (e.g. a network client rendering a dead
   job's exit code). *)
let exit_code_of_class = function
  | "parse-error" -> Some 2
  | "io-error" -> Some 3
  | "invalid-instance" -> Some 4
  | "invalid-request" -> Some 5
  | "too-large" -> Some 6
  | "fuel-exhausted" -> Some 7
  | "lp-failure" -> Some 8
  | "flow-failure" -> Some 9
  | "fault-injected" -> Some 10
  | "certificate-mismatch" -> Some 11
  | "all-rungs-failed" -> Some 12
  | "internal" -> Some 13
  | _ -> None

let rec to_string = function
  | Parse_error { line; msg } ->
      if line > 0 then Printf.sprintf "parse error at line %d: %s" line msg
      else Printf.sprintf "parse error: %s" msg
  | Io_error msg -> Printf.sprintf "i/o error: %s" msg
  | Invalid_instance msg -> Printf.sprintf "invalid instance: %s" msg
  | Invalid_request msg -> Printf.sprintf "invalid request: %s" msg
  | Too_large { states } ->
      Printf.sprintf "instance too large for exact search (%d candidate states)" states
  | Fuel_exhausted { stage; spent } ->
      Printf.sprintf "fuel exhausted in %s after %d steps" stage spent
  | Lp_failure msg -> Printf.sprintf "LP failure: %s" msg
  | Flow_failure msg -> Printf.sprintf "flow failure: %s" msg
  | Fault_injected { site } -> Printf.sprintf "injected fault fired at %s" site
  | Certificate_mismatch { what; expected; got } ->
      Printf.sprintf "certificate mismatch on %s: claimed %s, recomputed %s" what expected got
  | All_rungs_failed reports ->
      Printf.sprintf "all fallback rungs failed: %s"
        (String.concat "; "
           (List.map (fun (rung, e) -> Printf.sprintf "%s (%s)" rung (to_string e)) reports))
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let pp fmt e = Format.pp_print_string fmt (to_string e)
