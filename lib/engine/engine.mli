(** The fault-tolerant solver engine — the only entry point a serving
    layer (and the CLI) should use.

    [solve] walks a {!Policy} fallback chain. Every rung runs under a
    fresh deterministic fuel budget (a step counter threaded through
    simplex pivots, flow augmentations and exact enumeration — no wall
    clock, so runs are reproducible), every raw solver exception is
    converted to a structured {!Error.t}, and every answer is
    independently re-validated ({!Validate}) before being returned.
    Degradation is visible, never silent: the result records which rung
    answered and why each earlier rung was skipped. *)

open Rtt_core
open Rtt_num

type report = { rung : Policy.rung; error : Error.t }

type success = {
  rung : Policy.rung;  (** The rung that produced the answer. *)
  allocation : int array;
  makespan : int;  (** Recomputed, not the rung's claim. *)
  budget_used : int;  (** Min-flow cost of [allocation], recomputed. *)
  lp_makespan : Rat.t option;  (** LP lower bound when an LP rung answered. *)
  lp_budget : Rat.t option;  (** LP resource usage when an LP rung answered. *)
  degraded : report list;  (** Rungs that failed first, in attempt order. *)
  fuel_spent : int;  (** Total steps consumed across all rungs tried. *)
}

val degraded_to : success -> bool
(** Whether at least one earlier rung was skipped. *)

val solve :
  ?fuel:int ->
  ?policy:Policy.t ->
  ?alpha:Rat.t ->
  ?max_states:int ->
  ?warm_start:int array ->
  ?warm_hint:int array ->
  Problem.t ->
  budget:int ->
  (success, Error.t) result
(** [solve ?fuel ?policy ?alpha ?max_states ?warm_start ?warm_hint p
    ~budget] minimizes the makespan under [budget] resource units.

    [fuel] is a per-rung step budget; a rung that exhausts it fails with
    [Fuel_exhausted] and the next rung starts fresh, so one runaway rung
    cannot starve its fallbacks. Default: unmetered. [policy] defaults
    to {!Policy.default}; [alpha] (default 1/2) feeds the bicriteria
    rung; [max_states] (default 2_000_000) caps the exact rung's state
    space. [warm_start] primes the exact rung's branch-and-bound
    incumbent (see {!Rtt_core.Exact.min_makespan}) — the serving layer
    passes a checkpointed allocation here to resume an interrupted
    solve instead of restarting it from scratch. [warm_hint] instead
    feeds the exact rung's answer-preserving exploration cap (see
    {!Rtt_core.Exact.min_makespan}'s [warm_hint]) — the session layer
    passes the previous revision's allocation here, so an incremental
    re-solve spends less fuel yet returns what a cold solve would,
    byte for byte.

    Returns [Error (Invalid_request _)] on bad parameters and
    [Error (All_rungs_failed _)] when no rung produces a validated
    answer. Never raises on well-typed input. *)

val load : string -> (Problem.t, Error.t) result
(** Read an instance file; parse errors come back as
    [Error.Parse_error] with a line number, unreadable files as
    [Error.Io_error], and structurally ill-formed DAGs (duplicate
    edges, with the offending edge named) as [Error.Invalid_request]. *)

val load_string : string -> (Problem.t, Error.t) result

val pp_success : Format.formatter -> success -> unit

val render_allocation : Problem.t -> int array -> string
(** Human-readable allocation, one [name=r] token per job holding
    resources (vertex labels when the DAG has them); ["(none)"] when
    no job holds any. The rendering the CLI and the daemon's result
    frames share, so both serving paths print identical text. *)
