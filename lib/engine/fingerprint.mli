(** Canonical, content-addressed identity of a solve request.

    [digest] hashes a canonical rendering of the instance (DAG +
    duration functions) together with every parameter that can change
    the engine's answer: budget, fallback policy, and alpha. Two solve
    requests share a digest iff they denote the same optimization
    question, regardless of how their instance files were spelled:
    permuting duration or edge declaration lines, renaming the file,
    reordering or re-commenting it all leave the digest fixed, while
    changing any duration tuple, adding or dropping an edge, or moving
    the budget/policy/alpha all change it.

    The digest keys the on-disk result cache ({!Cache}) and the
    supervisor's duplicate-instance detection, so its stability across
    processes and OCaml versions matters: it is an MD5 (stdlib
    [Digest]) of a versioned text rendering, not of any in-memory
    representation. *)

open Rtt_core
open Rtt_num

val canonical : Problem.t -> string
(** The canonical text rendering the digest is computed over
    (versioned; exposed for tests and debugging). *)

val digest : ?policy:Policy.t -> ?alpha:Rat.t -> Problem.t -> budget:int -> string
(** 32-hex-character digest of the full solve request. Defaults match
    {!Engine.solve}: [Policy.default] and alpha 1/2. *)

val is_digest : string -> bool
(** Whether a string has the shape of a {!digest} (exactly 32
    lowercase hex characters) — what the daemon and its clients use to
    sanity-check job ids before touching the spool. *)
