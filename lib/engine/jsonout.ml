(* Shared minimal JSON string emission. The JSON we produce — job
   listings in the service, bench sections — is flat objects with fixed
   keys, so a correct string escaper plus printf at the call sites beats
   a parser/printer dependency. This module exists so every emitter
   escapes the same way; it replaced a per-caller copy in the service
   that double-escaped via [Printf.sprintf "%S"]. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] <> '\\' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 1 >= n then None
    else
      match s.[i + 1] with
      | '"' ->
          Buffer.add_char buf '"';
          go (i + 2)
      | '\\' ->
          Buffer.add_char buf '\\';
          go (i + 2)
      | '/' ->
          Buffer.add_char buf '/';
          go (i + 2)
      | 'n' ->
          Buffer.add_char buf '\n';
          go (i + 2)
      | 'r' ->
          Buffer.add_char buf '\r';
          go (i + 2)
      | 't' ->
          Buffer.add_char buf '\t';
          go (i + 2)
      | 'b' ->
          Buffer.add_char buf '\b';
          go (i + 2)
      | 'f' ->
          Buffer.add_char buf '\012';
          go (i + 2)
      | 'u' when i + 5 < n -> (
          match (hex s.[i + 2], hex s.[i + 3], hex s.[i + 4], hex s.[i + 5]) with
          | Some a, Some b, Some c, Some d ->
              let code = (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d in
              if code < 0x100 then begin
                Buffer.add_char buf (Char.chr code);
                go (i + 6)
              end
              else None (* non-latin escapes never occur in our own output *)
          | _ -> None)
      | _ -> None
  in
  go 0
