type rung = Exact | Bicriteria | Binary_bicriteria | Binary | Kway | Greedy | Baseline
type t = rung list

let default = [ Exact; Bicriteria; Greedy; Baseline ]

let rung_name = function
  | Exact -> "exact"
  | Bicriteria -> "bicriteria"
  | Binary_bicriteria -> "binary-bicriteria"
  | Binary -> "binary"
  | Kway -> "kway"
  | Greedy -> "greedy"
  | Baseline -> "baseline"

let all_rungs = [ Exact; Bicriteria; Binary_bicriteria; Binary; Kway; Greedy; Baseline ]

let rung_of_string s =
  List.find_opt (fun r -> rung_name r = String.lowercase_ascii (String.trim s)) all_rungs

let to_string policy = String.concat "," (List.map rung_name policy)

let of_string s =
  let names = String.split_on_char ',' s |> List.map String.trim |> List.filter (fun w -> w <> "") in
  if names = [] then Error "empty fallback chain"
  else
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match rung_of_string name with
          | Some r -> build (r :: acc) rest
          | None ->
              Error
                (Printf.sprintf "unknown rung %S (expected %s)" name
                   (String.concat "|" (List.map rung_name all_rungs))))
    in
    build [] names

let pp_rung fmt r = Format.pp_print_string fmt (rung_name r)
