open Rtt_core
open Rtt_num
open Rtt_budget

type report = { rung : Policy.rung; error : Error.t }

type success = {
  rung : Policy.rung;
  allocation : int array;
  makespan : int;
  budget_used : int;
  lp_makespan : Rat.t option;
  lp_budget : Rat.t option;
  degraded : report list;
  fuel_spent : int;
}

let degraded_to s = s.degraded <> []

(* One raw rung invocation. Runs inside the caller's fuel context, so
   any exception here is a structured failure of this rung only. *)
let attempt p ~budget ~alpha ~max_states ~warm_start ~warm_hint rung : Validate.claim =
  let plain allocation makespan budget_used =
    {
      Validate.rung;
      allocation;
      makespan;
      budget_used;
      budget;
      alpha = None;
      lp_makespan = None;
      lp_budget = None;
    }
  in
  match rung with
  | Policy.Exact ->
      let r = Exact.min_makespan ~max_states ?warm_start ?warm_hint p ~budget in
      plain r.Exact.allocation r.Exact.makespan r.Exact.budget_used
  | Policy.Bicriteria ->
      let bi = Bicriteria.min_makespan p ~budget ~alpha in
      {
        Validate.rung;
        allocation = bi.Bicriteria.rounded.Rounding.allocation;
        makespan = bi.Bicriteria.rounded.Rounding.makespan;
        budget_used = bi.Bicriteria.rounded.Rounding.budget_used;
        budget;
        alpha = Some alpha;
        lp_makespan = Some bi.Bicriteria.lp.Lp_relax.makespan;
        lp_budget = Some bi.Bicriteria.lp.Lp_relax.budget_used;
      }
  | Policy.Binary_bicriteria ->
      let r = Binary_bicriteria.min_makespan p ~budget in
      {
        (plain r.Binary_bicriteria.allocation r.Binary_bicriteria.makespan
           r.Binary_bicriteria.budget_used)
        with
        Validate.lp_makespan = Some r.Binary_bicriteria.lp.Lp_relax.makespan;
        Validate.lp_budget = Some r.Binary_bicriteria.lp.Lp_relax.budget_used;
      }
  | Policy.Binary ->
      let r = Binary_approx.min_makespan p ~budget in
      {
        (plain r.Binary_approx.allocation r.Binary_approx.makespan r.Binary_approx.budget_used) with
        Validate.lp_makespan = Some r.Binary_approx.lp_makespan;
      }
  | Policy.Kway ->
      let r = Kway_approx.min_makespan p ~budget in
      {
        (plain r.Kway_approx.allocation r.Kway_approx.makespan r.Kway_approx.budget_used) with
        Validate.lp_makespan = Some r.Kway_approx.lp_makespan;
      }
  | Policy.Greedy ->
      let r = Greedy.min_makespan p ~budget in
      plain r.Greedy.allocation r.Greedy.makespan r.Greedy.budget_used
  | Policy.Baseline ->
      (* Zero allocation: realizable with zero units by definition and
         computed without flow solves or fuel, so this rung cannot fail. *)
      let allocation = Schedule.zero_allocation p in
      plain allocation (Schedule.makespan p allocation) 0

let error_of_exn = function
  | Budget.Fuel_exhausted { stage; spent } -> Some (Error.Fuel_exhausted { stage; spent })
  | Budget.Injected_fault { site } -> Some (Error.Fault_injected { site })
  | Budget.Solver_failure { stage; reason } ->
      Some (if stage = "lp" then Error.Lp_failure reason else Error.Flow_failure reason)
  | Exact.Too_large states -> Some (Error.Too_large { states })
  | Invalid_argument msg -> Some (Error.Invalid_instance msg)
  | Stack_overflow -> Some (Error.Internal "stack overflow")
  | _ -> None

let solve ?fuel ?(policy = Policy.default) ?(alpha = Rat.half) ?(max_states = 2_000_000)
    ?warm_start ?warm_hint (p : Problem.t) ~budget =
  if budget < 0 then Error (Error.Invalid_request "budget must be non-negative")
  else if Rat.(alpha <= Rat.zero) || Rat.(alpha >= Rat.one) then
    Error (Error.Invalid_request "alpha must lie strictly inside (0, 1)")
  else if policy = [] then Error (Error.Invalid_request "empty fallback policy")
  else begin
    let total_spent = ref 0 in
    (* Each rung gets a fresh fuel budget of the same size: exhausting
       one rung must not starve its fallbacks. *)
    let run_rung rung =
      let rung_spent = ref 0 in
      let result =
        match
          Budget.with_fuel fuel (fun () ->
              Fun.protect
                ~finally:(fun () -> rung_spent := Budget.spent ())
                (fun () -> attempt p ~budget ~alpha ~max_states ~warm_start ~warm_hint rung))
        with
        | claim -> Ok claim
        | exception e -> (
            match error_of_exn e with Some err -> Error err | None -> raise e)
      in
      total_spent := !total_spent + !rung_spent;
      result
    in
    let rec walk degraded = function
      | [] -> (
          (* a one-rung chain fails with its own error; only a real
             chain gets the aggregate class *)
          match degraded with
          | [ r ] -> Error r.error
          | _ ->
              Error
                (Error.All_rungs_failed
                   (List.rev_map (fun (r : report) -> (Policy.rung_name r.rung, r.error)) degraded)))
      | rung :: rest -> (
          let validated =
            match run_rung rung with
            | Error _ as e -> e
            | Ok claim -> (
                match Validate.check p claim with Ok () -> Ok claim | Error _ as e -> e)
          in
          match validated with
          | Error error -> walk ({ rung; error } :: degraded) rest
          | Ok claim ->
              Ok
                {
                  rung;
                  allocation = claim.Validate.allocation;
                  makespan = claim.Validate.makespan;
                  budget_used = claim.Validate.budget_used;
                  lp_makespan = claim.Validate.lp_makespan;
                  lp_budget = claim.Validate.lp_budget;
                  degraded = List.rev degraded;
                  fuel_spent = !total_spent;
                })
    in
    walk [] policy
  end

let load_string s =
  match Io.of_string s with
  | p -> Ok p
  | exception Io.Parse_error { line; msg } -> Error (Error.Parse_error { line; msg })
  | exception Io.Invalid_dag msg -> Error (Error.Invalid_request msg)
  | exception Invalid_argument msg -> Error (Error.Invalid_instance msg)

let load path =
  match Io.read_file path with
  | p -> Ok p
  | exception Io.Parse_error { line; msg } -> Error (Error.Parse_error { line; msg })
  | exception Io.Invalid_dag msg -> Error (Error.Invalid_request msg)
  | exception Invalid_argument msg -> Error (Error.Invalid_instance msg)
  | exception Sys_error msg -> Error (Error.Io_error msg)

let render_allocation (p : Problem.t) alloc =
  let parts = ref [] in
  Array.iteri
    (fun v r ->
      if r > 0 then begin
        let name = Option.value ~default:(string_of_int v) (Rtt_dag.Dag.label p.Problem.dag v) in
        parts := Printf.sprintf "%s=%d" name r :: !parts
      end)
    alloc;
  if !parts = [] then "(none)" else String.concat " " (List.rev !parts)

let pp_success fmt s =
  Format.fprintf fmt "@[<v>rung:     %s%s@,makespan: %d@,budget:   %d" (Policy.rung_name s.rung)
    (if degraded_to s then " (degraded)" else "")
    s.makespan s.budget_used;
  (match s.lp_makespan with
  | Some lp -> Format.fprintf fmt "@,LP bound: %s" (Rat.to_string lp)
  | None -> ());
  if s.fuel_spent > 0 then Format.fprintf fmt "@,fuel:     %d steps" s.fuel_spent;
  List.iter
    (fun (r : report) ->
      Format.fprintf fmt "@,skipped:  %s (%s)" (Policy.rung_name r.rung) (Error.to_string r.error))
    s.degraded;
  Format.fprintf fmt "@]"
