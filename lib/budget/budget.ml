exception Fuel_exhausted of { stage : string; spent : int }
exception Injected_fault of { site : string }
exception Solver_failure of { stage : string; reason : string }

(* remaining < 0 means "metered context absent"; we model that by not
   installing a context at all. *)
type fuel = { mutable remaining : int; mutable spent : int; unlimited : bool }

type ckpt = { every : int; sink : string -> unit; mutable due : int }

let context : fuel option ref = ref None
let enabled = ref true
let ckpt_ctx : ckpt option ref = ref None
let faults : (string, int ref) Hashtbl.t = Hashtbl.create 7

let fuel_zero = "fuel.zero"

let arm ~site ~after =
  if after < 0 then invalid_arg "Budget.arm: negative trigger count";
  Hashtbl.replace faults site (ref after)

let disarm ~site = Hashtbl.remove faults site
let disarm_all () = Hashtbl.reset faults
let armed ~site = Hashtbl.mem faults site

let probe ~site =
  if not !enabled then false
  else
    match Hashtbl.find_opt faults site with
    | None -> false
    | Some countdown ->
        if !countdown = 0 then begin
          Hashtbl.remove faults site;
          true
        end
        else begin
          decr countdown;
          false
        end

let with_fuel limit f =
  let ctx =
    match limit with
    | None -> { remaining = 0; spent = 0; unlimited = true }
    | Some n ->
        if n < 0 then invalid_arg "Budget.with_fuel: negative fuel";
        { remaining = n; spent = 0; unlimited = false }
  in
  let saved = !context in
  context := Some ctx;
  Fun.protect ~finally:(fun () -> context := saved) f

let spent () = match !context with None -> 0 | Some c -> c.spent

let tick ~stage =
  if !enabled then begin
    (match !ckpt_ctx with Some k when k.due > 0 -> k.due <- k.due - 1 | _ -> ());
    if probe ~site:fuel_zero then begin
      match !context with
      | Some c when not c.unlimited -> c.remaining <- 0
      | _ -> ()
    end;
    match !context with
    | None -> ()
    | Some c ->
        c.spent <- c.spent + 1;
        if not c.unlimited then begin
          if c.remaining = 0 then raise (Fuel_exhausted { stage; spent = c.spent });
          c.remaining <- c.remaining - 1
        end
  end

let unmetered f =
  let saved = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := saved) f

let with_checkpoint ~every sink f =
  if every <= 0 then invalid_arg "Budget.with_checkpoint: every must be positive";
  let saved = !ckpt_ctx in
  ckpt_ctx := Some { every; sink; due = every };
  Fun.protect ~finally:(fun () -> ckpt_ctx := saved) f

let checkpoint state =
  if !enabled then
    match !ckpt_ctx with
    | Some k when k.due = 0 ->
        (* reset the quota before calling the sink: a sink that raises
           (supervisor shutdown) must not be re-entered on unwind paths *)
        k.due <- k.every;
        k.sink (state ())
    | _ -> ()
