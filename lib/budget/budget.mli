(** Ambient solver instrumentation: deterministic fuel budgets and a
    fault-injection registry.

    The long-running kernels (simplex pivots, flow augmentations, exact
    enumeration) call {!tick} once per elementary step and {!probe} at
    designated fault sites. Both are no-ops unless a context is
    installed, so the kernels stay dependency-free and pay one branch
    per step in production.

    Fuel is a plain step counter — no wall clock — so an exhausted run
    is exactly reproducible. The registry is global and single-threaded,
    matching the rest of the library; [Rtt_engine.Engine] installs a
    fresh fuel context per fallback rung and disables the whole
    instrumentation while it re-validates certificates. *)

exception Fuel_exhausted of { stage : string; spent : int }
(** Raised by {!tick} when the installed budget hits zero. [stage] names
    the kernel that was running (["simplex"], ["flow"], ["exact"], …);
    [spent] is the number of steps consumed in this context. *)

exception Injected_fault of { site : string }
(** Raised by kernels when an armed fault at [site] fires. *)

exception Solver_failure of { stage : string; reason : string }
(** A solver reported a structurally impossible outcome (e.g. the LP
    relaxation coming back infeasible) — raised instead of a bare
    [assert false] so callers can degrade gracefully. *)

(** {1 Fuel} *)

val with_fuel : int option -> (unit -> 'a) -> 'a
(** [with_fuel (Some n) f] runs [f] with a budget of [n] steps; every
    {!tick} consumes one and the [n+1]-th raises {!Fuel_exhausted}.
    [with_fuel None f] runs [f] unmetered (probes still fire). The
    previous context is restored on exit, normal or exceptional. *)

val tick : stage:string -> unit
(** Consume one unit of fuel (no-op without a context). Also gives the
    {!val-fuel_zero} fault site a chance to zero the remaining budget. *)

val spent : unit -> int
(** Steps consumed in the innermost active fuel context (0 if none). *)

val unmetered : (unit -> 'a) -> 'a
(** Run with instrumentation disabled: ticks, probes and checkpoint
    offers are no-ops and armed faults keep their trigger counts. Used
    by the certificate validator so re-checking an answer can neither
    exhaust fuel nor trip an injected fault. *)

(** {1 Checkpointing}

    The serving layer installs a {e sink} with {!with_checkpoint};
    long-running kernels periodically {e offer} a snapshot of their
    resumable state with {!checkpoint}. Offers are cheap closures — the
    snapshot string is only materialized when at least [every] ticks
    have elapsed since the last accepted offer, so kernels can offer at
    every step. The sink may raise (the supervisor uses this to abort an
    in-flight solve on shutdown); the exception propagates out of the
    kernel. *)

val with_checkpoint : every:int -> (string -> unit) -> (unit -> 'a) -> 'a
(** [with_checkpoint ~every sink f] runs [f] with [sink] installed:
    after each run of [every] ticks, the next {!checkpoint} offer
    serializes its state and passes it to [sink]. The previous sink is
    restored on exit, normal or exceptional.
    @raise Invalid_argument when [every <= 0]. *)

val checkpoint : (unit -> string) -> unit
(** Offer a snapshot. No-op unless a sink is installed, instrumentation
    is enabled, and the sink's tick quota has elapsed. *)

(** {1 Fault injection} *)

val fuel_zero : string
(** Site name ["fuel.zero"]: when it fires, the remaining fuel of the
    current context is zeroed, so the very next {!tick} exhausts. *)

val arm : site:string -> after:int -> unit
(** Arm the fault at [site]: the first [after] probes pass, the next one
    fires (and the fault disarms itself). [after = 0] fires on the first
    probe. @raise Invalid_argument on negative [after]. *)

val disarm : site:string -> unit
val disarm_all : unit -> unit

val armed : site:string -> bool
(** Whether a fault at [site] is still waiting to fire. *)

val probe : site:string -> bool
(** [probe ~site] is [true] exactly when an armed fault at [site]
    reaches its trigger count. Kernels decide the effect: return a
    failure outcome, or raise {!Injected_fault}. *)
