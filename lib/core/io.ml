open Rtt_dag
open Rtt_duration

exception Parse_error of { line : int; msg : string }
exception Invalid_dag of string

let to_string (p : Problem.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "vertices %d\n" (Problem.n_jobs p));
  Array.iteri
    (fun v d ->
      if not (Duration.is_constant d) || Duration.base_time d <> 0 then begin
        Buffer.add_string buf (Printf.sprintf "duration %d" v);
        List.iter (fun (r, t) -> Buffer.add_string buf (Printf.sprintf " %d:%d" r t)) (Duration.tuples d);
        Buffer.add_char buf '\n'
      end)
    p.Problem.durations;
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v)) (Dag.edges p.Problem.dag);
  Buffer.contents buf

(* Every syntactic or referential problem is reported as [Parse_error]
   carrying the 1-based line number, so callers (the CLI, the engine)
   can point the user at the offending line instead of dying on a bare
   [Failure]/[Invalid_argument] from deep inside the number parser or
   graph builder. *)
let of_string s =
  let fail line msg = raise (Parse_error { line; msg }) in
  let n = ref (-1) in
  let n_line = ref 0 in
  let durations = Hashtbl.create 16 in
  let edges = ref [] in
  let lineno = ref 0 in
  List.iter
    (fun raw ->
      incr lineno;
      let lnum = !lineno in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | [ "vertices"; k ] -> (
            if !n >= 0 then fail lnum "duplicate vertices directive";
            match int_of_string_opt k with
            | Some k when k > 0 ->
                n := k;
                n_line := lnum
            | Some _ -> fail lnum "vertex count must be positive"
            | None -> fail lnum (Printf.sprintf "bad vertex count %S" k))
        | "vertices" :: _ -> fail lnum "vertices takes exactly one field"
        | "duration" :: v :: ((_ :: _) as tuples) -> (
            match int_of_string_opt v with
            | Some v ->
                let parse_tuple w =
                  match String.split_on_char ':' w with
                  | [ r; t ] -> (
                      match (int_of_string_opt r, int_of_string_opt t) with
                      | Some r, Some t -> (r, t)
                      | _ -> fail lnum (Printf.sprintf "bad resource:time tuple %S" w))
                  | _ -> fail lnum (Printf.sprintf "bad resource:time tuple %S" w)
                in
                let tuples = List.map parse_tuple tuples in
                if Hashtbl.mem durations v then
                  fail lnum (Printf.sprintf "duplicate duration for vertex %d" v);
                let d =
                  try Duration.make tuples
                  with Invalid_argument m -> fail lnum (Printf.sprintf "invalid duration (%s)" m)
                in
                Hashtbl.replace durations v (lnum, d)
            | None -> fail lnum (Printf.sprintf "bad vertex %S" v))
        | [ "duration" ] | [ "duration"; _ ] -> fail lnum "duration needs a vertex and at least one tuple"
        | [ "edge"; u; v ] -> (
            match (int_of_string_opt u, int_of_string_opt v) with
            | Some u, Some v -> edges := (lnum, u, v) :: !edges
            | _ -> fail lnum "bad edge endpoints")
        | "edge" :: _ -> fail lnum "edge takes exactly two fields"
        | w :: _ -> fail lnum (Printf.sprintf "unknown directive %S" w)
        | [] -> assert false
      end)
    (String.split_on_char '\n' s);
  if !n < 0 then fail 0 "missing vertices directive";
  let check_vertex lnum what v =
    if v < 0 || v >= !n then
      fail lnum (Printf.sprintf "%s %d out of range [0, %d)" what v !n)
  in
  Hashtbl.iter (fun v (lnum, _) -> check_vertex lnum "duration vertex" v) durations;
  List.iter
    (fun (lnum, u, v) ->
      check_vertex lnum "edge endpoint" u;
      check_vertex lnum "edge endpoint" v;
      if u = v then fail lnum (Printf.sprintf "self-loop on vertex %d" u))
    !edges;
  (* structural well-formedness, checked at load time so malformed DAGs
     never reach a solver: duplicate edges are rejected naming the edge
     and both lines; a cycle is reported naming a vertex on it *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (lnum, u, v) ->
      match Hashtbl.find_opt seen (u, v) with
      | Some first ->
          raise
            (Invalid_dag
               (Printf.sprintf "duplicate edge %d -> %d (lines %d and %d)" u v first lnum))
      | None -> Hashtbl.replace seen (u, v) lnum)
    (List.rev !edges);
  let g = Dag.of_edges ~n:!n (List.rev_map (fun (_, u, v) -> (u, v)) !edges) in
  if not (Dag.is_dag g) then begin
    (* name a vertex on a cycle: peel vertices of residual in-degree 0
       until a fixpoint; anything left has an in-edge inside the residue,
       so the smallest survivor lies on (or behind) a directed cycle *)
    let indeg = Array.make !n 0 in
    List.iter (fun (_, _, v) -> indeg.(v) <- indeg.(v) + 1) !edges;
    let queue = Queue.create () in
    Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
    let removed = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr removed;
      List.iter
        (fun (_, a, b) ->
          if a = u then begin
            indeg.(b) <- indeg.(b) - 1;
            if indeg.(b) = 0 then Queue.add b queue
          end)
        !edges
    done;
    let witness = ref (-1) in
    Array.iteri (fun v d -> if d > 0 && !witness < 0 then witness := v) indeg;
    fail !n_line (Printf.sprintf "edges form a directed cycle through vertex %d" !witness)
  end;
  Problem.make g ~durations:(fun v ->
      match Hashtbl.find_opt durations v with Some (_, d) -> d | None -> Duration.constant 0)

let write_file path p =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string p))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
