open Rtt_dag
open Rtt_duration
open Rtt_flow
open Rtt_budget

type allocation = int array

let check_alloc (p : Problem.t) alloc =
  if Array.length alloc <> Problem.n_jobs p then invalid_arg "Schedule: allocation size mismatch";
  Array.iter (fun r -> if r < 0 then invalid_arg "Schedule: negative allocation") alloc

let durations_at (p : Problem.t) alloc =
  check_alloc p alloc;
  Array.mapi (fun v r -> Duration.eval p.durations.(v) r) alloc

let finish_times (p : Problem.t) alloc =
  let d = durations_at p alloc in
  Longest_path.finish_times p.dag ~weight:(fun v -> d.(v))

let makespan p alloc = Array.fold_left max 0 (finish_times p alloc)

let critical_path (p : Problem.t) alloc =
  let d = durations_at p alloc in
  Longest_path.critical_path p.dag ~weight:(fun v -> d.(v))

(* Split graph: vertex v becomes arc (2v, 2v+1) with lower bound
   [alloc v]; an original edge (u, v) becomes (2u+1, 2v). *)
let split_specs (p : Problem.t) alloc =
  let vertex_arcs =
    List.map
      (fun v -> { Minflow.src = 2 * v; dst = (2 * v) + 1; lower = alloc.(v); upper = Maxflow.infinity })
      (Dag.vertices p.dag)
  in
  let edge_arcs =
    List.map
      (fun (u, v) -> { Minflow.src = (2 * u) + 1; dst = 2 * v; lower = 0; upper = Maxflow.infinity })
      (Dag.edges p.dag)
  in
  Array.of_list (vertex_arcs @ edge_arcs)

let solve_minflow (p : Problem.t) alloc =
  check_alloc p alloc;
  let n = 2 * Problem.n_jobs p in
  let specs = split_specs p alloc in
  match Minflow.solve ~n ~s:(2 * p.source) ~t:((2 * p.sink) + 1) specs with
  | Some r -> (specs, r)
  | None ->
      (* with infinite upper bounds a feasible flow always exists *)
      raise (Budget.Solver_failure { stage = "flow"; reason = "split-graph min-flow reported infeasible" })

let min_budget p alloc =
  let _, r = solve_minflow p alloc in
  r.Minflow.value

let min_budget_with_routing (p : Problem.t) alloc =
  let specs, r = solve_minflow p alloc in
  let n = 2 * Problem.n_jobs p in
  let edges = Array.map (fun s -> (s.Minflow.src, s.Minflow.dst)) specs in
  let paths =
    Decompose.decompose ~n ~s:(2 * p.source) ~t:((2 * p.sink) + 1) ~edges ~flow:r.Minflow.edge_flow
  in
  let to_original path =
    (* keep each original vertex once: v_in (2v) marks entry *)
    List.filter_map (fun x -> if x mod 2 = 0 then Some (x / 2) else None) path
  in
  (r.Minflow.value, List.map (fun (path, units) -> (to_original path, units)) paths)

let feasible p ~budget alloc = min_budget p alloc <= budget
let zero_allocation p = Array.make (Problem.n_jobs p) 0
