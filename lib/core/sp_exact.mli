(** Exact pseudo-polynomial dynamic program for series-parallel DAGs
    (Section 3.4).

    On the decomposition tree [T_G] the optimal makespan with budget [λ]
    satisfies: a leaf job costs [t_j(λ)]; a series node costs
    [T(left, λ) + T(right, λ)] (the same λ units flow through both
    sides); a parallel node costs
    [min over i of max (T(left, i), T(right, λ - i))]. The table for all
    budgets [0..B] is computed bottom-up in [O (m B²)] time. *)

open Rtt_dag
open Rtt_duration

val makespan_table : ?snapshot:string -> Duration.t Sp.t -> budget:int -> int array
(** [makespan_table tree ~budget] returns [T(root, λ)] for
    [λ = 0 .. budget].

    The computation consumes one fuel tick per DP cell and periodically
    offers the tables of completed decomposition nodes to the ambient
    {!Rtt_budget.Budget.checkpoint} sink. Passing such a snapshot back
    as [?snapshot] resumes the computation: nodes present in the
    snapshot are reused without recomputation (and without fuel). A
    snapshot taken at a different budget, or malformed, is ignored.
    @raise Invalid_argument on negative budget. *)

val min_makespan : Duration.t Sp.t -> budget:int -> int * int Sp.t
(** Optimal makespan with the given budget, together with an allocation
    tree of the same shape assigning each leaf its resource (the
    smallest resource achieving the chosen duration). *)

val min_resource : Duration.t Sp.t -> target:int -> int option
(** Smallest budget whose optimal makespan is at most [target]; [None]
    if unreachable with any budget. *)
