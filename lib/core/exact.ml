open Rtt_dag
open Rtt_duration
open Rtt_budget

type t = { makespan : int; budget_used : int; allocation : int array }

exception Too_large of int

let check_size ~max_states options =
  let states =
    Array.fold_left
      (fun acc opts ->
        let n = List.length opts in
        if acc > max_states then acc else acc * max 1 n)
      1 options
  in
  if states > max_states then raise (Too_large states)

(* Per-vertex candidate allocations: the duration function's step points
   not exceeding the resource cap (no more than cap units can ever reach
   one vertex). *)
let options_of (p : Problem.t) ~cap =
  Array.init (Problem.n_jobs p) (fun v ->
      let tuples = Duration.tuples p.durations.(v) in
      match List.filter (fun (r, _) -> r <= cap) tuples with
      | [] -> [ (0, Duration.base_time p.durations.(v)) ]
      | l -> l)

(* Lower bound on the makespan of any completion of a partial assignment
   over vertices [0 .. n_set - 1]: assigned vertices keep their chosen
   duration, unassigned ones optimistically take their best one. *)
let partial_lower_bound (p : Problem.t) time n_set =
  Longest_path.makespan p.dag ~weight:(fun v ->
      if v < n_set then time.(v) else Duration.best_time p.durations.(v))

let min_makespan ?(max_states = 2_000_000) (p : Problem.t) ~budget =
  if budget < 0 then invalid_arg "Exact.min_makespan: negative budget";
  let options = options_of p ~cap:budget in
  check_size ~max_states options;
  let n = Problem.n_jobs p in
  let best = ref { makespan = max_int; budget_used = 0; allocation = Array.make n 0 } in
  let alloc = Array.make n 0 and time = Array.make n 0 in
  let rec go v =
    Budget.tick ~stage:"exact";
    if partial_lower_bound p time v >= !best.makespan then ()
    else if v = n then begin
      let ms = Longest_path.makespan p.dag ~weight:(fun u -> time.(u)) in
      if ms < !best.makespan then begin
        let used = Schedule.min_budget p alloc in
        if used <= budget then best := { makespan = ms; budget_used = used; allocation = Array.copy alloc }
      end
    end
    else
      List.iter
        (fun (r, t) ->
          alloc.(v) <- r;
          time.(v) <- t;
          go (v + 1))
        options.(v)
  in
  go 0;
  (* the zero allocation is always feasible, so a solution exists *)
  assert (!best.makespan < max_int);
  !best

let min_resource ?(max_states = 2_000_000) (p : Problem.t) ~target =
  if target < 0 then invalid_arg "Exact.min_resource: negative target";
  let cap = Problem.max_meaningful_budget p in
  let options = options_of p ~cap in
  check_size ~max_states options;
  let n = Problem.n_jobs p in
  let best = ref None in
  let alloc = Array.make n 0 and time = Array.make n 0 in
  let rec go v =
    Budget.tick ~stage:"exact";
    if partial_lower_bound p time v > target then ()
    else if v = n then begin
      let ms = Longest_path.makespan p.dag ~weight:(fun u -> time.(u)) in
      if ms <= target then begin
        let used = Schedule.min_budget p alloc in
        match !best with
        | Some b when b.budget_used <= used -> ()
        | _ -> best := Some { makespan = ms; budget_used = used; allocation = Array.copy alloc }
      end
    end
    else
      List.iter
        (fun (r, t) ->
          alloc.(v) <- r;
          time.(v) <- t;
          go (v + 1))
        options.(v)
  in
  go 0;
  !best
