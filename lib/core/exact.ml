open Rtt_dag
open Rtt_duration
open Rtt_budget

type t = { makespan : int; budget_used : int; allocation : int array }

exception Too_large of int

let check_size ~max_states options =
  let states =
    Array.fold_left
      (fun acc opts ->
        let n = List.length opts in
        if acc > max_states then acc else acc * max 1 n)
      1 options
  in
  if states > max_states then raise (Too_large states)

(* Per-vertex candidate allocations: the duration function's step points
   not exceeding the resource cap (no more than cap units can ever reach
   one vertex). *)
let options_of (p : Problem.t) ~cap =
  Array.init (Problem.n_jobs p) (fun v ->
      let tuples = Duration.tuples p.durations.(v) in
      match List.filter (fun (r, _) -> r <= cap) tuples with
      | [] -> [ (0, Duration.base_time p.durations.(v)) ]
      | l -> l)

(* Lower bound on the makespan of any completion of a partial assignment
   over vertices [0 .. n_set - 1]: assigned vertices keep their chosen
   duration, unassigned ones optimistically take their best one. *)
let partial_lower_bound (p : Problem.t) time n_set =
  Longest_path.makespan p.dag ~weight:(fun v ->
      if v < n_set then time.(v) else Duration.best_time p.durations.(v))

(* Incumbent snapshots: the branch-and-bound state worth persisting is
   the best solution found so far. A resumed search primed with it prunes
   from the first node with the incumbent's makespan as upper bound, so
   every node it visits would also have been visited by the cold run —
   same final answer (strict-improvement updates preserve the search
   order's first optimum), strictly less fuel. *)
let snapshot_of { makespan; budget_used; allocation } =
  Printf.sprintf "exact1 %d %d %s" makespan budget_used
    (String.concat "," (Array.to_list (Array.map string_of_int allocation)))

let allocation_of_snapshot s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "exact1"; _; _; alloc ] -> (
      let parts = String.split_on_char ',' alloc in
      match List.map int_of_string_opt parts with
      | ints when List.for_all Option.is_some ints ->
          Some (Array.of_list (List.map Option.get ints))
      | _ -> None
      | exception _ -> None)
  | _ -> None

let min_makespan ?(max_states = 2_000_000) ?warm_start ?warm_hint (p : Problem.t) ~budget =
  if budget < 0 then invalid_arg "Exact.min_makespan: negative budget";
  let options = options_of p ~cap:budget in
  check_size ~max_states options;
  let n = Problem.n_jobs p in
  let best = ref { makespan = max_int; budget_used = 0; allocation = Array.make n 0 } in
  (* a warm start is a hint: silently ignored unless it is a feasible
     allocation for this instance and budget *)
  (match warm_start with
  | Some a when Array.length a = n && Array.for_all (fun r -> r >= 0) a ->
      let used = Schedule.min_budget p a in
      if used <= budget then
        best := { makespan = Schedule.makespan p a; budget_used = used; allocation = Array.copy a }
  | _ -> ());
  (* A warm HINT is weaker than a warm start: it never becomes the
     incumbent, it only caps exploration. A feasible hint of makespan
     m_W proves opt <= m_W, so subtrees whose lower bound exceeds m_W
     cannot contain the optimum — nor any leaf that participates in the
     cold run's final answer, which is the first enumerated feasible
     leaf achieving the optimum and whose ancestors all have lower
     bounds <= opt <= m_W. Every pruned-away leaf has makespan > m_W,
     so the surviving fold over feasible leaves reaches the identical
     final record: same answer as a cold run, strictly less fuel. *)
  let cap = ref max_int in
  (match warm_hint with
  | Some a when Array.length a = n && Array.for_all (fun r -> r >= 0) a ->
      if Schedule.min_budget p a <= budget then cap := Schedule.makespan p a + 1
  | _ -> ());
  let alloc = Array.make n 0 and time = Array.make n 0 in
  let rec go v =
    Budget.tick ~stage:"exact";
    if !best.makespan < max_int then Budget.checkpoint (fun () -> snapshot_of !best);
    if partial_lower_bound p time v >= min !best.makespan !cap then ()
    else if v = n then begin
      let ms = Longest_path.makespan p.dag ~weight:(fun u -> time.(u)) in
      if ms < !best.makespan then begin
        let used = Schedule.min_budget p alloc in
        if used <= budget then best := { makespan = ms; budget_used = used; allocation = Array.copy alloc }
      end
    end
    else
      List.iter
        (fun (r, t) ->
          alloc.(v) <- r;
          time.(v) <- t;
          go (v + 1))
        options.(v)
  in
  go 0;
  (* the zero allocation is always feasible, so a solution exists *)
  assert (!best.makespan < max_int);
  !best

let min_resource ?(max_states = 2_000_000) (p : Problem.t) ~target =
  if target < 0 then invalid_arg "Exact.min_resource: negative target";
  let cap = Problem.max_meaningful_budget p in
  let options = options_of p ~cap in
  check_size ~max_states options;
  let n = Problem.n_jobs p in
  let best = ref None in
  let alloc = Array.make n 0 and time = Array.make n 0 in
  let rec go v =
    Budget.tick ~stage:"exact";
    if partial_lower_bound p time v > target then ()
    else if v = n then begin
      let ms = Longest_path.makespan p.dag ~weight:(fun u -> time.(u)) in
      if ms <= target then begin
        let used = Schedule.min_budget p alloc in
        match !best with
        | Some b when b.budget_used <= used -> ()
        | _ -> best := Some { makespan = ms; budget_used = used; allocation = Array.copy alloc }
      end
    end
    else
      List.iter
        (fun (r, t) ->
          alloc.(v) <- r;
          time.(v) <- t;
          go (v + 1))
        options.(v)
  in
  go 0;
  !best
