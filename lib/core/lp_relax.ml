open Rtt_dag
open Rtt_num
open Rtt_lp
open Rtt_budget

type solution = { flow : Rat.t array; times : Rat.t array; makespan : Rat.t; budget_used : Rat.t }

let edge_duration (e : Transform.edge) f =
  match e.upgrade with
  | None -> Rat.of_int e.t0
  | Some r ->
      let t0 = Rat.of_int e.t0 in
      Rat.max Rat.zero (Rat.sub t0 (Rat.mul (Rat.div t0 (Rat.of_int r)) f))

(* Builds the common constraint system; returns (lp, f vars, tv vars,
   budget expression). *)
let build (t : Transform.t) =
  let lp = Lp.create () in
  let ne = Array.length t.edges in
  let nv = Dag.n_vertices t.graph in
  let fv = Array.init ne (fun i -> Lp.var lp (Printf.sprintf "f%d" i)) in
  let tv = Array.init nv (fun v -> Lp.var lp (Printf.sprintf "T%d" v)) in
  let fx i = Linexpr.var (Lp.var_index fv.(i)) in
  let tx v = Linexpr.var (Lp.var_index tv.(v)) in
  let const_i i = Linexpr.const (Rat.of_int i) in
  (* T_source = 0 *)
  Lp.add_eq lp (tx t.source) (const_i 0);
  Array.iteri
    (fun i (e : Transform.edge) ->
      (* capacity on two-tuple edges *)
      (match e.upgrade with
      | Some r -> Lp.add_le lp (fx i) (const_i r)
      | None -> ());
      (* precedence: T_src + t_e(f) <= T_dst *)
      let dur_expr =
        match e.upgrade with
        | None -> const_i e.t0
        | Some r ->
            let slope = Rat.div (Rat.of_int e.t0) (Rat.of_int r) in
            Linexpr.add (const_i e.t0) (Linexpr.scale (Rat.neg slope) (fx i))
      in
      Lp.add_le lp (Linexpr.add (tx e.src) dur_expr) (tx e.dst))
    t.edges;
  (* conservation at internal vertices *)
  let inbound = Array.make nv [] and outbound = Array.make nv [] in
  Array.iteri
    (fun i (e : Transform.edge) ->
      inbound.(e.dst) <- i :: inbound.(e.dst);
      outbound.(e.src) <- i :: outbound.(e.src))
    t.edges;
  for v = 0 to nv - 1 do
    if v <> t.source && v <> t.sink then begin
      let sum l = List.fold_left (fun acc i -> Linexpr.add acc (fx i)) Linexpr.zero l in
      Lp.add_eq lp (sum inbound.(v)) (sum outbound.(v))
    end
  done;
  let budget_expr = List.fold_left (fun acc i -> Linexpr.add acc (fx i)) Linexpr.zero outbound.(t.source) in
  (lp, fv, tv, fx, tx, budget_expr)

let dimensions (t : Transform.t) =
  let lp, _fv, _tv, _fx, _tx, budget_expr = build t in
  Lp.add_le lp budget_expr (Linexpr.const Rat.zero);
  (Lp.n_vars lp, Lp.n_constraints lp)

let extract (t : Transform.t) (s : Lp.solution) fv tv budget_expr =
  let flow = Array.map (fun v -> s.Lp.value v) fv in
  let times = Array.map (fun v -> s.Lp.value v) tv in
  { flow; times; makespan = times.(t.sink); budget_used = s.Lp.expr_value budget_expr }

let min_makespan (t : Transform.t) ~budget =
  if budget < 0 then invalid_arg "Lp_relax.min_makespan: negative budget";
  let lp, fv, tv, _fx, tx, budget_expr = build t in
  Lp.add_le lp budget_expr (Linexpr.const (Rat.of_int budget));
  match Lp.minimize lp (tx t.sink) with
  | Lp.Optimal s -> extract t s fv tv budget_expr
  | Lp.Infeasible ->
      (* zero flow is always feasible, so this only happens when the
         simplex itself misbehaves (or a fault is injected there) *)
      raise (Budget.Solver_failure { stage = "lp"; reason = "makespan LP reported infeasible" })
  | Lp.Unbounded ->
      raise (Budget.Solver_failure { stage = "lp"; reason = "makespan LP reported unbounded" })

let min_resource (t : Transform.t) ~target =
  let lp, fv, tv, _fx, tx, budget_expr = build t in
  Lp.add_le lp (tx t.sink) (Linexpr.const target);
  match Lp.minimize lp budget_expr with
  | Lp.Optimal s -> Some (extract t s fv tv budget_expr)
  | Lp.Infeasible -> None
  | Lp.Unbounded ->
      (* the budget expression is bounded below by 0 *)
      raise (Budget.Solver_failure { stage = "lp"; reason = "resource LP reported unbounded" })
