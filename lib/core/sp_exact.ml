open Rtt_dag
open Rtt_duration
open Rtt_budget

(* cap additions so that "unreachable" sentinels never overflow *)
let big = max_int / 4
let ( +! ) a b = min big (a + b)

(* Snapshots of the bottom-up DP: the tables of completed decomposition
   nodes, keyed by their postorder index (a deterministic numbering, so
   a resumed run maps entries back onto the same nodes). Format:
   "sp1 <budget> <idx>:<t0>,<t1>,... ..." *)
let snapshot_of ~budget completed =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "sp1 %d" budget);
  List.iter
    (fun (idx, t) ->
      Buffer.add_string buf
        (Printf.sprintf " %d:%s" idx
           (String.concat "," (Array.to_list (Array.map string_of_int t)))))
    (List.rev completed);
  Buffer.contents buf

let tables_of_snapshot ~budget s =
  match String.split_on_char ' ' (String.trim s) with
  | "sp1" :: b :: entries when int_of_string_opt b = Some budget ->
      let parse entry =
        match String.split_on_char ':' entry with
        | [ idx; cells ] -> (
            match
              ( int_of_string_opt idx,
                List.map int_of_string_opt (String.split_on_char ',' cells) )
            with
            | Some idx, ints when List.for_all Option.is_some ints ->
                Some (idx, Array.of_list (List.map Option.get ints))
            | _ -> None)
        | _ -> None
      in
      let parsed = List.map parse (List.filter (fun e -> e <> "") entries) in
      if List.for_all Option.is_some parsed then
        Some (List.map Option.get parsed)
      else None
  | _ -> None

(* Bottom-up tables with checkpoint plumbing: each completed node's
   table is recorded under its postorder index and offered to the
   ambient checkpoint sink; a node already present in [cache] is reused
   without recomputation (and without fuel). *)
let table ?snapshot tree ~budget =
  let cache : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  (match snapshot with
  | Some s -> (
      match tables_of_snapshot ~budget s with
      | Some entries -> List.iter (fun (i, t) -> Hashtbl.replace cache i t) entries
      | None -> ())
  | None -> ());
  let completed = ref [] in
  let next = ref 0 in
  let rec go tree =
    (* postorder: number children first, then this node *)
    let result =
      match tree with
      | Sp.Leaf d ->
          let idx = !next in
          incr next;
          fresh idx (fun () ->
              Array.init (budget + 1) (fun l ->
                  Budget.tick ~stage:"sp";
                  Duration.eval d l))
      | Sp.Series (a, b) ->
          let ta = go a and tb = go b in
          let idx = !next in
          incr next;
          fresh idx (fun () ->
              Array.init (budget + 1) (fun l ->
                  Budget.tick ~stage:"sp";
                  ta.(l) +! tb.(l)))
      | Sp.Parallel (a, b) ->
          let ta = go a and tb = go b in
          let idx = !next in
          incr next;
          fresh idx (fun () ->
              Array.init (budget + 1) (fun l ->
                  Budget.tick ~stage:"sp";
                  let best = ref big in
                  for i = 0 to l do
                    let v = max ta.(i) tb.(l - i) in
                    if v < !best then best := v
                  done;
                  !best))
    in
    result
  and fresh idx compute =
    let t =
      match Hashtbl.find_opt cache idx with Some t -> t | None -> compute ()
    in
    (* record cache hits too, so snapshots taken by a resumed run stay
       cumulative across a second interruption *)
    completed := (idx, t) :: !completed;
    Budget.checkpoint (fun () -> snapshot_of ~budget !completed);
    t
  in
  go tree

let makespan_table ?snapshot tree ~budget =
  if budget < 0 then invalid_arg "Sp_exact: negative budget";
  table ?snapshot tree ~budget

let min_makespan tree ~budget =
  if budget < 0 then invalid_arg "Sp_exact: negative budget";
  (* recompute tables with allocation backtracking *)
  let rec solve tree =
    match tree with
    | Sp.Leaf d ->
        let t = Array.init (budget + 1) (fun l -> Duration.eval d l) in
        (t, fun l ->
          (* smallest resource achieving t.(l) *)
          let rec shrink r = if r > 0 && t.(r - 1) = t.(l) then shrink (r - 1) else r in
          Sp.Leaf (shrink l))
    | Sp.Series (a, b) ->
        let ta, alloc_a = solve a and tb, alloc_b = solve b in
        let t = Array.init (budget + 1) (fun l -> ta.(l) +! tb.(l)) in
        (t, fun l -> Sp.Series (alloc_a l, alloc_b l))
    | Sp.Parallel (a, b) ->
        let ta, alloc_a = solve a and tb, alloc_b = solve b in
        let split = Array.make (budget + 1) 0 in
        let t =
          Array.init (budget + 1) (fun l ->
              let best = ref big and arg = ref 0 in
              for i = 0 to l do
                let v = max ta.(i) tb.(l - i) in
                if v < !best then begin
                  best := v;
                  arg := i
                end
              done;
              split.(l) <- !arg;
              !best)
        in
        (t, fun l -> Sp.Parallel (alloc_a split.(l), alloc_b (l - split.(l))))
  in
  let t, alloc = solve tree in
  (t.(budget), alloc budget)

let min_resource tree ~target =
  (* the makespan cannot improve past every leaf's best time, reached at
     the sum of max useful resources *)
  let cap = List.fold_left (fun acc d -> acc + Duration.max_useful_resource d) 0 (Sp.leaves tree) in
  let t = table tree ~budget:cap in
  let rec find l = if l > cap then None else if t.(l) <= target then Some l else find (l + 1) in
  find 0
