(** The linear-programming relaxation of Section 3.1 (LP 6–10).

    Variables: one resource-flow variable [f_e] per edge of the
    transformed DAG D″ and one event-time variable [T_v] per vertex.
    Constraints: [f_e <= r_e] on two-tuple edges; precedence
    [T_u + t_e(f_e) <= T_v]; flow conservation at internal vertices; and
    the budget [sum of flow out of the source <= B]. The relaxed duration
    of a two-tuple edge is the decreasing linear interpolation
    [t_e(f) = t0 * (1 - f / r_e)] (the paper's Equation 4 prints the
    increasing form [t0 * f / r_e]; see DESIGN.md — the analysis requires
    the decreasing one). Single-tuple edges have constant duration and
    unbounded flow, which is what lets resources travel onward for reuse.

    Solved exactly over rationals; the optimum is a lower bound on the
    integral OPT, which is how the bi-criteria guarantees are checked. *)

open Rtt_num

type solution = {
  flow : Rat.t array;  (** per transformed edge *)
  times : Rat.t array;  (** event time per transformed-graph vertex *)
  makespan : Rat.t;  (** [T_sink] *)
  budget_used : Rat.t;  (** flow out of the source *)
}

val edge_duration : Transform.edge -> Rat.t -> Rat.t
(** The relaxed duration [t_e(f)] of an edge at flow [f]. *)

val dimensions : Transform.t -> int * int
(** [(variables, constraints)] of the makespan LP for this transformed
    DAG — the size of the system either simplex engine factorizes. Used
    by the bench harness to report instance scale next to wall time. *)

val min_makespan : Transform.t -> budget:int -> solution
(** Minimize [T_sink] under resource budget. Always feasible (zero flow).
    @raise Invalid_argument on a negative budget. *)

val min_resource : Transform.t -> target:Rat.t -> solution option
(** Minimize the flow out of the source subject to [T_sink <= target];
    [None] when even unlimited resources cannot meet the target. *)
