(** Plain-text serialization of problem instances.

    The format, one directive per line ([#] starts a comment):
    {v
    vertices <n>
    duration <v> <r>:<t> <r>:<t> ...
    edge <u> <v>
    v}
    Vertices without a [duration] line default to constant 0. The reader
    normalizes the graph through {!Problem.make}, so the written and
    re-read instance may gain a super source/sink. *)

exception Parse_error of { line : int; msg : string }
(** Every malformed input — unknown directive, bad token, wrong field
    count, out-of-range vertex id, duplicate directive, cyclic edge set,
    truncated line — is reported through this exception with the 1-based
    line number ([0] when the file as a whole is at fault, e.g. a
    missing [vertices] directive). A cyclic edge set additionally names
    a vertex on the cycle. No raw [Failure] / [Invalid_argument]
    escapes the parser. *)

exception Invalid_dag of string
(** A syntactically valid instance whose edge set is structurally
    ill-formed as a request — currently a duplicate edge, named together
    with both defining lines. {!Rtt_engine.Engine.load} surfaces this as
    [Error.Invalid_request]. *)

val to_string : Problem.t -> string

val of_string : string -> Problem.t
(** @raise Parse_error on malformed input.
    @raise Invalid_dag on a well-parsed but structurally invalid edge set. *)

val write_file : string -> Problem.t -> unit

val read_file : string -> Problem.t
(** @raise Parse_error on malformed input.
    @raise Invalid_dag on a well-parsed but structurally invalid edge set.
    @raise Sys_error if the file cannot be read. *)
