open Rtt_dag
open Rtt_num
open Rtt_flow

type t = {
  upgraded : bool array;
  requirement : int array;
  flow : int array;
  budget_used : int;
  makespan : int;
  allocation : int array;
}

let rounded_edge_time (tr : Transform.t) r i = if r.upgraded.(i) then 0 else tr.edges.(i).t0

let round (tr : Transform.t) ~alpha (sol : Lp_relax.solution) =
  if Rat.(alpha <= Rat.zero) || Rat.(alpha >= Rat.one) then invalid_arg "Rounding.round: alpha must be in (0, 1)";
  let ne = Array.length tr.edges in
  let upgraded =
    Array.init ne (fun i ->
        let e = tr.edges.(i) in
        match e.upgrade with
        | None -> false
        | Some _ ->
            let t = Lp_relax.edge_duration e sol.flow.(i) in
            let threshold = Rat.mul alpha (Rat.of_int e.t0) in
            Rat.(t < threshold))
  in
  (* Canonicalize each chain's upgrades to a prefix. The realized tuple
     is the first non-upgraded chain index (times are non-increasing
     along the chain), so an upgrade past that point buys nothing yet
     would still be charged below through its flow lower bound —
     degenerate LP optima can produce such patterns, and they would make
     the claimed budget exceed what the allocation actually needs. *)
  Array.iter
    (fun chain ->
      let cut = ref false in
      List.iter
        (fun i ->
          if !cut then upgraded.(i) <- false else if not upgraded.(i) then cut := true)
        chain)
    tr.chains;
  let requirement =
    Array.init ne (fun i ->
        if upgraded.(i) then match tr.edges.(i).upgrade with Some r -> r | None -> 0 else 0)
  in
  let specs =
    Array.mapi
      (fun i (e : Transform.edge) ->
        { Minflow.src = e.src; dst = e.dst; lower = requirement.(i); upper = Maxflow.infinity })
      tr.edges
  in
  let result =
    match Minflow.solve ~n:(Dag.n_vertices tr.graph) ~s:tr.source ~t:tr.sink specs with
    | Some r -> r
    | None ->
        (* infinite uppers: always feasible unless the flow solver misbehaves *)
        raise
          (Rtt_budget.Budget.Solver_failure
             { stage = "flow"; reason = "rounding min-flow reported infeasible" })
  in
  let r =
    {
      upgraded;
      requirement;
      flow = result.Minflow.edge_flow;
      budget_used = result.Minflow.value;
      makespan = 0;
      allocation = [||];
    }
  in
  let makespan = Transform.makespan_with tr ~edge_time:(rounded_edge_time tr r) in
  let allocation = Transform.allocation_of_upgrades tr ~upgraded:(fun i -> upgraded.(i)) in
  { r with makespan; allocation }
