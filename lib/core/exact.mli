(** Brute-force exact solver — the reference oracle.

    Enumerates, over every vertex, the resource levels at which its
    duration function actually steps (other allocations waste resource),
    checks realizability of each combination with a min-flow, and keeps
    the best. Exponential in the number of non-constant jobs; intended
    for the small instances against which the approximation algorithms
    are validated in the benchmarks. Branch-and-bound pruning on a
    partial-assignment makespan lower bound keeps typical instances
    fast. *)

type t = { makespan : int; budget_used : int; allocation : int array }

exception Too_large of int
(** Raised when the search space exceeds [max_states] (the payload is
    the estimated state count). *)

val min_makespan :
  ?max_states:int -> ?warm_start:int array -> ?warm_hint:int array -> Problem.t -> budget:int -> t
(** The true optimal makespan with the given budget (Question 1.3
    semantics: resources reused over paths).

    [warm_start] primes the branch-and-bound incumbent with a previously
    found allocation (typically recovered from a {!snapshot_of}
    checkpoint): the search then prunes against its makespan from the
    first node, so a resumed run spends strictly less fuel than a cold
    one and returns the identical optimum. An infeasible or ill-sized
    warm start is a hint and is silently ignored.

    [warm_hint] is the weaker, bit-identity-preserving cousin used by
    incremental re-solves: a feasible allocation whose makespan [m]
    proves the optimum is at most [m], so the search additionally prunes
    every subtree with lower bound above [m] — but the hint never
    becomes the incumbent, so the answer (including which of several
    optimal allocations is returned) is the cold run's, byte for byte,
    reached with strictly less fuel. Infeasible or ill-sized hints are
    silently ignored; both options compose.
    @raise Too_large when the product of per-vertex option counts
    exceeds [max_states] (default [2_000_000]).
    @raise Invalid_argument on negative budget. *)

val snapshot_of : t -> string
(** Serialized resumable state (the incumbent), as offered to
    {!Rtt_budget.Budget.checkpoint} sinks during the search. *)

val allocation_of_snapshot : string -> int array option
(** Recover the incumbent allocation from a {!snapshot_of} string;
    [None] on anything malformed. *)

val min_resource : ?max_states:int -> Problem.t -> target:int -> t option
(** Minimum budget achieving makespan at most [target]; [None] when the
    target is unreachable. *)
