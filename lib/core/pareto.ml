type point = { budget : int; makespan : int; allocation : int array }

let cap_budget p = function
  | Some b -> min b (Problem.max_meaningful_budget p)
  | None -> Problem.max_meaningful_budget p

(* Adjacent budgets have adjacent optima, which both sweeps exploit:
   the exact sweep hands each solve the previous budget's allocation as
   a phantom upper bound (feasible at the larger budget too, so it can
   only prune — see {!Exact.min_makespan}'s [warm_hint]), and the
   approximate sweep re-offers the previous budget's optimal LP basis,
   which the simplex re-verifies exactly and discards on any mismatch.
   Both reuses are answer-preserving by construction; they only save
   work. *)
let exact ?max_budget ?max_states p =
  let top = cap_budget p max_budget in
  let prev = ref None in
  List.init (top + 1) (fun budget ->
      let r = Exact.min_makespan ?max_states ?warm_hint:!prev p ~budget in
      prev := Some r.Exact.allocation;
      { budget; makespan = r.Exact.makespan; allocation = r.Exact.allocation })

let knees points =
  let rec go last = function
    | [] -> []
    | pt :: rest -> if pt.makespan < last then pt :: go pt.makespan rest else go last rest
  in
  go max_int points

let approximate ?max_budget p =
  let top = cap_budget p max_budget in
  let best = ref None in
  List.init (top + 1) (fun budget ->
      if budget > 0 then
        Option.iter Rtt_lp.Simplex.set_basis_hint (Rtt_lp.Simplex.last_basis ());
      let r = Binary_bicriteria.min_makespan p ~budget in
      let candidate = { budget; makespan = r.Binary_bicriteria.makespan; allocation = r.Binary_bicriteria.allocation } in
      let chosen =
        match !best with
        | Some b when b.makespan <= candidate.makespan -> { b with budget }
        | _ -> candidate
      in
      best := Some chosen;
      chosen)
