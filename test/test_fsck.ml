(* Tests for the storage scrubber: finding taxonomy over every kind of
   spool/cache damage (torn journal tails, stranded records, missing
   or orphaned files, corrupt checkpoints, checksum-failing and forged
   cache entries), truncate-at-every-byte-offset properties for cache
   entries and checkpoint sidecars, local repair semantics, and the
   full acceptance scenario: a deliberately corrupted primary spool
   restored by `rtt fsck --repair` pulling from a live replica, after
   which a restarted daemon serves with exactly-once outcomes. *)

open Rtt_dag
open Rtt_core
open Rtt_engine
open Rtt_service

let rng_of seed = Random.State.make [| seed |]

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_fsck_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let cheap_instance seed =
  Problem.of_race_dag (Gen.erdos_renyi (rng_of seed) ~n:6 ~edge_prob:0.35) Problem.Binary

(* a freshly drained spool + cache: the fixture most tests damage *)
let drained_spool ?(jobs = 2) tag =
  let dir = fresh_dir tag in
  let spool = Filename.concat dir "spool" in
  let cache = Filename.concat dir "cache" in
  Unix.mkdir spool 0o755;
  for i = 0 to jobs - 1 do
    write_file
      (Filename.concat spool (Printf.sprintf "j%d.rtt" i))
      (Io.to_string (cheap_instance (100 + i)))
  done;
  let cfg =
    { (Supervisor.default_config ~spool) with sleep = false; cache_dir = Some cache }
  in
  Alcotest.(check int) "drained" 0 (Supervisor.run cfg);
  (spool, cache)

let scan ?budget (spool, cache) = Fsck.scan ~spool ~cache_dir:cache ?budget ()

let codes report = List.map (fun f -> f.Fsck.code) report.Fsck.findings

let has_code c report = List.mem c (codes report)

let flip_byte path pos =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0x01));
  write_file path (Bytes.to_string s)

(* ------------------------------------------------------------------ *)
(* the finding taxonomy                                                *)

let scan_units =
  [
    Alcotest.test_case "freshly drained spool scans clean" `Quick (fun () ->
        let sc = drained_spool "clean" in
        let r = scan sc ~budget:4 in
        Alcotest.(check bool) "not dirty" false (Fsck.dirty r);
        Alcotest.(check bool) "no backfill" false (Fsck.needs_backfill r);
        Alcotest.(check int) "records counted" 6 r.Fsck.records;
        Alcotest.(check int) "entries counted" 2 r.Fsck.cache_entries;
        Alcotest.(check bool) "fully committed" true
          (r.Fsck.journal_bytes = r.Fsck.committed_bytes));
    Alcotest.test_case "torn journal tail: found, sealed, clean after" `Quick (fun () ->
        let ((spool, _) as sc) = drained_spool "torn" in
        let j = Journal.path ~spool in
        let intact = read_file j in
        write_file j (intact ^ "half a reco");
        let r = scan sc in
        Alcotest.(check bool) "dirty" true (Fsck.dirty r);
        Alcotest.(check bool) "torn tail found" true (has_code "journal-torn-tail" r);
        let performed, remaining = Fsck.repair ~spool r in
        Alcotest.(check int) "one repair" 1 (List.length performed);
        Alcotest.(check int) "nothing left" 0 (List.length remaining);
        Alcotest.(check string) "sealed to the committed prefix" intact (read_file j);
        Alcotest.(check bool) "clean after" false (Fsck.dirty (scan sc)));
    Alcotest.test_case "stranded records past a mid-file corruption" `Quick (fun () ->
        let ((spool, _) as sc) = drained_spool "strand" in
        let j = Journal.path ~spool in
        let lines = String.split_on_char '\n' (read_file j) in
        (* corrupt the first line; the rest decode but cannot be
           trusted in sequence *)
        let corrupted =
          match lines with
          | first :: rest -> String.concat "\n" (("XX" ^ first) :: rest)
          | [] -> assert false
        in
        write_file j corrupted;
        let r = scan sc in
        Alcotest.(check bool) "torn tail" true (has_code "journal-torn-tail" r);
        Alcotest.(check bool) "stranded records reported" true
          (has_code "journal-stranded-records" r);
        Alcotest.(check int) "nothing committed" 0 r.Fsck.records);
    Alcotest.test_case "tmp litter is deleted on repair" `Quick (fun () ->
        let ((spool, _) as sc) = drained_spool "tmp" in
        let litter = Filename.concat spool "j0.rtt.result.1234.tmp" in
        write_file litter "half-written";
        let r = scan sc in
        Alcotest.(check bool) "found" true (has_code "tmp-litter" r);
        ignore (Fsck.repair ~spool r);
        Alcotest.(check bool) "gone" false (Sys.file_exists litter);
        Alcotest.(check bool) "clean after" false (Fsck.dirty (scan sc)));
    Alcotest.test_case "missing result and instance: backfill, offer zero" `Quick (fun () ->
        let ((spool, _) as sc) = drained_spool "missing" in
        Sys.remove (Filename.concat spool "j0.rtt.result");
        Sys.remove (Filename.concat spool "j1.rtt");
        let r = scan sc in
        Alcotest.(check bool) "missing result" true (has_code "missing-result" r);
        Alcotest.(check bool) "missing instance" true (has_code "missing-instance" r);
        Alcotest.(check bool) "needs backfill" true (Fsck.needs_backfill r);
        (* the damage is to committed records' attachments: only a
           full re-ship can restore them *)
        Alcotest.(check bool) "offer zero" true (Fsck.offer_zero r);
        (* local repair cannot fix these *)
        let performed, remaining = Fsck.repair ~spool r in
        Alcotest.(check int) "nothing performed" 0 (List.length performed);
        Alcotest.(check int) "both remain" 2 (List.length remaining));
    Alcotest.test_case "corrupt and stale checkpoints are quarantined" `Quick (fun () ->
        let ((spool, _) as sc) = drained_spool "ckpt" in
        (* stale: a valid sidecar for a job already terminal *)
        Checkpoint.store ~spool ~job:"j0.rtt" "snapshot bytes";
        (* corrupt: fails the frame CRC *)
        write_file (Filename.concat spool "j1.rtt.ckpt") "not a framed line";
        let r = scan sc in
        Alcotest.(check bool) "stale found" true (has_code "checkpoint-stale" r);
        Alcotest.(check bool) "corrupt found" true (has_code "checkpoint-corrupt" r);
        ignore (Fsck.repair ~spool r);
        Alcotest.(check bool) "both deleted" true
          ((not (Sys.file_exists (Filename.concat spool "j0.rtt.ckpt")))
          && not (Sys.file_exists (Filename.concat spool "j1.rtt.ckpt")));
        Alcotest.(check bool) "clean after" false (Fsck.dirty (scan sc)));
    Alcotest.test_case "bit-flipped cache entry: quarantined on repair" `Quick (fun () ->
        let ((_, cache) as sc) = drained_spool "cachebit" in
        let key = List.hd (Cache.keys ~dir:cache) in
        flip_byte (Cache.path ~dir:cache ~key) 40;
        let r = scan sc in
        Alcotest.(check bool) "corrupt entry found" true (has_code "cache-entry-corrupt" r);
        ignore (Fsck.repair ~spool:(fst sc) r);
        Alcotest.(check bool) "entry deleted" false
          (Sys.file_exists (Cache.path ~dir:cache ~key));
        Alcotest.(check bool) "clean after" false (Fsck.dirty (scan sc)));
    Alcotest.test_case "forged cache entry: caught only by the fingerprint audit" `Quick
      (fun () ->
        let ((spool, cache) as sc) = drained_spool "forge" in
        (* overwrite j0's entry with a checksum-valid success computed
           for a DIFFERENT instance: internally consistent bytes, wrong
           answer *)
        let p = Option.get (Result.to_option (Engine.load (Filename.concat spool "j0.rtt"))) in
        let key = Fingerprint.digest ~alpha:Work.alpha p ~budget:4 in
        let foreign =
          Problem.of_race_dag (Gen.erdos_renyi (rng_of 999) ~n:9 ~edge_prob:0.3)
            Problem.Binary
        in
        let other = Option.get (Result.to_option (Engine.solve foreign ~budget:4)) in
        Cache.store ~dir:cache ~key other;
        (* the checksum audit is blind to it *)
        Alcotest.(check bool) "checksum-clean" false (Fsck.dirty (scan sc));
        (* the fingerprint audit is not *)
        let r = scan sc ~budget:4 in
        Alcotest.(check bool) "invalid entry found" true (has_code "cache-entry-invalid" r);
        ignore (Fsck.repair ~spool r);
        Alcotest.(check bool) "clean after" false (Fsck.dirty (scan sc ~budget:4)));
    Alcotest.test_case "render: one line per finding plus a summary" `Quick (fun () ->
        let ((spool, _) as sc) = drained_spool "render" in
        write_file (Filename.concat spool "x.tmp") "";
        let r = scan sc in
        let text = Fsck.render r in
        let contains needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "mentions the finding" true (contains "tmp-litter" text);
        Alcotest.(check bool) "ends with a newline" true
          (text <> "" && text.[String.length text - 1] = '\n'));
  ]

(* ------------------------------------------------------------------ *)
(* truncation properties: no prefix of a durable artifact is ever
   served, and fsck sees every one of them                             *)

let truncation_units =
  [
    Alcotest.test_case "cache entry truncated at every byte offset: never a hit" `Slow
      (fun () ->
        let dir = fresh_dir "trunc_cache" in
        let p = cheap_instance 7 in
        let key = Fingerprint.digest ~alpha:Work.alpha p ~budget:4 in
        let s = Option.get (Result.to_option (Engine.solve p ~budget:4)) in
        Cache.store ~dir ~key s;
        let whole = read_file (Cache.path ~dir ~key) in
        Alcotest.(check bool) "intact entry is served" true (Cache.lookup ~dir ~key <> None);
        for cut = 0 to String.length whole - 1 do
          write_file (Cache.path ~dir ~key) (String.sub whole 0 cut);
          Alcotest.(check bool)
            (Printf.sprintf "prefix of %d bytes is a miss" cut)
            true
            (Cache.lookup ~dir ~key = None);
          Alcotest.(check bool)
            (Printf.sprintf "prefix of %d bytes fails the audit" cut)
            true
            (Cache.audit ~dir ~key <> Ok ())
        done);
    Alcotest.test_case "checkpoint truncated at every byte offset: cold start, fsck sees it"
      `Slow (fun () ->
        let spool = fresh_dir "trunc_ckpt" in
        let job = "j.rtt" in
        Checkpoint.store ~spool ~job "incumbent 3 1 2 0 4";
        let path = Checkpoint.path ~spool ~job in
        let whole = read_file path in
        Alcotest.(check (option string))
          "intact sidecar loads" (Some "incumbent 3 1 2 0 4")
          (Checkpoint.load ~spool ~job);
        for cut = 0 to String.length whole - 1 do
          write_file path (String.sub whole 0 cut);
          Alcotest.(check (option string))
            (Printf.sprintf "prefix of %d bytes downgrades to a cold start" cut)
            None
            (Checkpoint.load ~spool ~job);
          let r = Fsck.scan ~spool () in
          Alcotest.(check bool)
            (Printf.sprintf "prefix of %d bytes is a finding" cut)
            true (has_code "checkpoint-corrupt" r)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* the acceptance scenario: corrupted primary spool, live replica,
   fsck --repair --from, daemon restart, exactly-once                  *)

let rtt_exe =
  let candidates =
    [
      Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/rtt.exe";
      Filename.concat (Sys.getcwd ()) "_build/default/bin/rtt.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_rtt args =
  let out = Filename.temp_file "rtt_fsck_out" ".txt" in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process rtt_exe (Array.of_list (rtt_exe :: args)) Unix.stdin fd null in
  Unix.close fd;
  Unix.close null;
  let code =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED c -> c
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 255
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let spawn_rtt args =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process rtt_exe (Array.of_list (rtt_exe :: args)) Unix.stdin null null in
  Unix.close null;
  pid

let kill_quietly pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pid =
  kill_quietly pid Sys.sigkill;
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let wait_for ?(timeout = 60.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      ignore (Unix.select [] [] [] 0.02);
      go ()
    end
  in
  go ()

let done_counts spool =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun { Journal.job; event } ->
      match event with
      | Journal.Done _ ->
          Hashtbl.replace tbl job (1 + Option.value ~default:0 (Hashtbl.find_opt tbl job))
      | _ -> ())
    (Journal.replay ~spool);
  tbl

let process_units =
  [
    Alcotest.test_case
      "corrupted spool restored from a live replica; restarted daemon is exactly-once" `Slow
      (fun () ->
        let dir = fresh_dir "restore" in
        let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
        Unix.mkdir a 0o755;
        Unix.mkdir b 0o755;
        let ca = Filename.concat dir "ca" and cb = Filename.concat dir "cb" in
        let asock = Filename.concat dir "a.sock" and bsock = Filename.concat dir "b.sock" in
        let daemon =
          ref
            (spawn_rtt
               [ "daemon"; "--spool"; a; "--socket"; asock; "-b"; "3"; "--cache-dir"; ca ])
        in
        Alcotest.(check bool) "primary up" true
          (wait_for (fun () -> Sys.file_exists asock));
        let replica =
          spawn_rtt
            [ "replica"; "--spool"; b; "--socket"; bsock; "--primary"; asock;
              "--cache-dir"; cb ]
        in
        Fun.protect
          ~finally:(fun () ->
            reap !daemon;
            reap replica)
          (fun () ->
            Alcotest.(check bool) "replica up" true
              (wait_for (fun () -> Sys.file_exists bsock));
            (* three jobs, the last a duplicate of the first *)
            let files =
              List.init 3 (fun i ->
                  let path = Filename.concat dir (Printf.sprintf "i%d.rtt" i) in
                  write_file path
                    (Io.to_string (cheap_instance (if i = 2 then 0 else i)));
                  path)
            in
            List.iter
              (fun f ->
                let code, _ = run_rtt [ "submit"; f; "--socket"; asock; "--wait" ] in
                Alcotest.(check int) ("submit " ^ f) 0 code)
              files;
            (* byte convergence before we start breaking things *)
            Alcotest.(check bool) "journals converge" true
              (wait_for (fun () ->
                   let ta = read_file (Journal.path ~spool:a) in
                   ta <> ""
                   && Sys.file_exists (Journal.path ~spool:b)
                   && ta = read_file (Journal.path ~spool:b)));
            (* power-cut the primary; the replica stays up as the
               repair source *)
            kill_quietly !daemon Sys.sigkill;
            ignore (Unix.waitpid [] !daemon);
            (* damage spool a three ways: truncate the journal mid-line
               (drops trailing records AND leaves a torn tail), delete
               a result file, flip a bit in a cache entry *)
            let j = Journal.path ~spool:a in
            let intact = read_file j in
            write_file j (String.sub intact 0 (String.length intact - 50));
            (* delete the result of a job whose [done] record survived
               the cut — a missing attachment of a committed record,
               the finding that forces the pull to offer watermark 0 *)
            let committed_done =
              List.filter_map
                (fun (job, st) ->
                  match st with Journal.Completed _ -> Some job | _ -> None)
                (Journal.fold (Journal.replay ~spool:a))
            in
            Alcotest.(check bool) "cut left at least one committed done" true
              (committed_done <> []);
            let some_result =
              Filename.concat a (List.hd committed_done ^ ".result")
            in
            let result_bytes = read_file some_result in
            Sys.remove some_result;
            let key = List.hd (Cache.keys ~dir:ca) in
            flip_byte (Cache.path ~dir:ca ~key) 40;
            (* the scrubber, against the live replica *)
            let code, out =
              run_rtt
                [ "fsck"; a; "--cache-dir"; ca; "-b"; "3"; "--repair"; "--from"; bsock ]
            in
            Alcotest.(check int) ("repaired: " ^ out) 51 code;
            let code, _ = run_rtt [ "fsck"; a; "--cache-dir"; ca; "-b"; "3" ] in
            Alcotest.(check int) "rescan clean" 0 code;
            (* everything the damage touched is back, byte-for-byte *)
            Alcotest.(check string) "journal restored" (read_file (Journal.path ~spool:b))
              (read_file j);
            Alcotest.(check string) "result restored" result_bytes (read_file some_result);
            Alcotest.(check bool) "cache entry restored" true
              (Cache.lookup ~dir:ca ~key <> None);
            (* the daemon restarts on the repaired spool and still
               serves — with exactly-once history *)
            daemon :=
              spawn_rtt
                [ "daemon"; "--spool"; a; "--socket"; asock; "-b"; "3"; "--cache-dir"; ca ];
            let code, _ =
              run_rtt [ "submit"; List.hd files; "--socket"; asock; "--wait" ]
            in
            Alcotest.(check int) "resubmit after repair" 0 code;
            Hashtbl.iter
              (fun job n ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %d done records" job n)
                  true (n <= 1))
              (done_counts a)))
  ]

let () =
  Alcotest.run "fsck"
    [
      ("scan", scan_units); ("truncation", truncation_units); ("restore", process_units);
    ]
