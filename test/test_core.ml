(* Tests for the core library: problem construction, schedules and
   min-flow feasibility, the D -> D'' transformation (Fig. 6/7), LP
   relaxation (LP 6-10), alpha-rounding (Lemmas 3.2-3.3), the
   bi-criteria and single-criteria approximation algorithms
   (Theorems 3.4, 3.9, 3.10, 3.16), the series-parallel DP (Section 3.4),
   and the brute-force exact reference. *)

open Rtt_dag
open Rtt_duration
open Rtt_num
open Rtt_core

let rng_of seed = Random.State.make [| seed |]

(* The Figure 4/5-style instance: node c has in-degree 6; a height-1
   reducer (2 units) at c drops the makespan from 11 to 10. *)
let fig45 () =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let a = Dag.add_vertex ~label:"a" g in
  let b = Dag.add_vertex ~label:"b" g in
  let c = Dag.add_vertex ~label:"c" g in
  let d = Dag.add_vertex ~label:"d" g in
  let t = Dag.add_vertex ~label:"t" g in
  let xs = List.init 5 (fun i -> Dag.add_vertex ~label:(Printf.sprintf "x%d" i) g) in
  Dag.add_edge g s a;
  Dag.add_edge g a b;
  Dag.add_edge g b c;
  List.iter
    (fun x ->
      Dag.add_edge g s x;
      Dag.add_edge g x c)
    xs;
  Dag.add_edge g c d;
  Dag.add_edge g (List.hd xs) d;
  Dag.add_edge g d t;
  g

(* small random instance with general step durations *)
let random_instance rng ~n ~max_tuples =
  let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
  let durations _v =
    let base = 2 + Random.State.int rng 9 in
    let rec steps r t k acc =
      if k = 0 || t = 0 then List.rev acc
      else begin
        let r' = r + 1 + Random.State.int rng 3 in
        let t' = max 0 (t - 1 - Random.State.int rng 4) in
        if t' >= t then List.rev acc else steps r' t' (k - 1) ((r', t') :: acc)
      end
    in
    Duration.make ((0, base) :: steps 0 base (Random.State.int rng max_tuples) [])
  in
  Problem.make g ~durations

let problem_units =
  [
    Alcotest.test_case "figure 4: makespan 11 without resources" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        Alcotest.(check int) "makespan" 11 (Schedule.makespan p (Schedule.zero_allocation p)));
    Alcotest.test_case "figure 5: two units drop the makespan to 10" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let r = Exact.min_makespan p ~budget:2 in
        Alcotest.(check int) "makespan" 10 r.Exact.makespan;
        Alcotest.(check int) "budget used" 2 r.Exact.budget_used);
    Alcotest.test_case "works = in-degree" `Quick (fun () ->
        let g = fig45 () in
        let w = Problem.works g in
        Alcotest.(check int) "c has 6" 6 w.(3);
        Alcotest.(check int) "s has 0" 0 w.(0));
    Alcotest.test_case "make rejects empty and cyclic graphs" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Problem.make: empty graph") (fun () ->
            ignore (Problem.make (Dag.create ()) ~durations:(fun _ -> Duration.constant 0)));
        let g = Dag.of_edges ~n:2 [ (0, 1); (1, 0) ] in
        Alcotest.check_raises "cycle" (Invalid_argument "Problem.make: graph has a cycle") (fun () ->
            ignore (Problem.make g ~durations:(fun _ -> Duration.constant 0))));
    Alcotest.test_case "max_meaningful_budget" `Quick (fun () ->
        let g = Dag.of_edges ~n:2 [ (0, 1) ] in
        let p =
          Problem.make g ~durations:(fun v ->
              if v = 0 then Duration.constant 1 else Duration.make [ (0, 8); (3, 2) ])
        in
        Alcotest.(check int) "budget" 3 (Problem.max_meaningful_budget p));
  ]

let schedule_units =
  [
    Alcotest.test_case "durations_at follows allocation" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let alloc = Schedule.zero_allocation p in
        alloc.(3) <- 2;
        (* c with work 6: t(2) = 3 + 2 = 5 *)
        Alcotest.(check int) "c" 5 (Schedule.durations_at p alloc).(3));
    Alcotest.test_case "min_budget on a chain reuses one unit" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
        let p = Problem.make g ~durations:(fun _ -> Duration.make [ (0, 4); (1, 1) ]) in
        let alloc = [| 1; 1; 1 |] in
        Alcotest.(check int) "one unit serves all" 1 (Schedule.min_budget p alloc));
    Alcotest.test_case "min_budget on parallel branches adds" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
        let p = Problem.make g ~durations:(fun _ -> Duration.make [ (0, 4); (2, 1) ]) in
        let alloc = [| 0; 2; 2; 0 |] in
        Alcotest.(check int) "branches add" 4 (Schedule.min_budget p alloc));
    Alcotest.test_case "routing decomposes into unit paths" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
        let p = Problem.make g ~durations:(fun _ -> Duration.make [ (0, 4); (2, 1) ]) in
        let alloc = [| 0; 2; 1; 0 |] in
        let value, paths = Schedule.min_budget_with_routing p alloc in
        Alcotest.(check int) "value" 3 value;
        Alcotest.(check int) "total units" 3 (List.fold_left (fun acc (_, u) -> acc + u) 0 paths);
        (* every path runs from source to sink in the original graph *)
        List.iter
          (fun (path, _) ->
            Alcotest.(check int) "starts at source" 0 (List.hd path);
            Alcotest.(check int) "ends at sink" 3 (List.nth path (List.length path - 1)))
          paths);
    Alcotest.test_case "critical path consistent with makespan" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let alloc = Schedule.zero_allocation p in
        let ms, path = Schedule.critical_path p alloc in
        Alcotest.(check int) "value" 11 ms;
        Alcotest.(check bool) "non-empty" true (path <> []));
    Alcotest.test_case "rejects malformed allocations" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        Alcotest.check_raises "size" (Invalid_argument "Schedule: allocation size mismatch")
          (fun () -> ignore (Schedule.makespan p [| 0 |]));
        let bad = Schedule.zero_allocation p in
        bad.(0) <- -1;
        Alcotest.check_raises "negative" (Invalid_argument "Schedule: negative allocation")
          (fun () -> ignore (Schedule.makespan p bad)));
  ]

let transform_units =
  [
    Alcotest.test_case "every transformed edge has at most two tuples" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        Array.iter
          (fun (e : Transform.edge) ->
            match e.Transform.upgrade with
            | Some r -> Alcotest.(check bool) "r positive" true (r > 0)
            | None -> ())
          tr.Transform.edges);
    Alcotest.test_case "transformed graph is a DAG with matching terminals" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        Alcotest.(check bool) "dag" true (Dag.is_dag tr.Transform.graph);
        Alcotest.(check int) "source is entry of source" tr.Transform.entry.(p.Problem.source)
          tr.Transform.source;
        Alcotest.(check int) "sink is exit of sink" tr.Transform.exits.(p.Problem.sink)
          tr.Transform.sink);
    Alcotest.test_case "chain deltas recover tuple resources" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        (* upgrading a prefix of chain edges yields exactly the tuple resources *)
        for v = 0 to Problem.n_jobs p - 1 do
          let tuples = Array.of_list (Duration.tuples (Problem.duration p v)) in
          let chain = Array.of_list tr.Transform.chains.(v) in
          if Array.length tuples > 1 then
            for j = 0 to Array.length tuples - 1 do
              let upgraded i =
                match tr.Transform.edges.(i).Transform.kind with
                | Transform.Chain { vertex; idx } -> vertex = v && idx < j
                | _ -> false
              in
              let alloc = Transform.allocation_of_upgrades tr ~upgraded in
              Alcotest.(check int) (Printf.sprintf "v%d tuple %d" v j) (fst tuples.(j)) alloc.(v)
            done;
          ignore chain
        done);
    Alcotest.test_case "zero-upgrade makespan equals base makespan" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        let ms = Transform.makespan_with tr ~edge_time:(fun i -> tr.Transform.edges.(i).Transform.t0) in
        Alcotest.(check int) "hm" (Schedule.makespan p (Schedule.zero_allocation p)) ms);
  ]

let lp_units =
  [
    Alcotest.test_case "LP lower-bounds the exact optimum" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        for budget = 0 to 4 do
          let lp = Lp_relax.min_makespan tr ~budget in
          let opt = Exact.min_makespan p ~budget in
          Alcotest.(check bool)
            (Printf.sprintf "B=%d: lp <= opt" budget)
            true
            Rat.(lp.Lp_relax.makespan <= Rat.of_int opt.Exact.makespan)
        done);
    Alcotest.test_case "LP budget constraint is respected" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        let lp = Lp_relax.min_makespan tr ~budget:3 in
        Alcotest.(check bool) "budget" true Rat.(lp.Lp_relax.budget_used <= Rat.of_int 3));
    Alcotest.test_case "zero budget reproduces base makespan" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        let lp = Lp_relax.min_makespan tr ~budget:0 in
        Alcotest.(check bool) "equals 11" true Rat.(equal lp.Lp_relax.makespan (Rat.of_int 11)));
    Alcotest.test_case "min_resource: generous target needs nothing" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        match Lp_relax.min_resource tr ~target:(Rat.of_int 100) with
        | Some lp -> Alcotest.(check bool) "zero" true (Rat.is_zero lp.Lp_relax.budget_used)
        | None -> Alcotest.fail "feasible expected");
    Alcotest.test_case "min_resource: impossible target detected" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let tr = Transform.of_problem p in
        Alcotest.(check bool) "none" true (Lp_relax.min_resource tr ~target:(Rat.of_int 1) = None));
    Alcotest.test_case "edge_duration interpolates downward" `Quick (fun () ->
        let e = { Transform.src = 0; dst = 1; t0 = 10; upgrade = Some 4; kind = Transform.Link { src = 0; dst = 1 } } in
        Alcotest.(check string) "at 0" "10" (Rat.to_string (Lp_relax.edge_duration e Rat.zero));
        Alcotest.(check string) "at 2" "5" (Rat.to_string (Lp_relax.edge_duration e Rat.two));
        Alcotest.(check string) "at 4" "0" (Rat.to_string (Lp_relax.edge_duration e (Rat.of_int 4))));
  ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let approx_props =
  [
    prop "bi-criteria guarantees hold (Theorem 3.4)" 25
      QCheck.(pair (int_range 4 8) (int_range 0 2))
      (fun (n, ai) ->
        let rng = rng_of ((n * 17) + ai) in
        let p = random_instance rng ~n ~max_tuples:3 in
        let alpha = List.nth [ Rat.of_ints 1 4; Rat.half; Rat.of_ints 3 4 ] ai in
        let budget = 1 + Random.State.int rng 6 in
        let bi = Bicriteria.min_makespan p ~budget ~alpha in
        Bicriteria.satisfies_guarantees bi);
    prop "bi-criteria min-resource guarantees hold" 15 QCheck.(int_range 4 8) (fun n ->
        let rng = rng_of (n + 4000) in
        let p = random_instance rng ~n ~max_tuples:3 in
        let base = Schedule.makespan p (Schedule.zero_allocation p) in
        let target = max 1 (base / 2) in
        match Bicriteria.min_resource p ~target ~alpha:Rat.half with
        | None -> true (* target unreachable *)
        | Some bi ->
            Rat.(Rat.of_int bi.Bicriteria.rounded.Rounding.makespan <= bi.Bicriteria.makespan_bound)
            && Rat.(Rat.of_int bi.Bicriteria.rounded.Rounding.budget_used <= bi.Bicriteria.budget_bound));
    prop "rounded allocation is honest (feasible within inflated budget)" 20 QCheck.(int_range 4 8)
      (fun n ->
        let rng = rng_of (n + 300) in
        let p = random_instance rng ~n ~max_tuples:3 in
        let budget = 1 + Random.State.int rng 5 in
        let bi = Bicriteria.min_makespan p ~budget ~alpha:Rat.half in
        let alloc = bi.Bicriteria.rounded.Rounding.allocation in
        (* vertex-level makespan can only be better than the d2-level one *)
        Schedule.makespan p alloc <= bi.Bicriteria.rounded.Rounding.makespan
        && Schedule.min_budget p alloc <= bi.Bicriteria.rounded.Rounding.budget_used);
    prop "binary 4-approx (Theorem 3.10)" 20 QCheck.(int_range 4 7) (fun n ->
        let rng = rng_of (n + 900) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let budget = 1 + Random.State.int rng 5 in
        let approx = Binary_approx.min_makespan p ~budget in
        let opt = Exact.min_makespan p ~budget in
        approx.Binary_approx.budget_used <= budget
        && approx.Binary_approx.makespan <= 4 * opt.Exact.makespan);
    prop "kway 5-approx (Theorem 3.9)" 20 QCheck.(int_range 4 7) (fun n ->
        let rng = rng_of (n + 1900) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Kway in
        let budget = 1 + Random.State.int rng 5 in
        let approx = Kway_approx.min_makespan p ~budget in
        let opt = Exact.min_makespan p ~budget in
        approx.Kway_approx.budget_used <= budget
        && approx.Kway_approx.makespan <= 5 * opt.Exact.makespan);
    prop "binary (4/3, 14/5) bi-criteria (Theorem 3.16)" 20 QCheck.(int_range 4 7) (fun n ->
        let rng = rng_of (n + 2900) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let budget = 1 + Random.State.int rng 5 in
        let r = Binary_bicriteria.min_makespan p ~budget in
        Binary_bicriteria.satisfies_guarantees r);
    prop "binary bi-criteria min-resource extension" 15 QCheck.(int_range 4 7) (fun n ->
        let rng = rng_of (n + 5900) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let base = Schedule.makespan p (Schedule.zero_allocation p) in
        let target = max 1 ((2 * base) / 3) in
        (match Binary_bicriteria.min_resource p ~target with
        | None -> true
        | Some r ->
            Binary_bicriteria.satisfies_guarantees r
            && (match Exact.min_resource p ~target with
               | Some opt ->
                   (* the rounded resources are within 4/3 of the true optimum *)
                   let floor_opt = Stdlib.max 1 opt.Exact.budget_used in
                   Rat.(Rat.of_int r.Binary_bicriteria.budget_used
                        <= Rat.mul (Rat.of_ints 4 3) (Rat.of_int floor_opt))
                   || r.Binary_bicriteria.budget_used = 0
               | None -> true)));
    prop "approx makespan never beats the exact optimum" 20 QCheck.(int_range 4 7) (fun n ->
        let rng = rng_of (n + 3900) in
        let g = Gen.erdos_renyi rng ~n ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let budget = 1 + Random.State.int rng 4 in
        let approx = Binary_approx.min_makespan p ~budget in
        let opt = Exact.min_makespan p ~budget in
        approx.Binary_approx.makespan >= opt.Exact.makespan);
  ]

let best_alpha_units =
  [
    Alcotest.test_case "best_alpha fits the budget when any alpha does" `Quick (fun () ->
        let rng = rng_of 61 in
        for _ = 1 to 10 do
          let p = random_instance rng ~n:(4 + Random.State.int rng 5) ~max_tuples:3 in
          let budget = 1 + Random.State.int rng 6 in
          let auto = Bicriteria.best_alpha p ~budget in
          (* dominates the three standard fixed choices whenever it fits *)
          List.iter
            (fun alpha ->
              let fixed = Bicriteria.min_makespan p ~budget ~alpha in
              if
                fixed.Bicriteria.rounded.Rounding.budget_used <= budget
                && auto.Bicriteria.rounded.Rounding.budget_used <= budget
              then
                Alcotest.(check bool) "dominates" true
                  (auto.Bicriteria.rounded.Rounding.makespan
                  <= fixed.Bicriteria.rounded.Rounding.makespan))
            [ Rat.of_ints 1 4; Rat.half; Rat.of_ints 3 4 ];
          Alcotest.(check bool) "guarantees" true (Bicriteria.satisfies_guarantees auto)
        done);
    Alcotest.test_case "best_alpha on the all-constant instance" `Quick (fun () ->
        let g = Dag.of_edges ~n:2 [ (0, 1) ] in
        let p = Problem.make g ~durations:(fun _ -> Duration.constant 3) in
        let r = Bicriteria.best_alpha p ~budget:5 in
        Alcotest.(check int) "makespan" 6 r.Bicriteria.rounded.Rounding.makespan;
        Alcotest.(check int) "budget" 0 r.Bicriteria.rounded.Rounding.budget_used);
  ]

let binary_round_units =
  [
    Alcotest.test_case "Section 3.3 rounding rule" `Quick (fun () ->
        let r = Binary_bicriteria.round_resource ~max_level:64 in
        List.iter
          (fun (num, den, want) ->
            Alcotest.(check int)
              (Printf.sprintf "round %d/%d" num den)
              want
              (r (Rat.of_ints num den)))
          [
            (1, 2, 0) (* < 1 -> 0 *);
            (1, 1, 1) (* [1, 1.5) -> 1 *);
            (3, 2, 2) (* [1.5, 2) -> 2 *);
            (2, 1, 2);
            (5, 2, 2) (* 2.5 < 3 -> down to 2 *);
            (3, 1, 4) (* [3, 4) -> up to 4 *);
            (9, 2, 4) (* 4.5 < 6 -> down *);
            (6, 1, 8) (* [6, 8) -> up *);
            (13, 1, 16);
          ]);
    Alcotest.test_case "rounding respects the cap" `Quick (fun () ->
        Alcotest.(check int) "capped" 8 (Binary_bicriteria.round_resource (Rat.of_int 100) ~max_level:8));
  ]

let sp_units =
  [
    Alcotest.test_case "leaf table is the duration function" `Quick (fun () ->
        let d = Duration.make [ (0, 9); (2, 4); (5, 1) ] in
        let table = Sp_exact.makespan_table (Sp.leaf d) ~budget:6 in
        Alcotest.(check (list int)) "table" [ 9; 9; 4; 4; 4; 1; 1 ] (Array.to_list table));
    Alcotest.test_case "series adds, parallel splits" `Quick (fun () ->
        let d = Duration.make [ (0, 6); (2, 2) ] in
        let series = Sp_exact.makespan_table (Sp.series (Sp.leaf d) (Sp.leaf d)) ~budget:2 in
        (* same 2 units serve both jobs in series *)
        Alcotest.(check (list int)) "series" [ 12; 12; 4 ] (Array.to_list series);
        let par = Sp_exact.makespan_table (Sp.parallel (Sp.leaf d) (Sp.leaf d)) ~budget:2 in
        (* in parallel they compete: 2 units only fix one branch *)
        Alcotest.(check (list int)) "parallel" [ 6; 6; 6 ] (Array.to_list par));
    Alcotest.test_case "allocation tree achieves the reported makespan" `Quick (fun () ->
        let rng = rng_of 5 in
        for _ = 1 to 20 do
          let tree =
            Sp.map
              (fun _ -> Binary_split.to_duration ~work:(2 + Random.State.int rng 20))
              (Gen.random_sp rng ~leaves:(2 + Random.State.int rng 5) ~series_bias:0.5)
          in
          let budget = Random.State.int rng 8 in
          let ms, alloc = Sp_exact.min_makespan tree ~budget in
          (* walk both trees simultaneously and recompute *)
          let rec eval t a =
            match (t, a) with
            | Sp.Leaf d, Sp.Leaf r -> (Duration.eval d r, r)
            | Sp.Series (t1, t2), Sp.Series (a1, a2) ->
                let m1, r1 = eval t1 a1 and m2, r2 = eval t2 a2 in
                (m1 + m2, max r1 r2)
            | Sp.Parallel (t1, t2), Sp.Parallel (a1, a2) ->
                let m1, r1 = eval t1 a1 and m2, r2 = eval t2 a2 in
                (max m1 m2, r1 + r2)
            | _ -> Alcotest.fail "allocation tree shape mismatch"
          in
          let ms', used = eval tree alloc in
          Alcotest.(check int) "makespan" ms ms';
          Alcotest.(check bool) "within budget" true (used <= budget)
        done);
    Alcotest.test_case "min_resource finds the threshold" `Quick (fun () ->
        let d = Duration.make [ (0, 6); (2, 2) ] in
        let tree = Sp.series (Sp.leaf d) (Sp.leaf d) in
        Alcotest.(check (option int)) "target 4" (Some 2) (Sp_exact.min_resource tree ~target:4);
        Alcotest.(check (option int)) "target 12" (Some 0) (Sp_exact.min_resource tree ~target:12);
        Alcotest.(check (option int)) "target 3" None (Sp_exact.min_resource tree ~target:3));
  ]

let sp_props =
  [
    prop "SP DP matches brute force (Section 3.4)" 25 QCheck.(int_range 2 6) (fun leaves ->
        let rng = rng_of (leaves + 10_000) in
        let tree =
          Sp.map
            (fun _ ->
              if Random.State.bool rng then Binary_split.to_duration ~work:(2 + Random.State.int rng 15)
              else Kway.to_duration ~work:(2 + Random.State.int rng 15))
            (Gen.random_sp rng ~leaves ~series_bias:0.5)
        in
        let budget = Random.State.int rng 7 in
        let ms, _ = Sp_exact.min_makespan tree ~budget in
        let g, jobs = Sp.to_dag tree in
        let p = Problem.make g ~durations:(fun v -> jobs.(v)) in
        let opt = Exact.min_makespan p ~budget in
        ms = opt.Exact.makespan);
    prop "SP table is non-increasing in budget" 25 QCheck.(int_range 2 6) (fun leaves ->
        let rng = rng_of (leaves + 20_000) in
        let tree =
          Sp.map
            (fun _ -> Binary_split.to_duration ~work:(2 + Random.State.int rng 15))
            (Gen.random_sp rng ~leaves ~series_bias:0.5)
        in
        let table = Sp_exact.makespan_table tree ~budget:8 in
        let ok = ref true in
        for l = 0 to Array.length table - 2 do
          if table.(l + 1) > table.(l) then ok := false
        done;
        !ok);
  ]

let exact_units =
  [
    Alcotest.test_case "budget 0 equals base makespan" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let r = Exact.min_makespan p ~budget:0 in
        Alcotest.(check int) "makespan" 11 r.Exact.makespan;
        Alcotest.(check int) "budget" 0 r.Exact.budget_used);
    Alcotest.test_case "monotone in budget" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let prev = ref max_int in
        for b = 0 to 6 do
          let r = Exact.min_makespan p ~budget:b in
          Alcotest.(check bool) (Printf.sprintf "B=%d" b) true (r.Exact.makespan <= !prev);
          prev := r.Exact.makespan
        done);
    Alcotest.test_case "min_resource inverts min_makespan" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        match Exact.min_resource p ~target:10 with
        | Some r ->
            Alcotest.(check int) "budget" 2 r.Exact.budget_used;
            Alcotest.(check bool) "achieves" true (Schedule.makespan p r.Exact.allocation <= 10)
        | None -> Alcotest.fail "reachable target");
    Alcotest.test_case "min_resource None when unreachable" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        Alcotest.(check bool) "none" true (Exact.min_resource p ~target:2 = None));
    Alcotest.test_case "explodes gracefully" `Quick (fun () ->
        let rng = rng_of 1 in
        let g = Gen.erdos_renyi rng ~n:40 ~edge_prob:0.3 in
        let p = Problem.of_race_dag g Problem.Binary in
        match Exact.min_makespan ~max_states:10 p ~budget:8 with
        | exception Exact.Too_large _ -> ()
        | _ -> Alcotest.fail "expected Too_large");
    Alcotest.test_case "returned allocation is feasible and achieves makespan" `Quick (fun () ->
        let rng = rng_of 2 in
        for _ = 1 to 10 do
          let g = Gen.erdos_renyi rng ~n:6 ~edge_prob:0.4 in
          let p = Problem.of_race_dag g Problem.Binary in
          let budget = Random.State.int rng 5 in
          let r = Exact.min_makespan p ~budget in
          Alcotest.(check int) "achieves" r.Exact.makespan (Schedule.makespan p r.Exact.allocation);
          Alcotest.(check bool) "feasible" true (Schedule.feasible p ~budget r.Exact.allocation)
        done);
  ]

let reuse_units =
  [
    Alcotest.test_case "chain: paths and global collapse to one job's worth" `Quick (fun () ->
        let g = Dag.of_edges ~n:3 [ (0, 1); (1, 2) ] in
        let p = Problem.make g ~durations:(fun _ -> Duration.make [ (0, 4); (2, 1) ]) in
        let b = Reuse.budgets p [| 2; 2; 2 |] in
        Alcotest.(check int) "none" 6 b.Reuse.none;
        Alcotest.(check int) "paths" 2 b.Reuse.over_paths;
        Alcotest.(check int) "global" 2 b.Reuse.global);
    Alcotest.test_case "parallel branches: no reuse possible" `Quick (fun () ->
        let g = Dag.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
        let p = Problem.make g ~durations:(fun _ -> Duration.make [ (0, 4); (2, 1) ]) in
        let b = Reuse.budgets p [| 0; 2; 2; 0 |] in
        Alcotest.(check int) "none" 4 b.Reuse.none;
        Alcotest.(check int) "paths" 4 b.Reuse.over_paths;
        (* the two branches run concurrently, so even globally 4 are live *)
        Alcotest.(check int) "global" 4 b.Reuse.global);
    Alcotest.test_case "global beats paths when windows are disjoint off-path" `Quick (fun () ->
        (* two parallel branches with different lengths: the long branch's
           job runs while the short branch is already done, but no s-t
           path serves both -> paths needs 4, global only needs 2 *)
        let g = Dag.of_edges ~n:5 [ (0, 1); (0, 2); (2, 3); (1, 4); (3, 4) ] in
        let p =
          Problem.make g ~durations:(fun v ->
              if v = 1 || v = 3 then Duration.make [ (0, 4); (2, 1) ]
              else if v = 2 then Duration.constant 10
              else Duration.constant 0)
        in
        let b = Reuse.budgets p [| 0; 2; 0; 2; 0 |] in
        Alcotest.(check int) "paths" 4 b.Reuse.over_paths;
        Alcotest.(check int) "global" 2 b.Reuse.global);
    Alcotest.test_case "ordering holds on random instances" `Quick (fun () ->
        let rng = rng_of 12 in
        for _ = 1 to 30 do
          let g = Gen.erdos_renyi rng ~n:(5 + Random.State.int rng 10) ~edge_prob:0.4 in
          let p = Problem.of_race_dag g Problem.Binary in
          let alloc =
            Array.map
              (fun d ->
                let m = Duration.max_useful_resource d in
                if m = 0 then 0 else Random.State.int rng (m + 1))
              p.Problem.durations
          in
          let b = Reuse.budgets p alloc in
          Alcotest.(check bool) "global <= paths" true (b.Reuse.global <= b.Reuse.over_paths);
          Alcotest.(check bool) "paths <= none" true (b.Reuse.over_paths <= b.Reuse.none)
        done);
  ]

let io_units =
  [
    Alcotest.test_case "round-trip through the text format" `Quick (fun () ->
        let rng = rng_of 77 in
        for _ = 1 to 10 do
          let g = Gen.erdos_renyi rng ~n:8 ~edge_prob:0.4 in
          let p = Problem.of_race_dag g Problem.Binary in
          let p' = Io.of_string (Io.to_string p) in
          Alcotest.(check int) "jobs" (Problem.n_jobs p) (Problem.n_jobs p');
          (* behaviour-level equality: same makespans across budgets *)
          for b = 0 to 4 do
            Alcotest.(check int)
              (Printf.sprintf "B=%d" b)
              (Exact.min_makespan p ~budget:b).Exact.makespan
              (Exact.min_makespan p' ~budget:b).Exact.makespan
          done
        done);
    Alcotest.test_case "rejects malformed input with a line number" `Quick (fun () ->
        List.iter
          (fun (s, want_line) ->
            match Io.of_string s with
            | exception Io.Parse_error { line; _ } ->
                Alcotest.(check int) (Printf.sprintf "line of %S" s) want_line line
            | _ -> Alcotest.failf "accepted %S" s)
          [
            ("", 0);
            ("vertices 0", 1);
            ("vertices 2\nedge 0 5", 2);
            ("vertices x", 1);
            ("vertices 2\nduration 0 nope", 2);
            ("vertices 2\nbogus 1 2", 2);
            ("vertices 2\nduration 0", 2);
            ("vertices 2\nedge 0", 2);
            ("vertices 2\nedge 0 1\nedge 1 0", 1);
            ("vertices 2\nvertices 3", 2);
          ]);
    Alcotest.test_case "comments and blank lines ignored" `Quick (fun () ->
        let p = Io.of_string "# a comment\n\nvertices 2\nduration 0 0:5\nedge 0 1\n" in
        Alcotest.(check int) "jobs" 2 (Problem.n_jobs p));
  ]

let greedy_units =
  [
    Alcotest.test_case "never worse than the zero allocation" `Quick (fun () ->
        let rng = rng_of 21 in
        for _ = 1 to 15 do
          let g = Gen.erdos_renyi rng ~n:(5 + Random.State.int rng 6) ~edge_prob:0.4 in
          let p = Problem.of_race_dag g Problem.Binary in
          let budget = Random.State.int rng 6 in
          let r = Greedy.min_makespan p ~budget in
          Alcotest.(check bool) "improves" true
            (r.Greedy.makespan <= Schedule.makespan p (Schedule.zero_allocation p));
          Alcotest.(check bool) "within budget" true (r.Greedy.budget_used <= budget);
          Alcotest.(check bool) "feasible" true (Schedule.feasible p ~budget r.Greedy.allocation);
          Alcotest.(check int) "consistent" r.Greedy.makespan (Schedule.makespan p r.Greedy.allocation)
        done);
    Alcotest.test_case "matches exact on the Figure 4/5 instance" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let r = Greedy.min_makespan p ~budget:2 in
        Alcotest.(check int) "makespan" 10 r.Greedy.makespan);
    Alcotest.test_case "zero budget does nothing" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let r = Greedy.min_makespan p ~budget:0 in
        Alcotest.(check int) "makespan" 11 r.Greedy.makespan;
        Alcotest.(check int) "steps" 0 r.Greedy.steps);
    Alcotest.test_case "never beats the exact optimum" `Quick (fun () ->
        let rng = rng_of 22 in
        for _ = 1 to 10 do
          let g = Gen.erdos_renyi rng ~n:(5 + Random.State.int rng 3) ~edge_prob:0.4 in
          let p = Problem.of_race_dag g Problem.Binary in
          let budget = Random.State.int rng 5 in
          let greedy = Greedy.min_makespan p ~budget in
          let opt = Exact.min_makespan p ~budget in
          Alcotest.(check bool) "opt <= greedy" true (opt.Exact.makespan <= greedy.Greedy.makespan)
        done);
  ]

let processors_units =
  [
    Alcotest.test_case "one processor serializes all work" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let alloc = Schedule.zero_allocation p in
        let total = Array.fold_left ( + ) 0 (Schedule.durations_at p alloc) in
        Alcotest.(check int) "T_1 = W" total
          (Processors.list_schedule p alloc ~processors:1).Processors.finish);
    Alcotest.test_case "many processors reach the makespan" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let alloc = Schedule.zero_allocation p in
        let t = Processors.list_schedule p alloc ~processors:(Problem.n_jobs p) in
        Alcotest.(check int) "T_inf" (Schedule.makespan p alloc) t.Processors.finish);
    Alcotest.test_case "graham sandwich on random instances" `Quick (fun () ->
        let rng = rng_of 23 in
        for _ = 1 to 20 do
          let g = Gen.erdos_renyi rng ~n:(6 + Random.State.int rng 8) ~edge_prob:0.35 in
          let p = Problem.of_race_dag g Problem.Binary in
          let alloc = Schedule.zero_allocation p in
          let w = Array.fold_left ( + ) 0 (Schedule.durations_at p alloc) in
          let t_inf = Schedule.makespan p alloc in
          List.iter
            (fun k ->
              let tp = (Processors.list_schedule p alloc ~processors:k).Processors.finish in
              Alcotest.(check bool) "lower" true (tp >= max t_inf ((w + k - 1) / k));
              Alcotest.(check bool) "upper (Graham)" true (tp <= (w / k) + t_inf))
            [ 1; 2; 3; 4 ]
        done);
    Alcotest.test_case "speedup curve is non-increasing" `Quick (fun () ->
        let rng = rng_of 24 in
        let g = Gen.erdos_renyi rng ~n:12 ~edge_prob:0.3 in
        let p = Problem.of_race_dag g Problem.Binary in
        let curve = Processors.speedup_curve p (Schedule.zero_allocation p) ~processors:[ 1; 2; 4; 8 ] in
        let rec mono = function
          | (_, a) :: (((_, b) :: _) as rest) -> b <= a && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone" true (mono curve));
    Alcotest.test_case "schedule is a valid assignment" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let alloc = Schedule.zero_allocation p in
        let t = Processors.list_schedule p alloc ~processors:2 in
        let d = Schedule.durations_at p alloc in
        (* jobs on the same processor do not overlap *)
        let n = Problem.n_jobs p in
        for a = 0 to n - 1 do
          for b = a + 1 to n - 1 do
            if t.Processors.processor_of_job.(a) = t.Processors.processor_of_job.(b) then begin
              let sa = t.Processors.start_times.(a) and sb = t.Processors.start_times.(b) in
              Alcotest.(check bool) "no overlap" true (sa + d.(a) <= sb || sb + d.(b) <= sa)
            end
          done
        done;
        (* precedence respected *)
        List.iter
          (fun (u, v) ->
            Alcotest.(check bool) "precedence" true
              (t.Processors.start_times.(u) + d.(u) <= t.Processors.start_times.(v)))
          (Rtt_dag.Dag.edges p.Problem.dag));
  ]

let pareto_units =
  [
    Alcotest.test_case "exact frontier on Figure 4/5" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let curve = Pareto.exact ~max_budget:6 p in
        (* the sweep caps at the largest meaningful budget *)
        let expected = min 6 (Problem.max_meaningful_budget p) + 1 in
        Alcotest.(check int) "points" expected (List.length curve);
        Alcotest.(check int) "B=0" 11 (List.nth curve 0).Pareto.makespan;
        Alcotest.(check int) "B=2" 10 (List.nth curve 2).Pareto.makespan;
        (* monotone non-increasing *)
        let rec mono = function
          | a :: (b :: _ as rest) -> a.Pareto.makespan >= b.Pareto.makespan && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone" true (mono curve));
    Alcotest.test_case "knees are the strict improvements" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        let curve = Pareto.exact ~max_budget:6 p in
        let ks = Pareto.knees curve in
        Alcotest.(check bool) "strictly decreasing" true
          (let rec go = function
             | a :: (b :: _ as rest) -> a.Pareto.makespan > b.Pareto.makespan && go rest
             | _ -> true
           in
           go ks));
    Alcotest.test_case "approximate frontier dominates nothing it should not" `Quick (fun () ->
        let rng = rng_of 31 in
        let g = Gen.erdos_renyi rng ~n:6 ~edge_prob:0.4 in
        let p = Problem.of_race_dag g Problem.Binary in
        let ex = Pareto.exact ~max_budget:5 p in
        let ap = Pareto.approximate ~max_budget:5 p in
        (* the approximation never claims better than exact at a budget it
           respects (its budget may overshoot by 4/3, so compare makespans
           only where its real cost fits) *)
        List.iter2
          (fun e a ->
            if Schedule.min_budget p a.Pareto.allocation <= e.Pareto.budget then
              Alcotest.(check bool) "not better than OPT" true (a.Pareto.makespan >= e.Pareto.makespan))
          ex ap;
        (* approximate curve is monotone by construction *)
        let rec mono = function
          | x :: (y :: _ as rest) -> x.Pareto.makespan >= y.Pareto.makespan && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone" true (mono ap));
  ]

let nonreusable_units =
  [
    Alcotest.test_case "path reuse never costs more than no reuse" `Quick (fun () ->
        let rng = rng_of 41 in
        for _ = 1 to 12 do
          let g = Gen.erdos_renyi rng ~n:(5 + Random.State.int rng 4) ~edge_prob:0.4 in
          let p = Problem.of_race_dag g Problem.Binary in
          let budget = 1 + Random.State.int rng 5 in
          let reuse = Exact.min_makespan p ~budget in
          let noreuse = Nonreusable.exact p ~budget in
          (* with the same budget, reuse can only help *)
          Alcotest.(check bool) "reuse at least as good" true
            (reuse.Exact.makespan <= noreuse.Exact.makespan)
        done);
    Alcotest.test_case "figure 4/5: reuse is immaterial for a single hot node" `Quick (fun () ->
        let p = Problem.of_race_dag (fig45 ()) Problem.Binary in
        Alcotest.(check int) "same optimum" (Exact.min_makespan p ~budget:2).Exact.makespan
          (Nonreusable.exact p ~budget:2).Exact.makespan);
    Alcotest.test_case "chain of hot nodes: reuse wins" `Quick (fun () ->
        (* two hubs in series: path reuse serves both with 2 units,
           no-reuse needs 4 *)
        let g = Dag.create () in
        let s = Dag.add_vertex g in
        let mk_hub prev =
          let hub = Dag.add_vertex g in
          List.iter
            (fun f ->
              Dag.add_edge g prev f;
              Dag.add_edge g f hub)
            (List.init 8 (fun _ -> Dag.add_vertex g));
          hub
        in
        let h1 = mk_hub s in
        let h2 = mk_hub h1 in
        let t = Dag.add_vertex g in
        Dag.add_edge g h2 t;
        let p = Problem.of_race_dag g Problem.Binary in
        let reuse = Exact.min_makespan p ~budget:2 in
        let noreuse = Nonreusable.exact p ~budget:2 in
        Alcotest.(check bool) "reuse strictly better" true
          (reuse.Exact.makespan < noreuse.Exact.makespan));
    Alcotest.test_case "skutella bi-criteria guarantees hold" `Quick (fun () ->
        let rng = rng_of 43 in
        for _ = 1 to 10 do
          let p = random_instance rng ~n:(4 + Random.State.int rng 4) ~max_tuples:3 in
          let budget = 1 + Random.State.int rng 5 in
          let r = Nonreusable.min_makespan p ~budget ~alpha:Rat.half in
          Alcotest.(check bool) "guarantees" true (Nonreusable.satisfies_guarantees r);
          (* the no-reuse LP budget counts sums, so the rounded allocation
             really costs its sum *)
          Alcotest.(check int) "cost is the sum" r.Nonreusable.budget_used
            (Array.fold_left ( + ) 0 r.Nonreusable.allocation)
        done);
    Alcotest.test_case "no-reuse LP lower-bounds its exact optimum" `Quick (fun () ->
        let rng = rng_of 44 in
        for _ = 1 to 8 do
          let g = Gen.erdos_renyi rng ~n:(5 + Random.State.int rng 3) ~edge_prob:0.4 in
          let p = Problem.of_race_dag g Problem.Binary in
          let budget = 1 + Random.State.int rng 4 in
          let r = Nonreusable.min_makespan p ~budget ~alpha:Rat.half in
          let opt = Nonreusable.exact p ~budget in
          Alcotest.(check bool) "lp <= opt" true
            Rat.(r.Nonreusable.lp_makespan <= Rat.of_int opt.Exact.makespan)
        done);
  ]

let () =
  Alcotest.run "rtt_core"
    [
      ("problem", problem_units);
      ("schedule", schedule_units);
      ("transform", transform_units);
      ("lp-relaxation", lp_units);
      ("rounding-rule", binary_round_units);
      ("best-alpha", best_alpha_units);
      ("approximation-properties", approx_props);
      ("series-parallel-dp", sp_units);
      ("series-parallel-properties", sp_props);
      ("exact", exact_units);
      ("reuse-regimes", reuse_units);
      ("io", io_units);
      ("greedy", greedy_units);
      ("processors", processors_units);
      ("pareto", pareto_units);
      ("nonreusable", nonreusable_units);
    ]
