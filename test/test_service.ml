(* Tests for the crash-safe batch service: journal wire format and
   replay semantics (qcheck properties included), retry classification
   and deterministic backoff, checkpoint sidecars, kernel
   checkpoint/resume (exact warm start, SP table snapshots), the
   in-process supervisor (drain, fault-driven retry, fuel deadlines),
   and the process-level acceptance scenarios: SIGKILL crash recovery
   and SIGTERM graceful shutdown against the real rtt binary. *)

open Rtt_dag
open Rtt_duration
open Rtt_budget
open Rtt_core
open Rtt_engine
open Rtt_service

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)
let rng_of seed = Random.State.make [| seed |]

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)

let fresh_spool =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rtt_%s_%d_%d" tag (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
    else Unix.mkdir dir 0o755;
    dir

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let write_job ~spool name p = write_file (Filename.concat spool name) (Io.to_string p)

let cheap_instance seed =
  Problem.of_race_dag (Gen.erdos_renyi (rng_of seed) ~n:6 ~edge_prob:0.35) Problem.Binary

(* n independent vertices between s and t, each with a flat resource-time
   tradeoff (r, 10 - r). The branch-and-bound's best-case lower bound
   stays below the optimum almost everywhere, so a cold exact search
   visits a large share of its opts^n states — genuinely slow to solve
   cold, yet it collapses under an incumbent warm start, which is
   exactly the shape the crash/resume tests need. *)
let wide_flat ~n ~opts =
  let g = Dag.create () in
  let s = Dag.add_vertex ~label:"s" g in
  let t = Dag.add_vertex ~label:"t" g in
  let vs = List.init n (fun _ -> Dag.add_vertex g) in
  List.iter
    (fun v ->
      Dag.add_edge g s v;
      Dag.add_edge g v t)
    vs;
  Problem.make g ~durations:(fun v ->
      if v = s || v = t then Duration.constant 0
      else Duration.make (List.init opts (fun r -> (r, 10 - r))))

let fuel_of f =
  Budget.with_fuel (Some 50_000_000) (fun () ->
      let r = f () in
      (r, Budget.spent ()))

let record_testable =
  let pp fmt (r : Journal.record) = Format.pp_print_string fmt (Journal.encode r) in
  Alcotest.testable pp ( = )

(* ------------------------------------------------------------------ *)
(* journal wire format and replay                                      *)

let job_name_gen =
  QCheck.Gen.(
    map
      (fun chars -> String.concat "" (List.map (String.make 1) chars))
      (list_size (int_range 1 20)
         (oneof
            [
              char_range 'a' 'z';
              char_range '0' '9';
              oneofl [ '.'; '-'; '_'; ' '; '%'; '\n' ];
            ])))

let event_gen =
  QCheck.Gen.(
    let attempt = int_range 1 9 in
    let cls = oneofl [ "fuel-exhausted"; "lp-failure"; "parse-error"; "retries-exhausted" ] in
    oneof
      [
        return Journal.Queued;
        map (fun attempt -> Journal.Started { attempt }) attempt;
        map
          (fun ((attempt, cached), (makespan, budget_used, fuel)) ->
            Journal.Done { attempt; makespan; budget_used; fuel; cached })
          (pair (pair attempt bool) (triple (int_range 0 1000) (int_range 0 50) (int_range 0 100000)));
        map
          (fun (attempt, error_class, (transient, backoff)) ->
            Journal.Failed { attempt; error_class; transient; backoff })
          (triple attempt cls (pair bool (int_range 0 2200)));
        map (fun attempt -> Journal.Abandoned { attempt }) attempt;
      ])

let record_gen =
  QCheck.make
    ~print:(fun r -> Journal.encode r)
    QCheck.Gen.(map (fun (job, event) -> { Journal.job; event }) (pair job_name_gen event_gen))

let records_gen =
  QCheck.make
    ~print:(fun rs -> String.concat " | " (List.map Journal.encode rs))
    QCheck.Gen.(list_size (int_range 0 25) (QCheck.gen record_gen))

let journal_props =
  [
    prop "encode/decode roundtrip (incl. hostile job names)" 300 record_gen (fun r ->
        Journal.decode (Journal.encode r) = Some r);
    prop "file roundtrip: append all, replay all" 50 records_gen (fun records ->
        let spool = fresh_spool "jrt" in
        let j = Journal.open_ ~spool in
        List.iter (Journal.append j) records;
        Journal.close j;
        Journal.replay ~spool = records);
    prop "replay is idempotent: fold a prefix, then the rest" 120
      QCheck.(pair records_gen small_nat)
      (fun (records, k) ->
        let k = k mod (List.length records + 1) in
        let prefix = List.filteri (fun i _ -> i < k) records in
        let rest = List.filteri (fun i _ -> i >= k) records in
        List.fold_left Journal.apply (Journal.fold prefix) rest = Journal.fold records);
    prop "torn tail: a truncated final record is dropped, prefix survives" 50 records_gen
      (fun records ->
        let spool = fresh_spool "torn" in
        let j = Journal.open_ ~spool in
        List.iter (Journal.append j) records;
        Journal.close j;
        match records with
        | [] -> Journal.replay ~spool = []
        | _ ->
            (* chop the file mid-way through its final line (the newline
               and two more bytes), simulating a torn write *)
            let text =
              let ic = open_in_bin (Journal.path ~spool) in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              s
            in
            write_file (Journal.path ~spool) (String.sub text 0 (String.length text - 3));
            let expect = List.filteri (fun i _ -> i < List.length records - 1) records in
            Journal.replay ~spool = expect);
    (* the replication-grade guarantee: truncate a valid multi-record
       journal at EVERY byte offset; replay never raises and recovers
       exactly the longest committed (newline-terminated) prefix *)
    prop "truncation at every byte offset recovers the committed prefix" 15
      (QCheck.make
         ~print:(fun rs -> String.concat " | " (List.map Journal.encode rs))
         QCheck.Gen.(list_size (int_range 1 6) (QCheck.gen record_gen)))
      (fun records ->
        let spool = fresh_spool "chop" in
        let j = Journal.open_ ~spool in
        List.iter (Journal.append j) records;
        Journal.close j;
        let text =
          let ic = open_in_bin (Journal.path ~spool) in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        (* cumulative end offset of each record's newline-terminated line *)
        let boundaries =
          List.fold_left
            (fun acc r -> (List.hd acc + String.length (Journal.encode r) + 1) :: acc)
            [ 0 ] records
          |> List.rev |> List.tl
        in
        let ok = ref true in
        for k = 0 to String.length text do
          write_file (Journal.path ~spool) (String.sub text 0 k);
          (* committed = records whose full line (incl. '\n') fits in k *)
          let m = List.length (List.filter (fun b -> b <= k) boundaries) in
          let committed = List.filteri (fun i _ -> i < m) records in
          let lines, bytes = Journal.replay_wire ~spool in
          if lines <> List.map Journal.encode committed then ok := false;
          if bytes <> List.fold_left (fun a b -> if b <= k then max a b else a) 0 boundaries
          then ok := false;
          (* plain replay may additionally see a COMPLETE final line whose
             newline was cut — decodable, but still torn at the byte level *)
          let replayed = Journal.replay ~spool in
          let extra_ok =
            replayed = committed
            || List.exists (fun b -> b = k + 1) boundaries
               && replayed = List.filteri (fun i _ -> i <= m) records
          in
          if not extra_ok then ok := false;
          (* sealing the truncated file, then appending, must land the new
             record cleanly after the committed prefix *)
          if k = String.length text / 2 then begin
            let sealed = Journal.seal ~spool in
            if sealed <> m then ok := false;
            let j = Journal.open_ ~spool in
            let fresh = { Journal.job = "fresh"; event = Journal.Queued } in
            Journal.append j fresh;
            Journal.close j;
            if Journal.replay ~spool <> committed @ [ fresh ] then ok := false
          end
        done;
        !ok);
  ]

let journal_units =
  [
    Alcotest.test_case "CRC-corrupt record ends the valid prefix" `Quick (fun () ->
        let spool = fresh_spool "crc" in
        let r i = { Journal.job = Printf.sprintf "j%d" i; event = Journal.Queued } in
        let lines = List.init 4 (fun i -> Journal.encode (r i)) in
        (* flip one payload byte of the third record without updating
           its CRC; it and the fourth must both be dropped *)
        let corrupt =
          List.mapi
            (fun i line ->
              if i = 2 then (
                let b = Bytes.of_string line in
                Bytes.set b (Bytes.length b - 1) '?';
                Bytes.to_string b)
              else line)
            lines
        in
        write_file (Journal.path ~spool) (String.concat "\n" corrupt ^ "\n");
        Alcotest.(check (list record_testable)) "prefix" [ r 0; r 1 ] (Journal.replay ~spool));
    Alcotest.test_case "missing journal replays as empty" `Quick (fun () ->
        Alcotest.(check (list record_testable))
          "empty" [] (Journal.replay ~spool:(fresh_spool "none")));
    Alcotest.test_case "completed is absorbing: a result is reported once, ever" `Quick (fun () ->
        let after =
          Journal.fold
            [
              { Journal.job = "a"; event = Journal.Queued };
              { Journal.job = "a"; event = Journal.Started { attempt = 1 } };
              {
                Journal.job = "a";
                event =
                  Journal.Done { attempt = 1; makespan = 9; budget_used = 2; fuel = 40; cached = false };
              };
              (* events a buggy or crashed writer might still emit *)
              { Journal.job = "a"; event = Journal.Started { attempt = 2 } };
              {
                Journal.job = "a";
                event =
                  Journal.Done { attempt = 2; makespan = 1; budget_used = 0; fuel = 1; cached = true };
              };
              { Journal.job = "a"; event = Journal.Abandoned { attempt = 2 } };
            ]
        in
        match after with
        | [ ("a", Journal.Completed { attempt; makespan; _ }) ] ->
            Alcotest.(check int) "first attempt won" 1 attempt;
            Alcotest.(check int) "first makespan kept" 9 makespan
        | _ -> Alcotest.fail "expected a single completed entry");
    Alcotest.test_case "status machine: transient failure re-pends, permanent kills" `Quick
      (fun () ->
        let st =
          Journal.fold
            [
              { Journal.job = "a"; event = Journal.Started { attempt = 1 } };
              {
                Journal.job = "a";
                event =
                  Journal.Failed
                    { attempt = 1; error_class = "lp-failure"; transient = true; backoff = 120 };
              };
            ]
        in
        (match st with
        | [ ("a", Journal.Pending { attempts = 1 }) ] -> ()
        | _ -> Alcotest.fail "expected pending after transient failure");
        let st =
          List.fold_left Journal.apply st
            [
              { Journal.job = "a"; event = Journal.Started { attempt = 2 } };
              {
                Journal.job = "a";
                event =
                  Journal.Failed
                    { attempt = 2; error_class = "parse-error"; transient = false; backoff = 0 };
              };
            ]
        in
        match st with
        | [ ("a", Journal.Dead { attempts = 2; error_class = "parse-error" }) ] -> ()
        | _ -> Alcotest.fail "expected dead after permanent failure");
  ]

(* ------------------------------------------------------------------ *)
(* retry policy                                                        *)

let retry_units =
  [
    Alcotest.test_case "classification: solver trouble is transient, bad input is not" `Quick
      (fun () ->
        let t e =
          Alcotest.(check bool) (Error.class_name e) true (Retry.classify e = Retry.Transient)
        in
        let p e =
          Alcotest.(check bool) (Error.class_name e) true (Retry.classify e = Retry.Permanent)
        in
        t (Error.Fuel_exhausted { stage = "exact"; spent = 10 });
        t (Error.Lp_failure "infeasible");
        t (Error.Flow_failure "aborted");
        t (Error.Fault_injected { site = "lp.infeasible" });
        t (Error.Internal "bug");
        t (Error.Certificate_mismatch { what = "makespan"; expected = "3"; got = "4" });
        p (Error.Parse_error { line = 1; msg = "bad" });
        p (Error.Io_error "gone");
        p (Error.Invalid_instance "cycle");
        p (Error.Invalid_request "negative budget");
        p (Error.Too_large { states = 1_000_000_000 }));
    Alcotest.test_case "all-rungs-failed is transient iff any component is" `Quick (fun () ->
        let mixed =
          Error.All_rungs_failed
            [
              ("exact", Error.Too_large { states = 5 });
              ("bicriteria", Error.Fuel_exhausted { stage = "simplex"; spent = 2 });
            ]
        in
        Alcotest.(check bool) "mixed" true (Retry.classify mixed = Retry.Transient);
        let all_permanent =
          Error.All_rungs_failed
            [ ("exact", Error.Too_large { states = 5 }); ("greedy", Error.Invalid_request "x") ]
        in
        Alcotest.(check bool) "all permanent" true (Retry.classify all_permanent = Retry.Permanent));
    Alcotest.test_case "backoff: deterministic, capped exponential, jittered" `Quick (fun () ->
        let b a = Retry.backoff ~seed:3 ~job:"job_07.rtt" ~attempt:a in
        Alcotest.(check int) "deterministic" (b 1) (b 1);
        let base a = min Retry.max_backoff (Retry.base_backoff * (1 lsl (a - 1))) in
        List.iter
          (fun a ->
            let v = b a in
            Alcotest.(check bool)
              (Printf.sprintf "attempt %d: %d in [%d, %d)" a v (base a)
                 (base a + (Retry.base_backoff / 2)))
              true
              (v >= base a && v < base a + (Retry.base_backoff / 2)))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ];
        Alcotest.(check bool) "saturates at the cap" true
          (b 40 < Retry.max_backoff + (Retry.base_backoff / 2));
        Alcotest.check_raises "attempts are 1-based"
          (Invalid_argument "Retry.backoff: attempts are 1-based") (fun () -> ignore (b 0)));
    (* the saturating doubling must hold for ANY attempt count — the
       naive [base * 2^(attempt-1)] overflows to garbage (negative
       backoffs, Invalid sleeps) past attempt ~55 *)
    prop "backoff: bounded and overflow-free over attempt in [0, 10_000]" 500
      QCheck.(triple small_nat (int_range 0 10_000) small_string)
      (fun (seed, attempt, job) ->
        if attempt = 0 then
          match Retry.backoff ~seed ~job ~attempt with
          | exception Invalid_argument _ -> true
          | _ -> false
        else
          let v = Retry.backoff ~seed ~job ~attempt in
          let again = Retry.backoff ~seed ~job ~attempt in
          v = again
          && v >= Retry.base_backoff
          && v < Retry.max_backoff + (Retry.base_backoff / 2)
          && (attempt < 6 || v >= Retry.max_backoff));
  ]

(* ------------------------------------------------------------------ *)
(* checkpoint sidecars                                                 *)

let checkpoint_units =
  [
    Alcotest.test_case "store/load roundtrip; store replaces; clear removes" `Quick (fun () ->
        let spool = fresh_spool "ckpt" in
        let job = "a.rtt" in
        Checkpoint.store ~spool ~job "exact1 10 0 0,0,0";
        Alcotest.(check (option string))
          "loaded" (Some "exact1 10 0 0,0,0")
          (Checkpoint.load ~spool ~job);
        Checkpoint.store ~spool ~job "exact1 9 1 1,0,0";
        Alcotest.(check (option string))
          "replaced" (Some "exact1 9 1 1,0,0")
          (Checkpoint.load ~spool ~job);
        Checkpoint.clear ~spool ~job;
        Alcotest.(check (option string)) "cleared" None (Checkpoint.load ~spool ~job);
        (* clearing a missing sidecar is a no-op, not an error *)
        Checkpoint.clear ~spool ~job);
    Alcotest.test_case "corrupt or missing sidecar degrades to a cold start" `Quick (fun () ->
        let spool = fresh_spool "ckpt2" in
        Alcotest.(check (option string)) "missing" None (Checkpoint.load ~spool ~job:"a");
        write_file (Checkpoint.path ~spool ~job:"a") "deadbeef exact1 10 0 0,0";
        Alcotest.(check (option string)) "bad crc" None (Checkpoint.load ~spool ~job:"a");
        write_file (Checkpoint.path ~spool ~job:"a") "short";
        Alcotest.(check (option string)) "unframed" None (Checkpoint.load ~spool ~job:"a"));
  ]

(* ------------------------------------------------------------------ *)
(* engine load validation                                              *)

let load_units =
  [
    Alcotest.test_case "duplicate edge rejected as invalid-request, offender named" `Quick
      (fun () ->
        match Engine.load_string "vertices 3\nedge 0 1\nedge 1 2\nedge 0 1\n" with
        | Error (Error.Invalid_request msg) ->
            List.iter
              (fun needle ->
                Alcotest.(check bool)
                  (Printf.sprintf "%S mentions %S" msg needle)
                  true (contains ~needle msg))
              [ "duplicate edge"; "0 -> 1" ]
        | Error e -> Alcotest.failf "wrong class %s" (Error.class_name e)
        | Ok _ -> Alcotest.fail "duplicate edge accepted");
    Alcotest.test_case "cycle diagnostics name a witness vertex" `Quick (fun () ->
        match Engine.load_string "vertices 2\nedge 0 1\nedge 1 0\n" with
        | Error (Error.Parse_error { msg; _ }) ->
            Alcotest.(check bool) "names a vertex" true (contains ~needle:"cycle through vertex" msg)
        | Error e -> Alcotest.failf "wrong class %s" (Error.class_name e)
        | Ok _ -> Alcotest.fail "cycle accepted");
    Alcotest.test_case "unreadable path is an io-error" `Quick (fun () ->
        match Engine.load "/nonexistent/definitely/missing.rtt" with
        | Error (Error.Io_error _) -> ()
        | Error e -> Alcotest.failf "wrong class %s" (Error.class_name e)
        | Ok _ -> Alcotest.fail "loaded a ghost");
  ]

(* ------------------------------------------------------------------ *)
(* kernel checkpoint/resume                                            *)

let resume_units =
  [
    Alcotest.test_case "exact snapshot roundtrip; malformed is rejected" `Quick (fun () ->
        let p = cheap_instance 11 in
        let r = Exact.min_makespan p ~budget:2 in
        Alcotest.(check (option (array int)))
          "roundtrip" (Some r.Exact.allocation)
          (Exact.allocation_of_snapshot (Exact.snapshot_of r));
        List.iter
          (fun s -> Alcotest.(check (option (array int))) s None (Exact.allocation_of_snapshot s))
          [ ""; "exact1"; "exact2 1 2 0,0"; "exact1 1 2 0,x,0"; "garbage here" ]);
    Alcotest.test_case "exact warm start: identical optimum, strictly less fuel" `Slow (fun () ->
        let p = wide_flat ~n:8 ~opts:4 in
        let cold, cold_fuel = fuel_of (fun () -> Exact.min_makespan p ~budget:3) in
        let warm, warm_fuel =
          fuel_of (fun () -> Exact.min_makespan ~warm_start:cold.Exact.allocation p ~budget:3)
        in
        Alcotest.(check int) "same makespan" cold.Exact.makespan warm.Exact.makespan;
        Alcotest.(check (array int)) "same allocation" cold.Exact.allocation warm.Exact.allocation;
        Alcotest.(check bool)
          (Printf.sprintf "warm %d < cold %d" warm_fuel cold_fuel)
          true (warm_fuel < cold_fuel));
    Alcotest.test_case "an infeasible warm start is ignored" `Quick (fun () ->
        let p = cheap_instance 12 in
        let good = Exact.min_makespan p ~budget:2 in
        List.iter
          (fun ws ->
            let r = Exact.min_makespan ~warm_start:ws p ~budget:2 in
            Alcotest.(check int) "unaffected" good.Exact.makespan r.Exact.makespan)
          [ [| 9 |]; [||] ]);
    Alcotest.test_case "sp table resumes from a snapshot with less fuel" `Quick (fun () ->
        let tree =
          let rng = rng_of 77 in
          Sp.map
            (fun _ -> Binary_split.to_duration ~work:(5 + Random.State.int rng 40))
            (Gen.random_sp (rng_of 42) ~leaves:30 ~series_bias:0.5)
        in
        let budget = 60 in
        let full, cold_fuel = fuel_of (fun () -> Sp_exact.makespan_table tree ~budget) in
        let snap = ref None in
        (match
           Budget.with_checkpoint ~every:200
             (fun s -> snap := Some s)
             (fun () ->
               Budget.with_fuel
                 (Some (cold_fuel / 2))
                 (fun () -> Sp_exact.makespan_table tree ~budget))
         with
        | _ -> Alcotest.fail "expected the interrupted run to exhaust its fuel"
        | exception Budget.Fuel_exhausted _ -> ());
        let snapshot =
          match !snap with Some s -> s | None -> Alcotest.fail "no snapshot offered"
        in
        let resumed, resumed_fuel =
          fuel_of (fun () -> Sp_exact.makespan_table ~snapshot tree ~budget)
        in
        Alcotest.(check (array int)) "same table" full resumed;
        Alcotest.(check bool)
          (Printf.sprintf "resumed %d < cold %d" resumed_fuel cold_fuel)
          true (resumed_fuel < cold_fuel);
        (* a snapshot taken at another budget is ignored, not misused *)
        let other, _ = fuel_of (fun () -> Sp_exact.makespan_table ~snapshot tree ~budget:50) in
        let fresh, _ = fuel_of (fun () -> Sp_exact.makespan_table tree ~budget:50) in
        Alcotest.(check (array int)) "budget-mismatched snapshot ignored" fresh other);
  ]

(* ------------------------------------------------------------------ *)
(* in-process supervisor                                               *)

let count_events records job pred =
  List.length (List.filter (fun r -> r.Journal.job = job && pred r.Journal.event) records)

let is_done = function Journal.Done _ -> true | _ -> false
let is_started = function Journal.Started _ -> true | _ -> false

let supervisor_units =
  [
    Alcotest.test_case "drains a mixed spool: results, statuses, exit code" `Quick (fun () ->
        let spool = fresh_spool "drain" in
        write_job ~spool "ok_a.rtt" (cheap_instance 21);
        write_job ~spool "ok_b.rtt" (cheap_instance 22);
        write_file (Filename.concat spool "bad.rtt") "vertices 1\nedge 0 0\n";
        let cfg = { (Supervisor.default_config ~spool) with sleep = false; budget = 2 } in
        Alcotest.(check int) "exit" Supervisor.failed_jobs_exit_code (Supervisor.run cfg);
        let statuses = Supervisor.report ~spool in
        Alcotest.(check string) "bad is dead" "failed"
          (Journal.status_name (List.assoc "bad.rtt" statuses));
        Alcotest.(check string) "ok_a done" "done"
          (Journal.status_name (List.assoc "ok_a.rtt" statuses));
        (match Supervisor.read_result ~spool ~job:"ok_a.rtt" with
        | Some kvs ->
            Alcotest.(check bool) "result has allocation" true (List.mem_assoc "allocation" kvs);
            Alcotest.(check string) "attempt recorded" "1" (List.assoc "attempt" kvs)
        | None -> Alcotest.fail "missing result file");
        (* a second run is a no-op: nothing re-runs, nothing double-reports *)
        let before = List.length (Journal.replay ~spool) in
        Alcotest.(check int) "still failed exit" Supervisor.failed_jobs_exit_code
          (Supervisor.run cfg);
        Alcotest.(check int) "no new records" before (List.length (Journal.replay ~spool)));
    Alcotest.test_case "fault-driven retry: transient on attempt 1, success on attempt 2" `Quick
      (fun () ->
        let spool = fresh_spool "retry" in
        write_job ~spool "only.rtt" (cheap_instance 23);
        Faults.reset ();
        Faults.arm ~after:0 Faults.Lp_infeasible;
        let cfg =
          {
            (Supervisor.default_config ~spool) with
            policy = [ Policy.Bicriteria ];
            sleep = false;
            seed = 7;
            budget = 2;
          }
        in
        let code = Supervisor.run cfg in
        Faults.reset ();
        Alcotest.(check int) "drained" Supervisor.drained_exit_code code;
        let records = Journal.replay ~spool in
        Alcotest.(check int) "two attempts" 2 (count_events records "only.rtt" is_started);
        Alcotest.(check int) "one result" 1 (count_events records "only.rtt" is_done);
        (match
           List.find_map
             (fun r ->
               match r.Journal.event with
               | Journal.Failed { attempt; transient; backoff; _ }
                 when r.Journal.job = "only.rtt" ->
                   Some (attempt, transient, backoff)
               | _ -> None)
             records
         with
        | Some (attempt, transient, backoff) ->
            Alcotest.(check bool) "journaled as transient" true transient;
            Alcotest.(check int) "attempt 1 failed" 1 attempt;
            (* the journaled backoff is exactly the deterministic policy
               value for (seed, job, attempt): runs are reproducible *)
            Alcotest.(check int) "backoff deterministic under the seed"
              (Retry.backoff ~seed:7 ~job:"only.rtt" ~attempt:1)
              backoff
        | None -> Alcotest.fail "no failure journaled");
        match List.assoc "only.rtt" (Supervisor.report ~spool) with
        | Journal.Completed { attempt = 2; _ } -> ()
        | s -> Alcotest.failf "expected completion on attempt 2, got %s" (Journal.status_name s));
    Alcotest.test_case "fuel deadline: transient retries, then retries exhaust" `Quick (fun () ->
        let spool = fresh_spool "deadline" in
        write_job ~spool "slow.rtt" (cheap_instance 24);
        let cfg =
          {
            (Supervisor.default_config ~spool) with
            policy = [ Policy.Exact ];
            deadline_fuel = Some 3;
            max_attempts = 2;
            sleep = false;
            budget = 2;
          }
        in
        Alcotest.(check int) "failed exit" Supervisor.failed_jobs_exit_code (Supervisor.run cfg);
        let records = Journal.replay ~spool in
        Alcotest.(check int) "both attempts consumed" 2 (count_events records "slow.rtt" is_started);
        Alcotest.(check int) "no result" 0 (count_events records "slow.rtt" is_done);
        match List.assoc "slow.rtt" (Supervisor.report ~spool) with
        | Journal.Dead _ -> ()
        | s -> Alcotest.failf "expected dead, got %s" (Journal.status_name s));
  ]

(* ------------------------------------------------------------------ *)
(* process-level acceptance: SIGKILL crash recovery, SIGTERM shutdown  *)

let rtt_exe = Filename.concat (Filename.dirname (Sys.getcwd ())) "bin/rtt.exe"

let spawn_serve ~spool =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv =
    [| rtt_exe; "serve"; "--spool"; spool; "-b"; "3"; "--checkpoint-every"; "50"; "--no-sleep" |]
  in
  let pid = Unix.create_process rtt_exe argv Unix.stdin null null in
  Unix.close null;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> `Exited c
  | _, Unix.WSIGNALED s -> `Signaled s
  | _, Unix.WSTOPPED _ -> `Stopped

let wait_for ?(timeout = 60.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      ignore (Unix.select [] [] [] 0.005);
      go ()
    end
  in
  go ()

let expensive_instance () = wide_flat ~n:10 ~opts:4

let fill_crash_spool spool =
  for i = 0 to 19 do
    let name = Printf.sprintf "job_%02d.rtt" i in
    if i = 10 then write_job ~spool name (expensive_instance ())
    else write_job ~spool name (cheap_instance (100 + i))
  done

let result_field ~spool ~job key =
  match Supervisor.read_result ~spool ~job with
  | Some kvs -> List.assoc_opt key kvs
  | None -> None

let process_units =
  [
    Alcotest.test_case "SIGKILL mid-solve: restart completes every job exactly once" `Slow
      (fun () ->
        (* uninterrupted baseline over an identical spool *)
        let base = fresh_spool "crash_base" in
        fill_crash_spool base;
        (match wait_exit (spawn_serve ~spool:base) with
        | `Exited 0 -> ()
        | _ -> Alcotest.fail "baseline serve did not drain");
        (* the run under test: SIGKILL while job_10 is mid-solve (its
           checkpoint sidecar appearing proves the solve is in flight) *)
        let spool = fresh_spool "crash" in
        fill_crash_spool spool;
        let ckpt = Checkpoint.path ~spool ~job:"job_10.rtt" in
        let pid = spawn_serve ~spool in
        if not (wait_for (fun () -> Sys.file_exists ckpt)) then begin
          Unix.kill pid Sys.sigkill;
          ignore (wait_exit pid);
          Alcotest.fail "no checkpoint appeared before timeout"
        end;
        Unix.kill pid Sys.sigkill;
        (match wait_exit pid with
        | `Signaled s when s = Sys.sigkill -> ()
        | _ -> Alcotest.fail "expected the process to die by SIGKILL");
        (* the journal survived the kill: job_10 is an in-flight attempt *)
        (match List.assoc_opt "job_10.rtt" (Journal.fold (Journal.replay ~spool)) with
        | Some (Journal.Running { attempt = 1 }) -> ()
        | Some s -> Alcotest.failf "job_10 after crash: %s" (Journal.status_name s)
        | None -> Alcotest.fail "job_10 missing from journal");
        (* restart over the same spool: drains clean *)
        (match wait_exit (spawn_serve ~spool) with
        | `Exited 0 -> ()
        | `Exited c -> Alcotest.failf "restart exited %d" c
        | _ -> Alcotest.fail "restart died");
        let records = Journal.replay ~spool in
        for i = 0 to 19 do
          let job = Printf.sprintf "job_%02d.rtt" i in
          Alcotest.(check int) (job ^ " done exactly once") 1 (count_events records job is_done)
        done;
        (* the interrupted job resumed (attempt 2) rather than restarting
           its attempt count *)
        (match List.assoc "job_10.rtt" (Journal.fold records) with
        | Journal.Completed { attempt = 2; _ } -> ()
        | s -> Alcotest.failf "job_10 final state: %s" (Journal.status_name s));
        (* the resumed allocation is identical to the uninterrupted run's,
           and the warm-started attempt burned measurably less fuel *)
        Alcotest.(check (option string))
          "same allocation"
          (result_field ~spool:base ~job:"job_10.rtt" "allocation")
          (result_field ~spool ~job:"job_10.rtt" "allocation");
        Alcotest.(check (option string))
          "same makespan"
          (result_field ~spool:base ~job:"job_10.rtt" "makespan")
          (result_field ~spool ~job:"job_10.rtt" "makespan");
        let fuel_in spool =
          match result_field ~spool ~job:"job_10.rtt" "fuel" with
          | Some f -> int_of_string f
          | None -> Alcotest.fail "no fuel recorded"
        in
        let cold = fuel_in base and warm = fuel_in spool in
        Alcotest.(check bool)
          (Printf.sprintf "resumed fuel %d < cold %d" warm cold)
          true (warm < cold));
    Alcotest.test_case "SIGTERM: exit 30, abandoned journaled, resume is cheaper" `Slow (fun () ->
        let spool = fresh_spool "term" in
        write_job ~spool "job_00.rtt" (expensive_instance ());
        write_job ~spool "job_01.rtt" (cheap_instance 7);
        let ckpt = Checkpoint.path ~spool ~job:"job_00.rtt" in
        let pid = spawn_serve ~spool in
        if not (wait_for (fun () -> Sys.file_exists ckpt)) then begin
          Unix.kill pid Sys.sigkill;
          ignore (wait_exit pid);
          Alcotest.fail "no checkpoint appeared before timeout"
        end;
        Unix.kill pid Sys.sigterm;
        (match wait_exit pid with
        | `Exited c ->
            Alcotest.(check int) "documented shutdown exit code" Supervisor.shutdown_exit_code c
        | _ -> Alcotest.fail "expected a graceful exit");
        let records = Journal.replay ~spool in
        Alcotest.(check int) "abandoned journaled" 1
          (count_events records "job_00.rtt" (function
            | Journal.Abandoned _ -> true
            | _ -> false));
        (match List.assoc "job_00.rtt" (Journal.fold records) with
        | Journal.Interrupted { attempt = 1 } -> ()
        | s -> Alcotest.failf "after shutdown: %s" (Journal.status_name s));
        Alcotest.(check bool) "checkpoint kept for resume" true (Sys.file_exists ckpt);
        Alcotest.(check int) "undone job never started" 0
          (count_events records "job_01.rtt" is_started);
        (* resume: drains clean, and the resumed solve is measurably
           cheaper than a cold one thanks to the checkpointed incumbent *)
        (match wait_exit (spawn_serve ~spool) with
        | `Exited 0 -> ()
        | _ -> Alcotest.fail "resume did not drain");
        let cold_fuel =
          match Engine.solve ~policy:[ Policy.Exact ] (expensive_instance ()) ~budget:3 with
          | Ok s -> s.Engine.fuel_spent
          | Error e -> Alcotest.failf "cold reference solve failed: %s" (Error.to_string e)
        in
        match result_field ~spool ~job:"job_00.rtt" "fuel" with
        | Some f ->
            let warm = int_of_string f in
            Alcotest.(check bool)
              (Printf.sprintf "resumed fuel %d < cold %d" warm cold_fuel)
              true (warm < cold_fuel)
        | None -> Alcotest.fail "no fuel recorded for the resumed job");
  ]

(* ------------------------------------------------------------------ *)
(* shared frame layer: round-trips, corruption rejection, reassembly   *)

let payload_gen =
  (* anything but '\n' — the framing's one reserved byte *)
  QCheck.Gen.(
    map
      (fun chars -> String.concat "" (List.map (String.make 1) chars))
      (list_size (int_range 0 60)
         (oneof [ char_range ' ' '~'; oneofl [ '\t'; '\r'; '%'; '\255'; '\000' ] ])))

let arbitrary_bytes_gen =
  QCheck.Gen.(map Bytes.unsafe_to_string (bytes_size (int_range 0 60)))

let frame_props =
  [
    prop "frame/unframe round-trip" 500
      (QCheck.make ~print:String.escaped payload_gen)
      (fun p -> Frame.unframe (Frame.frame p) = Some p);
    prop "any single corrupted byte is rejected" 500
      (QCheck.make
         ~print:(fun (p, pos, b) -> Printf.sprintf "%S pos=%d byte=%d" p pos b)
         QCheck.Gen.(triple payload_gen (int_range 0 1000) (int_range 0 255)))
      (fun (p, pos, b) ->
        let line = Frame.frame p in
        let pos = pos mod String.length line in
        let c = Char.chr b in
        QCheck.assume (c <> line.[pos] && c <> '\n');
        let corrupted = Bytes.of_string line in
        Bytes.set corrupted pos c;
        Frame.unframe (Bytes.to_string corrupted) = None);
    prop "escape/unescape round-trip on arbitrary bytes" 500
      (QCheck.make ~print:String.escaped arbitrary_bytes_gen)
      (fun s ->
        let e = Frame.escape s in
        String.for_all (fun c -> c <> ' ' && c <> '\n' && c <> '\r') e
        && Frame.unescape e = Some s);
    prop "reader reassembles any chunking of any frame stream" 200
      (QCheck.make
         ~print:(fun (ps, cuts) ->
           Printf.sprintf "%d payloads, cuts [%s]" (List.length ps)
             (String.concat ";" (List.map string_of_int cuts)))
         QCheck.Gen.(pair (list_size (int_range 0 8) payload_gen) (list (int_range 1 17))))
      (fun (payloads, cuts) ->
        let stream = String.concat "" (List.map (fun p -> Frame.frame p ^ "\n") payloads) in
        let r = Frame.reader () in
        let got = ref [] in
        let pos = ref 0 in
        let cuts = ref (cuts @ [ String.length stream ]) in
        while !pos < String.length stream do
          let step =
            match !cuts with
            | c :: rest ->
                cuts := rest;
                min c (String.length stream - !pos)
            | [] -> String.length stream - !pos
          in
          got := !got @ Frame.feed r (String.sub stream !pos step);
          pos := !pos + step
        done;
        !got = List.map (fun p -> `Frame p) payloads && Frame.buffered r = 0);
    prop "torn tail: the incomplete line is held, then completed" 200
      (QCheck.make ~print:String.escaped payload_gen)
      (fun p ->
        let line = Frame.frame p ^ "\n" in
        let cut = max 1 (String.length line - 3) in
        let r = Frame.reader () in
        let first = Frame.feed r (String.sub line 0 cut) in
        let rest = Frame.feed r (String.sub line cut (String.length line - cut)) in
        first = [] && rest = [ `Frame p ]);
  ]

let frame_units =
  [
    Alcotest.test_case "a complete unframed line reads as corrupt" `Quick (fun () ->
        match Frame.feed (Frame.reader ()) "garbage\n" with
        | [ `Corrupt "garbage" ] -> ()
        | _ -> Alcotest.fail "expected [`Corrupt]");
    Alcotest.test_case "an overlong line poisons the reader for good" `Quick (fun () ->
        let r = Frame.reader ~max_frame:64 () in
        (match Frame.feed r (String.make 100 'x') with
        | [ `Overflow ] -> ()
        | _ -> Alcotest.fail "expected [`Overflow]");
        (* even a well-formed follow-up cannot resynchronize *)
        match Frame.feed r (Frame.frame "ok" ^ "\n") with
        | [ `Overflow ] -> ()
        | _ -> Alcotest.fail "poisoned reader must keep reporting `Overflow");
    Alcotest.test_case "overflow triggers on accumulation across feeds" `Quick (fun () ->
        let r = Frame.reader ~max_frame:64 () in
        Alcotest.(check (list reject)) "no items yet" [] (Frame.feed r (String.make 40 'x'));
        match Frame.feed r (String.make 40 'y') with
        | [ `Overflow ] -> ()
        | _ -> Alcotest.fail "expected [`Overflow] on the second feed");
    Alcotest.test_case "journal encode is the shared framing" `Quick (fun () ->
        let r = { Journal.job = "a b.rtt"; event = Journal.Queued } in
        match Frame.unframe (Journal.encode r) with
        | Some payload -> Alcotest.(check bool) "decodes" true (Journal.decode (Frame.frame payload) <> None)
        | None -> Alcotest.fail "journal lines must unframe");
  ]

(* ------------------------------------------------------------------ *)
(* shared JSON escaper (Rtt_engine.Jsonout) — used by [rtt jobs --json]
   and [bench --json]; the decoder exists purely so we can assert the
   round trip over arbitrary byte strings *)

let arb_bytes =
  QCheck.make
    ~print:String.escaped
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_range 0 48))

let jsonout_props =
  [
    prop "escape/unescape round-trips arbitrary bytes" 500 arb_bytes (fun s ->
        Jsonout.unescape (Jsonout.escape s) = Some s);
    prop "quote is escape in double quotes" 200 arb_bytes (fun s ->
        let q = Jsonout.quote s in
        String.length q >= 2
        && q.[0] = '"'
        && q.[String.length q - 1] = '"'
        && String.sub q 1 (String.length q - 2) = Jsonout.escape s);
    prop "quoted literal has no control bytes and terminates only at the end" 200 arb_bytes
      (fun s ->
        let q = Jsonout.quote s in
        let n = String.length q in
        (* walk the body: a backslash consumes the next byte; an
           unescaped quote before position n-1 would cut the literal
           short, a control byte would break line-oriented readers *)
        let rec scan i =
          if i = n - 1 then true
          else if i > n - 1 then false
          else
            let c = q.[i] in
            if c < ' ' || c = '"' then false
            else if c = '\\' then scan (i + 2)
            else scan (i + 1)
        in
        n >= 2 && scan 1);
  ]

let jsonout_units =
  [
    Alcotest.test_case "known escapes" `Quick (fun () ->
        Alcotest.(check string) "mixed" "a\\\"b\\\\c\\n\\t\\u0001"
          (Jsonout.escape "a\"b\\c\n\t\001"));
    Alcotest.test_case "unescape accepts standard optional escapes" `Quick (fun () ->
        Alcotest.(check (option string)) "solidus" (Some "/") (Jsonout.unescape "\\/");
        Alcotest.(check (option string)) "u0041" (Some "A") (Jsonout.unescape "\\u0041");
        Alcotest.(check (option string)) "backspace" (Some "\b") (Jsonout.unescape "\\b");
        Alcotest.(check (option string)) "formfeed" (Some "\012") (Jsonout.unescape "\\f"));
    Alcotest.test_case "unescape rejects malformed input" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check (option string)) (String.escaped s) None (Jsonout.unescape s))
          [ "\\"; "\\x"; "\\u00"; "\\u00zz"; "\\u0100" ]);
  ]

let () =
  Alcotest.run "service"
    [
      ("frame-props", frame_props);
      ("frame", frame_units);
      ("journal-props", journal_props);
      ("journal", journal_units);
      ("retry", retry_units);
      ("checkpoint", checkpoint_units);
      ("load", load_units);
      ("resume", resume_units);
      ("supervisor", supervisor_units);
      ("process", process_units);
      ("jsonout-props", jsonout_props);
      ("jsonout", jsonout_units);
    ]
